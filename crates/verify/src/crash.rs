//! Crash-point fuzzing of the durable serving stack.
//!
//! [`run_crash`] drives a deterministic multi-tenant serve script against
//! a durable [`Server`], then re-runs it once per *durable write point*
//! with a scheduled crash fault at exactly that write (cycling through
//! torn-write, partial-write, lost-fsync, and die-before-write). After
//! each injected crash it recovers a fresh server from the same durable
//! directory, resumes every tenant by id + token, retries the
//! unacknowledged command with its original sequence number, and finishes
//! the script. The invariants, checked at every single crash point:
//!
//! - **No acknowledged tick lost**: the architectural counter equals the
//!   never-crashed oracle's — every `run` the old server acknowledged
//!   survives into the recovered one, and retried commands execute
//!   exactly once.
//! - **Transcripts byte-identical**: `$display` output accumulated across
//!   the crash equals the oracle's, line for line.
//! - **No corrupt record served**: recovery quarantines, it never
//!   hallucinates — divergence or a decode failure would trip the checks
//!   above.
//! - **Exactly-once dedup**: re-sending the last acknowledged sequence
//!   number returns the stored reply verbatim without re-executing.
//! - **Flight recorder survives**: the dying server dumps its in-memory
//!   trace ring to `last-crash.trace.jsonl` through the raw sidecar path,
//!   and recovery surfaces a decodable dump whose final record is the
//!   `dump` marker naming why the recorder fired.
//!
//! A separate graceful pass per seed checks **counter monotonicity**: a
//! drain → recover restart must never make a `serve_*_total` counter go
//! backwards (crash restarts only guarantee the journaled lower bound).
//!
//! The write-point count comes from a clean pass under an armed-but-
//! never-firing plan ([`FaultPlan::durable_consults`]), so the sweep
//! covers every durable write the script performs — no hand-maintained
//! list to go stale.

use cascade_fpga::{DurableFault, FaultPlan};
use cascade_serve::{InProcClient, Json, Request, ServeConfig, Server};
use std::path::PathBuf;
use std::sync::Arc;

/// Crash campaign parameters.
#[derive(Debug, Clone)]
pub struct CrashConfig {
    /// Master seed for the first script; later seeds are `seed + i`.
    pub seed: u64,
    /// Distinct scripts (seeds) to sweep.
    pub seeds: u32,
    /// Cap on crash points swept per seed (0 = every write point).
    pub max_points: u32,
    /// Tenants per script.
    pub tenants: u32,
    /// Run/drain rounds per tenant.
    pub bursts: u32,
}

impl Default for CrashConfig {
    fn default() -> Self {
        CrashConfig {
            seed: 1,
            seeds: 3,
            max_points: 0,
            tenants: 4,
            bursts: 6,
        }
    }
}

/// Aggregate results of a crash campaign.
#[derive(Debug, Clone, Default)]
pub struct CrashReport {
    /// Durable write points discovered across all seeds.
    pub write_points: u64,
    /// Crash points actually swept (one injected fault each).
    pub crash_points: u64,
    /// Servers recovered from a durable directory.
    pub recoveries: u64,
    /// Sessions successfully resumed by id + token.
    pub resumes: u64,
    /// Journal records replayed by recovered servers.
    pub replayed_records: u64,
    /// Corrupt records quarantined during recovery.
    pub quarantined: u64,
    /// Warm bitstream-store hits observed.
    pub warm_hits: u64,
    /// Flight-recorder records decoded out of post-crash dumps.
    pub flight_records: u64,
    /// Every invariant violation found; empty means a clean campaign.
    pub violations: Vec<String>,
}

/// One scripted tenant command. Sequence numbers are assigned at
/// generation time so a retry after recovery re-sends the original.
#[derive(Debug, Clone)]
enum Op {
    Open,
    Eval(String, u64),
    Run(u64, u64),
    Drain(u64),
    Fifo(u64, Vec<u64>, u64),
}

/// The deterministic script: a flat interleaving of tenant ops.
struct Script {
    ops: Vec<(usize, Op)>,
    tenants: usize,
}

fn tenant_source(step: u64) -> Vec<String> {
    vec![
        "reg [15:0] cnt = 0;".to_string(),
        format!("always @(posedge clk.val) cnt <= cnt + 16'd{step};"),
        "always @(posedge clk.val) if (cnt[2:0] == 3'd7) $display(\"c=%d\", cnt);".to_string(),
        "assign led.val = cnt[7:0];".to_string(),
    ]
}

fn generate_script(seed: u64, tenants: u32, bursts: u32) -> Script {
    let mut rng = cascade_bits::Prng::new(seed ^ 0xC4A5);
    let tenants = tenants.max(1) as usize;
    let mut ops = Vec::new();
    let mut seqs = vec![0u64; tenants];
    fn seq(seqs: &mut [u64], t: usize) -> u64 {
        seqs[t] += 1;
        seqs[t]
    }
    for t in 0..tenants {
        ops.push((t, Op::Open));
        // Tenants count in ones so every display firing pattern shows up
        // in the transcript (same convention as the chaos soak).
        for line in tenant_source(1) {
            let s = seq(&mut seqs, t);
            ops.push((t, Op::Eval(line, s)));
        }
    }
    for round in 0..bursts.max(1) {
        for t in 0..tenants {
            if rng.chance(1, 3) {
                let words: Vec<u64> = (0..3).map(|i| (t as u64) << 8 | i).collect();
                let s = seq(&mut seqs, t);
                ops.push((t, Op::Fifo(8, words, s)));
            }
            let burst = 4 + rng.below(20);
            let s = seq(&mut seqs, t);
            ops.push((t, Op::Run(burst, s)));
            if round % 2 == 1 || rng.chance(1, 2) {
                let s = seq(&mut seqs, t);
                ops.push((t, Op::Drain(s)));
            }
        }
    }
    for t in 0..tenants {
        let s = seq(&mut seqs, t);
        ops.push((t, Op::Drain(s)));
    }
    Script { ops, tenants }
}

/// Per-tenant progress within one execution pass.
#[derive(Debug, Clone, Default)]
struct TenantState {
    session: Option<u64>,
    token: u64,
    lines: Vec<String>,
    ticks: u64,
    fifo_accepted: u64,
    /// Last acknowledged sequenced op and its reply text (dedup check).
    last_acked: Option<(Op, String)>,
}

fn op_request(session: u64, op: &Op) -> Request {
    match op {
        Op::Open => Request::Open,
        Op::Eval(line, seq) => Request::Eval {
            session,
            line: line.clone(),
            seq: *seq,
        },
        Op::Run(ticks, seq) => Request::Run {
            session,
            ticks: *ticks,
            seq: *seq,
        },
        Op::Drain(seq) => Request::Drain { session, seq: *seq },
        Op::Fifo(width, data, seq) => Request::Fifo {
            session,
            width: *width,
            data: data.clone(),
            seq: *seq,
        },
    }
}

/// Applies an acknowledged reply to the tenant's accumulated state.
fn absorb(state: &mut TenantState, op: &Op, reply: &Json) {
    match op {
        Op::Open => {
            state.session = reply.get("session").and_then(Json::as_u64);
            state.token = reply.get("token").and_then(Json::as_u64).unwrap_or(0);
        }
        Op::Run(..) => {
            state.ticks += reply.get("ticks").and_then(Json::as_u64).unwrap_or(0);
        }
        Op::Drain(_) => {
            if let Some(arr) = reply.get("lines").and_then(Json::as_arr) {
                state
                    .lines
                    .extend(arr.iter().filter_map(|v| v.as_str().map(str::to_string)));
            }
        }
        Op::Fifo(..) => {
            state.fifo_accepted += reply.get("pushed").and_then(Json::as_u64).unwrap_or(0);
        }
        Op::Eval(..) => {}
    }
    if !matches!(op, Op::Open) {
        state.last_acked = Some((op.clone(), reply.to_string()));
    }
}

/// Runs script ops starting at `cursor` until completion or the first
/// failed command (the crash point). Returns the index of the first op
/// that was *not* acknowledged, or `ops.len()` on full completion.
fn run_ops(
    client: &mut InProcClient,
    script: &Script,
    states: &mut [TenantState],
    cursor: usize,
) -> usize {
    for (i, (t, op)) in script.ops.iter().enumerate().skip(cursor) {
        let state = &mut states[*t];
        let session = state.session.unwrap_or(0);
        let reply = match client.raw(&op_request(session, op)) {
            Ok(r) => r,
            Err(_) => return i,
        };
        // Eval replies carry `ok:false` for rejected items too; the
        // script only sends valid Verilog, so any not-ok means the
        // journal refused the ack (or the store is already crashed).
        if reply.get("ok").and_then(Json::as_bool) != Some(true) {
            return i;
        }
        absorb(state, op, &reply);
    }
    script.ops.len()
}

fn server_stat(server: &Arc<Server>, key: &str) -> u64 {
    let mut c = InProcClient::connect(server);
    c.server_stats()
        .ok()
        .and_then(|s| s.get(key).and_then(Json::as_u64))
        .unwrap_or(0)
}

/// Parses server-level `serve_*_total` counters out of an exposition.
fn monotone_counters(text: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(name), Some(value)) = (parts.next(), parts.next()) else {
            continue;
        };
        if !name.starts_with("serve_") || !name.ends_with("_total") || name.contains('{') {
            continue;
        }
        if let Ok(v) = value.parse::<f64>() {
            out.push((name.to_string(), v as u64));
        }
    }
    out
}

fn durable_config(dir: &std::path::Path, faults: FaultPlan) -> ServeConfig {
    let mut c = ServeConfig::quick();
    c.fabrics = 1;
    c.workers = 2;
    // Idle-driven hibernation off: the sweep needs a deterministic
    // durable-write sequence, and spills would add timing-dependent
    // write points. (Spill crash-safety has its own integration tests.)
    c.hibernate_after_s = 0.0;
    c.max_live_sessions = 0;
    c.idle_timeout_s = 3600.0;
    c.durable_dir = Some(dir.to_string_lossy().into_owned());
    c.jit.faults = faults;
    c
}

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cascade-crash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The oracle: the script, completed on a durable server that never
/// faults, under an armed plan that counts durable write points.
struct Oracle {
    states: Vec<TenantState>,
    write_points: u64,
}

fn run_oracle(
    script: &Script,
    report: &mut CrashReport,
    here: &dyn Fn(&str) -> String,
) -> Option<Oracle> {
    let dir = fresh_dir("oracle");
    // Armed but never firing: occurrence u64::MAX is unreachable, yet the
    // plan is active, so every foreground durable write counts a consult.
    let plan = FaultPlan::builder()
        .durable_fault(u64::MAX, DurableFault::Crash)
        .build();
    let server = Server::new(durable_config(&dir, plan.clone()));
    let mut client = InProcClient::connect(&server);
    let mut states = vec![TenantState::default(); script.tenants];
    let done = run_ops(&mut client, script, &mut states, 0);
    let complete = done == script.ops.len();
    if !complete {
        report
            .violations
            .push(here(&format!("oracle pass failed at op {done}")));
    }
    drop(server);
    let write_points = plan.durable_consults();
    let _ = std::fs::remove_dir_all(&dir);
    complete.then_some(Oracle {
        states,
        write_points,
    })
}

/// Sweeps one crash point: run until the fault kills the server, recover,
/// resume, retry, finish, and compare against the oracle.
fn sweep_point(
    script: &Script,
    oracle: &Oracle,
    k: u64,
    fault: DurableFault,
    report: &mut CrashReport,
    here: &dyn Fn(&str) -> String,
) {
    let dir = fresh_dir(&format!("k{k}"));
    let plan = FaultPlan::builder().durable_fault(k, fault).build();
    let server = Server::new(durable_config(&dir, plan));
    let mut client = InProcClient::connect(&server);
    let mut states = vec![TenantState::default(); script.tenants];
    let cursor = run_ops(&mut client, script, &mut states, 0);
    drop(client);
    drop(server);

    // Recover a fresh server from the same durable root, fault-free.
    let recovered = Server::recover(durable_config(&dir, FaultPlan::none()));
    report.recoveries += 1;
    // Every injected fault latches the store into its crashed state, which
    // fires the flight-recorder dump on the dying server. Recovery must
    // surface a decodable dump that ends with the `dump` marker.
    match recovered.last_crash_trace() {
        Some(text) => {
            let mut decoded = 0u64;
            let mut last_name = String::new();
            for line in text.lines().filter(|l| !l.trim().is_empty()) {
                match Json::parse(line) {
                    Ok(ev) => match ev.get("name").and_then(Json::as_str) {
                        Some(name) => {
                            decoded += 1;
                            last_name = name.to_string();
                        }
                        None => report.violations.push(here(&format!(
                            "k={k} {fault:?}: flight record without a name: {ev}"
                        ))),
                    },
                    Err(e) => report.violations.push(here(&format!(
                        "k={k} {fault:?}: undecodable flight record: {e}"
                    ))),
                }
            }
            if decoded == 0 {
                report
                    .violations
                    .push(here(&format!("k={k} {fault:?}: flight dump was empty")));
            } else if last_name != "dump" {
                report.violations.push(here(&format!(
                    "k={k} {fault:?}: flight dump tail is {last_name:?}, not the dump marker"
                )));
            }
            report.flight_records += decoded;
        }
        None => report.violations.push(here(&format!(
            "k={k} {fault:?}: no last-crash.trace.jsonl after injected crash"
        ))),
    }
    let mut client = InProcClient::connect(&recovered);
    for (t, state) in states.iter_mut().enumerate() {
        let Some(id) = state.session else {
            continue; // crashed before this tenant's open; retried below
        };
        match client.raw(&Request::Resume {
            session: id,
            token: state.token,
        }) {
            Ok(r) if r.get("ok").and_then(Json::as_bool) == Some(true) => {
                report.resumes += 1;
            }
            Ok(r) => report.violations.push(here(&format!(
                "k={k} {fault:?}: tenant {t} resume rejected: {r}"
            ))),
            Err(e) => report.violations.push(here(&format!(
                "k={k} {fault:?}: tenant {t} resume failed: {e}"
            ))),
        }
        // Exactly-once dedup: re-sending the last acknowledged seq must
        // return the stored reply verbatim, not re-execute.
        if let Some((op, acked_reply)) = state.last_acked.clone() {
            match client.raw(&op_request(id, &op)) {
                Ok(r) => {
                    if r.to_string() != acked_reply {
                        report.violations.push(here(&format!(
                            "k={k} {fault:?}: tenant {t} dedup reply diverged:\n  \
                             acked: {acked_reply}\n  retry: {r}"
                        )));
                    }
                }
                Err(e) => report.violations.push(here(&format!(
                    "k={k} {fault:?}: tenant {t} dedup retry failed: {e}"
                ))),
            }
        }
    }
    // Finish the script from the unacknowledged op (same sequence
    // numbers, so a command that secretly survived would be deduped, and
    // one that didn't is executed exactly once).
    let done = run_ops(&mut client, script, &mut states, cursor);
    if done != script.ops.len() {
        report.violations.push(here(&format!(
            "k={k} {fault:?}: recovered run failed at op {done}"
        )));
    }

    // Compare every tenant against the never-crashed oracle.
    for (t, (state, want)) in states.iter().zip(&oracle.states).enumerate() {
        if state.ticks != want.ticks {
            report.violations.push(here(&format!(
                "k={k} {fault:?}: tenant {t} acked ticks {} != oracle {}",
                state.ticks, want.ticks
            )));
        }
        if state.lines != want.lines {
            report.violations.push(here(&format!(
                "k={k} {fault:?}: tenant {t} transcript diverged after {} ticks \
                 ({} lines vs oracle {})",
                state.ticks,
                state.lines.len(),
                want.lines.len()
            )));
        }
        if state.fifo_accepted != want.fifo_accepted {
            report.violations.push(here(&format!(
                "k={k} {fault:?}: tenant {t} fifo accepted {} != oracle {}",
                state.fifo_accepted, want.fifo_accepted
            )));
        }
        let Some(id) = state.session else {
            report
                .violations
                .push(here(&format!("k={k} {fault:?}: tenant {t} never opened")));
            continue;
        };
        let expected = want.ticks & 0xffff; // step 1
        match client.raw(&Request::Probe {
            session: id,
            port: "cnt".to_string(),
        }) {
            Ok(r) => {
                let got = r.get("value").and_then(Json::as_u64);
                if got != Some(expected) {
                    report.violations.push(here(&format!(
                        "k={k} {fault:?}: tenant {t} cnt {:?} != expected {expected}",
                        got
                    )));
                }
            }
            Err(e) => report.violations.push(here(&format!(
                "k={k} {fault:?}: tenant {t} probe failed: {e}"
            ))),
        }
    }
    report.replayed_records += server_stat(&recovered, "recovery_replayed");
    report.quarantined += server_stat(&recovered, "recovery_quarantined");
    report.warm_hits += server_stat(&recovered, "warm_bitstream_hits");
    report.crash_points += 1;
    drop(client);
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The graceful half: drain → recover must keep `serve_*_total` counters
/// monotone (baselines persisted in `server.meta`) and resume cleanly.
fn graceful_pass(script: &Script, report: &mut CrashReport, here: &dyn Fn(&str) -> String) {
    let dir = fresh_dir("drain");
    let server = Server::new(durable_config(&dir, FaultPlan::none()));
    let mut client = InProcClient::connect(&server);
    let mut states = vec![TenantState::default(); script.tenants];
    if run_ops(&mut client, script, &mut states, 0) != script.ops.len() {
        report.violations.push(here("graceful pass failed"));
        let _ = std::fs::remove_dir_all(&dir);
        return;
    }
    let before = client
        .server_metrics()
        .map(|t| monotone_counters(&t))
        .unwrap_or_default();
    match client.drain_server() {
        Ok((flushed, _)) => {
            if flushed == 0 {
                report.violations.push(here("drain flushed nothing"));
            }
        }
        Err(e) => report.violations.push(here(&format!("drain failed: {e}"))),
    }
    drop(client);
    drop(server);

    let recovered = Server::recover(durable_config(&dir, FaultPlan::none()));
    report.recoveries += 1;
    let mut client = InProcClient::connect(&recovered);
    let after = client
        .server_metrics()
        .map(|t| monotone_counters(&t))
        .unwrap_or_default();
    for (name, was) in &before {
        match after.iter().find(|(n, _)| n == name) {
            Some((_, now)) if now < was => report.violations.push(here(&format!(
                "counter {name} went backwards across drain/recover: {was} -> {now}"
            ))),
            None => report.violations.push(here(&format!(
                "counter {name} vanished across drain/recover"
            ))),
            _ => {}
        }
    }
    // Every tenant must resume and still hold its acknowledged state.
    for (t, state) in states.iter().enumerate() {
        let Some(id) = state.session else { continue };
        let resumed = client
            .raw(&Request::Resume {
                session: id,
                token: state.token,
            })
            .ok()
            .and_then(|r| r.get("ok").and_then(Json::as_bool))
            == Some(true);
        if !resumed {
            report
                .violations
                .push(here(&format!("tenant {t} failed to resume after drain")));
            continue;
        }
        report.resumes += 1;
        let expected = state.ticks & 0xffff;
        let got = client
            .raw(&Request::Probe {
                session: id,
                port: "cnt".to_string(),
            })
            .ok()
            .and_then(|r| r.get("value").and_then(Json::as_u64));
        if got != Some(expected) {
            report.violations.push(here(&format!(
                "tenant {t} cnt {got:?} != {expected} after drain/recover"
            )));
        }
    }
    report.warm_hits += server_stat(&recovered, "warm_bitstream_hits");
    drop(client);
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

const FAULT_CYCLE: [DurableFault; 4] = [
    DurableFault::Crash,
    DurableFault::TornWrite,
    DurableFault::PartialWrite,
    DurableFault::LostFsync,
];

/// Runs the full crash campaign described by `cfg`.
pub fn run_crash(cfg: &CrashConfig) -> CrashReport {
    let mut report = CrashReport::default();
    for i in 0..cfg.seeds.max(1) {
        let seed = cfg.seed.wrapping_add(i as u64);
        let script = generate_script(seed, cfg.tenants, cfg.bursts);
        let here = move |s: &str| format!("seed {seed}: {s}");
        let Some(oracle) = run_oracle(&script, &mut report, &here) else {
            continue;
        };
        report.write_points += oracle.write_points;
        let points = if cfg.max_points == 0 {
            oracle.write_points
        } else {
            oracle.write_points.min(cfg.max_points as u64)
        };
        for k in 1..=points {
            let fault = FAULT_CYCLE[(k as usize - 1) % FAULT_CYCLE.len()];
            sweep_point(&script, &oracle, k, fault, &mut report, &here);
        }
        graceful_pass(&script, &mut report, &here);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bounded sweep must hold every invariant at every crash point.
    #[test]
    fn bounded_crash_sweep_is_clean() {
        let cfg = CrashConfig {
            seed: 11,
            seeds: 1,
            max_points: 6,
            tenants: 2,
            bursts: 2,
        };
        let report = run_crash(&cfg);
        assert!(
            report.violations.is_empty(),
            "crash violations:\n{}",
            report.violations.join("\n")
        );
        assert_eq!(report.crash_points, 6);
        assert!(report.write_points >= 6, "script too small to sweep");
        assert!(report.recoveries >= 7, "every point + graceful recovers");
        assert!(report.resumes > 0, "no tenant ever resumed");
        assert!(report.flight_records > 0, "no flight dump ever decoded");
    }

    /// The write-point count is stable for a fixed script — the sweep
    /// covers the same points on every run.
    #[test]
    fn write_point_count_is_deterministic() {
        let script = generate_script(5, 2, 2);
        let mut r1 = CrashReport::default();
        let mut r2 = CrashReport::default();
        let here = |s: &str| s.to_string();
        let a = run_oracle(&script, &mut r1, &here).expect("oracle");
        let b = run_oracle(&script, &mut r2, &here).expect("oracle");
        assert_eq!(a.write_points, b.write_points);
        assert!(a.write_points > 0);
    }
}
