//! Chaos soak testing of the serving stack.
//!
//! [`run_soak`] replays thousands of generated serve-session scripts
//! against in-process [`Server`]s built from a matrix of scheduler /
//! fleet / hibernation configurations, every one of them under a seeded
//! [`FaultPlan::random`] schedule. Tenants run in interleaved bursts (so
//! the work-stealing shards and the lease arbiter actually contend), and
//! the harness checks trace-derived invariants rather than exact timing:
//!
//! - **No lost ticks**: every `run` serves exactly the ticks requested,
//!   and the architectural counter lands on `ticks * step mod 2^16`.
//! - **Transcript byte-identity**: a `$display`-bearing tenant's output
//!   across faults, hibernation, and promotion equals a never-faulted
//!   solo [`Runtime`] oracle's, byte for byte.
//! - **Monotone metrics**: server-level `serve_*_total` counters never
//!   decrease between samples. (Session-registry sums may legitimately
//!   drop when tenants hibernate, so only server-level counters qualify.)
//! - **Lease accounting**: revocations never exceed grants.
//! - **Hibernation hygiene**: zero wake failures and zero dropped output
//!   lines anywhere in the run.
//!
//! Violations are collected, not panicked, so one bad batch reports every
//! broken invariant at once.

use cascade_bits::Prng;
use cascade_core::{JitConfig, Runtime};
use cascade_fpga::{ArbiterConfig, Board, FaultPlan};
use cascade_serve::{InProcClient, ServeConfig, Server};

/// Soak campaign parameters.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Master seed; every batch, tenant, and fault schedule derives from it.
    pub seed: u64,
    /// Total serve sessions to replay across the whole campaign.
    pub sessions: u32,
    /// Sessions sharing one server instance (one batch = one server).
    pub batch: u32,
    /// Maximum ticks per run burst.
    pub max_burst: u32,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            seed: 1,
            sessions: 64,
            batch: 16,
            max_burst: 40,
        }
    }
}

/// Aggregate results of a soak campaign.
#[derive(Debug, Clone, Default)]
pub struct SoakReport {
    /// Sessions fully replayed.
    pub sessions: u64,
    /// Ticks served across all tenants.
    pub ticks: u64,
    /// `$display` lines collected (and oracle-checked).
    pub display_lines: u64,
    /// Faults the schedules actually injected.
    pub faults_injected: u64,
    /// Hibernate transitions observed server-side.
    pub hibernates: u64,
    /// Server batches (distinct configurations × fault schedules) run.
    pub batches: u64,
    /// Every invariant violation found; empty means a clean campaign.
    pub violations: Vec<String>,
}

/// One point in the configuration matrix.
#[derive(Debug, Clone, Copy)]
struct MatrixPoint {
    fabrics: usize,
    workers: usize,
    eager: bool,
    /// `None` = hibernation off; `Some(true)` = sweeper-driven;
    /// `Some(false)` = explicit client `hibernate` commands.
    hibernate: Option<bool>,
}

/// Eight canonical corners: software-only through contended two-fabric
/// fleets, single-shard through four-shard schedulers, both arbiters,
/// and all three hibernation modes.
const MATRIX: [MatrixPoint; 8] = [
    MatrixPoint {
        fabrics: 0,
        workers: 1,
        eager: false,
        hibernate: Some(false),
    },
    MatrixPoint {
        fabrics: 1,
        workers: 2,
        eager: true,
        hibernate: Some(false),
    },
    MatrixPoint {
        fabrics: 2,
        workers: 4,
        eager: false,
        hibernate: Some(true),
    },
    MatrixPoint {
        fabrics: 1,
        workers: 1,
        eager: true,
        hibernate: None,
    },
    MatrixPoint {
        fabrics: 0,
        workers: 4,
        eager: false,
        hibernate: Some(true),
    },
    MatrixPoint {
        fabrics: 2,
        workers: 2,
        eager: true,
        hibernate: Some(false),
    },
    MatrixPoint {
        fabrics: 1,
        workers: 4,
        eager: false,
        hibernate: Some(false),
    },
    MatrixPoint {
        fabrics: 2,
        workers: 1,
        eager: false,
        hibernate: None,
    },
];

fn server_config(point: MatrixPoint, faults: FaultPlan) -> ServeConfig {
    let mut c = ServeConfig::quick();
    c.fabrics = point.fabrics;
    c.workers = point.workers;
    if point.eager {
        c.arbiter = ArbiterConfig::eager();
    }
    c.jit.faults = faults;
    match point.hibernate {
        Some(true) => {
            c.hibernate_after_s = 0.05;
            c.max_live_sessions = 8;
            c.hibernate_mem_bytes = 64 << 10;
        }
        Some(false) | None => c.hibernate_after_s = 0.0,
    }
    c
}

/// One generated tenant script, partially executed.
struct Tenant {
    client: InProcClient,
    rng: Prng,
    step: u64,
    display: bool,
    src: String,
    ticks: u64,
    lines: Vec<String>,
    bursts_left: u32,
    explicit_hibernate: bool,
}

fn tenant_source(step: u64, display: bool) -> String {
    let mut src =
        format!("reg [15:0] cnt = 0;\nalways @(posedge clk.val) cnt <= cnt + 16'd{step};\n");
    if display {
        src.push_str("always @(posedge clk.val) if (cnt[2:0] == 3'd7) $display(\"c=%d\", cnt);\n");
    }
    src.push_str("assign led.val = cnt[7:0];");
    src
}

/// Parses server-level monotone counters out of a Prometheus exposition.
/// Only `serve_*_total` series qualify: session-registry sums may drop
/// when a tenant hibernates or closes.
fn monotone_counters(text: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(name), Some(value)) = (parts.next(), parts.next()) else {
            continue;
        };
        if !name.starts_with("serve_") || !name.ends_with("_total") || name.contains('{') {
            continue;
        }
        if let Ok(v) = value.parse::<f64>() {
            out.push((name.to_string(), v as u64));
        }
    }
    out
}

/// Returns a description of the first counter that went backwards.
fn monotone_violation(prev: &[(String, u64)], cur: &[(String, u64)]) -> Option<String> {
    for (name, was) in prev {
        if let Some((_, now)) = cur.iter().find(|(n, _)| n == name) {
            if now < was {
                return Some(format!("counter {name} went backwards: {was} -> {now}"));
            }
        }
    }
    None
}

fn stat(server: &std::sync::Arc<Server>, key: &str) -> u64 {
    let mut c = InProcClient::connect(server);
    c.server_stats()
        .ok()
        .and_then(|s| s.get(key).and_then(cascade_serve::Json::as_u64))
        .unwrap_or(0)
}

/// Replays one batch of tenants against a fresh server; appends findings
/// to `report`.
fn run_batch(cfg: &SoakConfig, batch_idx: u32, count: u32, report: &mut SoakReport) {
    let point = MATRIX[batch_idx as usize % MATRIX.len()];
    let faults = FaultPlan::random(cfg.seed ^ (0x50AC << 16) ^ batch_idx as u64);
    let plan = faults.clone();
    let server = Server::new(server_config(point, faults));
    let here = |s: &str| format!("batch {batch_idx} ({point:?}): {s}");

    // Spawn the tenants.
    let mut tenants: Vec<Tenant> = (0..count)
        .map(|t| {
            let mut rng = Prng::new(cfg.seed ^ ((batch_idx as u64) << 32) ^ t as u64);
            let step = 1 + rng.below(5);
            let display = rng.chance(1, 2);
            // Display tenants count in ones so the oracle transcript is
            // exercised on the densest firing pattern.
            let step = if display { 1 } else { step };
            let src = tenant_source(step, display);
            let bursts_left = 2 + rng.below(4) as u32;
            let explicit_hibernate = point.hibernate == Some(false);
            Tenant {
                client: InProcClient::connect(&server),
                rng,
                step,
                display,
                src,
                ticks: 0,
                lines: Vec::new(),
                bursts_left,
                explicit_hibernate,
            }
        })
        .collect();
    for (t, tenant) in tenants.iter_mut().enumerate() {
        if let Err(e) = tenant.client.open() {
            report
                .violations
                .push(here(&format!("tenant {t}: open failed: {e}")));
            tenant.bursts_left = 0;
            continue;
        }
        if let Err(e) = tenant.client.eval_all(&tenant.src) {
            report
                .violations
                .push(here(&format!("tenant {t}: eval failed: {e}")));
            tenant.bursts_left = 0;
        }
    }

    // Interleaved bursts: every round touches every live tenant, so the
    // shards, the compile pool, and the arbiter all see real contention.
    let mut metrics_client = InProcClient::connect(&server);
    let mut prev_counters: Vec<(String, u64)> = Vec::new();
    loop {
        let mut progressed = false;
        for (t, tenant) in tenants.iter_mut().enumerate() {
            if tenant.bursts_left == 0 {
                continue;
            }
            progressed = true;
            tenant.bursts_left -= 1;
            let burst = 1 + tenant.rng.below(cfg.max_burst as u64 - 1);
            match tenant.client.run(burst) {
                Ok(r) => {
                    if r.ticks != burst {
                        report.violations.push(here(&format!(
                            "tenant {t}: lost ticks: asked {burst}, served {}",
                            r.ticks
                        )));
                    }
                    tenant.ticks += r.ticks;
                }
                Err(e) => {
                    report
                        .violations
                        .push(here(&format!("tenant {t}: run failed: {e}")));
                    tenant.bursts_left = 0;
                    continue;
                }
            }
            match tenant.client.drain() {
                Ok((batch, dropped)) => {
                    if dropped != 0 {
                        report
                            .violations
                            .push(here(&format!("tenant {t}: dropped {dropped} output lines")));
                    }
                    tenant.lines.extend(batch);
                }
                Err(e) => {
                    report
                        .violations
                        .push(here(&format!("tenant {t}: drain failed: {e}")));
                }
            }
            if tenant.explicit_hibernate && tenant.rng.chance(1, 3) {
                if let Err(e) = tenant.client.hibernate() {
                    report
                        .violations
                        .push(here(&format!("tenant {t}: hibernate failed: {e}")));
                }
            }
        }
        match metrics_client.server_metrics() {
            Ok(text) => {
                let cur = monotone_counters(&text);
                if let Some(v) = monotone_violation(&prev_counters, &cur) {
                    report.violations.push(here(&v));
                }
                prev_counters = cur;
            }
            Err(e) => report
                .violations
                .push(here(&format!("metrics failed: {e}"))),
        }
        if !progressed {
            break;
        }
    }

    // Per-tenant closing checks: architectural counter and transcript.
    for (t, tenant) in tenants.iter_mut().enumerate() {
        let expected = (tenant.ticks.wrapping_mul(tenant.step)) & 0xffff;
        match tenant.client.probe("cnt") {
            Ok(Some(cnt)) => {
                if cnt != expected {
                    report.violations.push(here(&format!(
                        "tenant {t}: cnt invariant: {} ticks * step {} -> expected {expected}, got {cnt}",
                        tenant.ticks, tenant.step
                    )));
                }
            }
            Ok(None) => report
                .violations
                .push(here(&format!("tenant {t}: cnt vanished"))),
            Err(e) => report
                .violations
                .push(here(&format!("tenant {t}: probe failed: {e}"))),
        }
        if tenant.display {
            let mut jit = JitConfig::default();
            jit.toolchain.time_scale = 1e-6;
            match Runtime::new(Board::new(), jit) {
                Ok(mut oracle) => {
                    let ok =
                        oracle.eval(&tenant.src).is_ok() && oracle.run_ticks(tenant.ticks).is_ok();
                    if !ok {
                        report
                            .violations
                            .push(here(&format!("tenant {t}: oracle failed")));
                    } else if tenant.lines != oracle.drain_output() {
                        report.violations.push(here(&format!(
                            "tenant {t}: transcript diverged from solo oracle after {} ticks",
                            tenant.ticks
                        )));
                    }
                }
                Err(e) => report
                    .violations
                    .push(here(&format!("tenant {t}: oracle: {e}"))),
            }
        }
        report.sessions += 1;
        report.ticks += tenant.ticks;
        report.display_lines += tenant.lines.len() as u64;
    }

    // Server-wide accounting invariants.
    if stat(&server, "wake_failures") != 0 {
        report.violations.push(here("wake_failures != 0"));
    }
    if stat(&server, "output_dropped") != 0 {
        report.violations.push(here("output_dropped != 0"));
    }
    let grants = stat(&server, "fabric_grants");
    let revocations = stat(&server, "fabric_revocations");
    if revocations > grants {
        report.violations.push(here(&format!(
            "lease accounting: {revocations} revocations > {grants} grants"
        )));
    }
    report.hibernates += stat(&server, "hibernates");
    report.faults_injected += plan.injected();
    report.batches += 1;
}

/// Runs the full soak campaign described by `cfg`.
pub fn run_soak(cfg: &SoakConfig) -> SoakReport {
    let mut report = SoakReport::default();
    let batch = cfg.batch.max(1);
    let mut remaining = cfg.sessions;
    let mut batch_idx = 0;
    while remaining > 0 {
        let count = remaining.min(batch);
        run_batch(cfg, batch_idx, count, &mut report);
        remaining -= count;
        batch_idx += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bounded sweep over the config matrix must replay cleanly: every
    /// invariant holds on every tenant under every fault schedule.
    #[test]
    fn small_matrix_soak_is_clean() {
        let cfg = SoakConfig {
            seed: 7,
            sessions: 24,
            batch: 8,
            max_burst: 24,
        };
        let report = run_soak(&cfg);
        assert!(
            report.violations.is_empty(),
            "soak violations:\n{}",
            report.violations.join("\n")
        );
        assert_eq!(report.sessions, 24);
        assert_eq!(report.batches, 3);
        assert!(report.ticks > 0);
        assert!(report.display_lines > 0, "no display tenant fired");
    }

    #[test]
    fn counter_parsing_and_monotonicity() {
        let a = "# HELP serve_ticks_total t\nserve_ticks_total 10\n\
                 cascade_other_total 9\nserve_gauge 3\nserve_wakes_total 2\n";
        let b = "serve_ticks_total 12\nserve_wakes_total 1\n";
        let ca = monotone_counters(a);
        assert_eq!(
            ca,
            vec![
                ("serve_ticks_total".to_string(), 10),
                ("serve_wakes_total".to_string(), 2)
            ]
        );
        let cb = monotone_counters(b);
        let v = monotone_violation(&ca, &cb).expect("wakes went backwards");
        assert!(v.contains("serve_wakes_total"), "{v}");
        assert!(monotone_violation(&cb, &cb).is_none());
    }
}
