//! `cascade-verify` — the correctness-tooling layer of Cascade-rs.
//!
//! The repo's rare asset is redundancy: four execution engines (the
//! tree-walking event simulator, the bytecode-compiled software engine,
//! the interpretive netlist walker, and the compiled word-arena evaluator)
//! plus the batch and multicore variants must all agree cycle-by-cycle on
//! every synthesizable design. This crate industrializes that oracle into
//! three pillars:
//!
//! 1. **Coverage-guided differential fuzzing** ([`fuzz`]): a seeded
//!    [`spec::DesignSpec`] generator with mutation operators, driven by a
//!    feedback loop over the per-kernel / per-opcode profile histograms
//!    ([`coverage`]); every candidate runs across all engines
//!    ([`diff`]) and any divergence is delta-debugged to a minimal
//!    reproducing `.v` file ([`shrink`]).
//! 2. **Bounded sequential equivalence checking** ([`bmc`]): two
//!    synthesized netlists are unrolled K cycles into CNF and proven
//!    equivalent (or a counterexample extracted) by an in-tree CDCL SAT
//!    core — turning the post-synthesis optimizer from "property-tested"
//!    into "checked per design".
//! 3. **Chaos soak testing** ([`soak`]): thousands of generated
//!    serve-session scripts replay under [`FaultPlan::random`] across
//!    scheduler/fleet/hibernation configs, asserting trace-derived
//!    invariants — no lost ticks, transcript byte-identity against a
//!    never-faulted solo oracle, monotone metrics counters, lease
//!    accounting sanity.
//! 4. **Crash-point fuzzing** ([`crash`]): a deterministic serve script
//!    is crashed and recovered at *every* durable write point (torn
//!    write, partial write, lost fsync, die-before-write), asserting no
//!    acknowledged tick is lost, transcripts stay byte-identical to a
//!    never-crashed oracle, retried commands execute exactly once, and
//!    graceful drain/restart keeps counters monotone.
//!
//! The `verify` binary exposes all four (`verify fuzz`, `verify bmc`,
//! `verify soak`, `verify crash`, `verify replay`); see the README's
//! "Proving it correct" quickstart.
//!
//! [`FaultPlan::random`]: cascade_fpga::FaultPlan::random

pub mod bmc;
pub mod coverage;
pub mod crash;
pub mod diff;
pub mod fuzz;
pub mod sat;
pub mod shrink;
pub mod soak;
pub mod spec;

pub use bmc::{check_equiv, check_equiv_budget, BmcResult, BmcStats};
pub use coverage::CoverageMap;
pub use crash::{run_crash, CrashConfig, CrashReport};
pub use diff::{run_differential, DiffConfig, DiffOutcome, Divergence, EngineId};
pub use fuzz::{FuzzConfig, FuzzStats, Fuzzer};
pub use shrink::shrink;
pub use soak::{run_soak, SoakConfig, SoakReport};
pub use spec::DesignSpec;
