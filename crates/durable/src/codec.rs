//! Tiny length-prefixed binary codec shared by every durable record
//! type (journal records, checkpoint images, bitstream-store entries).
//! Little-endian, explicit lengths, bounds-checked reads — the same
//! discipline as the hibernation image codec in `cascade-core`, kept
//! dependency-free.

use cascade_bits::Bits;

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Appends a length-prefixed byte blob.
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u64(out, b.len() as u64);
    out.extend_from_slice(b);
}

/// Appends a bit vector: width, word count, words.
pub fn put_bits(out: &mut Vec<u8>, b: &Bits) {
    put_u32(out, b.width());
    let words = b.words();
    put_u64(out, words.len() as u64);
    for w in words {
        put_u64(out, *w);
    }
}

/// Bounds-checked cursor over an encoded record. Every method returns a
/// descriptive error instead of panicking — corrupt bytes must surface
/// as quarantine decisions, not crashes.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "record truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length prefix, sanity-capped by the bytes remaining.
    pub fn len_prefix(&mut self) -> Result<usize, String> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(format!("length {n} exceeds remaining {}", self.remaining()));
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, String> {
        let n = self.len_prefix()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid utf-8: {e}"))
    }

    /// Reads a length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<Vec<u8>, String> {
        let n = self.len_prefix()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a bit vector written by [`put_bits`].
    pub fn bits(&mut self) -> Result<Bits, String> {
        let width = self.u32()?;
        let n = self.u64()?;
        if n > (self.remaining() / 8) as u64 {
            return Err(format!("bits word count {n} exceeds remaining bytes"));
        }
        let mut words = Vec::with_capacity(n as usize);
        for _ in 0..n {
            words.push(self.u64()?);
        }
        Ok(Bits::from_words(width, &words))
    }

    /// Fails if any bytes remain — records must be consumed exactly.
    pub fn finish(self) -> Result<(), String> {
        if self.remaining() != 0 {
            return Err(format!("{} trailing bytes in record", self.remaining()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, u64::MAX - 3);
        put_f64(&mut buf, -1234.5);
        put_str(&mut buf, "journal ≠ log");
        put_bytes(&mut buf, &[1, 2, 3]);
        put_bits(&mut buf, &Bits::from_u64(48, 0xabcd_1234_5678));
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64().unwrap(), -1234.5);
        assert_eq!(r.string().unwrap(), "journal ≠ log");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        let b = r.bits().unwrap();
        assert_eq!((b.width(), b.to_u64()), (48, 0xabcd_1234_5678));
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hello");
        let cut = &buf[..buf.len() - 2];
        let mut r = Reader::new(cut);
        assert!(r.string().is_err());
        let mut r2 = Reader::new(&buf[..4]);
        assert!(r2.u64().is_err());
    }
}
