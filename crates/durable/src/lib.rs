//! Crash-safe durability primitives for the serving stack.
//!
//! A multi-tenant JIT server owns state that must outlive the server
//! process itself: hibernation images, write-ahead session journals, and
//! the compiled-bitstream store that makes restarts warm. This crate is
//! the single seam through which all of that state reaches disk:
//!
//! * every record is **CRC-framed** (`[len][crc32][payload]`) so a torn
//!   or bit-rotted record is detected, never served;
//! * whole-file replacement follows the classic atomic discipline —
//!   temp file → fsync → rename → parent-directory fsync — so a file is
//!   either the old version or the new one, never a mix;
//! * journal appends are fsynced before they are acknowledged, and
//!   recovery truncates any torn (unacknowledged) tail;
//! * the whole path is **fault-injectable**: [`cascade_fpga::FaultPlan`]
//!   schedules occurrence-indexed torn-write / partial-write /
//!   lost-fsync / process-crash faults, and a fired fault flips the
//!   store into a `crashed` state that refuses all further writes —
//!   modeling a process that died mid-write and must restart and
//!   recover.
//!
//! Fault injection deliberately targets only *foreground* writes (the
//! ones whose count is driven deterministically by the command stream:
//! journal appends, compactions, spills, metadata). Background cache
//! writes ([`BitstreamStore::save`]) skip the occurrence counter —
//! their timing depends on compile-pool scheduling, which would make
//! crash-point sweeps nondeterministic — and their loss is semantically
//! just a cache miss, which the read-side verification tests cover.

use cascade_fpga::{DurableFault, FaultPlan};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

pub mod codec;
mod store;

pub use store::BitstreamStore;

/// Bytes of frame header: `[len: u32 le][crc32: u32 le]`.
pub const FRAME_HEADER: usize = 8;

/// Why a durable write did not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableError {
    /// The store already took a crash fault; every write is refused
    /// until the process restarts and recovers.
    Crashed,
    /// A scheduled fault fired during this write. The on-disk state is
    /// left in the fault's partial condition and the store is now
    /// crashed.
    Injected(DurableFault),
    /// A real I/O error from the filesystem.
    Io(String),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Crashed => write!(f, "durable store crashed; restart required"),
            DurableError::Injected(fault) => write!(f, "injected durable fault: {fault:?}"),
            DurableError::Io(e) => write!(f, "durable io error: {e}"),
        }
    }
}

/// Why a durable read did not produce a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadError {
    /// No file at that path.
    Missing,
    /// The file exists but its framing or CRC is wrong. The caller must
    /// quarantine it — corrupt records are never served.
    Corrupt(String),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Missing => write!(f, "missing"),
            ReadError::Corrupt(e) => write!(f, "corrupt: {e}"),
        }
    }
}

/// Result of scanning a journal file.
#[derive(Debug, Default)]
pub struct JournalScan {
    /// Every record whose frame verified, in append order.
    pub records: Vec<Vec<u8>>,
    /// File offset just past the last good record.
    pub clean_len: u64,
    /// Bytes after the last good record — a torn tail from a write that
    /// was never acknowledged. Zero for a cleanly closed journal.
    pub torn_bytes: u64,
}

/// CRC-32 (IEEE 802.3, reflected) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Frames one payload: `[len][crc32][payload]`.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parses the frame starting at `buf[at..]`. Returns `(payload, next)`
/// or a description of why the frame is bad.
fn parse_frame(buf: &[u8], at: usize) -> Result<(Vec<u8>, usize), String> {
    let rest = &buf[at..];
    if rest.len() < FRAME_HEADER {
        return Err(format!("short header: {} bytes", rest.len()));
    }
    let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
    let body = &rest[FRAME_HEADER..];
    if body.len() < len {
        return Err(format!("short payload: {} of {len} bytes", body.len()));
    }
    let payload = &body[..len];
    let actual = crc32(payload);
    if actual != crc {
        return Err(format!(
            "crc mismatch: stored {crc:08x}, actual {actual:08x}"
        ));
    }
    Ok((payload.to_vec(), at + FRAME_HEADER + len))
}

struct FsInner {
    faults: FaultPlan,
    crashed: AtomicBool,
}

/// The durable filesystem seam. Cheap to clone; clones share the fault
/// schedule and the crashed flag.
#[derive(Clone)]
pub struct DurableFs {
    inner: Arc<FsInner>,
}

impl DurableFs {
    /// A durable filesystem consulting `faults` on every foreground
    /// write.
    pub fn new(faults: FaultPlan) -> DurableFs {
        DurableFs {
            inner: Arc::new(FsInner {
                faults,
                crashed: AtomicBool::new(false),
            }),
        }
    }

    /// Whether a durable fault has fired. Once crashed, every write is
    /// refused: the in-memory state may have diverged from disk, and the
    /// only safe continuation is restart + recover.
    pub fn crashed(&self) -> bool {
        self.inner.crashed.load(Ordering::Acquire)
    }

    /// Foreground durable write points consulted so far.
    pub fn write_points(&self) -> u64 {
        self.inner.faults.durable_consults()
    }

    fn crash(&self) {
        self.inner.crashed.store(true, Ordering::Release);
    }

    fn check(&self) -> Result<(), DurableError> {
        if self.crashed() {
            Err(DurableError::Crashed)
        } else {
            Ok(())
        }
    }

    fn io<T>(r: std::io::Result<T>) -> Result<T, DurableError> {
        r.map_err(|e| DurableError::Io(e.to_string()))
    }

    fn clean_replace(path: &Path, framed: &[u8]) -> Result<(), DurableError> {
        let tmp = tmp_path(path);
        {
            let mut f = Self::io(File::create(&tmp))?;
            Self::io(f.write_all(framed))?;
            Self::io(f.sync_all())?;
        }
        Self::io(std::fs::rename(&tmp, path))?;
        // Persist the rename itself. Directory fsync is best-effort on
        // platforms where directories cannot be opened.
        if let Some(dir) = path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Atomically replaces `path` with a single CRC-framed record:
    /// temp file → fsync → rename → parent-dir fsync. A reader sees the
    /// old content or the new record, never a mix. Foreground: consults
    /// the fault schedule.
    pub fn write_atomic(&self, path: &Path, payload: &[u8]) -> Result<(), DurableError> {
        self.check()?;
        let framed = frame(payload);
        match self.inner.faults.next_durable_fault() {
            None => Self::clean_replace(path, &framed),
            Some(fault) => {
                match fault {
                    DurableFault::Crash => {}
                    DurableFault::TornWrite => {
                        // Died mid-write of the temp file; the final path
                        // is untouched (rename never happened).
                        let cut = (framed.len() / 2).max(1);
                        let _ = std::fs::write(tmp_path(path), &framed[..cut]);
                    }
                    DurableFault::LostFsync => {
                        // Temp fully written but fsync failed; the
                        // discipline aborts before rename, so again the
                        // final path is untouched.
                        let _ = std::fs::write(tmp_path(path), &framed);
                    }
                    DurableFault::PartialWrite => {
                        // The anomaly the fsync-before-rename order
                        // prevents: rename committed but the payload's
                        // data blocks were lost. Modeled so recovery must
                        // prove it detects and quarantines it.
                        let cut = FRAME_HEADER + payload.len() / 2;
                        let _ = std::fs::write(path, &framed[..cut.min(framed.len() - 1)]);
                    }
                }
                self.crash();
                Err(DurableError::Injected(fault))
            }
        }
    }

    /// Atomic replace for background writes (bitstream-store saves):
    /// honors the crashed flag but does not consult the occurrence
    /// counter, keeping crash-point sweeps deterministic.
    pub fn write_atomic_bg(&self, path: &Path, payload: &[u8]) -> Result<(), DurableError> {
        self.check()?;
        Self::clean_replace(path, &frame(payload))
    }

    /// Appends one CRC-framed record to `path` (creating it if needed)
    /// and fsyncs before returning — the write-ahead rule: nothing is
    /// acknowledged until it is durable. Foreground: consults the fault
    /// schedule.
    pub fn append(&self, path: &Path, payload: &[u8]) -> Result<(), DurableError> {
        self.check()?;
        let framed = frame(payload);
        match self.inner.faults.next_durable_fault() {
            None => {
                let mut f = Self::io(OpenOptions::new().create(true).append(true).open(path))?;
                Self::io(f.write_all(&framed))?;
                Self::io(f.sync_all())?;
                Ok(())
            }
            Some(fault) => {
                match fault {
                    DurableFault::Crash => {}
                    DurableFault::LostFsync => {
                        // Bytes reached the page cache, fsync failed, the
                        // crash dropped them: nothing of this append
                        // survives.
                    }
                    DurableFault::TornWrite => {
                        let cut = (framed.len() / 2).max(1);
                        append_raw(path, &framed[..cut]);
                    }
                    DurableFault::PartialWrite => {
                        let cut = FRAME_HEADER + payload.len() / 2;
                        append_raw(path, &framed[..cut.min(framed.len() - 1)]);
                    }
                }
                self.crash();
                Err(DurableError::Injected(fault))
            }
        }
    }

    /// Reads a single-record file written by [`DurableFs::write_atomic`].
    /// Trailing bytes after the record are corruption, not slack.
    pub fn read_record(&self, path: &Path) -> Result<Vec<u8>, ReadError> {
        let buf = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(ReadError::Missing),
            Err(e) => return Err(ReadError::Corrupt(e.to_string())),
        };
        let (payload, next) = parse_frame(&buf, 0).map_err(ReadError::Corrupt)?;
        if next != buf.len() {
            return Err(ReadError::Corrupt(format!(
                "{} trailing bytes after record",
                buf.len() - next
            )));
        }
        Ok(payload)
    }

    /// Scans a journal of appended records, stopping at the first bad
    /// frame. Bytes past the last good record are reported as a torn
    /// tail — by the write-ahead rule they were never acknowledged, so
    /// recovery may drop them with [`DurableFs::truncate`].
    pub fn read_journal(&self, path: &Path) -> Result<JournalScan, ReadError> {
        let buf = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(ReadError::Missing),
            Err(e) => return Err(ReadError::Corrupt(e.to_string())),
        };
        let mut scan = JournalScan::default();
        let mut at = 0usize;
        while at < buf.len() {
            match parse_frame(&buf, at) {
                Ok((payload, next)) => {
                    scan.records.push(payload);
                    at = next;
                }
                Err(_) => break,
            }
        }
        scan.clean_len = at as u64;
        scan.torn_bytes = (buf.len() - at) as u64;
        Ok(scan)
    }

    /// Crash-path sidecar write: atomically replaces `path` with *raw*
    /// (unframed) bytes — temp file → fsync → rename → parent-dir fsync —
    /// bypassing both the fault schedule and the crashed flag. The flight
    /// recorder uses this to land its trace exactly when the store has
    /// crashed and every framed write path is refusing; the payload is
    /// self-describing text (JSONL), so CRC framing would only make it
    /// unreadable by standard tools.
    pub fn write_sidecar(&self, path: &Path, payload: &[u8]) -> Result<(), DurableError> {
        let tmp = tmp_path(path);
        {
            let mut f = Self::io(File::create(&tmp))?;
            Self::io(f.write_all(payload))?;
            Self::io(f.sync_all())?;
        }
        Self::io(std::fs::rename(&tmp, path))?;
        if let Some(dir) = path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Recovery-time repair: truncates `path` to `len` (dropping a torn
    /// tail) and fsyncs. Not a faulted write point — it runs during
    /// recovery, before service resumes.
    pub fn truncate(&self, path: &Path, len: u64) -> Result<(), DurableError> {
        let f = Self::io(OpenOptions::new().write(true).open(path))?;
        Self::io(f.set_len(len))?;
        Self::io(f.sync_all())?;
        Ok(())
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

fn append_raw(path: &Path, bytes: &[u8]) {
    if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(path) {
        let _ = f.write_all(bytes);
    }
}

/// Moves a file that failed verification out of the way (same directory,
/// `.quar` suffix) so it is preserved for postmortems but never read as
/// data again.
pub fn quarantine(path: &Path) -> std::io::Result<PathBuf> {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".quar");
    let dest = path.with_file_name(name);
    std::fs::rename(path, &dest)?;
    Ok(dest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascade_fpga::DurableFault as F;

    fn tdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cascade-durable-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn atomic_write_round_trips_and_detects_tampering() {
        let d = tdir("atomic");
        let fs = DurableFs::new(FaultPlan::none());
        let p = d.join("rec.bin");
        fs.write_atomic(&p, b"hello durable world").unwrap();
        assert_eq!(fs.read_record(&p).unwrap(), b"hello durable world");
        // Flip one payload byte: the CRC must catch it.
        let mut raw = std::fs::read(&p).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x40;
        std::fs::write(&p, &raw).unwrap();
        assert!(matches!(fs.read_record(&p), Err(ReadError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn journal_appends_scan_in_order() {
        let d = tdir("journal");
        let fs = DurableFs::new(FaultPlan::none());
        let p = d.join("s1.jnl");
        for i in 0..5u8 {
            fs.append(&p, &[i, i, i]).unwrap();
        }
        let scan = fs.read_journal(&p).unwrap();
        assert_eq!(scan.records.len(), 5);
        assert_eq!(scan.records[3], vec![3, 3, 3]);
        assert_eq!(scan.torn_bytes, 0);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_append_leaves_detectable_tail_and_truncate_repairs_it() {
        let d = tdir("torn");
        let plan = FaultPlan::builder().durable_fault(3, F::TornWrite).build();
        let fs = DurableFs::new(plan);
        let p = d.join("s1.jnl");
        fs.append(&p, b"record-one").unwrap();
        fs.append(&p, b"record-two").unwrap();
        let err = fs.append(&p, b"record-three").unwrap_err();
        assert_eq!(err, DurableError::Injected(F::TornWrite));
        assert!(fs.crashed());
        // Post-crash writes are refused without consuming occurrences.
        let before = fs.write_points();
        assert_eq!(fs.append(&p, b"more").unwrap_err(), DurableError::Crashed);
        assert_eq!(fs.write_points(), before);

        // Recovery (a fresh process) sees two good records + a torn tail.
        let rfs = DurableFs::new(FaultPlan::none());
        let scan = rfs.read_journal(&p).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert!(scan.torn_bytes > 0);
        rfs.truncate(&p, scan.clean_len).unwrap();
        rfs.append(&p, b"record-three-retry").unwrap();
        let again = rfs.read_journal(&p).unwrap();
        assert_eq!(again.records.len(), 3);
        assert_eq!(again.torn_bytes, 0);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn atomic_faults_never_mix_old_and_new() {
        for fault in [F::Crash, F::TornWrite, F::LostFsync] {
            let d = tdir(&format!("ax-{fault:?}"));
            let fs0 = DurableFs::new(FaultPlan::none());
            let p = d.join("rec.bin");
            fs0.write_atomic(&p, b"old-version").unwrap();
            let plan = FaultPlan::builder().durable_fault(1, fault).build();
            let fs = DurableFs::new(plan);
            assert!(fs.write_atomic(&p, b"new-version").is_err());
            // Rename never happened: the old record is fully intact.
            assert_eq!(fs0.read_record(&p).unwrap(), b"old-version");
            let _ = std::fs::remove_dir_all(&d);
        }
        // PartialWrite is the rename-before-data anomaly: the final file
        // is replaced by a short frame that verification must reject.
        let d = tdir("ax-partial");
        let fs0 = DurableFs::new(FaultPlan::none());
        let p = d.join("rec.bin");
        fs0.write_atomic(&p, b"old-version").unwrap();
        let plan = FaultPlan::builder()
            .durable_fault(1, F::PartialWrite)
            .build();
        let fs = DurableFs::new(plan);
        assert!(fs.write_atomic(&p, b"new-version").is_err());
        assert!(matches!(fs0.read_record(&p), Err(ReadError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn lost_fsync_append_survives_nothing() {
        let d = tdir("lost");
        let plan = FaultPlan::builder().durable_fault(2, F::LostFsync).build();
        let fs = DurableFs::new(plan);
        let p = d.join("s1.jnl");
        fs.append(&p, b"acked").unwrap();
        assert!(fs.append(&p, b"dropped").is_err());
        let scan = DurableFs::new(FaultPlan::none()).read_journal(&p).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.torn_bytes, 0);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn sidecar_writes_raw_bytes_even_after_crash() {
        let d = tdir("sidecar");
        let plan = FaultPlan::builder().durable_fault(1, F::Crash).build();
        let fs = DurableFs::new(plan);
        let p = d.join("rec.bin");
        assert!(fs.write_atomic(&p, b"doomed").is_err());
        assert!(fs.crashed());
        // Framed writes refuse, but the sidecar path still lands — and
        // the file holds the raw payload, not a CRC frame.
        let side = d.join("last-crash.trace.jsonl");
        fs.write_sidecar(&side, b"{\"ph\":\"i\"}\n").unwrap();
        assert_eq!(std::fs::read(&side).unwrap(), b"{\"ph\":\"i\"}\n");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn quarantine_moves_file_aside() {
        let d = tdir("quar");
        let p = d.join("bad.jnl");
        std::fs::write(&p, b"garbage").unwrap();
        let dest = quarantine(&p).unwrap();
        assert!(!p.exists());
        assert!(dest.exists());
        assert!(dest.to_string_lossy().ends_with(".quar"));
        let _ = std::fs::remove_dir_all(&d);
    }
}
