//! Persistent content-addressed bitstream store.
//!
//! The in-memory `BitstreamCache` makes repeat compiles free *within* a
//! server lifetime; this store makes them free *across* lifetimes. Each
//! entry is keyed by the toolchain cache key (a mix of the netlist
//! content fingerprint and the toolchain configuration) and stores only
//! the toolchain's *outputs* — placement, timing, area, modeled latency.
//! The netlist itself is not serialized: computing the cache key already
//! requires synthesizing the netlist, so the loader re-attaches that
//! freshly synthesized netlist and merely verifies its content
//! fingerprint against the stored one. A mismatch or a bad frame
//! quarantines the entry and reports a miss — a corrupt record is never
//! served as a bitstream.

use crate::{codec, quarantine, DurableFs, ReadError};
use cascade_fpga::Bitstream;
use cascade_fpga::Placement;
use cascade_netlist::{AreaEstimate, Netlist};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const MAGIC: &[u8; 4] = b"CBS1";

/// On-disk bitstream cache keyed by content hash.
pub struct BitstreamStore {
    fs: DurableFs,
    dir: PathBuf,
    hits: AtomicU64,
    saves: AtomicU64,
    corrupt: AtomicU64,
}

impl BitstreamStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: PathBuf, fs: DurableFs) -> BitstreamStore {
        let _ = std::fs::create_dir_all(&dir);
        BitstreamStore {
            fs,
            dir,
            hits: AtomicU64::new(0),
            saves: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
        }
    }

    fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("bs-{key:016x}.cbs"))
    }

    /// Loads the entry for `key`, re-attaching `netlist` (the freshly
    /// synthesized netlist whose fingerprint must equal `fingerprint`).
    /// Any verification failure quarantines the entry and returns `None`.
    pub fn load(&self, key: u64, fingerprint: u64, netlist: Arc<Netlist>) -> Option<Bitstream> {
        let path = self.path_for(key);
        let payload = match self.fs.read_record(&path) {
            Ok(p) => p,
            Err(ReadError::Missing) => return None,
            Err(ReadError::Corrupt(_)) => {
                let _ = quarantine(&path);
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode(&payload, key, fingerprint, netlist) {
            Ok(bs) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(bs)
            }
            Err(_) => {
                let _ = quarantine(&path);
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persists the toolchain outputs for `key`. Best-effort background
    /// write: failures (including a crashed store) lose only warmth.
    pub fn save(&self, key: u64, fingerprint: u64, bs: &Bitstream) {
        let payload = encode(key, fingerprint, bs);
        if self
            .fs
            .write_atomic_bg(&self.path_for(key), &payload)
            .is_ok()
        {
            self.saves.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Verified loads served.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Entries persisted this lifetime.
    pub fn saves(&self) -> u64 {
        self.saves.load(Ordering::Relaxed)
    }

    /// Entries quarantined for failed verification.
    pub fn corrupt_quarantined(&self) -> u64 {
        self.corrupt.load(Ordering::Relaxed)
    }
}

fn encode(key: u64, fingerprint: u64, bs: &Bitstream) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    codec::put_u64(&mut out, key);
    codec::put_u64(&mut out, fingerprint);
    codec::put_u64(&mut out, bs.area.logic_elements);
    codec::put_u64(&mut out, bs.area.registers);
    codec::put_u64(&mut out, bs.area.bram_bits);
    codec::put_u64(&mut out, bs.area.dsp_blocks);
    codec::put_u64(&mut out, bs.placement.cells as u64);
    codec::put_u32(&mut out, bs.placement.grid);
    codec::put_f64(&mut out, bs.placement.avg_wirelength);
    codec::put_u64(&mut out, bs.placement.moves);
    codec::put_f64(&mut out, bs.fmax_mhz);
    codec::put_u32(&mut out, bs.logic_depth);
    codec::put_f64(&mut out, bs.modeled_duration.as_secs_f64());
    out
}

fn decode(
    payload: &[u8],
    key: u64,
    fingerprint: u64,
    netlist: Arc<Netlist>,
) -> Result<Bitstream, String> {
    if payload.len() < 4 || &payload[..4] != MAGIC {
        return Err("bad magic".into());
    }
    let mut r = codec::Reader::new(&payload[4..]);
    let stored_key = r.u64()?;
    let stored_fp = r.u64()?;
    if stored_key != key {
        return Err(format!("key mismatch: stored {stored_key:x}, want {key:x}"));
    }
    if stored_fp != fingerprint {
        return Err(format!(
            "netlist fingerprint mismatch: stored {stored_fp:x}, want {fingerprint:x}"
        ));
    }
    let area = AreaEstimate {
        logic_elements: r.u64()?,
        registers: r.u64()?,
        bram_bits: r.u64()?,
        dsp_blocks: r.u64()?,
    };
    let placement = Placement {
        cells: r.u64()? as usize,
        grid: r.u32()?,
        avg_wirelength: r.f64()?,
        moves: r.u64()?,
    };
    let fmax_mhz = r.f64()?;
    let logic_depth = r.u32()?;
    let modeled_secs = r.f64()?;
    r.finish()?;
    if !modeled_secs.is_finite() || modeled_secs < 0.0 {
        return Err(format!("bad modeled duration {modeled_secs}"));
    }
    Ok(Bitstream {
        netlist,
        area,
        placement,
        fmax_mhz,
        logic_depth,
        modeled_duration: Duration::from_secs_f64(modeled_secs),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascade_fpga::FaultPlan;
    use cascade_netlist::fingerprint;

    fn tiny_netlist() -> Arc<Netlist> {
        Arc::new(Netlist {
            nets: Vec::new(),
            regs: Vec::new(),
            mems: Vec::new(),
            tasks: Vec::new(),
            clocks: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            name: "store-test".into(),
        })
    }

    fn sample(nl: Arc<Netlist>) -> Bitstream {
        Bitstream {
            netlist: nl,
            area: AreaEstimate {
                logic_elements: 42,
                registers: 16,
                bram_bits: 0,
                dsp_blocks: 1,
            },
            placement: Placement {
                cells: 42,
                grid: 7,
                avg_wirelength: 2.25,
                moves: 9001,
            },
            fmax_mhz: 151.5,
            logic_depth: 5,
            modeled_duration: Duration::from_secs_f64(0.125),
        }
    }

    fn tdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cascade-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_then_load_round_trips() {
        let d = tdir("rt");
        let store = BitstreamStore::open(d.clone(), DurableFs::new(FaultPlan::none()));
        let nl = tiny_netlist();
        let fp = fingerprint(&nl);
        let bs = sample(Arc::clone(&nl));
        store.save(0x1234, fp, &bs);
        assert_eq!(store.saves(), 1);
        let got = store.load(0x1234, fp, nl).expect("warm hit");
        assert_eq!(got.area, bs.area);
        assert_eq!(got.fmax_mhz, bs.fmax_mhz);
        assert_eq!(got.logic_depth, bs.logic_depth);
        assert_eq!(got.modeled_duration, bs.modeled_duration);
        assert_eq!(store.hits(), 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn fingerprint_mismatch_is_quarantined_as_miss() {
        let d = tdir("fp");
        let store = BitstreamStore::open(d.clone(), DurableFs::new(FaultPlan::none()));
        let nl = tiny_netlist();
        let fp = fingerprint(&nl);
        store.save(7, fp, &sample(Arc::clone(&nl)));
        // A different source now maps to the same key (modeled collision
        // or stale entry): the stored fingerprint must reject it.
        assert!(store.load(7, fp ^ 0xff, Arc::clone(&nl)).is_none());
        assert_eq!(store.corrupt_quarantined(), 1);
        // Quarantine moved it aside: a retry is a clean miss.
        assert!(store.load(7, fp, nl).is_none());
        assert_eq!(store.corrupt_quarantined(), 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn corrupt_record_is_quarantined_as_miss() {
        let d = tdir("corrupt");
        let store = BitstreamStore::open(d.clone(), DurableFs::new(FaultPlan::none()));
        let nl = tiny_netlist();
        let fp = fingerprint(&nl);
        store.save(9, fp, &sample(Arc::clone(&nl)));
        let path = d.join(format!("bs-{:016x}.cbs", 9));
        let mut raw = std::fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x01;
        std::fs::write(&path, &raw).unwrap();
        assert!(store.load(9, fp, nl).is_none());
        assert_eq!(store.corrupt_quarantined(), 1);
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&d);
    }
}
