//! Native mode (paper Sec. 4.5): the program compiled exactly as written,
//! with no MMIO wrapper, no `get_state`/`set_state` muxing, and no system
//! task support. Interactivity is sacrificed for full native performance.

use crate::engine::hw::Forwarded;
use crate::engine::{Engine, EngineError, EngineKind, EngineState, TaskEvent};
use cascade_bits::Bits;
use cascade_fpga::CostModel;
use cascade_netlist::{Netlist, NetlistSim};
use std::sync::Arc;

/// A wrapper-free compiled program with direct peripheral connections.
pub struct NativeEngine {
    sim: NetlistSim,
    peripherals: Vec<Forwarded>,
    last_cycles: u64,
}

impl NativeEngine {
    /// Compiles the raw netlist into a native engine.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if the netlist contains system tasks (native
    /// mode forfeits unsynthesizable Verilog) or cannot be levelized.
    pub fn new(netlist: Arc<Netlist>, peripherals: Vec<Forwarded>) -> Result<Self, EngineError> {
        if !netlist.tasks.is_empty() {
            return Err(EngineError::Internal(
                "native mode requires a program without system tasks".to_string(),
            ));
        }
        if netlist.clocks.len() > 1 {
            return Err(EngineError::Internal(
                "native mode supports a single clock domain".to_string(),
            ));
        }
        let sim = NetlistSim::new(netlist)
            .map_err(|e| EngineError::Internal(format!("levelization failed: {e}")))?;
        Ok(NativeEngine {
            sim,
            peripherals,
            last_cycles: 0,
        })
    }

    fn exchange(&mut self) {
        for _ in 0..2 {
            for fi in 0..self.peripherals.len() {
                let feeds = self.peripherals[fi].feeds.clone();
                let outs = self.peripherals[fi].peripheral.outputs();
                for (periph_port, engine_port) in &feeds {
                    if let Some((_, v)) = outs.iter().find(|(n, _)| n == periph_port) {
                        if let Some(net) = self.sim.netlist().net_by_name(engine_port) {
                            self.sim.set_input(net, v.clone());
                        }
                    }
                }
            }
            for fi in 0..self.peripherals.len() {
                let drives = self.peripherals[fi].drives.clone();
                for (engine_port, periph_port) in &drives {
                    if let Some(v) = self.sim.get_by_name(engine_port) {
                        self.peripherals[fi].peripheral.set_input(periph_port, &v);
                    }
                }
            }
        }
    }

    /// Releases the peripherals (leaving native mode).
    pub fn release(&mut self) -> Vec<Forwarded> {
        std::mem::take(&mut self.peripherals)
    }
}

impl Engine for NativeEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Native
    }

    fn get_state(&mut self) -> EngineState {
        // Native bitstreams have no state-access wrapper; migration out of
        // native mode restarts from initial values, exactly like a
        // traditionally-deployed design.
        EngineState::default()
    }

    fn set_state(&mut self, _state: &EngineState) {}

    fn read(&mut self, port: &str, value: &Bits) {
        if let Some(net) = self.sim.netlist().net_by_name(port) {
            self.sim.set_input(net, value.clone());
        }
    }

    fn output(&mut self, port: &str) -> Bits {
        self.sim.get_by_name(port).unwrap_or_default()
    }

    fn there_are_evals(&self) -> bool {
        false
    }

    fn evaluate(&mut self) -> Result<(), EngineError> {
        Ok(())
    }

    fn there_are_updates(&self) -> bool {
        false
    }

    fn update(&mut self) -> Result<(), EngineError> {
        Ok(())
    }

    fn drain_tasks(&mut self) -> Vec<TaskEvent> {
        Vec::new()
    }

    fn open_loop(&mut self, steps: u64) -> u64 {
        if self.peripherals.is_empty() {
            // Nothing to exchange per cycle: run the whole batch inside the
            // evaluator (native mode has no tasks to interlock on).
            return self.sim.run_cycles(steps, usize::MAX);
        }
        let mut done = 0;
        while done < steps {
            self.exchange();
            self.sim.step_clock(0);
            for f in &mut self.peripherals {
                f.peripheral.posedge();
            }
            done += 1;
        }
        for f in &mut self.peripherals {
            f.peripheral.end_step();
        }
        self.exchange();
        done
    }

    fn take_cost_ns(&mut self, costs: &CostModel) -> f64 {
        let cycles = self.sim.cycles() - self.last_cycles;
        self.last_cycles = self.sim.cycles();
        let bus: u64 = self
            .peripherals
            .iter_mut()
            .map(|f| f.peripheral.take_bus_words())
            .sum();
        cycles as f64 * costs.hw_cycle_ns + bus as f64 * costs.abi_message_ns
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}
