//! Hardware engines: compiled subprograms running in the virtual FPGA
//! behind the MMIO protocol (paper Sec. 5.2, Fig. 10), with optional ABI
//! forwarding for absorbed standard-library components (Sec. 4.3) and
//! open-loop scheduling (Sec. 4.4).

use crate::engine::{Engine, EngineError, EngineKind, EngineState, TaskEvent};
use cascade_bits::Bits;
use cascade_fpga::{CostModel, MmioCore};
use cascade_netlist::{Netlist, TaskFire, TaskKind};
use cascade_stdlib::Peripheral;
use cascade_verilog::ast::Edge;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A standard-library component absorbed into this engine (forwarding):
/// its ports are connected directly instead of across the data plane.
pub struct Forwarded {
    pub instance: String,
    pub peripheral: Box<dyn Peripheral>,
    /// engine output port → peripheral input port.
    pub drives: Vec<(String, String)>,
    /// peripheral output port → engine input port.
    pub feeds: Vec<(String, String)>,
}

/// A compiled subprogram executing behind the MMIO register file.
pub struct HwEngine {
    core: MmioCore,
    /// Clock domains: domain index → (input port, edge).
    clock_inputs: Vec<(String, Edge)>,
    /// Last seen value of each clock input.
    clock_last: Vec<bool>,
    /// Clock domains with a pending edge.
    pending: Vec<u32>,
    /// Whether non-clock inputs changed since the last evaluate.
    dirty: bool,
    forwarded: Vec<Forwarded>,
    tasks: Vec<TaskEvent>,
    /// Runtime-visible bus messages (the data/control-plane traffic the
    /// cost model charges; internal forwarded peripheral exchanges are
    /// on-fabric and free).
    bus_msgs: u64,
    last_cycles: u64,
    /// Configuration-readback CRC recorded at programming time (the
    /// netlist fingerprint; see [`cascade_netlist::readback_crc`]).
    golden_crc: u64,
    /// Accumulated configuration disturbance from injected soft errors;
    /// zero on a healthy fabric.
    config_upsets: u64,
}

impl HwEngine {
    /// Wraps a compiled netlist.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when the netlist cannot be levelized.
    pub fn new(netlist: Arc<Netlist>) -> Result<Self, EngineError> {
        let clock_inputs = netlist
            .clocks
            .iter()
            .map(|&(net, edge)| {
                let name = netlist.nets[net.0 as usize]
                    .name
                    .clone()
                    .unwrap_or_else(|| format!("n{}", net.0));
                (name, edge)
            })
            .collect::<Vec<_>>();
        let golden_crc = cascade_netlist::readback_crc(&netlist, 0);
        let core = MmioCore::new(netlist)
            .map_err(|e| EngineError::Internal(format!("levelization failed: {e}")))?;
        let clock_last = vec![false; clock_inputs.len()];
        Ok(HwEngine {
            core,
            clock_inputs,
            clock_last,
            pending: Vec::new(),
            dirty: true,
            forwarded: Vec::new(),
            tasks: Vec::new(),
            bus_msgs: 0,
            last_cycles: 0,
            golden_crc,
            config_upsets: 0,
        })
    }

    /// Switches on activity profiling in the arena evaluator.
    pub fn enable_profiling(&mut self) {
        self.core.sim().enable_profiling();
    }

    /// The collected activity profile, if profiling is enabled.
    pub fn profile_report(&self) -> Option<cascade_netlist::NlProfileReport> {
        self.core.sim_ref().profile_report()
    }

    /// Attaches a worker pool of `n` total threads to the arena evaluator
    /// for dense settles (`n <= 1` detaches).
    pub fn set_eval_threads(&mut self, n: u32) {
        self.core.sim().set_eval_threads(n);
    }

    /// One readback scrub: re-derives the configuration CRC and compares
    /// it against the golden programming-time value. `true` means the
    /// fabric is intact. Charged as one request/response bus exchange.
    pub fn scrub_ok(&mut self) -> bool {
        self.bus_msgs += 2;
        let crc = cascade_netlist::readback_crc(self.core.sim_ref().netlist(), self.config_upsets);
        crc == self.golden_crc
    }

    /// Injects a modeled single-event upset: flips one live register bit
    /// (chosen by `salt`) and disturbs the configuration image so the
    /// next readback CRC mismatches. State-only corruption without the
    /// CRC disturbance would be undetectable — exactly the failure mode
    /// scrubbing exists to bound.
    pub fn inject_soft_error(&mut self, salt: u64) {
        let nregs = self.core.sim_ref().netlist().regs.len();
        if nregs > 0 {
            let idx = cascade_netlist::RegId((salt % nregs as u64) as u32);
            let mut v = self.core.sim().read_reg(idx);
            if v.width() > 0 {
                let bit = ((salt >> 16) % v.width() as u64) as u32;
                let flipped = !v.bit(bit);
                v.set_bit(bit, flipped);
                self.core.sim().write_reg(idx, v);
                self.core.sim().settle();
            }
        }
        // `| 1` keeps the disturbance nonzero even for salt 0.
        self.config_upsets ^= salt | 1;
        self.dirty = true;
    }

    /// Absorbs standard-library components (ABI forwarding, Fig. 9.4).
    pub fn absorb(&mut self, forwarded: Vec<Forwarded>) {
        self.forwarded = forwarded;
        // Establish initial peripheral-driven inputs.
        self.exchange_with_peripherals();
    }

    /// Releases absorbed components (the engine is about to be replaced).
    pub fn release(&mut self) -> Vec<Forwarded> {
        std::mem::take(&mut self.forwarded)
    }

    /// Whether this engine has absorbed peripherals.
    pub fn is_forwarding(&self) -> bool {
        !self.forwarded.is_empty()
    }

    /// Whether the engine has exactly one rising-edge clock domain (the
    /// open-loop eligibility requirement).
    pub fn single_posedge_domain(&self) -> bool {
        self.clock_inputs.len() <= 1
            && self
                .clock_inputs
                .first()
                .map(|(_, e)| *e == Edge::Pos)
                .unwrap_or(true)
    }

    fn collect_fires(&mut self, fires: Vec<TaskFire>) {
        for f in fires {
            self.tasks.push(match f.kind {
                TaskKind::Display => TaskEvent::Display(f.text),
                TaskKind::Write => TaskEvent::Write(f.text),
                TaskKind::Finish => TaskEvent::Finish,
                TaskKind::Fatal => TaskEvent::Fatal(f.text),
            });
        }
    }

    /// Two-round combinational exchange between the engine and absorbed
    /// peripherals (enough for the request/ready handshakes the stdlib
    /// uses).
    fn exchange_with_peripherals(&mut self) {
        for _ in 0..2 {
            for fi in 0..self.forwarded.len() {
                let feeds = self.forwarded[fi].feeds.clone();
                let outs = self.forwarded[fi].peripheral.outputs();
                for (periph_port, engine_port) in &feeds {
                    if let Some((_, v)) = outs.iter().find(|(n, _)| n == periph_port) {
                        if let Some(addr) = self.core.map().addr(engine_port) {
                            self.core.write(addr, v.clone());
                        }
                    }
                }
            }
            for fi in 0..self.forwarded.len() {
                let drives = self.forwarded[fi].drives.clone();
                for (engine_port, periph_port) in &drives {
                    if let Some(addr) = self.core.map().addr(engine_port) {
                        let v = self.core.read(addr);
                        self.forwarded[fi].peripheral.set_input(periph_port, &v);
                    }
                }
            }
        }
    }

    /// One full clock cycle including absorbed peripherals.
    fn cycle(&mut self) {
        self.exchange_with_peripherals();
        self.core
            .ctrl_write(cascade_fpga::Ctrl::Latch, Bits::from_u64(1, 1));
        for f in &mut self.forwarded {
            f.peripheral.posedge();
        }
        self.exchange_with_peripherals();
        let fires = self.core.drain_tasks();
        self.collect_fires(fires);
    }
}

impl Engine for HwEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Hardware
    }

    fn get_state(&mut self) -> EngineState {
        let mut state = EngineState::default();
        let nl = Arc::clone(self.core.sim_ref().netlist());
        for (i, reg) in nl.regs.iter().enumerate() {
            let name = reg.name.clone().unwrap_or_else(|| format!("reg{i}"));
            state.regs.insert(
                name,
                self.core.sim().read_reg(cascade_netlist::RegId(i as u32)),
            );
        }
        for (i, mem) in nl.mems.iter().enumerate() {
            let name = mem.name.clone().unwrap_or_else(|| format!("mem{i}"));
            let words = (0..mem.words)
                .map(|a| {
                    self.core
                        .sim()
                        .read_mem(cascade_netlist::MemId(i as u32), a)
                })
                .collect();
            state.mems.insert(name, words);
        }
        for f in &self.forwarded {
            for (k, v) in f.peripheral.get_state() {
                state.mems.insert(format!("{}::{k}", f.instance), v);
            }
        }
        state
    }

    fn set_state(&mut self, state: &EngineState) {
        let nl = Arc::clone(self.core.sim_ref().netlist());
        for (i, reg) in nl.regs.iter().enumerate() {
            let name = reg.name.clone().unwrap_or_else(|| format!("reg{i}"));
            if let Some(v) = state.regs.get(&name) {
                self.core
                    .sim()
                    .write_reg(cascade_netlist::RegId(i as u32), v.clone());
            }
        }
        for (i, mem) in nl.mems.iter().enumerate() {
            let name = mem.name.clone().unwrap_or_else(|| format!("mem{i}"));
            if let Some(words) = state.mems.get(&name) {
                for (a, w) in words.iter().enumerate() {
                    self.core.sim().write_mem(
                        cascade_netlist::MemId(i as u32),
                        a as u64,
                        w.clone(),
                    );
                }
            }
        }
        for f in &mut self.forwarded {
            let prefix = format!("{}::", f.instance);
            let sub: BTreeMap<String, Vec<Bits>> = state
                .mems
                .iter()
                .filter_map(|(k, v)| {
                    k.strip_prefix(&prefix)
                        .map(|rest| (rest.to_string(), v.clone()))
                })
                .collect();
            if !sub.is_empty() {
                f.peripheral.set_state(&sub);
            }
        }
        self.core.sim().settle();
        self.dirty = true;
    }

    fn read(&mut self, port: &str, value: &Bits) {
        self.bus_msgs += 1;
        // Clock inputs are edges, not data. One physical clock may drive
        // several domains (posedge and negedge logic), so every matching
        // domain gets edge-detected.
        let mut is_clock = false;
        for (i, (name, edge)) in self.clock_inputs.iter().enumerate() {
            if name == port {
                is_clock = true;
                let now = value.to_bool();
                let was = self.clock_last[i];
                self.clock_last[i] = now;
                let fire = match edge {
                    Edge::Pos => !was && now,
                    Edge::Neg => was && !now,
                };
                if fire {
                    self.pending.push(i as u32);
                }
            }
        }
        if let Some(addr) = self.core.map().addr(port) {
            self.core.write(addr, value.clone());
            if !is_clock {
                self.dirty = true;
            }
        }
    }

    fn output(&mut self, port: &str) -> Bits {
        self.bus_msgs += 1;
        match self.core.map().addr(port) {
            Some(addr) => self.core.read(addr),
            None => Bits::default(),
        }
    }

    fn there_are_evals(&self) -> bool {
        self.dirty
    }

    fn evaluate(&mut self) -> Result<(), EngineError> {
        self.bus_msgs += 1;
        // Combinational settling happened on write; just refresh absorbed
        // peripherals and clear the flag.
        if self.is_forwarding() {
            self.exchange_with_peripherals();
        }
        self.dirty = false;
        Ok(())
    }

    fn there_are_updates(&self) -> bool {
        !self.pending.is_empty()
    }

    fn update(&mut self) -> Result<(), EngineError> {
        self.bus_msgs += 1;
        let pending = std::mem::take(&mut self.pending);
        for domain in pending {
            if domain == 0 && self.is_forwarding() {
                self.cycle();
            } else {
                self.core.sim().step_clock(domain);
                let fires = self.core.sim().drain_tasks();
                self.collect_fires(fires);
            }
        }
        self.dirty = true;
        Ok(())
    }

    fn end_step(&mut self) {
        for f in &mut self.forwarded {
            f.peripheral.end_step();
        }
        if self.is_forwarding() {
            self.exchange_with_peripherals();
        }
    }

    fn drain_tasks(&mut self) -> Vec<TaskEvent> {
        let fires = self.core.drain_tasks();
        self.collect_fires(fires);
        std::mem::take(&mut self.tasks)
    }

    fn open_loop(&mut self, steps: u64) -> u64 {
        if !self.single_posedge_domain() {
            return 0;
        }
        self.bus_msgs += 2; // request + return of control
        if !self.is_forwarding() {
            // No absorbed peripherals to feed per cycle: the whole batch
            // executes inside the evaluator as one MMIO transaction,
            // stopping at the first task firing or `$finish`.
            let done = self.core.open_loop_batch(steps);
            let fires = self.core.drain_tasks();
            self.collect_fires(fires);
            self.dirty = true;
            return done;
        }
        // Sample external inputs at batch start: the runtime hands over
        // control at an observable state, which is when boards get polled.
        for f in &mut self.forwarded {
            f.peripheral.end_step();
        }
        self.exchange_with_peripherals();
        let mut done = 0u64;
        while done < steps {
            self.cycle();
            done += 1;
            if !self.tasks.is_empty() || self.core.is_finished() {
                break;
            }
        }
        // Peripherals poll external inputs when control returns.
        for f in &mut self.forwarded {
            f.peripheral.end_step();
        }
        self.exchange_with_peripherals();
        self.dirty = true;
        done
    }

    fn take_cost_ns(&mut self, costs: &CostModel) -> f64 {
        let mut msgs = self.bus_msgs;
        self.bus_msgs = 0;
        // Host-coupled peripherals (the FIFO) move data over the same bus
        // even when absorbed.
        for f in &mut self.forwarded {
            msgs += f.peripheral.take_bus_words();
        }
        let cycles = self.core.sim_ref().cycles() - self.last_cycles;
        self.last_cycles = self.core.sim_ref().cycles();
        msgs as f64 * costs.abi_message_ns + cycles as f64 * costs.hw_cycle_ns
    }

    fn is_finished(&self) -> bool {
        self.core.is_finished()
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}
