//! Software engines: subprograms interpreted by `cascade-sim`
//! (paper Sec. 5.1). These begin execution in under a second and run until
//! the background hardware compilation delivers a replacement.

use crate::engine::{Engine, EngineError, EngineKind, EngineState, TaskEvent};
use cascade_bits::Bits;
use cascade_fpga::CostModel;
use cascade_sim::{Design, SimEvent, Simulator, VarClass, VarId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// An AST-interpreting engine over one subprogram.
pub struct SwEngine {
    sim: Simulator,
    design: Arc<Design>,
    /// Output port name → var.
    outputs: BTreeMap<String, VarId>,
    /// Input port name → var.
    inputs: BTreeMap<String, VarId>,
    last_activations: u64,
    last_statements: u64,
    tasks: Vec<TaskEvent>,
    /// Scheduler iterations seen; two per virtual clock tick.
    half_steps: u8,
}

impl SwEngine {
    /// Builds and initializes a software engine (runs `initial` blocks).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if time-zero settlement fails.
    pub fn new(design: Arc<Design>) -> Result<Self, EngineError> {
        Self::with_state(design, None)
    }

    /// Builds a software engine, restoring `prior` state *before* running
    /// `initial` blocks — newly eval'ed statements must observe the live
    /// program state they were typed against (paper Sec. 3.5).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if time-zero settlement fails.
    pub fn with_state(
        design: Arc<Design>,
        prior: Option<&EngineState>,
    ) -> Result<Self, EngineError> {
        let mut sim = Simulator::new(Arc::clone(&design));
        let mut inputs = BTreeMap::new();
        let mut outputs = BTreeMap::new();
        for (name, id) in design.iter_vars() {
            let info = design.info(id);
            if info.is_input {
                inputs.insert(name.to_string(), id);
            }
            if info.is_output {
                outputs.insert(name.to_string(), id);
            }
        }
        if let Some(state) = prior {
            for (name, value) in &state.regs {
                if let Some(id) = design.var(name) {
                    sim.force(id, value.clone());
                }
            }
            for (name, words) in &state.mems {
                if let Some(id) = design.var(name) {
                    for (i, w) in words.iter().enumerate() {
                        sim.poke_array(id, i as u64, w.clone());
                    }
                }
            }
        }
        sim.initialize()?;
        let mut engine = SwEngine {
            sim,
            design,
            outputs,
            inputs,
            last_activations: 0,
            last_statements: 0,
            tasks: Vec::new(),
            half_steps: 0,
        };
        engine.collect_tasks();
        Ok(engine)
    }

    /// The underlying design (used by the runtime when compiling this
    /// subprogram in the background).
    pub fn design(&self) -> &Arc<Design> {
        &self.design
    }

    fn collect_tasks(&mut self) {
        for ev in self.sim.drain_events() {
            self.tasks.push(match ev {
                SimEvent::Display(s) => TaskEvent::Display(s),
                SimEvent::Write(s) => TaskEvent::Write(s),
                SimEvent::Finish => TaskEvent::Finish,
                SimEvent::Fatal(s) => TaskEvent::Fatal(s),
            });
        }
    }
}

impl Engine for SwEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Software
    }

    fn get_state(&mut self) -> EngineState {
        let mut state = EngineState::default();
        for (name, id) in self.design.iter_vars() {
            let info = self.design.info(id);
            if info.class != VarClass::Reg {
                continue;
            }
            if info.is_array() {
                let words = (0..info.array_len)
                    .map(|i| self.sim.peek_array(id, i))
                    .collect();
                state.mems.insert(name.to_string(), words);
            } else {
                state.regs.insert(name.to_string(), self.sim.peek_id(id));
            }
        }
        state
    }

    fn set_state(&mut self, state: &EngineState) {
        for (name, value) in &state.regs {
            if let Some(id) = self.design.var(name) {
                self.sim.force(id, value.clone());
            }
        }
        for (name, words) in &state.mems {
            if let Some(id) = self.design.var(name) {
                for (i, w) in words.iter().enumerate() {
                    self.sim.poke_array(id, i as u64, w.clone());
                }
            }
        }
        // Re-settle combinational logic around the restored state (force
        // does not generate events).
        let _ = self.sim.resettle();
    }

    fn read(&mut self, port: &str, value: &Bits) {
        if let Some(&id) = self.inputs.get(port) {
            self.sim.poke_id(id, value.clone());
        }
    }

    fn output(&mut self, port: &str) -> Bits {
        match self
            .outputs
            .get(port)
            .copied()
            .or_else(|| self.sim.design().var(port))
        {
            Some(id) => self.sim.peek_id(id),
            None => Bits::default(),
        }
    }

    fn there_are_evals(&self) -> bool {
        self.sim.has_evals()
    }

    fn evaluate(&mut self) -> Result<(), EngineError> {
        self.sim.eval_phase()?;
        self.collect_tasks();
        Ok(())
    }

    fn there_are_updates(&self) -> bool {
        self.sim.has_updates()
    }

    fn update(&mut self) -> Result<(), EngineError> {
        self.sim.apply_updates();
        Ok(())
    }

    fn end_step(&mut self) {
        self.sim.end_step();
        // Two scheduler iterations make one virtual clock tick (`$time`).
        self.half_steps += 1;
        if self.half_steps == 2 {
            self.half_steps = 0;
            self.sim.advance_time();
        }
        self.collect_tasks();
    }

    fn drain_tasks(&mut self) -> Vec<TaskEvent> {
        self.collect_tasks();
        std::mem::take(&mut self.tasks)
    }

    fn take_cost_ns(&mut self, costs: &CostModel) -> f64 {
        let acts = self.sim.activations - self.last_activations;
        self.last_activations = self.sim.activations;
        let stmts = self.sim.statements - self.last_statements;
        self.last_statements = self.sim.statements;
        acts as f64 * costs.sw_activation_ns + stmts as f64 * costs.sw_statement_ns
    }

    fn is_finished(&self) -> bool {
        self.sim.is_finished()
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}
