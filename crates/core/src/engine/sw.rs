//! Software engines: subprograms executed by `cascade-sim`
//! (paper Sec. 5.1). These begin execution in under a second and run until
//! the background hardware compilation delivers a replacement.
//!
//! The execution backend is selected by `JitConfig::sw_compile`: the
//! bytecode-compiling [`SwSim::Compiled`] backend by default, or the
//! tree-walking oracle for ablation. Compiled engines with a single
//! rising-edge clock domain also support open-loop scheduling — the runtime
//! hands over a cycle budget and the whole batch runs inside the evaluator.

use crate::engine::{Engine, EngineError, EngineKind, EngineState, TaskEvent};
use cascade_bits::Bits;
use cascade_fpga::CostModel;
use cascade_sim::{Design, Process, SimEvent, SwSim, VarClass, VarId};
use cascade_verilog::ast::Edge;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The promoted name of the global clock input on a transformed root
/// subprogram (`clk.val` → port `clk_val`).
const CLOCK_PORT: &str = "clk_val";

/// An engine interpreting or bytecode-executing one subprogram.
pub struct SwEngine {
    sim: SwSim,
    design: Arc<Design>,
    /// Output port name → var.
    outputs: BTreeMap<String, VarId>,
    /// Input port name → var.
    inputs: BTreeMap<String, VarId>,
    /// The global clock input, when this subprogram's sequential logic is
    /// all posedge-of-it (the open-loop eligibility condition).
    open_loop_clock: Option<VarId>,
    /// An error raised inside an open-loop batch, surfaced on the next
    /// evaluate call.
    pending_err: Option<EngineError>,
    last_activations: u64,
    last_statements: u64,
    tasks: Vec<TaskEvent>,
    /// Scheduler iterations seen; two per virtual clock tick.
    half_steps: u8,
}

impl SwEngine {
    /// Builds and initializes a compiled-backend software engine (runs
    /// `initial` blocks).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if time-zero settlement fails.
    pub fn new(design: Arc<Design>) -> Result<Self, EngineError> {
        Self::with_options(design, None, true)
    }

    /// Builds a compiled-backend software engine, restoring `prior` state
    /// *before* running `initial` blocks — newly eval'ed statements must
    /// observe the live program state they were typed against (paper
    /// Sec. 3.5).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if time-zero settlement fails.
    pub fn with_state(
        design: Arc<Design>,
        prior: Option<&EngineState>,
    ) -> Result<Self, EngineError> {
        Self::with_options(design, prior, true)
    }

    /// [`SwEngine::with_state`] with an explicit backend choice:
    /// `compiled = false` selects the tree-walking oracle.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if time-zero settlement fails.
    pub fn with_options(
        design: Arc<Design>,
        prior: Option<&EngineState>,
        compiled: bool,
    ) -> Result<Self, EngineError> {
        let mut sim = SwSim::new(Arc::clone(&design), compiled);
        let mut inputs = BTreeMap::new();
        let mut outputs = BTreeMap::new();
        for (name, id) in design.iter_vars() {
            let info = design.info(id);
            if info.is_input {
                inputs.insert(name.to_string(), id);
            }
            if info.is_output {
                outputs.insert(name.to_string(), id);
            }
        }
        if let Some(state) = prior {
            for (name, value) in &state.regs {
                if let Some(id) = design.var(name) {
                    sim.force(id, value.clone());
                }
            }
            for (name, words) in &state.mems {
                if let Some(id) = design.var(name) {
                    for (i, w) in words.iter().enumerate() {
                        sim.poke_array(id, i as u64, w.clone());
                    }
                }
            }
        }
        sim.initialize()?;
        let open_loop_clock = single_posedge_clock(&design).filter(|id| {
            // Only the runtime-driven global clock toggles during a batch;
            // any other edge source invalidates internal self-clocking.
            design.var(CLOCK_PORT) == Some(*id)
        });
        let mut engine = SwEngine {
            sim,
            design,
            outputs,
            inputs,
            open_loop_clock,
            pending_err: None,
            last_activations: 0,
            last_statements: 0,
            tasks: Vec::new(),
            half_steps: 0,
        };
        engine.collect_tasks();
        Ok(engine)
    }

    /// The underlying design (used by the runtime when compiling this
    /// subprogram in the background).
    pub fn design(&self) -> &Arc<Design> {
        &self.design
    }

    /// `"compiled"` or `"tree"` (stats reporting).
    pub fn backend_name(&self) -> &'static str {
        self.sim.backend_name()
    }

    /// Switches on execution profiling in the underlying simulator
    /// (compiled backend only).
    pub fn enable_profiling(&mut self) {
        self.sim.enable_profiling();
    }

    /// The collected execution profile, if profiling is enabled.
    pub fn profile_report(&self) -> Option<cascade_sim::SwProfileReport> {
        self.sim.profile_report()
    }

    fn collect_tasks(&mut self) {
        for ev in self.sim.drain_events() {
            self.tasks.push(match ev {
                SimEvent::Display(s) => TaskEvent::Display(s),
                SimEvent::Write(s) => TaskEvent::Write(s),
                SimEvent::Finish => TaskEvent::Finish,
                SimEvent::Fatal(s) => TaskEvent::Fatal(s),
            });
        }
    }
}

/// The single rising-edge clock variable of `design`, if every
/// edge-sensitive process triggers on `posedge` of that one variable.
fn single_posedge_clock(design: &Design) -> Option<VarId> {
    let mut clock = None;
    for p in &design.processes {
        let Process::Always { sens, .. } = p else {
            continue;
        };
        for s in sens {
            match s.edge {
                None => {}
                Some(Edge::Pos) => match clock {
                    None => clock = Some(s.var),
                    Some(c) if c == s.var => {}
                    Some(_) => return None,
                },
                Some(Edge::Neg) => return None,
            }
        }
    }
    clock
}

impl Engine for SwEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Software
    }

    fn get_state(&mut self) -> EngineState {
        let mut state = EngineState::default();
        for (name, id) in self.design.iter_vars() {
            let info = self.design.info(id);
            if info.class != VarClass::Reg {
                continue;
            }
            if info.is_array() {
                let words = (0..info.array_len)
                    .map(|i| self.sim.peek_array(id, i))
                    .collect();
                state.mems.insert(name.to_string(), words);
            } else {
                state.regs.insert(name.to_string(), self.sim.peek_id(id));
            }
        }
        state
    }

    fn set_state(&mut self, state: &EngineState) {
        for (name, value) in &state.regs {
            if let Some(id) = self.design.var(name) {
                self.sim.force(id, value.clone());
            }
        }
        for (name, words) in &state.mems {
            if let Some(id) = self.design.var(name) {
                for (i, w) in words.iter().enumerate() {
                    self.sim.poke_array(id, i as u64, w.clone());
                }
            }
        }
        // Re-settle combinational logic around the restored state (force
        // does not generate events).
        let _ = self.sim.resettle();
    }

    fn read(&mut self, port: &str, value: &Bits) {
        if let Some(&id) = self.inputs.get(port) {
            self.sim.poke_id(id, value.clone());
        }
    }

    fn output(&mut self, port: &str) -> Bits {
        match self
            .outputs
            .get(port)
            .copied()
            .or_else(|| self.sim.design().var(port))
        {
            Some(id) => self.sim.peek_id(id),
            None => Bits::default(),
        }
    }

    fn there_are_evals(&self) -> bool {
        self.pending_err.is_some() || self.sim.has_evals()
    }

    fn evaluate(&mut self) -> Result<(), EngineError> {
        if let Some(e) = self.pending_err.take() {
            return Err(e);
        }
        self.sim.eval_phase()?;
        self.collect_tasks();
        Ok(())
    }

    fn there_are_updates(&self) -> bool {
        self.sim.has_updates()
    }

    fn update(&mut self) -> Result<(), EngineError> {
        self.sim.apply_updates();
        Ok(())
    }

    fn end_step(&mut self) {
        self.sim.end_step();
        // Two scheduler iterations make one virtual clock tick (`$time`).
        self.half_steps += 1;
        if self.half_steps == 2 {
            self.half_steps = 0;
            self.sim.advance_time();
        }
        self.collect_tasks();
    }

    fn drain_tasks(&mut self) -> Vec<TaskEvent> {
        self.collect_tasks();
        std::mem::take(&mut self.tasks)
    }

    fn open_loop(&mut self, steps: u64) -> u64 {
        // Only the compiled backend batches (the tree walker is the
        // measured baseline), and only from the inter-tick rest state.
        if self.sim.as_compiled_mut().is_none() || self.sim.is_finished() {
            return 0;
        }
        let Some(clk) = self.open_loop_clock else {
            return 0;
        };
        if self.sim.peek_id(clk).to_bool() || self.half_steps != 0 {
            return 0;
        }
        match self.sim.tick_n(clk, steps) {
            Ok(done) => {
                self.collect_tasks();
                done
            }
            Err(e) => {
                // Cycles already ran; surface the fault on the next
                // evaluate instead of losing it.
                self.pending_err = Some(EngineError::Sim(e));
                0
            }
        }
    }

    fn take_cost_ns(&mut self, costs: &CostModel) -> f64 {
        let acts = self.sim.activations() - self.last_activations;
        self.last_activations = self.sim.activations();
        let stmts = self.sim.statements() - self.last_statements;
        self.last_statements = self.sim.statements();
        acts as f64 * costs.sw_activation_ns + stmts as f64 * costs.sw_statement_ns
    }

    fn is_finished(&self) -> bool {
        self.sim.is_finished()
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}
