//! Standard-library components as scheduler-visible engines.
//!
//! Before forwarding kicks in (paper Fig. 9.1–9.3), each stdlib instance is
//! its own pre-compiled engine on the data/control plane. The runtime wires
//! the global clock to `__clk` so synchronous components (FIFO pops, memory
//! writes) commit on the virtual rising edge.

use crate::engine::{Engine, EngineError, EngineKind, EngineState, TaskEvent};
use cascade_bits::Bits;
use cascade_fpga::CostModel;
use cascade_stdlib::Peripheral;

/// The implicit clock input port wired to every peripheral engine.
pub const PERIPHERAL_CLOCK_PORT: &str = "__clk";

/// Wraps a [`Peripheral`] as an [`Engine`].
pub struct PeripheralEngine {
    peripheral: Box<dyn Peripheral>,
    clk_last: bool,
    edge_pending: bool,
    msgs: u64,
}

impl PeripheralEngine {
    /// Wraps a component.
    pub fn new(peripheral: Box<dyn Peripheral>) -> Self {
        PeripheralEngine {
            peripheral,
            clk_last: false,
            edge_pending: false,
            msgs: 0,
        }
    }

    /// Extracts the component (for forwarding absorption).
    pub fn into_peripheral(self) -> Box<dyn Peripheral> {
        self.peripheral
    }
}

impl Engine for PeripheralEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Peripheral
    }

    fn get_state(&mut self) -> EngineState {
        EngineState {
            regs: Default::default(),
            mems: self.peripheral.get_state(),
        }
    }

    fn set_state(&mut self, state: &EngineState) {
        self.peripheral.set_state(&state.mems);
    }

    fn read(&mut self, port: &str, value: &Bits) {
        self.msgs += 1;
        if port == PERIPHERAL_CLOCK_PORT {
            let now = value.to_bool();
            if !self.clk_last && now {
                self.edge_pending = true;
            }
            self.clk_last = now;
        } else {
            self.peripheral.set_input(port, value);
        }
    }

    fn output(&mut self, port: &str) -> Bits {
        self.peripheral
            .outputs()
            .into_iter()
            .find(|(n, _)| n == port)
            .map(|(_, v)| v)
            .unwrap_or_default()
    }

    fn there_are_evals(&self) -> bool {
        false
    }

    fn evaluate(&mut self) -> Result<(), EngineError> {
        Ok(())
    }

    fn there_are_updates(&self) -> bool {
        self.edge_pending
    }

    fn update(&mut self) -> Result<(), EngineError> {
        if self.edge_pending {
            self.edge_pending = false;
            self.peripheral.posedge();
        }
        Ok(())
    }

    fn end_step(&mut self) {
        self.peripheral.end_step();
    }

    fn drain_tasks(&mut self) -> Vec<TaskEvent> {
        Vec::new()
    }

    fn take_cost_ns(&mut self, costs: &CostModel) -> f64 {
        // Pre-compiled stdlib engines live in hardware; runtime interaction
        // costs one bus message per port exchange, and host-coupled data
        // (FIFO tokens) costs a bus word each.
        let msgs = self.msgs + self.peripheral.take_bus_words();
        self.msgs = 0;
        msgs as f64 * costs.abi_message_ns
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}
