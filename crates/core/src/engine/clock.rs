//! The global clock engine.
//!
//! The clock is just another engine (paper Sec. 4.1): it re-queues its tick
//! via `end_step`, so every two scheduler iterations make one virtual clock
//! cycle — the rate Cascade's performance is measured in.

use crate::engine::{Engine, EngineError, EngineKind, EngineState, TaskEvent};
use cascade_bits::Bits;
use cascade_fpga::CostModel;

/// The tick source driving `clk.val`.
#[derive(Debug)]
pub struct ClockEngine {
    val: bool,
    armed: bool,
}

impl ClockEngine {
    /// A clock starting low and armed to rise.
    pub fn new() -> Self {
        ClockEngine {
            val: false,
            armed: true,
        }
    }

    /// The current level.
    pub fn level(&self) -> bool {
        self.val
    }
}

impl Default for ClockEngine {
    fn default() -> Self {
        ClockEngine::new()
    }
}

impl Engine for ClockEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Clock
    }

    fn get_state(&mut self) -> EngineState {
        let mut s = EngineState::default();
        s.regs
            .insert("__clk_val".to_string(), Bits::from_bool(self.val));
        s
    }

    fn set_state(&mut self, state: &EngineState) {
        if let Some(v) = state.regs.get("__clk_val") {
            self.val = v.to_bool();
        }
    }

    fn read(&mut self, _port: &str, _value: &Bits) {}

    fn output(&mut self, port: &str) -> Bits {
        if port == "val" {
            Bits::from_bool(self.val)
        } else {
            Bits::default()
        }
    }

    fn there_are_evals(&self) -> bool {
        false
    }

    fn evaluate(&mut self) -> Result<(), EngineError> {
        Ok(())
    }

    fn there_are_updates(&self) -> bool {
        self.armed
    }

    fn update(&mut self) -> Result<(), EngineError> {
        if self.armed {
            self.armed = false;
            self.val = !self.val;
        }
        Ok(())
    }

    fn end_step(&mut self) {
        // Re-queue the tick for the next scheduler iteration.
        self.armed = true;
    }

    fn drain_tasks(&mut self) -> Vec<TaskEvent> {
        Vec::new()
    }

    fn take_cost_ns(&mut self, _costs: &CostModel) -> f64 {
        0.0
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}
