//! Cascade's distributed-system IR (paper Sec. 3.3, Fig. 4).
//!
//! The user's program is managed at module granularity: each engine runs a
//! *standalone* Verilog subprogram whose cross-boundary references have been
//! promoted to input/output ports (`r.y` becomes port `r_y`), and whose
//! nested instantiations of external components have been replaced by
//! assignments. The result is flat: subprograms are peers communicating
//! over the runtime's data/control plane. Verilog has no pointers, so the
//! promotion analysis is exact.

use crate::error::CascadeError;
use cascade_verilog::ast::*;
use cascade_verilog::typecheck::{check_module, CheckedModule, ModuleLibrary, ParamEnv};
use cascade_verilog::Span;
use std::collections::BTreeMap;

/// An external component visible to a subprogram: instance name →
/// (module type, resolved parameters).
pub type Externals = BTreeMap<String, (String, ParamEnv)>;

/// One endpoint of a data-plane wire: `(engine name, port name)`.
pub type Endpoint = (String, String);

/// A data-plane connection from a producing port to a consuming port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wire {
    pub from: Endpoint,
    pub to: Endpoint,
}

/// A standalone subprogram produced by the transform.
#[derive(Debug, Clone)]
pub struct Subprogram {
    /// Engine name (instance path, e.g. `main` or `main.r`).
    pub name: String,
    /// The transformed, standalone module.
    pub module: Module,
    /// Type-checked form (symbol table for widths and state names).
    pub checked: CheckedModule,
}

/// A peripheral to instantiate: `(instance name, stdlib module, params)`.
#[derive(Debug, Clone)]
pub struct PeripheralSpec {
    pub name: String,
    pub module: String,
    pub params: ParamEnv,
}

/// The partitioned program: user subprograms, stdlib peripherals, and the
/// wires connecting them.
#[derive(Debug, Clone, Default)]
pub struct Partition {
    pub subprograms: Vec<Subprogram>,
    pub peripherals: Vec<PeripheralSpec>,
    pub wires: Vec<Wire>,
}

impl Partition {
    /// The primary (root) subprogram, if any user logic exists.
    pub fn main(&self) -> Option<&Subprogram> {
        self.subprograms.iter().find(|s| s.name == "main")
    }
}

fn unsupported(msg: impl Into<String>) -> CascadeError {
    CascadeError::Unsupported(msg.into())
}

/// Transforms one module into a standalone subprogram against a set of
/// external instances, recording the data-plane wires its promoted ports
/// require.
///
/// `engine_name` is the subprogram's name on the plane; `externals` maps
/// sibling instance names to their module types. `lib` must contain
/// declarations for every external module (to resolve port widths and
/// directions).
pub fn transform_module(
    engine_name: &str,
    module: &Module,
    externals: &Externals,
    lib: &ModuleLibrary,
    wires: &mut Vec<Wire>,
) -> Result<Module, CascadeError> {
    let mut t = Transformer {
        engine: engine_name.to_string(),
        externals,
        lib,
        in_ports: BTreeMap::new(),
        out_ports: BTreeMap::new(),
        extra_assigns: Vec::new(),
        errors: Vec::new(),
        read_back: Vec::new(),
    };
    let mut out = module.clone();
    out.items.retain(|item| !t.absorb_instance(item));
    for item in &mut out.items {
        t.rewrite_item(item);
    }
    for (inst, port) in &t.read_back {
        let promoted = format!("{inst}_{port}");
        if !t.out_ports.contains_key(&promoted) {
            t.errors.push(unsupported(format!(
                "cannot read input port `{inst}.{port}` of an external component \
                 (it is not driven here)"
            )));
        }
    }
    if let Some(e) = t.errors.first() {
        return Err(e.clone());
    }
    let wire_ins = t.wire_ins();
    let wire_outs = t.wire_outs();
    out.items.extend(t.extra_assigns.clone());
    // Add promoted ports (sorted for determinism).
    for (port_name, (width, signed)) in &t.in_ports {
        out.ports
            .push(make_port(PortDir::Input, port_name, *width, *signed));
    }
    for (port_name, (width, signed)) in &t.out_ports {
        out.ports
            .push(make_port(PortDir::Output, port_name, *width, *signed));
    }
    // Record wires.
    for ((inst, ext_port), promoted) in &wire_ins {
        wires.push(Wire {
            from: (inst.clone(), ext_port.clone()),
            to: (engine_name.to_string(), promoted.clone()),
        });
    }
    for ((inst, ext_port), promoted) in &wire_outs {
        wires.push(Wire {
            from: (engine_name.to_string(), promoted.clone()),
            to: (inst.clone(), ext_port.clone()),
        });
    }
    let _ = &t.engine;
    Ok(out)
}

fn make_port(dir: PortDir, name: &str, width: u32, signed: bool) -> Port {
    let range = if width > 1 {
        Some(Range {
            msb: Expr::number(width as u64 - 1),
            lsb: Expr::number(0),
        })
    } else {
        None
    };
    Port {
        dir,
        is_reg: false,
        signed,
        range,
        name: name.to_string(),
        span: Span::synthetic(),
    }
}

struct Transformer<'a> {
    engine: String,
    externals: &'a Externals,
    lib: &'a ModuleLibrary,
    /// promoted input port → (width, signed)
    in_ports: BTreeMap<String, (u32, bool)>,
    out_ports: BTreeMap<String, (u32, bool)>,
    extra_assigns: Vec<ModuleItem>,
    errors: Vec<CascadeError>,
    /// External input ports read back locally; must be driven here.
    read_back: Vec<(String, String)>,
}

impl<'a> Transformer<'a> {
    /// `wire_ins`/`wire_outs` views derived from the port maps: the
    /// promoted name encodes `(instance, port)` as `inst_port`.
    fn decode(&self, promoted: &str) -> Option<(String, String)> {
        // Longest matching external instance prefix wins.
        let mut best: Option<(String, String)> = None;
        for inst in self.externals.keys() {
            if let Some(rest) = promoted.strip_prefix(&format!("{inst}_")) {
                let better = best
                    .as_ref()
                    .map(|(i, _)| inst.len() > i.len())
                    .unwrap_or(true);
                if better {
                    best = Some((inst.clone(), rest.to_string()));
                }
            }
        }
        best
    }

    fn err(&mut self, e: CascadeError) {
        self.errors.push(e);
    }

    /// Resolves an external port's `(width, signed, direction)`.
    fn ext_port(&mut self, inst: &str, port: &str) -> Option<(u32, bool, PortDir)> {
        let (module_name, params) = self.externals.get(inst)?;
        let Some(decl) = self.lib.get(module_name) else {
            self.err(unsupported(format!(
                "unknown external module `{module_name}`"
            )));
            return None;
        };
        let Ok(checked) = check_module(decl, params, self.lib) else {
            self.err(unsupported(format!(
                "cannot resolve external module `{module_name}`"
            )));
            return None;
        };
        let Some(port_decl) = decl.port(port) else {
            // Not a port. For user modules the paper's IR promotes *any*
            // variable accessed hierarchically; internal nets are readable
            // (the owning engine broadcasts them) but never writable.
            if let Some(sym) = checked.symbol(port) {
                if !cascade_stdlib::is_stdlib_module(module_name) {
                    return Some((sym.width(), sym.signed, PortDir::Output));
                }
            }
            self.err(unsupported(format!(
                "module `{module_name}` has no port `{port}`"
            )));
            return None;
        };
        let width = checked.width_of(port).unwrap_or(1);
        Some((width, port_decl.signed, port_decl.dir))
    }

    fn promote_read(&mut self, inst: &str, port: &str) -> Option<String> {
        let (width, signed, dir) = self.ext_port(inst, port)?;
        let promoted = format!("{inst}_{port}");
        if dir == PortDir::Input {
            // Reading back an external *input* is legal only when this
            // subprogram also drives it: the read then refers to the local
            // output port. Validation happens after the walk, once all
            // drivers are known.
            self.read_back.push((inst.to_string(), port.to_string()));
            return Some(promoted);
        }
        self.in_ports.insert(promoted.clone(), (width, signed));
        Some(promoted)
    }

    fn promote_write(&mut self, inst: &str, port: &str) -> Option<String> {
        let (width, signed, dir) = self.ext_port(inst, port)?;
        if dir == PortDir::Output {
            self.err(unsupported(format!(
                "cannot drive output port `{inst}.{port}` of an external component"
            )));
            return None;
        }
        let promoted = format!("{inst}_{port}");
        self.out_ports.insert(promoted.clone(), (width, signed));
        Some(promoted)
    }

    /// Removes instances of external components, lowering their connections
    /// to assignments over promoted ports. Returns `true` when the item was
    /// absorbed.
    fn absorb_instance(&mut self, item: &ModuleItem) -> bool {
        let ModuleItem::Instance(inst) = item else {
            return false;
        };
        if !self.externals.contains_key(&inst.name) {
            return false;
        }
        let (module_name, _) = self.externals[&inst.name].clone();
        let Some(decl) = self.lib.get(&module_name).cloned() else {
            self.err(unsupported(format!("unknown module `{module_name}`")));
            return true;
        };
        // Resolve connections (named or positional).
        let named = inst.ports.iter().any(|c| c.name.is_some());
        for (i, conn) in inst.ports.iter().enumerate() {
            let Some(expr) = conn.expr.clone() else {
                continue;
            };
            let port_name = match (&conn.name, named) {
                (Some(n), _) => n.clone(),
                (None, false) => match decl.ports.get(i) {
                    Some(p) => p.name.clone(),
                    None => {
                        self.err(unsupported(format!(
                            "too many connections for `{module_name}`"
                        )));
                        continue;
                    }
                },
                (None, true) => {
                    self.err(unsupported("mixed named and positional connections"));
                    continue;
                }
            };
            let Some(port_decl) = decl.port(&port_name).cloned() else {
                self.err(unsupported(format!(
                    "module `{module_name}` has no port `{port_name}`"
                )));
                continue;
            };
            match port_decl.dir {
                PortDir::Input => {
                    // `assign inst_port = expr;` drives the external input.
                    if let Some(promoted) = self.promote_write(&inst.name, &port_name) {
                        self.extra_assigns
                            .push(ModuleItem::Assign(ContinuousAssign {
                                lhs: LValue::Ident(promoted),
                                rhs: expr,
                                span: Span::synthetic(),
                            }));
                    }
                }
                PortDir::Output => {
                    // `assign <expr-as-lvalue> = inst_port;` consumes it.
                    if let Some(promoted) = self.promote_read(&inst.name, &port_name) {
                        match expr_as_lvalue(&expr) {
                            Some(lhs) => {
                                self.extra_assigns
                                    .push(ModuleItem::Assign(ContinuousAssign {
                                        lhs,
                                        rhs: Expr::Ident(promoted),
                                        span: Span::synthetic(),
                                    }));
                            }
                            None => {
                                self.err(unsupported("output connection target is not assignable"))
                            }
                        }
                    }
                }
                PortDir::Inout => self.err(unsupported("inout ports are not supported")),
            }
        }
        true
    }

    fn rewrite_item(&mut self, item: &mut ModuleItem) {
        match item {
            ModuleItem::Net(decl) => {
                for d in &mut decl.decls {
                    if let Some(init) = &mut d.init {
                        self.rewrite_expr(init);
                    }
                }
            }
            ModuleItem::Param(p) => self.rewrite_expr(&mut p.value),
            ModuleItem::Assign(a) => {
                self.rewrite_lvalue(&mut a.lhs);
                self.rewrite_expr(&mut a.rhs);
            }
            ModuleItem::Always(a) => {
                if let Sensitivity::List(items) = &mut a.sensitivity {
                    for it in items {
                        self.rewrite_expr(&mut it.expr);
                    }
                }
                self.rewrite_stmt(&mut a.body);
            }
            ModuleItem::Initial(i) => self.rewrite_stmt(&mut i.body),
            ModuleItem::Instance(inst) => {
                for c in inst.ports.iter_mut().chain(inst.params.iter_mut()) {
                    if let Some(e) = &mut c.expr {
                        self.rewrite_expr(e);
                    }
                }
            }
            ModuleItem::Statement(s) => self.rewrite_stmt(s),
            ModuleItem::Function(f) => self.rewrite_stmt(&mut f.body),
            ModuleItem::Genvar(_) => {}
            ModuleItem::GenerateFor(g) => {
                self.rewrite_expr(&mut g.init);
                self.rewrite_expr(&mut g.cond);
                self.rewrite_expr(&mut g.step);
                for it in &mut g.items {
                    self.rewrite_item(it);
                }
            }
        }
    }

    fn rewrite_stmt(&mut self, s: &mut Stmt) {
        match s {
            Stmt::Block { stmts, .. } => {
                for st in stmts {
                    self.rewrite_stmt(st);
                }
            }
            Stmt::Blocking { lhs, rhs, .. } | Stmt::NonBlocking { lhs, rhs, .. } => {
                self.rewrite_lvalue(lhs);
                self.rewrite_expr(rhs);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                self.rewrite_expr(cond);
                self.rewrite_stmt(then_branch);
                if let Some(e) = else_branch {
                    self.rewrite_stmt(e);
                }
            }
            Stmt::Case {
                scrutinee,
                arms,
                default,
                ..
            } => {
                self.rewrite_expr(scrutinee);
                for arm in arms {
                    for l in &mut arm.labels {
                        self.rewrite_expr(l);
                    }
                    self.rewrite_stmt(&mut arm.body);
                }
                if let Some(d) = default {
                    self.rewrite_stmt(d);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.rewrite_stmt(init);
                self.rewrite_expr(cond);
                self.rewrite_stmt(step);
                self.rewrite_stmt(body);
            }
            Stmt::While { cond, body, .. } => {
                self.rewrite_expr(cond);
                self.rewrite_stmt(body);
            }
            Stmt::Repeat { count, body, .. } => {
                self.rewrite_expr(count);
                self.rewrite_stmt(body);
            }
            Stmt::Forever { body, .. } => self.rewrite_stmt(body),
            Stmt::SystemTask { args, .. } => {
                for a in args {
                    self.rewrite_expr(a);
                }
            }
            Stmt::Null => {}
        }
    }

    fn rewrite_lvalue(&mut self, lv: &mut LValue) {
        match lv {
            LValue::Hier(path) if path.len() == 2 && self.externals.contains_key(&path[0]) => {
                if let Some(promoted) = self.promote_write(&path[0].clone(), &path[1].clone()) {
                    *lv = LValue::Ident(promoted);
                }
            }
            LValue::Concat(parts) => {
                for p in parts {
                    self.rewrite_lvalue(p);
                }
            }
            LValue::Index { index, .. } => self.rewrite_expr(index),
            LValue::Part { msb, lsb, .. } => {
                self.rewrite_expr(msb);
                self.rewrite_expr(lsb);
            }
            LValue::IndexedPart { offset, width, .. } => {
                self.rewrite_expr(offset);
                self.rewrite_expr(width);
            }
            LValue::IndexThenPart {
                index, msb, lsb, ..
            } => {
                self.rewrite_expr(index);
                self.rewrite_expr(msb);
                self.rewrite_expr(lsb);
            }
            _ => {}
        }
    }

    fn rewrite_expr(&mut self, e: &mut Expr) {
        match e {
            Expr::Hier(path) if path.len() == 2 && self.externals.contains_key(&path[0]) => {
                if let Some(promoted) = self.promote_read(&path[0].clone(), &path[1].clone()) {
                    *e = Expr::Ident(promoted);
                }
            }
            Expr::Hier(path) if path.len() > 2 && self.externals.contains_key(&path[0]) => {
                self.err(unsupported(format!(
                    "deep hierarchical reference `{}` across an engine boundary",
                    path.join(".")
                )));
            }
            Expr::Unary { operand, .. } => self.rewrite_expr(operand),
            Expr::Binary { lhs, rhs, .. } => {
                self.rewrite_expr(lhs);
                self.rewrite_expr(rhs);
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                self.rewrite_expr(cond);
                self.rewrite_expr(then_expr);
                self.rewrite_expr(else_expr);
            }
            Expr::Index { base, index } => {
                self.rewrite_expr(base);
                self.rewrite_expr(index);
            }
            Expr::Part { base, msb, lsb } => {
                self.rewrite_expr(base);
                self.rewrite_expr(msb);
                self.rewrite_expr(lsb);
            }
            Expr::IndexedPart {
                base,
                offset,
                width,
                ..
            } => {
                self.rewrite_expr(base);
                self.rewrite_expr(offset);
                self.rewrite_expr(width);
            }
            Expr::Concat(parts) => {
                for p in parts {
                    self.rewrite_expr(p);
                }
            }
            Expr::Replicate { count, inner } => {
                self.rewrite_expr(count);
                self.rewrite_expr(inner);
            }
            Expr::SystemCall { args, .. } | Expr::FnCall { args, .. } => {
                for a in args {
                    self.rewrite_expr(a);
                }
            }
            _ => {}
        }
    }
}

impl<'a> Transformer<'a> {
    /// Wires implied by promoted input ports: `(inst, ext port) → promoted`.
    #[allow(clippy::wrong_self_convention)]
    fn wire_pairs(
        &self,
        ports: &BTreeMap<String, (u32, bool)>,
    ) -> BTreeMap<(String, String), String> {
        let mut out = BTreeMap::new();
        for promoted in ports.keys() {
            if let Some((inst, port)) = self.decode(promoted) {
                out.insert((inst, port), promoted.clone());
            }
        }
        out
    }
}

// Accessors used by `transform_module` after the walk.
impl<'a> Transformer<'a> {
    fn wire_ins(&self) -> BTreeMap<(String, String), String> {
        self.wire_pairs(&self.in_ports)
    }

    fn wire_outs(&self) -> BTreeMap<(String, String), String> {
        self.wire_pairs(&self.out_ports)
    }
}

/// Converts a connection expression to an assignable target.
fn expr_as_lvalue(e: &Expr) -> Option<LValue> {
    match e {
        Expr::Ident(n) => Some(LValue::Ident(n.clone())),
        Expr::Hier(path) => Some(LValue::Hier(path.clone())),
        Expr::Index { base, index } => match base.as_ref() {
            Expr::Ident(n) => Some(LValue::Index {
                base: n.clone(),
                index: (**index).clone(),
            }),
            _ => None,
        },
        Expr::Part { base, msb, lsb } => match base.as_ref() {
            Expr::Ident(n) => Some(LValue::Part {
                base: n.clone(),
                msb: (**msb).clone(),
                lsb: (**lsb).clone(),
            }),
            _ => None,
        },
        Expr::Concat(parts) => {
            let lvs: Option<Vec<LValue>> = parts.iter().map(expr_as_lvalue).collect();
            lvs.map(LValue::Concat)
        }
        _ => None,
    }
}
