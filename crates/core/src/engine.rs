//! The target-specific engine ABI (paper Fig. 7).
//!
//! An [`Engine`] is the runtime state of one subprogram. Engines start as
//! quickly-compiled software interpreters and are transparently replaced by
//! FPGA-resident hardware engines when background compilation finishes;
//! `get_state`/`set_state` move the subprogram's registers and memories
//! between them. The runtime is deliberately agnostic to where an engine
//! lives — that agnosticism is the mechanism behind Cascade's
//! interactivity.

use cascade_bits::Bits;
use cascade_fpga::CostModel;
use cascade_sim::SimError;
use std::collections::BTreeMap;
use std::fmt;

pub mod clock;
pub mod hw;
pub mod native;
pub mod peripheral;
pub mod sw;

/// A snapshot of a subprogram's stateful elements, keyed by hierarchical
/// source name (`cnt`, `r.acc`, ...). Names are stable across engine kinds
/// because every engine elaborates from the same design.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineState {
    pub regs: BTreeMap<String, Bits>,
    pub mems: BTreeMap<String, Vec<Bits>>,
}

/// A side effect reported by an engine (forwarded to the runtime's
/// interrupt queue and then to the view).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskEvent {
    Display(String),
    Write(String),
    Finish,
    Fatal(String),
}

/// Where an engine executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// AST interpretation in the runtime's process.
    Software,
    /// Compiled netlist behind the MMIO protocol.
    Hardware,
    /// Hardware without the Cascade wrapper (native mode).
    Native,
    /// A standard-library component.
    Peripheral,
    /// The global clock.
    Clock,
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EngineKind::Software => "software",
            EngineKind::Hardware => "hardware",
            EngineKind::Native => "native",
            EngineKind::Peripheral => "peripheral",
            EngineKind::Clock => "clock",
        };
        f.write_str(s)
    }
}

/// An engine execution failure.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    Sim(SimError),
    Internal(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Sim(e) => write!(f, "{e}"),
            EngineError::Internal(msg) => write!(f, "engine error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SimError> for EngineError {
    fn from(e: SimError) -> Self {
        EngineError::Sim(e)
    }
}

/// The engine ABI (paper Fig. 7). This is not a user-exposed interface;
/// implementing it is how Cascade gains support for a new backend target.
pub trait Engine: Send {
    /// Where this engine executes.
    fn kind(&self) -> EngineKind;

    /// Snapshots stateful elements (registers, memories) by name.
    fn get_state(&mut self) -> EngineState;

    /// Restores stateful elements by name; unknown names are ignored
    /// (they belong to code that no longer exists).
    fn set_state(&mut self, state: &EngineState);

    /// Notifies the engine that one of its input ports changed (`read` in
    /// the paper's ABI: the engine discovers input changes).
    fn read(&mut self, port: &str, value: &Bits);

    /// The current value of an output port (`write`: the engine broadcasts
    /// outputs — the runtime polls and diffs).
    fn output(&mut self, port: &str) -> Bits;

    /// Whether evaluation events are pending.
    fn there_are_evals(&self) -> bool;

    /// Performs all pending evaluation events.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] on simulation faults (combinational loops,
    /// runaway procedural loops).
    fn evaluate(&mut self) -> Result<(), EngineError>;

    /// Whether update (sequential) events are pending.
    fn there_are_updates(&self) -> bool;

    /// Performs all pending update events.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] on simulation faults.
    fn update(&mut self) -> Result<(), EngineError>;

    /// Called when the interrupt queue drains (end of a time step).
    fn end_step(&mut self) {}

    /// Called at shutdown.
    fn end(&mut self) {}

    /// Drains `$display`/`$finish`-family side effects.
    fn drain_tasks(&mut self) -> Vec<TaskEvent>;

    /// Runs up to `steps` whole clock iterations inside the engine without
    /// runtime interaction (paper Sec. 4.4). Returns the number completed
    /// (0 = unsupported). Engines stop early when a system task fires.
    fn open_loop(&mut self, steps: u64) -> u64 {
        let _ = steps;
        0
    }

    /// Modeled nanoseconds of work performed since the last call (drives
    /// the virtual wall clock).
    fn take_cost_ns(&mut self, costs: &CostModel) -> f64;

    /// Whether a `$finish` has executed inside this engine.
    fn is_finished(&self) -> bool {
        false
    }

    /// Downcast support (the runtime moves peripherals in and out of
    /// concrete engine types during forwarding transitions).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Consuming downcast support.
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

impl fmt::Debug for dyn Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Engine({})", self.kind())
    }
}
