//! The Read-Eval-Print-Loop controller and view (paper Sec. 3.1, Fig. 3).
//!
//! Verilog is accepted one line at a time; lines accumulate until they form
//! a complete item (a module declaration, a root declaration/instantiation,
//! or a statement), which is then eval'ed into the running program. Errors
//! are reported per item; code that passes begins execution immediately.

use crate::error::{panic_message, CascadeError};
use crate::runtime::Runtime;
use cascade_verilog::ast::{Item, ModuleItem, Stmt};
use cascade_verilog::{line_col, Diagnostic};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What the REPL did with a line of input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplResponse {
    /// The line was accepted and the accumulated item(s) evaluated; any
    /// `$display` output produced immediately is included.
    Evaluated(Vec<String>),
    /// The line is part of an incomplete item; more input is needed.
    Incomplete,
    /// The item failed to parse or type check and was discarded.
    Error(String),
}

/// A line-oriented front end over [`Runtime`].
pub struct Repl {
    runtime: Runtime,
    buffer: String,
}

impl Repl {
    /// Wraps a runtime.
    pub fn new(runtime: Runtime) -> Self {
        Repl {
            runtime,
            buffer: String::new(),
        }
    }

    /// The underlying runtime.
    pub fn runtime(&mut self) -> &mut Runtime {
        &mut self.runtime
    }

    /// Consumes the REPL, returning the runtime.
    pub fn into_runtime(self) -> Runtime {
        self.runtime
    }

    /// Feeds one line of input.
    ///
    /// A completed buffer may hold several items (a multi-item paste, or
    /// one line closing two items). Items are evaluated in order, each as
    /// its own eval, so an error names the *offending item* with
    /// buffer-accurate line numbers instead of blaming the whole batch;
    /// items before the failing one stay committed (Cascade programs are
    /// append-only, so earlier items never depend on later ones).
    pub fn line(&mut self, text: &str) -> ReplResponse {
        self.buffer.push_str(text);
        self.buffer.push('\n');
        if !self.buffer_complete() {
            return ReplResponse::Incomplete;
        }
        let src = std::mem::take(&mut self.buffer);
        let Some(chunks) = split_items(&src) else {
            // Unsplittable (parse error or exotic spans): evaluate whole.
            return match self.eval_guarded(&src) {
                Ok(()) => ReplResponse::Evaluated(self.runtime.drain_output()),
                Err(CascadeError::Parse(d)) => ReplResponse::Error(d.render(&src)),
                Err(e) => ReplResponse::Error(e.to_string()),
            };
        };
        let total = chunks.len();
        for (i, chunk) in chunks.iter().enumerate() {
            if let Err(e) = self.eval_guarded(&chunk.text) {
                // Output from already-committed items stays queued in the
                // runtime for the next successful drain.
                return ReplResponse::Error(render_item_error(&e, chunk, i + 1, total));
            }
        }
        ReplResponse::Evaluated(self.runtime.drain_output())
    }

    /// Evaluates one source chunk with panic containment: a panicking item
    /// surfaces as a structured [`CascadeError::Internal`] instead of
    /// unwinding through the session. The runtime restores its previous
    /// program when a commit fails partway, so items already committed
    /// stay live and consistent.
    fn eval_guarded(&mut self, src: &str) -> Result<(), CascadeError> {
        catch_unwind(AssertUnwindSafe(|| self.runtime.eval(src)))
            .unwrap_or_else(|p| Err(CascadeError::Internal(panic_message(p.as_ref()))))
    }

    /// Feeds a whole file (batch mode, paper Sec. 3.1). The process is the
    /// same as interactive input.
    ///
    /// # Errors
    ///
    /// Returns the first evaluation error.
    pub fn batch(&mut self, src: &str) -> Result<Vec<String>, CascadeError> {
        self.eval_guarded(src)?;
        Ok(self.runtime.drain_output())
    }

    /// Heuristic completeness check: balanced `module`/`endmodule`,
    /// `begin`/`end`, `case`/`endcase`, parens/braces/brackets, and a
    /// terminating `;` (or a block keyword ending).
    fn buffer_complete(&self) -> bool {
        let Ok(tokens) = cascade_verilog::lex(&self.buffer) else {
            // Unterminated comment/string: wait for more input... unless the
            // input cannot recover (a lex error on a complete line is rare;
            // let eval() surface it).
            return self.buffer.contains('\n');
        };
        use cascade_verilog::{Keyword, TokenKind};
        let mut depth: i64 = 0;
        let mut blocks: i64 = 0;
        let mut last_significant: Option<&TokenKind> = None;
        for t in &tokens {
            match &t.kind {
                TokenKind::LParen | TokenKind::LBrace | TokenKind::LBracket => depth += 1,
                TokenKind::RParen | TokenKind::RBrace | TokenKind::RBracket => depth -= 1,
                TokenKind::Keyword(Keyword::Module)
                | TokenKind::Keyword(Keyword::Begin)
                | TokenKind::Keyword(Keyword::Case)
                | TokenKind::Keyword(Keyword::Casez)
                | TokenKind::Keyword(Keyword::Casex) => blocks += 1,
                TokenKind::Keyword(Keyword::Endmodule)
                | TokenKind::Keyword(Keyword::End)
                | TokenKind::Keyword(Keyword::Endcase) => blocks -= 1,
                _ => {}
            }
            if !matches!(t.kind, TokenKind::Eof) {
                last_significant = Some(&t.kind);
            }
        }
        if depth > 0 || blocks > 0 {
            return false;
        }
        matches!(
            last_significant,
            Some(TokenKind::Semi)
                | Some(TokenKind::Keyword(Keyword::Endmodule))
                | Some(TokenKind::Keyword(Keyword::End))
                | Some(TokenKind::Keyword(Keyword::Endcase))
        )
    }
}

/// One top-level item carved out of a completed REPL buffer.
struct Chunk {
    /// The item's source text (runs to the start of the next item, so it
    /// keeps its trailing `;` and any following comments).
    text: String,
    /// 1-based line in the original buffer where the chunk starts.
    start_line: u32,
    /// A short label for error messages (first line, truncated).
    summary: String,
}

/// Splits a buffer into per-item chunks using the parsed AST's spans.
/// Returns `None` when the buffer cannot be split reliably — it fails to
/// parse on its own, or some item carries a synthetic/out-of-order span —
/// in which case the caller evaluates the buffer whole.
fn split_items(src: &str) -> Option<Vec<Chunk>> {
    let unit = cascade_verilog::parse(src).ok()?;
    let mut starts = Vec::with_capacity(unit.items.len());
    for item in &unit.items {
        let span = match item {
            Item::Module(m) => m.span,
            Item::RootItem(mi) => module_item_span(mi)?,
        };
        let start = span.start as usize;
        if span.end <= span.start || start >= src.len() || !src.is_char_boundary(start) {
            return None;
        }
        if let Some(&prev) = starts.last() {
            if start <= prev {
                return None;
            }
        }
        starts.push(start);
    }
    if starts.len() < 2 {
        return None; // zero or one item: whole-buffer eval is already exact
    }
    let mut chunks = Vec::with_capacity(starts.len());
    for (i, &start) in starts.iter().enumerate() {
        let end = starts.get(i + 1).copied().unwrap_or(src.len());
        let text = &src[start..end];
        chunks.push(Chunk {
            text: text.to_string(),
            start_line: line_col(src, start as u32).line,
            summary: summarize(text),
        });
    }
    Some(chunks)
}

/// The span of a root-level module item, or `None` for the few node kinds
/// that do not record one.
fn module_item_span(item: &ModuleItem) -> Option<cascade_verilog::Span> {
    match item {
        ModuleItem::Function(f) => Some(f.span),
        ModuleItem::Genvar(_) => None,
        ModuleItem::GenerateFor(g) => Some(g.span),
        ModuleItem::Net(n) => Some(n.span),
        ModuleItem::Param(p) => Some(p.span),
        ModuleItem::Assign(a) => Some(a.span),
        ModuleItem::Always(a) => Some(a.span),
        ModuleItem::Initial(i) => Some(i.span),
        ModuleItem::Instance(i) => Some(i.span),
        ModuleItem::Statement(s) => stmt_span(s),
    }
}

fn stmt_span(stmt: &Stmt) -> Option<cascade_verilog::Span> {
    match stmt {
        Stmt::Blocking { span, .. }
        | Stmt::NonBlocking { span, .. }
        | Stmt::If { span, .. }
        | Stmt::Case { span, .. }
        | Stmt::For { span, .. }
        | Stmt::While { span, .. }
        | Stmt::Repeat { span, .. }
        | Stmt::Forever { span, .. }
        | Stmt::SystemTask { span, .. } => Some(*span),
        Stmt::Block { .. } | Stmt::Null => None,
    }
}

fn summarize(text: &str) -> String {
    let line = text.lines().find(|l| !l.trim().is_empty()).unwrap_or("");
    let line = line.trim();
    let mut out: String = line.chars().take(40).collect();
    if line.chars().count() > 40 {
        out.push('\u{2026}');
    }
    out
}

/// Renders an eval error for one chunk, naming the item and shifting
/// diagnostic line numbers from chunk-relative to buffer-relative.
fn render_item_error(e: &CascadeError, chunk: &Chunk, index: usize, total: usize) -> String {
    let offset = chunk.start_line - 1;
    let body = match e {
        CascadeError::Parse(d) | CascadeError::Elaborate(d) => {
            render_offset(d, &chunk.text, offset)
        }
        CascadeError::Typecheck(ds) => ds
            .iter()
            .map(|d| render_offset(d, &chunk.text, offset))
            .collect::<Vec<_>>()
            .join("; "),
        other => other.to_string(),
    };
    format!("item {index} of {total} (`{}`): {body}", chunk.summary)
}

fn render_offset(d: &Diagnostic, chunk_text: &str, line_offset: u32) -> String {
    let lc = line_col(chunk_text, d.span.start);
    format!(
        "{}:{}: {} error: {}",
        lc.line + line_offset,
        lc.col,
        d.phase,
        d.message
    )
}
