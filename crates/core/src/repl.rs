//! The Read-Eval-Print-Loop controller and view (paper Sec. 3.1, Fig. 3).
//!
//! Verilog is accepted one line at a time; lines accumulate until they form
//! a complete item (a module declaration, a root declaration/instantiation,
//! or a statement), which is then eval'ed into the running program. Errors
//! are reported per item; code that passes begins execution immediately.

use crate::error::CascadeError;
use crate::runtime::Runtime;

/// What the REPL did with a line of input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplResponse {
    /// The line was accepted and the accumulated item(s) evaluated; any
    /// `$display` output produced immediately is included.
    Evaluated(Vec<String>),
    /// The line is part of an incomplete item; more input is needed.
    Incomplete,
    /// The item failed to parse or type check and was discarded.
    Error(String),
}

/// A line-oriented front end over [`Runtime`].
pub struct Repl {
    runtime: Runtime,
    buffer: String,
}

impl Repl {
    /// Wraps a runtime.
    pub fn new(runtime: Runtime) -> Self {
        Repl {
            runtime,
            buffer: String::new(),
        }
    }

    /// The underlying runtime.
    pub fn runtime(&mut self) -> &mut Runtime {
        &mut self.runtime
    }

    /// Consumes the REPL, returning the runtime.
    pub fn into_runtime(self) -> Runtime {
        self.runtime
    }

    /// Feeds one line of input.
    pub fn line(&mut self, text: &str) -> ReplResponse {
        self.buffer.push_str(text);
        self.buffer.push('\n');
        if !self.buffer_complete() {
            return ReplResponse::Incomplete;
        }
        let src = std::mem::take(&mut self.buffer);
        match self.runtime.eval(&src) {
            Ok(()) => ReplResponse::Evaluated(self.runtime.drain_output()),
            Err(CascadeError::Parse(d)) => ReplResponse::Error(d.render(&src)),
            Err(e) => ReplResponse::Error(e.to_string()),
        }
    }

    /// Feeds a whole file (batch mode, paper Sec. 3.1). The process is the
    /// same as interactive input.
    ///
    /// # Errors
    ///
    /// Returns the first evaluation error.
    pub fn batch(&mut self, src: &str) -> Result<Vec<String>, CascadeError> {
        self.runtime.eval(src)?;
        Ok(self.runtime.drain_output())
    }

    /// Heuristic completeness check: balanced `module`/`endmodule`,
    /// `begin`/`end`, `case`/`endcase`, parens/braces/brackets, and a
    /// terminating `;` (or a block keyword ending).
    fn buffer_complete(&self) -> bool {
        let Ok(tokens) = cascade_verilog::lex(&self.buffer) else {
            // Unterminated comment/string: wait for more input... unless the
            // input cannot recover (a lex error on a complete line is rare;
            // let eval() surface it).
            return self.buffer.contains('\n');
        };
        use cascade_verilog::{Keyword, TokenKind};
        let mut depth: i64 = 0;
        let mut blocks: i64 = 0;
        let mut last_significant: Option<&TokenKind> = None;
        for t in &tokens {
            match &t.kind {
                TokenKind::LParen | TokenKind::LBrace | TokenKind::LBracket => depth += 1,
                TokenKind::RParen | TokenKind::RBrace | TokenKind::RBracket => depth -= 1,
                TokenKind::Keyword(Keyword::Module)
                | TokenKind::Keyword(Keyword::Begin)
                | TokenKind::Keyword(Keyword::Case)
                | TokenKind::Keyword(Keyword::Casez)
                | TokenKind::Keyword(Keyword::Casex) => blocks += 1,
                TokenKind::Keyword(Keyword::Endmodule)
                | TokenKind::Keyword(Keyword::End)
                | TokenKind::Keyword(Keyword::Endcase) => blocks -= 1,
                _ => {}
            }
            if !matches!(t.kind, TokenKind::Eof) {
                last_significant = Some(&t.kind);
            }
        }
        if depth > 0 || blocks > 0 {
            return false;
        }
        matches!(
            last_significant,
            Some(TokenKind::Semi)
                | Some(TokenKind::Keyword(Keyword::Endmodule))
                | Some(TokenKind::Keyword(Keyword::End))
                | Some(TokenKind::Keyword(Keyword::Endcase))
        )
    }
}
