//! Error types for the Cascade runtime.

use cascade_fpga::CompileError;
use cascade_sim::SimError;
use cascade_verilog::Diagnostic;
use std::error::Error;
use std::fmt;

/// Any failure surfaced to the Cascade user.
#[derive(Debug, Clone, PartialEq)]
pub enum CascadeError {
    /// Lex/parse/preprocess failure for eval'ed code.
    Parse(Diagnostic),
    /// Type errors in eval'ed code (all of them).
    Typecheck(Vec<Diagnostic>),
    /// Elaboration failure while rebuilding engines.
    Elaborate(Diagnostic),
    /// A runtime simulation failure (combinational loop, runaway loop).
    Sim(SimError),
    /// A constraint of this implementation (documented deviations).
    Unsupported(String),
    /// Attempt to use native mode on an ineligible program.
    NativeIneligible(String),
    /// A hardware compilation failed (reported when native mode demands
    /// one, or surfaced as a warning otherwise).
    Compile(CompileError),
    /// A contained internal failure (e.g. a panic caught at an isolation
    /// boundary). The session survives; the offending operation did not.
    Internal(String),
}

impl fmt::Display for CascadeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CascadeError::Parse(d) => write!(f, "{d}"),
            CascadeError::Typecheck(ds) => {
                write!(f, "{} type error(s)", ds.len())?;
                for d in ds {
                    write!(f, "; {d}")?;
                }
                Ok(())
            }
            CascadeError::Elaborate(d) => write!(f, "{d}"),
            CascadeError::Sim(e) => write!(f, "{e}"),
            CascadeError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            CascadeError::NativeIneligible(msg) => {
                write!(f, "native mode unavailable: {msg}")
            }
            CascadeError::Compile(e) => write!(f, "{e}"),
            CascadeError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

/// Renders a caught panic payload (from `catch_unwind`) as a message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic".to_string()
    }
}

impl Error for CascadeError {}

impl From<Diagnostic> for CascadeError {
    fn from(d: Diagnostic) -> Self {
        CascadeError::Parse(d)
    }
}

impl From<SimError> for CascadeError {
    fn from(e: SimError) -> Self {
        CascadeError::Sim(e)
    }
}

impl From<CompileError> for CascadeError {
    fn from(e: CompileError) -> Self {
        CascadeError::Compile(e)
    }
}
