//! Runtime configuration: the JIT policy knobs and platform models.

use cascade_fpga::{CostModel, Device, FaultPlan, Toolchain};
use cascade_trace::TraceSink;

/// Cascade's optimization policy (paper Sec. 4). Every stage can be toggled
/// independently — the ablation benchmarks exercise exactly these switches.
#[derive(Debug, Clone)]
pub struct JitConfig {
    /// Inline user logic into a single subprogram (Sec. 4.2, Fig. 9.2).
    pub inline: bool,
    /// Absorb standard-library components into the hardware engine so it
    /// answers ABI requests on their behalf (Sec. 4.3, Fig. 9.4).
    pub forwarding: bool,
    /// Allow open-loop scheduling (Sec. 4.4, Fig. 9.5).
    pub open_loop: bool,
    /// Start background hardware compilations automatically.
    pub auto_compile: bool,
    /// Bytecode-compile software engines (the tree-walking interpreter is
    /// kept as the semantic oracle and ablation baseline).
    pub sw_compile: bool,
    /// Target modeled time between open-loop control returns, in seconds
    /// (the adaptive profiler aims here; paper: "a small number of
    /// seconds").
    pub open_loop_target_s: f64,
    /// The virtual toolchain used for background compilation.
    pub toolchain: Toolchain,
    /// Modeled per-operation costs.
    pub costs: CostModel,
    /// Width of the implicit button pad.
    pub pad_width: u32,
    /// Width of the implicit LED bank.
    pub led_width: u32,
    /// Bound on the bitstream compile cache (entries, LRU-evicted). Only
    /// used for the runtime's private cache; a shared
    /// [`CompilePool`](crate::CompilePool) brings its own bound.
    pub bitstream_cache_capacity: usize,
    /// Deterministic fault schedule injected into the toolchain, fabric,
    /// and workers. Inactive by default.
    pub faults: FaultPlan,
    /// How many times a transiently-failed compilation (fault, hang,
    /// worker panic) is retried before the failure surfaces. Terminal
    /// design errors are never retried.
    pub compile_max_retries: u32,
    /// Base of the exponential retry backoff, in *modeled* seconds
    /// (scaled by the toolchain's `time_scale` like compile latency).
    pub compile_backoff_s: f64,
    /// Modeled watchdog deadline for one toolchain run: a compile that
    /// has not surfaced an outcome this long after submission is
    /// cancelled as hung and retried. Must exceed the modeled compile
    /// latency of legitimate designs (defaults leave ~5× headroom).
    /// `0` disables the watchdog.
    pub compile_watchdog_s: f64,
    /// While a hardware engine runs the main program, verify its
    /// configuration by readback scrubbing every this many ticks;
    /// user-visible output produced between scrubs is quarantined until
    /// the scrub validates the window. `0` disables scrubbing (hardware
    /// output is trusted immediately, as in the paper's fault-free
    /// model).
    pub scrub_interval_ticks: u64,
    /// Take a recovery checkpoint of the software engines at least every
    /// this many ticks (hardware windows checkpoint at scrub boundaries
    /// instead). `0` disables periodic checkpoints.
    pub checkpoint_interval_ticks: u64,
    /// Where JIT lifecycle spans and events are recorded. The default is
    /// a disabled sink (zero recording cost); clones of one enabled sink
    /// share a single ring buffer, so a server can trace every session
    /// into one timeline. See [`cascade_trace::TraceSink`].
    pub trace: TraceSink,
    /// Advertised batch width for data-parallel drivers: how many
    /// independent stimulus lanes a `BatchHarness` built for this tenant
    /// should carry (parameter sweeps, corpus grading). `1` (the default)
    /// means scalar execution; the knob is a capability surfaced to
    /// workloads and the serve protocol, not a change to the per-session
    /// engines themselves.
    pub batch_width: u32,
    /// Worker threads for the compiled netlist engine's dense settles
    /// (`1` = single-threaded, the default). When a session's design is
    /// promoted to a hardware engine, wide combinational levels are split
    /// across this many threads; narrow levels stay single-threaded via
    /// the activity cutover.
    pub eval_threads: u32,
}

impl Default for JitConfig {
    fn default() -> Self {
        JitConfig {
            inline: true,
            forwarding: true,
            open_loop: true,
            auto_compile: true,
            sw_compile: true,
            open_loop_target_s: 1.0,
            toolchain: Toolchain::new(Device::cyclone_v()),
            costs: CostModel::default(),
            pad_width: 4,
            led_width: 8,
            bitstream_cache_capacity: crate::compiler::DEFAULT_BITSTREAM_CACHE_CAPACITY,
            faults: FaultPlan::none(),
            compile_max_retries: 3,
            compile_backoff_s: 30.0,
            compile_watchdog_s: 3600.0,
            scrub_interval_ticks: 4096,
            checkpoint_interval_ticks: 4096,
            trace: TraceSink::disabled(),
            batch_width: 1,
            eval_threads: 1,
        }
    }
}

impl JitConfig {
    /// A configuration with every JIT optimization disabled — the
    /// interpreter-only baseline.
    pub fn interpreter_only() -> Self {
        JitConfig {
            inline: false,
            forwarding: false,
            open_loop: false,
            auto_compile: false,
            ..JitConfig::default()
        }
    }

    /// Disables one stage by name (used by the ablation harness).
    pub fn without(mut self, stage: &str) -> Self {
        match stage {
            "inline" => self.inline = false,
            "forwarding" => self.forwarding = false,
            "open_loop" => self.open_loop = false,
            "auto_compile" => self.auto_compile = false,
            "sw_compile" => self.sw_compile = false,
            other => panic!("unknown JIT stage `{other}`"),
        }
        self
    }
}
