//! Session hibernation images: a runtime frozen to bytes.
//!
//! Cascade's engine ABI already makes program state portable —
//! `get_state` lifts any engine (software or hardware) into a
//! [`EngineState`] value, and the PR-4 checkpoint machinery proves that a
//! program rebuilt from those states plus its append-only source is
//! indistinguishable from one that never stopped. A [`HibernateImage`]
//! pushes that one step further: the committed source log, the
//! checkpointed engine states, and the tick/wall bookkeeping are
//! serialized to a flat byte buffer so the live `Runtime` (its engines,
//! compiler, slots, and fabric lease) can be dropped entirely. A server
//! holding ten thousand mostly-idle tenants keeps one image per dormant
//! session and rebuilds a `Runtime` only when the next command arrives.
//!
//! The codec is a hand-rolled little-endian format (the workspace is
//! deliberately dependency-free, so no serde): a magic/version header,
//! then length-prefixed fields. It round-trips exactly — see the tests —
//! and `from_bytes` is bounds-checked so a truncated or corrupt image
//! surfaces as an error, never a panic.

use std::collections::BTreeMap;

use cascade_bits::Bits;

use crate::engine::EngineState;

const MAGIC: &[u8; 4] = b"CHIB";
const VERSION: u32 = 1;

/// Everything needed to resurrect a hibernated session: replay the source
/// log through `eval`, then overwrite engine state with the checkpointed
/// snapshot (exactly the `rollback_to_checkpoint` path).
#[derive(Debug, Clone, PartialEq)]
pub struct HibernateImage {
    /// Committed source items in eval order (append-only program text).
    pub source: String,
    /// Engine states by slot name, from a verified checkpoint.
    pub states: BTreeMap<String, EngineState>,
    /// Scheduler iteration counter (2 per virtual tick).
    pub iterations: u64,
    /// Whether the program had hit `$finish`.
    pub finished: bool,
    /// Modeled wall clock at hibernation.
    pub wall_seconds: f64,
}

impl HibernateImage {
    /// The image of a session that never evaluated anything. Waking it is
    /// just `Runtime::new`.
    pub fn empty() -> HibernateImage {
        HibernateImage {
            source: String::new(),
            states: BTreeMap::new(),
            iterations: 0,
            finished: false,
            wall_seconds: 0.0,
        }
    }

    /// Whether this image carries no program (fast-path wake).
    pub fn is_empty(&self) -> bool {
        self.source.is_empty() && self.states.is_empty() && self.iterations == 0
    }

    /// Serializes the image to a flat buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Vec::with_capacity(64 + self.source.len());
        w.extend_from_slice(MAGIC);
        put_u32(&mut w, VERSION);
        put_u64(&mut w, self.iterations);
        w.push(self.finished as u8);
        put_u64(&mut w, self.wall_seconds.to_bits());
        put_str(&mut w, &self.source);
        put_u64(&mut w, self.states.len() as u64);
        for (name, state) in &self.states {
            put_str(&mut w, name);
            put_u64(&mut w, state.regs.len() as u64);
            for (reg, bits) in &state.regs {
                put_str(&mut w, reg);
                put_bits(&mut w, bits);
            }
            put_u64(&mut w, state.mems.len() as u64);
            for (mem, words) in &state.mems {
                put_str(&mut w, mem);
                put_u64(&mut w, words.len() as u64);
                for b in words {
                    put_bits(&mut w, b);
                }
            }
        }
        w
    }

    /// Deserializes an image produced by [`HibernateImage::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem (bad magic,
    /// unsupported version, truncation, invalid UTF-8).
    pub fn from_bytes(bytes: &[u8]) -> Result<HibernateImage, String> {
        let mut r = Reader { buf: bytes, at: 0 };
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err("hibernate image: bad magic".to_string());
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(format!("hibernate image: unsupported version {version}"));
        }
        let iterations = r.u64()?;
        let finished = r.u8()? != 0;
        let wall_seconds = f64::from_bits(r.u64()?);
        let source = r.string()?;
        let n_states = r.len()?;
        let mut states = BTreeMap::new();
        for _ in 0..n_states {
            let name = r.string()?;
            let mut regs = BTreeMap::new();
            for _ in 0..r.len()? {
                let reg = r.string()?;
                let bits = r.bits()?;
                regs.insert(reg, bits);
            }
            let mut mems = BTreeMap::new();
            for _ in 0..r.len()? {
                let mem = r.string()?;
                let n = r.len()?;
                let mut words = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    words.push(r.bits()?);
                }
                mems.insert(mem, words);
            }
            states.insert(name, EngineState { regs, mems });
        }
        Ok(HibernateImage {
            source,
            states,
            iterations,
            finished,
            wall_seconds,
        })
    }
}

fn put_u32(w: &mut Vec<u8>, v: u32) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(w: &mut Vec<u8>, v: u64) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_str(w: &mut Vec<u8>, s: &str) {
    put_u64(w, s.len() as u64);
    w.extend_from_slice(s.as_bytes());
}

fn put_bits(w: &mut Vec<u8>, b: &Bits) {
    put_u32(w, b.width());
    let words = b.words();
    put_u64(w, words.len() as u64);
    for word in words {
        put_u64(w, *word);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| "hibernate image: truncated".to_string())?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// A u64 length field, sanity-bounded by the remaining buffer so a
    /// corrupt count cannot drive a huge allocation.
    fn len(&mut self) -> Result<usize, String> {
        let n = self.u64()? as usize;
        if n > self.buf.len().saturating_sub(self.at) {
            return Err("hibernate image: length exceeds buffer".to_string());
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, String> {
        let n = self.len()?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| "hibernate image: invalid utf-8".to_string())
    }

    fn bits(&mut self) -> Result<Bits, String> {
        let width = self.u32()?;
        let n = self.u64()? as usize;
        // A width-w value needs ceil(w/64) words; reject mismatches early.
        let expect = (width as usize).div_ceil(64).max(1);
        if n != expect {
            return Err(format!(
                "hibernate image: width {width} with {n} words (expected {expect})"
            ));
        }
        let mut words = Vec::with_capacity(n);
        for _ in 0..n {
            words.push(self.u64()?);
        }
        Ok(Bits::from_words(width, &words))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HibernateImage {
        let mut regs = BTreeMap::new();
        regs.insert("cnt".to_string(), Bits::from_u64(8, 0xA5));
        regs.insert("wide".to_string(), Bits::from_words(100, &[u64::MAX, 0x3]));
        let mut mems = BTreeMap::new();
        mems.insert(
            "ram".to_string(),
            vec![Bits::from_u64(16, 1), Bits::from_u64(16, 2)],
        );
        let mut states = BTreeMap::new();
        states.insert("__root".to_string(), EngineState { regs, mems });
        states.insert(
            "fifo0".to_string(),
            EngineState {
                regs: BTreeMap::new(),
                mems: BTreeMap::new(),
            },
        );
        HibernateImage {
            source: "reg [7:0] cnt = 1;\nalways @(posedge clk.val) cnt <= cnt + 1;".to_string(),
            states,
            iterations: 1234,
            finished: false,
            wall_seconds: 0.125,
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let img = sample();
        let bytes = img.to_bytes();
        let back = HibernateImage::from_bytes(&bytes).expect("decode");
        assert_eq!(img, back);
    }

    #[test]
    fn empty_round_trips() {
        let img = HibernateImage::empty();
        assert!(img.is_empty());
        let back = HibernateImage::from_bytes(&img.to_bytes()).expect("decode");
        assert_eq!(img, back);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                HibernateImage::from_bytes(&bytes[..cut]).is_err(),
                "truncated at {cut} must fail"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(HibernateImage::from_bytes(&bytes).is_err());
    }
}
