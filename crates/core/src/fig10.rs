//! Source-to-source generation of the hardware engine's MMIO wrapper
//! (paper Fig. 10).
//!
//! Given an inlined, transformed subprogram, this emits the standalone
//! Verilog a hardware engine hands to the blackbox toolchain: an AXI-style
//! port list (`CLK`/`RW`/`ADDR`/`IN`/`OUT`/`WAIT`), a variable file holding
//! the subprogram's inputs and state, shadow registers with update masks
//! for nonblocking assignments, task masks with argument capture for
//! `$display`/`$finish`, and the open-loop counter that lets the engine run
//! cycles without runtime intervention.
//!
//! The generated module is real Verilog: it parses with this repository's
//! frontend and, driven over the bus protocol, behaves identically to the
//! original subprogram (see `fig10_wrapper_is_behaviourally_equivalent`).
//!
//! Deviations from the figure, for clarity rather than necessity: variable
//! slots are emitted as individually named registers at their natural
//! widths (`_var_cnt`) instead of packed 32-bit array words, and update/task
//! masks carry one bit per target.

use crate::error::CascadeError;
use cascade_verilog::ast::*;
use cascade_verilog::typecheck::{check_module, ModuleLibrary, ParamEnv};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What one bus address refers to in the generated wrapper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WrapperSlot {
    /// A subprogram input (writable; reads return the current value).
    Input(String),
    /// A stateful element (readable and writable — `get`/`set_state`).
    State(String),
    /// A captured `$display` argument (readable).
    TaskArg { task: usize, arg: usize },
    /// A subprogram output (readable).
    Output(String),
}

/// The generated wrapper: Verilog source plus its address map.
#[derive(Debug, Clone)]
pub struct Fig10Wrapper {
    /// The complete module source (module name `Main`, as in the figure).
    pub source: String,
    /// Data addresses, in order.
    pub slots: Vec<WrapperSlot>,
    /// Control addresses: `(name, address)` for LATCH / CLEAR / OLOOP /
    /// TASKS / UPDATES / ITRS.
    pub ctrl: BTreeMap<String, u32>,
}

impl Fig10Wrapper {
    /// The bus address of a named input/state/output slot.
    pub fn addr_of(&self, name: &str) -> Option<u32> {
        self.slots
            .iter()
            .position(|s| match s {
                WrapperSlot::Input(n) | WrapperSlot::State(n) | WrapperSlot::Output(n) => n == name,
                WrapperSlot::TaskArg { .. } => false,
            })
            .map(|i| i as u32)
    }
}

/// Generates the Fig. 10 wrapper for an inlined subprogram.
///
/// # Errors
///
/// Returns [`CascadeError::Unsupported`] when the subprogram still contains
/// instances (inline first, paper Sec. 4.2), uses memories (the real system
/// maps those to block RAM ports), or mixes clock edges.
pub fn generate_wrapper(sub: &Module, lib: &ModuleLibrary) -> Result<Fig10Wrapper, CascadeError> {
    if sub
        .items
        .iter()
        .any(|i| matches!(i, ModuleItem::Instance(_)))
    {
        return Err(CascadeError::Unsupported(
            "fig10 wrapper generation requires inlined user logic".to_string(),
        ));
    }
    let checked = check_module(sub, &ParamEnv::new(), lib).map_err(CascadeError::Typecheck)?;

    // Classify: inputs (ports), state (regs written under a clock edge),
    // outputs (ports).
    let mut inputs: Vec<(String, u32)> = Vec::new();
    let mut outputs: Vec<(String, u32)> = Vec::new();
    for p in &sub.ports {
        let width = checked.width_of(&p.name).unwrap_or(1);
        match p.dir {
            PortDir::Input => inputs.push((p.name.clone(), width)),
            PortDir::Output => outputs.push((p.name.clone(), width)),
            PortDir::Inout => {
                return Err(CascadeError::Unsupported("inout ports".to_string()));
            }
        }
    }
    let mut state: Vec<(String, u32)> = Vec::new();
    let mut unsupported: Option<String> = None;
    for item in &sub.items {
        let ModuleItem::Always(a) = item else {
            continue;
        };
        let clocked = matches!(&a.sensitivity, Sensitivity::List(items)
            if items.iter().any(|i| i.edge.is_some()));
        if !clocked {
            continue;
        }
        a.body.visit_writes(&mut |lv, blocking| {
            for n in lv.written_names() {
                if let Some(sym) = checked.symbol(n) {
                    if sym.kind.is_variable() && sym.array.is_none() {
                        // Shadow registers capture whole-variable
                        // nonblocking updates; partial or blocking state
                        // writes would need read-modify-write shadows.
                        if !matches!(lv, LValue::Ident(_)) {
                            unsupported =
                                Some(format!("partial write to state `{n}` in fig10 wrapper"));
                        }
                        if blocking {
                            unsupported =
                                Some(format!("blocking write to state `{n}` in fig10 wrapper"));
                        }
                        if !state.iter().any(|(s, _)| s == n) {
                            state.push((n.to_string(), sym.width()));
                        }
                    }
                }
            }
        });
    }
    if let Some(msg) = unsupported {
        return Err(CascadeError::Unsupported(msg));
    }
    for (name, _) in &state {
        if checked.symbol(name).is_some_and(|s| s.array.is_some()) {
            return Err(CascadeError::Unsupported(format!(
                "memory `{name}` in fig10 wrapper (block-RAM ports are out of scope)"
            )));
        }
    }

    // Collect tasks (in source order) and their argument expressions.
    let mut tasks: Vec<TaskInfo> = Vec::new();
    for item in &sub.items {
        if let ModuleItem::Always(a) = item {
            collect_tasks(&a.body, &mut tasks);
        }
    }

    // ------------------------------------------------------------------
    // Address map.
    // ------------------------------------------------------------------
    let mut slots: Vec<WrapperSlot> = Vec::new();
    for (n, _) in &inputs {
        slots.push(WrapperSlot::Input(n.clone()));
    }
    for (n, _) in &state {
        slots.push(WrapperSlot::State(n.clone()));
    }
    let mut task_arg_slots: Vec<Vec<usize>> = Vec::new();
    for (ti, (_, args, fmt)) in tasks.iter().enumerate() {
        let mut these = Vec::new();
        let skip_first = usize::from(fmt.is_some());
        for (ci, _) in args.iter().skip(skip_first).enumerate() {
            these.push(slots.len());
            slots.push(WrapperSlot::TaskArg { task: ti, arg: ci });
        }
        task_arg_slots.push(these);
    }
    for (n, _) in &outputs {
        slots.push(WrapperSlot::Output(n.clone()));
    }
    let base_ctrl = slots.len() as u32;
    let mut ctrl = BTreeMap::new();
    for (i, name) in ["LATCH", "CLEAR", "OLOOP", "TASKS", "UPDATES", "ITRS"]
        .iter()
        .enumerate()
    {
        ctrl.insert(name.to_string(), base_ctrl + i as u32);
    }

    // ------------------------------------------------------------------
    // Emit source.
    // ------------------------------------------------------------------
    let mut src = String::with_capacity(8192);
    src.push_str(
        "module Main(\n  input wire CLK,\n  input wire RW,\n  input wire [31:0] ADDR,\n  input wire [31:0] IN,\n  output wire [31:0] OUT,\n  output wire WAIT\n);\n",
    );
    // Address shorthands (the figure's <SET n> / <LATCH> / <OLOOP>).
    for (name, addr) in &ctrl {
        let _ = writeln!(src, "localparam A_{name} = 32'd{addr};");
    }
    let nstate = state.len().max(1);
    let ntasks = tasks.len().max(1);
    // Variable file: inputs and state at natural widths.
    for (n, w) in &inputs {
        let _ = writeln!(src, "reg [{}:0] _var_{n} = 0;", w - 1);
    }
    for (n, w) in &state {
        let init = checked
            .symbol(n)
            .and_then(|s| s.init.clone())
            .map(|e| cascade_verilog::pretty::print_expr(&e))
            .unwrap_or_else(|| "0".to_string());
        let _ = writeln!(src, "reg [{}:0] _var_{n} = {init};", w - 1);
        let _ = writeln!(src, "reg [{}:0] _nvar_{n} = 0;", w - 1);
    }
    // Task argument capture.
    for (ti, args) in task_arg_slots.iter().enumerate() {
        for (ai, _) in args.iter().enumerate() {
            let _ = writeln!(src, "reg [31:0] _targ_{ti}_{ai} = 0;");
        }
    }
    // Masks and the open-loop machinery (figure lines 11-13, 28-42).
    let _ = writeln!(src, "reg [{}:0] _umask = 0, _numask = 0;", nstate - 1);
    let _ = writeln!(src, "reg [{}:0] _tmask = 0, _ntmask = 0;", ntasks - 1);
    src.push_str("reg [31:0] _oloop = 0, _itrs = 0;\n");
    let _ = writeln!(src, "wire _updates = _umask != _numask;");
    let _ = writeln!(src, "wire _set_latch = RW && ADDR == A_LATCH;");
    let _ = writeln!(
        src,
        "wire _latch = _set_latch || (_updates && _oloop != 0);"
    );
    let _ = writeln!(src, "wire _tasks = _tmask != _ntmask;");
    let _ = writeln!(src, "wire _clear = RW && ADDR == A_CLEAR;");
    let _ = writeln!(src, "wire _otick = (_oloop != 0) && !_tasks;");
    // Name bindings: original code reads its variables through the file.
    for (n, w) in inputs.iter().chain(state.iter()) {
        let _ = writeln!(src, "wire [{}:0] {n} = _var_{n};", w - 1);
    }
    // Output port declarations become plain wires driven by the user logic.
    for (n, w) in &outputs {
        let _ = writeln!(src, "wire [{}:0] {n};", w - 1);
    }

    // The user's items, with state writes redirected to shadows and tasks
    // replaced by capture+mask toggles.
    let state_names: Vec<String> = state.iter().map(|(n, _)| n.clone()).collect();
    let mut task_counter = 0usize;
    for item in &sub.items {
        match item {
            ModuleItem::Net(decl) => {
                // State/input declarations were replaced by the file; keep
                // everything else (wires, comb regs).
                let mut kept = decl.clone();
                kept.decls.retain(|d| {
                    !state_names.contains(&d.name) && !inputs.iter().any(|(n, _)| n == &d.name)
                });
                if !kept.decls.is_empty() {
                    src.push_str(&print_item(&ModuleItem::Net(kept)));
                }
            }
            ModuleItem::Always(a) => {
                let mut rewritten = a.clone();
                rewrite_stmt(
                    &mut rewritten.body,
                    &state_names,
                    &mut task_counter,
                    &task_arg_slots,
                    &tasks,
                );
                src.push_str(&print_item(&ModuleItem::Always(rewritten)));
            }
            ModuleItem::Assign(_) | ModuleItem::Param(_) => {
                src.push_str(&print_item(item));
            }
            ModuleItem::Initial(_) | ModuleItem::Statement(_) => {
                // One-shot items never reach the hardware build.
            }
            other => {
                return Err(CascadeError::Unsupported(format!(
                    "unexpected item in inlined subprogram: {other:?}"
                )));
            }
        }
    }

    // Bus write plane (figure lines 35-47).
    src.push_str("always @(posedge CLK) begin\n");
    src.push_str("  _umask <= _latch ? _numask : _umask;\n");
    src.push_str("  _tmask <= _clear ? _ntmask : _tmask;\n");
    src.push_str(
        "  _oloop <= (RW && ADDR == A_OLOOP) ? IN : _otick ? (_oloop - 1) : _tasks ? 0 : _oloop;\n",
    );
    src.push_str("  _itrs <= (RW && ADDR == A_OLOOP) ? 0 : _otick ? (_itrs + 1) : _itrs;\n");
    for (i, (n, _)) in inputs.iter().enumerate() {
        if i == 0 {
            // By convention the first input is the virtual clock; open loop
            // toggles it (figure line 43).
            let _ = writeln!(
                src,
                "  _var_{n} <= _otick ? (_var_{n} + 1) : (RW && ADDR == 32'd{i}) ? IN : _var_{n};"
            );
        } else {
            let _ = writeln!(
                src,
                "  _var_{n} <= (RW && ADDR == 32'd{i}) ? IN : _var_{n};"
            );
        }
    }
    for (si, (n, _)) in state.iter().enumerate() {
        let addr = inputs.len() + si;
        let _ = writeln!(
            src,
            "  _var_{n} <= (RW && ADDR == 32'd{addr}) ? IN : (_latch && (_umask[{si}] != _numask[{si}])) ? _nvar_{n} : _var_{n};"
        );
    }
    src.push_str("end\n");

    // Bus read plane (figure lines 50-53).
    src.push_str("reg [31:0] _out;\nalways @(*) begin\n  _out = 32'd0;\n  case (ADDR)\n");
    for (addr, slot) in slots.iter().enumerate() {
        let expr = match slot {
            WrapperSlot::Input(n) | WrapperSlot::State(n) => format!("_var_{n}"),
            WrapperSlot::TaskArg { task, arg } => format!("_targ_{task}_{arg}"),
            WrapperSlot::Output(n) => n.clone(),
        };
        let _ = writeln!(src, "    32'd{addr}: _out = {expr};");
    }
    let _ = writeln!(src, "    A_TASKS: _out = _tmask ^ _ntmask;");
    let _ = writeln!(src, "    A_UPDATES: _out = _umask ^ _numask;");
    let _ = writeln!(src, "    A_ITRS: _out = _itrs;");
    src.push_str("    default: _out = 32'd0;\n  endcase\nend\n");
    src.push_str("assign OUT = _out;\nassign WAIT = _oloop != 0;\nendmodule\n");

    Ok(Fig10Wrapper {
        source: src,
        slots,
        ctrl,
    })
}

/// Task descriptor: `(kind, original args, optional format string)`.
type TaskInfo = (SystemTask, Vec<Expr>, Option<String>);

/// Collects system tasks in source order.
fn collect_tasks(s: &Stmt, out: &mut Vec<TaskInfo>) {
    match s {
        Stmt::SystemTask { task, args, .. } => {
            let fmt = match args.first() {
                Some(Expr::Str(f)) => Some(f.clone()),
                _ => None,
            };
            out.push((*task, args.clone(), fmt));
        }
        Stmt::Block { stmts, .. } => {
            for st in stmts {
                collect_tasks(st, out);
            }
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect_tasks(then_branch, out);
            if let Some(e) = else_branch {
                collect_tasks(e, out);
            }
        }
        Stmt::Case { arms, default, .. } => {
            for arm in arms {
                collect_tasks(&arm.body, out);
            }
            if let Some(d) = default {
                collect_tasks(d, out);
            }
        }
        Stmt::For { body, .. }
        | Stmt::While { body, .. }
        | Stmt::Repeat { body, .. }
        | Stmt::Forever { body, .. } => collect_tasks(body, out),
        _ => {}
    }
}

/// Rewrites a clocked body: state writes → shadow writes with mask toggles;
/// tasks → argument capture + task-mask toggles.
#[allow(clippy::only_used_in_recursion)]
fn rewrite_stmt(
    s: &mut Stmt,
    state: &[String],
    task_counter: &mut usize,
    task_arg_slots: &[Vec<usize>],
    tasks: &[TaskInfo],
) {
    match s {
        Stmt::Block { stmts, .. } => {
            for st in stmts {
                rewrite_stmt(st, state, task_counter, task_arg_slots, tasks);
            }
        }
        Stmt::Blocking { lhs, .. } | Stmt::NonBlocking { lhs, .. } => {
            if let Some(si) = state
                .iter()
                .position(|n| lhs.written_names().first().is_some_and(|w| w == n))
            {
                let name = state[si].clone();
                redirect_lvalue(lhs, &name, &format!("_nvar_{name}"));
                // Append the mask toggle by wrapping in a block.
                let toggle = Stmt::NonBlocking {
                    lhs: LValue::Index {
                        base: "_numask".to_string(),
                        index: Expr::number(si as u64),
                    },
                    rhs: Expr::Unary {
                        op: UnaryOp::BitNot,
                        operand: Box::new(Expr::Index {
                            base: Box::new(Expr::ident("_numask")),
                            index: Box::new(Expr::number(si as u64)),
                        }),
                    },
                    span: cascade_verilog::Span::synthetic(),
                };
                let original = std::mem::replace(s, Stmt::Null);
                *s = Stmt::Block {
                    name: None,
                    stmts: vec![original, toggle],
                };
            }
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            rewrite_stmt(then_branch, state, task_counter, task_arg_slots, tasks);
            if let Some(e) = else_branch {
                rewrite_stmt(e, state, task_counter, task_arg_slots, tasks);
            }
        }
        Stmt::Case { arms, default, .. } => {
            for arm in arms {
                rewrite_stmt(&mut arm.body, state, task_counter, task_arg_slots, tasks);
            }
            if let Some(d) = default {
                rewrite_stmt(d, state, task_counter, task_arg_slots, tasks);
            }
        }
        Stmt::For { body, .. }
        | Stmt::While { body, .. }
        | Stmt::Repeat { body, .. }
        | Stmt::Forever { body, .. } => {
            rewrite_stmt(body, state, task_counter, task_arg_slots, tasks);
        }
        Stmt::SystemTask { .. } => {
            let ti = *task_counter;
            *task_counter += 1;
            let (_, args, fmt) = &tasks[ti];
            let mut stmts = Vec::new();
            let skip = usize::from(fmt.is_some());
            for (k, arg) in args.iter().skip(skip).enumerate() {
                stmts.push(Stmt::NonBlocking {
                    lhs: LValue::Ident(format!("_targ_{ti}_{k}")),
                    rhs: arg.clone(),
                    span: cascade_verilog::Span::synthetic(),
                });
            }
            stmts.push(Stmt::NonBlocking {
                lhs: LValue::Index {
                    base: "_ntmask".to_string(),
                    index: Expr::number(ti as u64),
                },
                rhs: Expr::Unary {
                    op: UnaryOp::BitNot,
                    operand: Box::new(Expr::Index {
                        base: Box::new(Expr::ident("_ntmask")),
                        index: Box::new(Expr::number(ti as u64)),
                    }),
                },
                span: cascade_verilog::Span::synthetic(),
            });
            *s = Stmt::Block { name: None, stmts };
        }
        Stmt::Null => {}
    }
}

/// Redirects an lvalue whose base is `from` to `to`.
fn redirect_lvalue(lv: &mut LValue, from: &str, to: &str) {
    match lv {
        LValue::Ident(n)
        | LValue::Index { base: n, .. }
        | LValue::Part { base: n, .. }
        | LValue::IndexedPart { base: n, .. }
        | LValue::IndexThenPart { base: n, .. } => {
            if n == from {
                *n = to.to_string();
            }
        }
        LValue::Hier(_) => {}
        LValue::Concat(parts) => {
            for p in parts {
                redirect_lvalue(p, from, to);
            }
        }
    }
}

fn print_item(item: &ModuleItem) -> String {
    let module = Module {
        name: "__tmp".to_string(),
        params: Vec::new(),
        ports: Vec::new(),
        items: vec![item.clone()],
        span: cascade_verilog::Span::synthetic(),
    };
    let printed = cascade_verilog::pretty::print_module(&module);
    // Strip the module wrapper lines.
    printed
        .lines()
        .skip(1)
        .take_while(|l| !l.starts_with("endmodule"))
        .map(|l| format!("{l}\n"))
        .collect()
}
