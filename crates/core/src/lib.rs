//! Cascade-rs: a just-in-time compiler and runtime for Verilog.
//!
//! A Rust reproduction of *"Just-in-Time Compilation for Verilog"*
//! (Schkufza, Wei, Rossbach — ASPLOS 2019). Eval'ed Verilog runs
//! immediately in a software interpreter while the (virtual) FPGA toolchain
//! compiles in the background; when the bitstream is ready the program's
//! state migrates into hardware and it simply gets faster. Unsynthesizable
//! `$display`/`$finish` keep working from hardware, IO peripherals are
//! standard-library components visible in every compilation state, and a
//! finalized design can drop into native mode.
//!
//! # Quick start
//!
//! ```
//! use cascade_core::{JitConfig, Runtime};
//! use cascade_fpga::Board;
//!
//! let board = Board::new();
//! let mut cascade = Runtime::new(board.clone(), JitConfig::default())?;
//! // The paper's running example: rotate LEDs, pause on a button press.
//! cascade.eval("reg [7:0] cnt = 1;")?;
//! cascade.eval(
//!     "always @(posedge clk.val)\n\
//!        if (pad.val == 0)\n\
//!          cnt <= (cnt == 8'h80) ? 8'h1 : (cnt << 1);",
//! )?;
//! cascade.eval("assign led.val = cnt;")?;
//! cascade.run_ticks(2)?;
//! assert_eq!(board.leds().to_u64(), 4);
//! # Ok::<(), cascade_core::CascadeError>(())
//! ```

mod compiler;
mod config;
pub mod engine;
mod error;
pub mod fig10;
pub mod hibernate;
mod repl;
mod runtime;
pub mod transform;

pub use compiler::{
    BackgroundCompiler, BitstreamCache, CompileOutcome, CompilePool, CompileQueue, RetryPolicy,
    DEFAULT_BITSTREAM_CACHE_CAPACITY,
};
pub use config::JitConfig;
pub use engine::{Engine, EngineKind, EngineState, TaskEvent};
pub use error::{panic_message, CascadeError};
pub use hibernate::HibernateImage;
pub use repl::{Repl, ReplResponse};
pub use runtime::{ExecMode, Runtime, RuntimeStats};

#[cfg(test)]
mod tests;
