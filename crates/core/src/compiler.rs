//! The background compilation pipeline.
//!
//! When the runtime (re)builds its IR, it hands the user-logic subprogram to
//! the virtual toolchain. Execution continues in software; when the
//! bitstream is ready — and the *modeled* compile latency has elapsed on the
//! virtual wall clock — the runtime swaps the software engine for a hardware
//! engine. From the user's perspective the program simply gets faster.
//!
//! Two execution arrangements share this module:
//!
//! - **Solo** (the single-user REPL): each [`BackgroundCompiler`] spawns a
//!   worker thread per submission, with a private [`BitstreamCache`].
//! - **Pooled** (the multi-tenant server): a [`CompilePool`] owns K worker
//!   threads, a bounded job queue, and one shared cache; every session's
//!   `BackgroundCompiler` submits through a [`CompileQueue`] handle.
//!   Concurrent submissions of the same synthesized netlist are coalesced
//!   by content hash — one compile runs, every waiter gets the result.

use cascade_durable::BitstreamStore;
use cascade_fpga::{
    wrapper_overhead_les, Bitstream, CompileError, FaultPlan, Toolchain, ToolchainFault,
};
use cascade_netlist::{fingerprint, synthesize, Netlist};
use cascade_sim::Design;
use cascade_trace::{Arg, Counter, Histogram, Registry, SpanRef, TraceSink, LATENCY_BUCKETS_S};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Locks a mutex, tolerating poison: the protected state here (caches,
/// queues, waiter maps) stays structurally valid at every await point, so
/// a panic elsewhere must not cascade into every thread that shares the
/// map (satellite of the fault-tolerance work: one panicked worker cannot
/// take the pool down).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Modeled latency of noticing a crashed compile worker.
const PANIC_LATENCY_S: f64 = 10.0;

/// Modeled latency of a cache hit: fetching a stored bitstream and
/// reprogramming the fabric, not rerunning the toolchain (paper Sec. 7
/// positions this as the biggest practical win for iterative development).
const CACHE_HIT_LATENCY_S: f64 = 1.0;

/// Modeled latency of a persistent-store hit: reading and verifying a
/// stored bitstream record from disk and reprogramming the fabric —
/// slower than the in-memory cache, vastly faster than a toolchain run.
/// This is what makes a server restart *warm*.
const STORE_HIT_LATENCY_S: f64 = 2.0;

/// Default bound on the bitstream cache (entries). Bitstreams hold a full
/// placed netlist, so an unbounded cache in a long-lived shared server
/// would grow without limit.
pub const DEFAULT_BITSTREAM_CACHE_CAPACITY: usize = 64;

// ---------------------------------------------------------------------
// Bounded LRU bitstream cache
// ---------------------------------------------------------------------

/// Bitstreams by content-hash cache key ([`Toolchain::cache_key`] over the
/// synthesized netlist's structural fingerprint), bounded with
/// least-recently-used eviction. Shared with worker threads, so a
/// superseded compile still warms the cache.
pub struct BitstreamCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

struct CacheInner {
    map: HashMap<u64, CacheEntry>,
    /// Monotonic use counter backing the LRU order.
    tick: u64,
}

struct CacheEntry {
    bitstream: Bitstream,
    used: u64,
}

impl BitstreamCache {
    /// An empty cache bounded to `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        BitstreamCache {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up a bitstream, refreshing its LRU position. Does not touch
    /// the hit/miss counters — those count whole compile requests, which
    /// the compile paths record themselves.
    fn get(&self, key: u64) -> Option<Bitstream> {
        let mut inner = lock(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.map.get_mut(&key)?;
        entry.used = tick;
        Some(entry.bitstream.clone())
    }

    /// Inserts a bitstream, evicting the least-recently-used entry when
    /// over capacity.
    fn insert(&self, key: u64, bitstream: Bitstream) {
        let mut inner = lock(&self.inner);
        inner.tick += 1;
        let used = inner.tick;
        inner.map.insert(key, CacheEntry { bitstream, used });
        while inner.map.len() > self.capacity {
            let Some(coldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.used)
                .map(|(k, _)| *k)
            else {
                break;
            };
            inner.map.remove(&coldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Cached entries currently held.
    pub fn len(&self) -> usize {
        lock(&self.inner).map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compile requests answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Compile requests that ran the full modeled toolchain flow.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted to stay under the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Compile outcome
// ---------------------------------------------------------------------

/// The outcome of one background compile.
#[derive(Debug)]
pub struct CompileOutcome {
    /// Program version this compile was submitted against.
    pub version: u64,
    pub result: Result<Bitstream, CompileError>,
    /// Modeled latency from submission to availability.
    pub latency: Duration,
    /// Whether the bitstream came from the content-hash cache (so the
    /// latency models a fetch + reprogram, not a toolchain run).
    pub cached: bool,
}

impl CompileOutcome {
    fn clone_for(&self, version: u64) -> CompileOutcome {
        CompileOutcome {
            version,
            result: self.result.clone(),
            latency: self.latency,
            cached: self.cached,
        }
    }
}

// ---------------------------------------------------------------------
// Compiler telemetry (registry-backed counters + trace spans)
// ---------------------------------------------------------------------

/// Registry-backed counters incremented by a [`BackgroundCompiler`].
///
/// The runtime owns these handles and re-attaches them whenever it
/// replaces its compiler (e.g. switching from a solo compiler to a shared
/// [`CompileQueue`]), which is what keeps `RuntimeStats` recovery counters
/// **monotonic across compiler swaps** — previously a swap silently reset
/// retries/watchdog/panic counts to zero.
#[derive(Clone, Debug)]
pub struct CompilerMetrics {
    /// Transient-failure retries dispatched.
    pub retries: Counter,
    /// Hung compiles cancelled by the modeled watchdog.
    pub watchdog_cancels: Counter,
    /// Worker-panic outcomes observed.
    pub worker_panics: Counter,
    /// Modeled end-to-end compile latency (successful outcomes), seconds.
    pub compile_latency: Histogram,
}

impl CompilerMetrics {
    /// Handles not attached to any registry (standalone compilers).
    pub fn detached() -> Self {
        CompilerMetrics {
            retries: Counter::detached(),
            watchdog_cancels: Counter::detached(),
            worker_panics: Counter::detached(),
            compile_latency: Histogram::detached(LATENCY_BUCKETS_S),
        }
    }

    /// Declares (or re-fetches — registration is idempotent) the compiler
    /// metric set in `registry`.
    pub fn from_registry(registry: &Registry) -> Self {
        CompilerMetrics {
            retries: registry.counter(
                "jit_compile_retries_total",
                "transient compile failures retried with backoff",
            ),
            watchdog_cancels: registry.counter(
                "jit_compile_watchdog_cancels_total",
                "hung compiles cancelled by the modeled watchdog",
            ),
            worker_panics: registry.counter(
                "jit_compile_worker_panics_total",
                "compile-worker panics contained and surfaced as outcomes",
            ),
            compile_latency: registry.histogram(
                "jit_compile_latency_seconds",
                "modeled latency from submission to a surfaced compile outcome",
                LATENCY_BUCKETS_S,
            ),
        }
    }
}

// ---------------------------------------------------------------------
// Shared compile pool (the server's K toolchain workers)
// ---------------------------------------------------------------------

struct Job {
    design: Arc<Design>,
    toolchain: Toolchain,
    version: u64,
    tx: Sender<CompileOutcome>,
    faults: FaultPlan,
    /// The submitting request's compile span (zeroed when the submitter
    /// has no request context). Dedup joins link back to the leader's.
    origin: SpanRef,
    /// Parent span id for events this job emits into the submitter's tree
    /// (the request root), so dedup joins stay connected to it.
    origin_parent: u64,
}

/// Submissions waiting on an in-flight compile of the same content hash:
/// `(runtime version, outcome channel)` per waiter.
type Waiters = Vec<(u64, Sender<CompileOutcome>)>;

/// One in-flight compile of a content-hash key: the leader's request span
/// (for dedup join links) and the submissions riding on its result.
struct InFlight {
    leader: SpanRef,
    waiters: Waiters,
}

struct QueueShared {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
    cache: Arc<BitstreamCache>,
    /// Persistent bitstream store behind the in-memory cache. Misses fall
    /// through to it before the toolchain runs; successful compiles write
    /// through to it. `None` for non-durable servers.
    store: Option<Arc<BitstreamStore>>,
    /// Content-hash keys being compiled right now, with the submissions
    /// waiting on each (deduplication of concurrent identical compiles).
    in_progress: Mutex<HashMap<u64, InFlight>>,
    coalesced: AtomicU64,
    dropped: AtomicU64,
    worker_panics: AtomicU64,
    capacity: usize,
    shutdown: AtomicBool,
    /// Server-wide trace sink for events that happen on pool workers
    /// (dedup joins). Host-clock only, so worker scheduling cannot perturb
    /// the deterministic export.
    trace: Mutex<TraceSink>,
}

/// A cloneable submission handle into a [`CompilePool`].
#[derive(Clone)]
pub struct CompileQueue {
    shared: Arc<QueueShared>,
}

impl CompileQueue {
    fn submit(&self, job: Job) {
        let mut q = lock(&self.shared.jobs);
        if self.shared.shutdown.load(Ordering::Acquire) {
            return; // tx drops; the submitter degrades to software-only
        }
        if q.len() >= self.shared.capacity {
            // Bounded queue: shed the oldest waiting job. Its submitter's
            // receiver disconnects and that session simply stays on its
            // software engine until it resubmits.
            q.pop_front();
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(job);
        self.shared.available.notify_one();
    }

    /// The shared bitstream cache.
    pub fn cache(&self) -> &Arc<BitstreamCache> {
        &self.shared.cache
    }

    /// The persistent bitstream store, when this pool is durable.
    pub fn store(&self) -> Option<&Arc<BitstreamStore>> {
        self.shared.store.as_ref()
    }

    /// Jobs waiting for a worker.
    pub fn depth(&self) -> usize {
        lock(&self.shared.jobs).len()
    }

    /// Submissions coalesced onto an identical in-flight compile.
    pub fn coalesced(&self) -> u64 {
        self.shared.coalesced.load(Ordering::Relaxed)
    }

    /// Jobs shed because the queue was full.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Worker panics contained by the pool (each job's submitter got a
    /// [`CompileError::WorkerPanic`] outcome and the worker kept serving).
    pub fn worker_panics(&self) -> u64 {
        self.shared.worker_panics.load(Ordering::Relaxed)
    }

    /// Installs the server-wide trace sink used for pool-side events
    /// (compile-dedup join links). Idempotent; affects subsequent jobs.
    pub fn set_trace(&self, trace: TraceSink) {
        *lock(&self.shared.trace) = trace;
    }
}

/// K worker threads draining a bounded queue of compile jobs into a shared
/// [`BitstreamCache`]. Owns the threads; dropping the pool shuts them down
/// (queued jobs are abandoned, in-flight compiles finish).
pub struct CompilePool {
    queue: CompileQueue,
    workers: Vec<JoinHandle<()>>,
}

impl CompilePool {
    /// Spawns `workers` toolchain workers over a queue bounded to
    /// `queue_capacity` jobs and a cache bounded to `cache_capacity`
    /// bitstreams.
    pub fn new(workers: usize, queue_capacity: usize, cache_capacity: usize) -> Self {
        Self::with_store(workers, queue_capacity, cache_capacity, None)
    }

    /// Like [`CompilePool::new`], additionally backing the in-memory
    /// cache with a persistent [`BitstreamStore`]: cache misses consult
    /// the store before running the toolchain, and successful compiles
    /// write through to it — so a restarted server skips recompiles.
    pub fn with_store(
        workers: usize,
        queue_capacity: usize,
        cache_capacity: usize,
        store: Option<Arc<BitstreamStore>>,
    ) -> Self {
        let shared = Arc::new(QueueShared {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            cache: Arc::new(BitstreamCache::new(cache_capacity)),
            store,
            in_progress: Mutex::new(HashMap::new()),
            coalesced: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            capacity: queue_capacity.max(1),
            shutdown: AtomicBool::new(false),
            trace: Mutex::new(TraceSink::disabled()),
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        CompilePool {
            queue: CompileQueue { shared },
            workers: handles,
        }
    }

    /// A submission handle for sessions.
    pub fn queue(&self) -> CompileQueue {
        self.queue.clone()
    }
}

impl Drop for CompilePool {
    fn drop(&mut self) {
        self.queue.shared.shutdown.store(true, Ordering::Release);
        self.queue.shared.available.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &QueueShared) {
    loop {
        let job = {
            let mut q = lock(&shared.jobs);
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = shared
                    .available
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Contain panics at the job boundary: the submitter learns its
        // compile died (a retryable outcome), the worker thread survives
        // to serve other tenants, and the in-progress entry is cleaned by
        // its guard. Cloned out of `job` first because the catch consumes
        // it.
        let tx = job.tx.clone();
        let version = job.version;
        let scale = job.toolchain.time_scale;
        if catch_unwind(AssertUnwindSafe(|| run_pooled_job(shared, job))).is_err() {
            shared.worker_panics.fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(panic_outcome(version, scale));
        }
    }
}

fn panic_outcome(version: u64, time_scale: f64) -> CompileOutcome {
    CompileOutcome {
        version,
        result: Err(CompileError::WorkerPanic),
        latency: Duration::from_secs_f64(PANIC_LATENCY_S * time_scale),
        cached: false,
    }
}

/// Removes the in-progress entry for `key` on unwind, failing coalesced
/// waiters with [`CompileError::WorkerPanic`] so they retry rather than
/// wait forever on a compile nobody is running.
struct InProgressGuard<'a> {
    shared: &'a QueueShared,
    key: u64,
    time_scale: f64,
    done: bool,
}

impl Drop for InProgressGuard<'_> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        let waiters = lock(&self.shared.in_progress)
            .remove(&self.key)
            .map(|f| f.waiters)
            .unwrap_or_default();
        for (version, tx) in waiters {
            let _ = tx.send(panic_outcome(version, self.time_scale));
        }
    }
}

fn run_pooled_job(shared: &QueueShared, job: Job) {
    let (netlist, tc, key, fp) = match synth_for_compile(&job.design, &job.toolchain, job.version) {
        Ok(parts) => parts,
        Err(outcome) => {
            let _ = job.tx.send(outcome);
            return;
        }
    };
    if let Some(bs) = shared.cache.get(key) {
        shared.cache.hits.fetch_add(1, Ordering::Relaxed);
        let _ = job
            .tx
            .send(hit_outcome(bs, &tc, job.version, CACHE_HIT_LATENCY_S));
        return;
    }
    if let Some(store) = &shared.store {
        // Warm-restart path: the store carries toolchain outputs from a
        // previous server lifetime; the fingerprint check proves they
        // belong to this netlist before they are served.
        if let Some(bs) = store.load(key, fp, Arc::clone(&netlist)) {
            shared.cache.insert(key, bs.clone());
            shared.cache.hits.fetch_add(1, Ordering::Relaxed);
            let _ = job
                .tx
                .send(hit_outcome(bs, &tc, job.version, STORE_HIT_LATENCY_S));
            return;
        }
    }
    {
        let mut ip = lock(&shared.in_progress);
        if let Some(inflight) = ip.get_mut(&key) {
            // An identical compile is running: ride on its result. The
            // join is recorded as a span *link* from the joiner's compile
            // span to the leader's — the causal edge dedup would otherwise
            // erase from the trace.
            let leader = inflight.leader;
            inflight.waiters.push((job.version, job.tx));
            shared.coalesced.fetch_add(1, Ordering::Relaxed);
            drop(ip);
            if job.origin.is_some() {
                let trace = lock(&shared.trace).clone();
                trace.host_instant_ctx(
                    job.origin.tenant,
                    "compile",
                    "compile_dedup_join",
                    job.origin,
                    job.origin_parent,
                    leader.span,
                    &[
                        ("leader_req", Arg::U64(leader.req)),
                        ("leader_tenant", Arg::U64(leader.tenant)),
                    ],
                );
            }
            return;
        }
        ip.insert(
            key,
            InFlight {
                leader: job.origin,
                waiters: Vec::new(),
            },
        );
    }
    let mut guard = InProgressGuard {
        shared,
        key,
        time_scale: tc.time_scale,
        done: false,
    };
    if job.faults.next_worker_panic() {
        panic!("injected compile-worker panic");
    }
    let outcome = run_toolchain(
        netlist,
        &tc,
        key,
        fp,
        job.version,
        &shared.cache,
        shared.store.as_deref(),
        &job.faults,
    );
    let waiters = lock(&shared.in_progress)
        .remove(&key)
        .map(|f| f.waiters)
        .unwrap_or_default();
    guard.done = true;
    for (version, tx) in waiters {
        let _ = tx.send(outcome.clone_for(version));
    }
    let _ = job.tx.send(outcome);
}

// ---------------------------------------------------------------------
// Per-session background compiler
// ---------------------------------------------------------------------

/// How a [`BackgroundCompiler`] responds to transient compile failures:
/// bounded retry with exponential backoff, plus a modeled watchdog that
/// cancels runs which never surface an outcome. All times are in modeled
/// seconds on the same clock as compile latency (callers pre-scale by the
/// toolchain's `time_scale`).
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first try (total tries = 1 + this).
    pub max_retries: u32,
    /// First retry waits this long; each later retry doubles it.
    pub backoff_s: f64,
    /// A run with no outcome this long after submission is cancelled as
    /// hung and retried. `0` disables the watchdog.
    pub watchdog_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_s: 30.0,
            watchdog_s: 3600.0,
        }
    }
}

/// A single-slot background compiler (a newer submission supersedes an
/// in-flight one: its result will be dropped as stale). Standalone by
/// default; attach a [`CompileQueue`] to share a server-wide worker pool
/// and cache instead of spawning a thread per submission.
pub struct BackgroundCompiler {
    rx: Option<Receiver<CompileOutcome>>,
    handle: Option<JoinHandle<()>>,
    /// Wall time (modeled seconds) at submission.
    submitted_s: f64,
    submitted_version: u64,
    /// Completed outcome waiting for its modeled latency to elapse.
    staged: Option<CompileOutcome>,
    cache: Arc<BitstreamCache>,
    queue: Option<CompileQueue>,
    policy: RetryPolicy,
    faults: FaultPlan,
    /// The current submission, kept for re-dispatch on transient failure.
    job: Option<(Arc<Design>, Toolchain)>,
    /// Tries of the current submission so far (1 = first).
    attempts: u32,
    /// Registry-backed counters — handles outlive this compiler, so a
    /// compiler swap does not reset them.
    metrics: CompilerMetrics,
    /// Phase spans (synthesis, place-and-route, backoff) are emitted from
    /// `poll`, which runs on the session thread against the modeled clock
    /// — so traces stay deterministic even with pooled workers.
    trace: TraceSink,
    /// Trace track (serve session id; 0 standalone).
    track: u64,
    /// The current submission's request span (zeroed when the submitter
    /// has no request context): compile spans and pooled jobs carry it so
    /// one request's compile work stays in its span tree.
    origin: SpanRef,
    /// Parent span id for emitted compile spans (the request root).
    origin_parent: u64,
}

impl Default for BackgroundCompiler {
    fn default() -> Self {
        Self::new()
    }
}

impl BackgroundCompiler {
    /// An idle compiler with a private, default-bounded cache.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_BITSTREAM_CACHE_CAPACITY)
    }

    /// An idle compiler with a private cache bounded to `cache_capacity`.
    pub fn with_capacity(cache_capacity: usize) -> Self {
        Self::build(Arc::new(BitstreamCache::new(cache_capacity)), None)
    }

    /// An idle compiler submitting into a shared pool (the pool's cache
    /// replaces the private one).
    pub fn with_queue(queue: CompileQueue) -> Self {
        Self::build(Arc::clone(queue.cache()), Some(queue))
    }

    fn build(cache: Arc<BitstreamCache>, queue: Option<CompileQueue>) -> Self {
        BackgroundCompiler {
            rx: None,
            handle: None,
            submitted_s: 0.0,
            submitted_version: 0,
            staged: None,
            cache,
            queue,
            policy: RetryPolicy::default(),
            faults: FaultPlan::none(),
            job: None,
            attempts: 0,
            metrics: CompilerMetrics::detached(),
            trace: TraceSink::disabled(),
            track: 0,
            origin: SpanRef::default(),
            origin_parent: 0,
        }
    }

    /// Installs the retry policy and fault schedule (idempotent; applies
    /// to subsequent submissions).
    pub fn configure(&mut self, policy: RetryPolicy, faults: FaultPlan) {
        self.policy = policy;
        self.faults = faults;
    }

    /// Attaches telemetry: counters to increment (handles shared with the
    /// owner, so they survive compiler replacement) and a trace sink +
    /// track for phase spans.
    pub fn attach_telemetry(&mut self, metrics: CompilerMetrics, trace: TraceSink, track: u64) {
        self.metrics = metrics;
        self.trace = trace;
        self.track = track;
    }

    /// Attributes the *next* submission (and its retries) to a request
    /// span: emitted compile spans carry `origin` with `parent`, and
    /// pooled jobs carry `origin` so dedup joins can link to it. A default
    /// `origin` clears attribution.
    pub fn set_origin(&mut self, origin: SpanRef, parent: u64) {
        self.origin = origin;
        self.origin_parent = parent;
    }

    /// Transient-failure retries dispatched so far.
    pub fn retries(&self) -> u64 {
        self.metrics.retries.get()
    }

    /// Hung compiles cancelled by the watchdog so far.
    pub fn watchdog_cancels(&self) -> u64 {
        self.metrics.watchdog_cancels.get()
    }

    /// Worker-panic outcomes observed by this compiler.
    pub fn worker_panics(&self) -> u64 {
        self.metrics.worker_panics.get()
    }

    /// Compiles whose synthesized netlist + toolchain matched a cached
    /// bitstream (and so returned in ~[`CACHE_HIT_LATENCY_S`]). Shared
    /// across sessions when pooled.
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Compiles that ran the full modeled toolchain flow.
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Bitstreams evicted from the (bounded) cache.
    pub fn cache_evictions(&self) -> u64 {
        self.cache.evictions()
    }

    /// Whether a compile is in flight or staged.
    pub fn busy(&self) -> bool {
        self.rx.is_some() || self.staged.is_some()
    }

    /// The version of the in-flight/staged compile.
    pub fn version(&self) -> u64 {
        self.submitted_version
    }

    /// Submits a design for compilation with the Cascade MMIO wrapper's
    /// overhead charged to area and latency. Supersedes any prior
    /// submission.
    pub fn submit(&mut self, design: Arc<Design>, toolchain: Toolchain, version: u64, wall_s: f64) {
        self.submitted_version = version;
        self.attempts = 1;
        self.job = Some((Arc::clone(&design), toolchain.clone()));
        self.dispatch(design, toolchain, wall_s);
    }

    fn dispatch(&mut self, design: Arc<Design>, toolchain: Toolchain, at_s: f64) {
        let (tx, rx) = channel();
        let version = self.submitted_version;
        let faults = self.faults.clone();
        if let Some(queue) = &self.queue {
            queue.submit(Job {
                design,
                toolchain,
                version,
                tx,
                faults,
                origin: self.origin,
                origin_parent: self.origin_parent,
            });
            self.handle = None;
        } else {
            let cache = Arc::clone(&self.cache);
            let scale = toolchain.time_scale;
            let handle = std::thread::spawn(move || {
                // The solo worker contains its own panics (the pooled
                // equivalent lives in `worker_loop`).
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    compile_with_wrapper(&design, &toolchain, version, &cache, &faults)
                }))
                .unwrap_or_else(|_| panic_outcome(version, scale));
                let _ = tx.send(outcome);
            });
            self.handle = Some(handle);
        }
        self.rx = Some(rx);
        self.submitted_s = at_s;
        self.staged = None;
    }

    /// Moves a completed worker result into the staging slot. A
    /// disconnected channel (pool shut down or shed the job) stages a
    /// transient failure so the retry policy decides what happens next.
    fn pump(&mut self) {
        if self.staged.is_some() {
            return;
        }
        let Some(rx) = &self.rx else { return };
        match rx.try_recv() {
            Ok(outcome) => {
                self.staged = Some(outcome);
                self.rx = None;
                if let Some(h) = self.handle.take() {
                    let _ = h.join();
                }
            }
            Err(TryRecvError::Empty) => {}
            Err(TryRecvError::Disconnected) => {
                self.rx = None;
                self.handle = None;
                self.staged = Some(CompileOutcome {
                    version: self.submitted_version,
                    result: Err(CompileError::TransientFault(
                        "compile job shed by the pool".to_string(),
                    )),
                    latency: Duration::ZERO,
                    cached: false,
                });
            }
        }
    }

    /// Whether the current run cannot surface an outcome by its watchdog
    /// deadline (either nothing has arrived, or what arrived carries a
    /// modeled latency past the deadline — a hung place-and-route).
    fn watchdog_expired(&self, wall_s: f64) -> bool {
        if self.policy.watchdog_s <= 0.0 || !self.busy() {
            return false;
        }
        let deadline = self.submitted_s + self.policy.watchdog_s;
        if wall_s < deadline {
            return false;
        }
        match &self.staged {
            Some(o) => self.submitted_s + o.latency.as_secs_f64() > deadline,
            None => true,
        }
    }

    /// Polls the worker and, when the modeled latency has elapsed at
    /// `wall_s`, returns the outcome. Transient failures (faults, hangs,
    /// worker panics, shed jobs) are retried with exponential backoff up
    /// to the policy bound and only then surfaced; terminal design errors
    /// surface immediately.
    pub fn poll(&mut self, wall_s: f64) -> Option<CompileOutcome> {
        self.pump();
        if self.watchdog_expired(wall_s) {
            self.metrics.watchdog_cancels.inc();
            self.emit_attempt(self.policy.watchdog_s, Some("watchdog: toolchain hang"));
            self.rx = None;
            self.handle = None;
            self.staged = None;
            return self.retry_or_surface(CompileError::ToolchainHang, wall_s);
        }
        let ready = self
            .staged
            .as_ref()
            .map(|o| wall_s >= self.submitted_s + o.latency.as_secs_f64())
            .unwrap_or(false);
        if !ready {
            return None;
        }
        let outcome = self.staged.take()?;
        if outcome.version == self.submitted_version {
            if let Err(e) = &outcome.result {
                if e.is_transient() {
                    if matches!(e, CompileError::WorkerPanic) {
                        self.metrics.worker_panics.inc();
                    }
                    self.emit_attempt(outcome.latency.as_secs_f64(), Some(&e.to_string()));
                    return self.retry_or_surface(e.clone(), wall_s);
                }
            }
        }
        self.job = None;
        let latency_s = outcome.latency.as_secs_f64();
        self.metrics.compile_latency.observe(latency_s);
        if outcome.cached {
            self.emit_cache_hit(latency_s);
        } else {
            let err = outcome.result.as_ref().err().map(|e| e.to_string());
            self.emit_attempt(latency_s, err.as_deref());
        }
        Some(outcome)
    }

    /// Emits the synthesis + place-and-route spans of one toolchain
    /// attempt, starting at the attempt's dispatch time on the modeled
    /// clock. The modeled toolchain doesn't split its latency, so the
    /// trace uses a fixed 10%/90% synthesis/P&R proportion.
    fn emit_attempt(&self, dur_s: f64, error: Option<&str>) {
        if !self.trace.enabled() {
            return;
        }
        let start_ns = (self.submitted_s * 1e9) as u64;
        let total_ns = (dur_s.max(0.0) * 1e9) as u64;
        let synth_ns = total_ns / 10;
        let ok = error.is_none();
        let args: &[(&str, Arg)] = &[
            ("version", Arg::U64(self.submitted_version)),
            ("attempt", Arg::U64(self.attempts as u64)),
            ("ok", Arg::Bool(ok)),
            ("error", Arg::Str(error.unwrap_or(""))),
        ];
        self.trace.span_ctx(
            self.track,
            "compile",
            "synthesize",
            start_ns,
            synth_ns,
            self.origin,
            self.origin_parent,
            args,
        );
        self.trace.span_ctx(
            self.track,
            "compile",
            "place_route",
            start_ns + synth_ns,
            total_ns - synth_ns,
            self.origin,
            self.origin_parent,
            args,
        );
    }

    /// Emits the span of a content-hash cache hit (fetch + reprogram).
    fn emit_cache_hit(&self, dur_s: f64) {
        if !self.trace.enabled() {
            return;
        }
        self.trace.span_ctx(
            self.track,
            "compile",
            "bitstream_cache_hit",
            (self.submitted_s * 1e9) as u64,
            (dur_s.max(0.0) * 1e9) as u64,
            self.origin,
            self.origin_parent,
            &[("version", Arg::U64(self.submitted_version))],
        );
    }

    /// Re-dispatches the current submission after a transient failure, or
    /// surfaces the failure once the retry budget is spent.
    fn retry_or_surface(&mut self, err: CompileError, wall_s: f64) -> Option<CompileOutcome> {
        let job = self.job.clone();
        match job {
            Some((design, toolchain)) if self.attempts <= self.policy.max_retries => {
                let backoff = self.policy.backoff_s * f64::powi(2.0, self.attempts as i32 - 1);
                self.attempts += 1;
                self.metrics.retries.inc();
                if self.trace.enabled() {
                    self.trace.span_ctx(
                        self.track,
                        "compile",
                        "backoff",
                        (wall_s * 1e9) as u64,
                        (backoff.max(0.0) * 1e9) as u64,
                        self.origin,
                        self.origin_parent,
                        &[
                            ("version", Arg::U64(self.submitted_version)),
                            ("next_attempt", Arg::U64(self.attempts as u64)),
                            ("error", Arg::Str(&err.to_string())),
                        ],
                    );
                }
                self.dispatch(design, toolchain, wall_s + backoff);
                None
            }
            _ => {
                self.job = None;
                Some(CompileOutcome {
                    version: self.submitted_version,
                    result: Err(err),
                    latency: Duration::ZERO,
                    cached: false,
                })
            }
        }
    }

    /// The modeled wall-clock second at which the staged result becomes
    /// available, if known.
    pub fn ready_at(&self) -> Option<f64> {
        self.staged
            .as_ref()
            .map(|o| self.submitted_s + o.latency.as_secs_f64())
    }

    /// The earliest modeled second at which `poll` could act: the staged
    /// result's ready time or the watchdog deadline, whichever is sooner.
    /// Unlike [`BackgroundCompiler::ready_at`], this is always finite
    /// while a compile is in flight (hung runs are bounded by the
    /// watchdog), so schedulers can sleep until it safely.
    pub fn wake_at(&self) -> Option<f64> {
        let ready = self.ready_at();
        let dog = (self.policy.watchdog_s > 0.0 && self.busy())
            .then_some(self.submitted_s + self.policy.watchdog_s);
        match (ready, dog) {
            (Some(r), Some(d)) => Some(r.min(d)),
            (r, d) => r.or(d),
        }
    }

    /// Blocks the calling thread until the worker finishes (test support;
    /// the modeled latency gate still applies to `poll`).
    pub fn wait_worker(&mut self) {
        if let Some(rx) = &self.rx {
            if let Ok(outcome) = rx.recv() {
                self.staged = Some(outcome);
            }
            self.rx = None;
            if let Some(h) = self.handle.take() {
                let _ = h.join();
            }
        }
    }
}

// ---------------------------------------------------------------------
// The compile flow (shared by solo and pooled workers)
// ---------------------------------------------------------------------

/// Synthesis plus cache-key derivation: the common prefix of every compile.
/// The key is a content hash of the synthesized netlist (plus toolchain
/// knobs), so semantically identical resubmissions — a re-eval of unchanged
/// source, a whitespace edit, another tenant running the same program —
/// share one cache entry.
// The large `Err` is deliberate: a synthesis failure IS a compile outcome
// (cold path), not an error to box and rethrow.
#[allow(clippy::type_complexity, clippy::result_large_err)]
fn synth_for_compile(
    design: &Design,
    toolchain: &Toolchain,
    version: u64,
) -> Result<(Arc<Netlist>, Toolchain, u64, u64), CompileOutcome> {
    let netlist = match synthesize(design) {
        Ok(nl) => Arc::new(nl),
        Err(e) => {
            return Err(CompileOutcome {
                version,
                result: Err(CompileError::Synth(e)),
                // Synthesis errors surface early in a real flow.
                latency: Duration::from_secs(30),
                cached: false,
            });
        }
    };
    let mut tc = toolchain.clone();
    tc.overhead_les = wrapper_overhead_les(&netlist);
    let fp = fingerprint(&netlist);
    let key = tc.cache_key(fp);
    Ok((netlist, tc, key, fp))
}

fn hit_outcome(
    mut bitstream: Bitstream,
    tc: &Toolchain,
    version: u64,
    base_latency_s: f64,
) -> CompileOutcome {
    let latency = Duration::from_secs_f64(base_latency_s * tc.time_scale);
    bitstream.modeled_duration = latency;
    CompileOutcome {
        version,
        result: Ok(bitstream),
        latency,
        cached: true,
    }
}

/// Place-and-route with modeled latency; successful bitstreams enter the
/// cache. Failures carry a modeled latency too — a timing-closure failure
/// is only discovered after place-and-route (paper Sec. 6.4).
#[allow(clippy::too_many_arguments)]
fn run_toolchain(
    netlist: Arc<Netlist>,
    tc: &Toolchain,
    key: u64,
    fp: u64,
    version: u64,
    cache: &BitstreamCache,
    store: Option<&BitstreamStore>,
    faults: &FaultPlan,
) -> CompileOutcome {
    cache.misses.fetch_add(1, Ordering::Relaxed);
    let area = cascade_netlist::estimate_area(&netlist);
    let mut padded = area;
    padded.logic_elements += tc.overhead_les;
    let full_latency = tc.modeled_duration(&padded, netlist.cell_count());
    match faults.next_toolchain_fault() {
        Some(ToolchainFault::Transient) => {
            // A mid-flight infrastructure failure: half the run elapsed
            // before the toolchain died.
            return CompileOutcome {
                version,
                result: Err(CompileError::TransientFault(
                    "injected toolchain fault mid-place-and-route".to_string(),
                )),
                latency: Duration::from_secs_f64(full_latency.as_secs_f64() * 0.5),
                cached: false,
            };
        }
        Some(ToolchainFault::Hang) => {
            // The run never surfaces: an unreachable ready time models a
            // toolchain stuck in place-and-route. Only the submitter's
            // watchdog recovers from this.
            return CompileOutcome {
                version,
                result: Err(CompileError::ToolchainHang),
                latency: Duration::MAX,
                cached: false,
            };
        }
        None => {}
    }
    match tc.compile_netlist(netlist) {
        Ok(bs) => {
            cache.insert(key, bs.clone());
            if let Some(store) = store {
                store.save(key, fp, &bs);
            }
            CompileOutcome {
                version,
                result: Ok(bs),
                latency: full_latency,
                cached: false,
            }
        }
        Err(e @ CompileError::DoesNotFit { .. }) => CompileOutcome {
            version,
            result: Err(e),
            // Fit checks fail at the start of place-and-route.
            latency: Duration::from_secs_f64(full_latency.as_secs_f64() * 0.2),
            cached: false,
        },
        Err(e) => CompileOutcome {
            version,
            result: Err(e),
            latency: full_latency,
            cached: false,
        },
    }
}

/// Runs the full solo flow: synthesis, wrapper-overhead accounting, cache
/// lookup, placement, timing.
fn compile_with_wrapper(
    design: &Design,
    toolchain: &Toolchain,
    version: u64,
    cache: &BitstreamCache,
    faults: &FaultPlan,
) -> CompileOutcome {
    if faults.next_worker_panic() {
        panic!("injected compile-worker panic");
    }
    let (netlist, tc, key, fp) = match synth_for_compile(design, toolchain, version) {
        Ok(parts) => parts,
        Err(outcome) => return outcome,
    };
    if let Some(bs) = cache.get(key) {
        cache.hits.fetch_add(1, Ordering::Relaxed);
        return hit_outcome(bs, &tc, version, CACHE_HIT_LATENCY_S);
    }
    // The solo (single-user REPL) flow has no persistent store: warm
    // restarts are a property of the pooled server.
    run_toolchain(netlist, &tc, key, fp, version, cache, None, faults)
}
