//! The background compilation pipeline.
//!
//! When the runtime (re)builds its IR, it hands the user-logic subprogram to
//! a worker thread running the virtual toolchain. Execution continues in
//! software; when the bitstream is ready — and the *modeled* compile
//! latency has elapsed on the virtual wall clock — the runtime swaps the
//! software engine for a hardware engine. From the user's perspective the
//! program simply gets faster.

use cascade_fpga::{wrapper_overhead_les, Bitstream, CompileError, Toolchain};
use cascade_netlist::{fingerprint, synthesize};
use cascade_sim::Design;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Bitstreams by content-hash cache key ([`Toolchain::cache_key`] over the
/// synthesized netlist's structural fingerprint). Shared with worker
/// threads, so a superseded compile still warms the cache.
type BitstreamCache = Arc<Mutex<HashMap<u64, Bitstream>>>;

/// Modeled latency of a cache hit: fetching a stored bitstream and
/// reprogramming the fabric, not rerunning the toolchain (paper Sec. 7
/// positions this as the biggest practical win for iterative development).
const CACHE_HIT_LATENCY_S: f64 = 1.0;

/// The outcome of one background compile.
#[derive(Debug)]
pub struct CompileOutcome {
    /// Program version this compile was submitted against.
    pub version: u64,
    pub result: Result<Bitstream, CompileError>,
    /// Modeled latency from submission to availability.
    pub latency: Duration,
}

/// A single-slot background compiler (a newer submission supersedes an
/// in-flight one: its result will be dropped as stale).
pub struct BackgroundCompiler {
    rx: Option<Receiver<CompileOutcome>>,
    handle: Option<JoinHandle<()>>,
    /// Wall time (modeled seconds) at submission.
    submitted_s: f64,
    submitted_version: u64,
    /// Completed outcome waiting for its modeled latency to elapse.
    staged: Option<CompileOutcome>,
    cache: BitstreamCache,
    cache_hits: Arc<AtomicU64>,
    cache_misses: Arc<AtomicU64>,
}

impl Default for BackgroundCompiler {
    fn default() -> Self {
        Self::new()
    }
}

impl BackgroundCompiler {
    /// An idle compiler.
    pub fn new() -> Self {
        BackgroundCompiler {
            rx: None,
            handle: None,
            submitted_s: 0.0,
            submitted_version: 0,
            staged: None,
            cache: Arc::default(),
            cache_hits: Arc::default(),
            cache_misses: Arc::default(),
        }
    }

    /// Compiles whose synthesized netlist + toolchain matched a cached
    /// bitstream (and so returned in ~[`CACHE_HIT_LATENCY_S`]).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Compiles that ran the full modeled toolchain flow.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Whether a compile is in flight or staged.
    pub fn busy(&self) -> bool {
        self.rx.is_some() || self.staged.is_some()
    }

    /// The version of the in-flight/staged compile.
    pub fn version(&self) -> u64 {
        self.submitted_version
    }

    /// Submits a design for compilation with the Cascade MMIO wrapper's
    /// overhead charged to area and latency. Supersedes any prior
    /// submission.
    pub fn submit(&mut self, design: Arc<Design>, toolchain: Toolchain, version: u64, wall_s: f64) {
        let (tx, rx) = channel();
        let cache = Arc::clone(&self.cache);
        let hits = Arc::clone(&self.cache_hits);
        let misses = Arc::clone(&self.cache_misses);
        let handle = std::thread::spawn(move || {
            let outcome =
                compile_with_wrapper(&design, &toolchain, version, &cache, &hits, &misses);
            let _ = tx.send(outcome);
        });
        self.rx = Some(rx);
        self.handle = Some(handle);
        self.submitted_s = wall_s;
        self.submitted_version = version;
        self.staged = None;
    }

    /// Polls the worker and, when the modeled latency has elapsed at
    /// `wall_s`, returns the outcome.
    pub fn poll(&mut self, wall_s: f64) -> Option<CompileOutcome> {
        if self.staged.is_none() {
            if let Some(rx) = &self.rx {
                match rx.try_recv() {
                    Ok(outcome) => {
                        self.staged = Some(outcome);
                        self.rx = None;
                        if let Some(h) = self.handle.take() {
                            let _ = h.join();
                        }
                    }
                    Err(TryRecvError::Empty) => {}
                    Err(TryRecvError::Disconnected) => {
                        self.rx = None;
                    }
                }
            }
        }
        let ready = self
            .staged
            .as_ref()
            .map(|o| wall_s >= self.submitted_s + o.latency.as_secs_f64())
            .unwrap_or(false);
        if ready {
            self.staged.take()
        } else {
            None
        }
    }

    /// The modeled wall-clock second at which the staged result becomes
    /// available, if known.
    pub fn ready_at(&self) -> Option<f64> {
        self.staged
            .as_ref()
            .map(|o| self.submitted_s + o.latency.as_secs_f64())
    }

    /// Blocks the calling thread until the worker finishes (test support;
    /// the modeled latency gate still applies to `poll`).
    pub fn wait_worker(&mut self) {
        if let Some(rx) = &self.rx {
            if let Ok(outcome) = rx.recv() {
                self.staged = Some(outcome);
            }
            self.rx = None;
            if let Some(h) = self.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// Runs the full flow: synthesis, wrapper-overhead accounting, placement,
/// timing. Failures carry a modeled latency too — a timing-closure failure
/// is only discovered after place-and-route (paper Sec. 6.4).
///
/// The cache lookup happens *after* synthesis: the key is a content hash of
/// the synthesized netlist (plus toolchain knobs), so semantically identical
/// resubmissions — a re-eval of unchanged source, a whitespace edit — skip
/// place-and-route and the minutes of modeled latency that dominate it.
fn compile_with_wrapper(
    design: &Design,
    toolchain: &Toolchain,
    version: u64,
    cache: &BitstreamCache,
    hits: &AtomicU64,
    misses: &AtomicU64,
) -> CompileOutcome {
    let netlist = match synthesize(design) {
        Ok(nl) => Arc::new(nl),
        Err(e) => {
            return CompileOutcome {
                version,
                result: Err(CompileError::Synth(e)),
                // Synthesis errors surface early in a real flow.
                latency: Duration::from_secs(30),
            };
        }
    };
    let mut tc = toolchain.clone();
    tc.overhead_les = wrapper_overhead_les(&netlist);
    let key = tc.cache_key(fingerprint(&netlist));
    if let Some(bs) = cache.lock().expect("bitstream cache poisoned").get(&key) {
        hits.fetch_add(1, Ordering::Relaxed);
        let latency = Duration::from_secs_f64(CACHE_HIT_LATENCY_S * tc.time_scale);
        let mut bs = bs.clone();
        bs.modeled_duration = latency;
        return CompileOutcome {
            version,
            result: Ok(bs),
            latency,
        };
    }
    misses.fetch_add(1, Ordering::Relaxed);
    let area = cascade_netlist::estimate_area(&netlist);
    let mut padded = area;
    padded.logic_elements += tc.overhead_les;
    let full_latency = tc.modeled_duration(&padded, netlist.cell_count());
    match tc.compile_netlist(Arc::clone(&netlist)) {
        Ok(bs) => {
            cache
                .lock()
                .expect("bitstream cache poisoned")
                .insert(key, bs.clone());
            CompileOutcome {
                version,
                result: Ok(bs),
                latency: full_latency,
            }
        }
        Err(e @ CompileError::DoesNotFit { .. }) => CompileOutcome {
            version,
            result: Err(e),
            // Fit checks fail at the start of place-and-route.
            latency: Duration::from_secs_f64(full_latency.as_secs_f64() * 0.2),
        },
        Err(e) => CompileOutcome {
            version,
            result: Err(e),
            latency: full_latency,
        },
    }
}
