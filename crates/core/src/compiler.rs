//! The background compilation pipeline.
//!
//! When the runtime (re)builds its IR, it hands the user-logic subprogram to
//! the virtual toolchain. Execution continues in software; when the
//! bitstream is ready — and the *modeled* compile latency has elapsed on the
//! virtual wall clock — the runtime swaps the software engine for a hardware
//! engine. From the user's perspective the program simply gets faster.
//!
//! Two execution arrangements share this module:
//!
//! - **Solo** (the single-user REPL): each [`BackgroundCompiler`] spawns a
//!   worker thread per submission, with a private [`BitstreamCache`].
//! - **Pooled** (the multi-tenant server): a [`CompilePool`] owns K worker
//!   threads, a bounded job queue, and one shared cache; every session's
//!   `BackgroundCompiler` submits through a [`CompileQueue`] handle.
//!   Concurrent submissions of the same synthesized netlist are coalesced
//!   by content hash — one compile runs, every waiter gets the result.

use cascade_fpga::{wrapper_overhead_les, Bitstream, CompileError, Toolchain};
use cascade_netlist::{fingerprint, synthesize, Netlist};
use cascade_sim::Design;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Modeled latency of a cache hit: fetching a stored bitstream and
/// reprogramming the fabric, not rerunning the toolchain (paper Sec. 7
/// positions this as the biggest practical win for iterative development).
const CACHE_HIT_LATENCY_S: f64 = 1.0;

/// Default bound on the bitstream cache (entries). Bitstreams hold a full
/// placed netlist, so an unbounded cache in a long-lived shared server
/// would grow without limit.
pub const DEFAULT_BITSTREAM_CACHE_CAPACITY: usize = 64;

// ---------------------------------------------------------------------
// Bounded LRU bitstream cache
// ---------------------------------------------------------------------

/// Bitstreams by content-hash cache key ([`Toolchain::cache_key`] over the
/// synthesized netlist's structural fingerprint), bounded with
/// least-recently-used eviction. Shared with worker threads, so a
/// superseded compile still warms the cache.
pub struct BitstreamCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

struct CacheInner {
    map: HashMap<u64, CacheEntry>,
    /// Monotonic use counter backing the LRU order.
    tick: u64,
}

struct CacheEntry {
    bitstream: Bitstream,
    used: u64,
}

impl BitstreamCache {
    /// An empty cache bounded to `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        BitstreamCache {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up a bitstream, refreshing its LRU position. Does not touch
    /// the hit/miss counters — those count whole compile requests, which
    /// the compile paths record themselves.
    fn get(&self, key: u64) -> Option<Bitstream> {
        let mut inner = self.inner.lock().expect("bitstream cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.map.get_mut(&key)?;
        entry.used = tick;
        Some(entry.bitstream.clone())
    }

    /// Inserts a bitstream, evicting the least-recently-used entry when
    /// over capacity.
    fn insert(&self, key: u64, bitstream: Bitstream) {
        let mut inner = self.inner.lock().expect("bitstream cache poisoned");
        inner.tick += 1;
        let used = inner.tick;
        inner.map.insert(key, CacheEntry { bitstream, used });
        while inner.map.len() > self.capacity {
            let Some(coldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.used)
                .map(|(k, _)| *k)
            else {
                break;
            };
            inner.map.remove(&coldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Cached entries currently held.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("bitstream cache poisoned")
            .map
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compile requests answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Compile requests that ran the full modeled toolchain flow.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted to stay under the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Compile outcome
// ---------------------------------------------------------------------

/// The outcome of one background compile.
#[derive(Debug)]
pub struct CompileOutcome {
    /// Program version this compile was submitted against.
    pub version: u64,
    pub result: Result<Bitstream, CompileError>,
    /// Modeled latency from submission to availability.
    pub latency: Duration,
}

impl CompileOutcome {
    fn clone_for(&self, version: u64) -> CompileOutcome {
        CompileOutcome {
            version,
            result: self.result.clone(),
            latency: self.latency,
        }
    }
}

// ---------------------------------------------------------------------
// Shared compile pool (the server's K toolchain workers)
// ---------------------------------------------------------------------

struct Job {
    design: Arc<Design>,
    toolchain: Toolchain,
    version: u64,
    tx: Sender<CompileOutcome>,
}

/// Submissions waiting on an in-flight compile of the same content hash:
/// `(runtime version, outcome channel)` per waiter.
type Waiters = Vec<(u64, Sender<CompileOutcome>)>;

struct QueueShared {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
    cache: Arc<BitstreamCache>,
    /// Content-hash keys being compiled right now, with the submissions
    /// waiting on each (deduplication of concurrent identical compiles).
    in_progress: Mutex<HashMap<u64, Waiters>>,
    coalesced: AtomicU64,
    dropped: AtomicU64,
    capacity: usize,
    shutdown: AtomicBool,
}

/// A cloneable submission handle into a [`CompilePool`].
#[derive(Clone)]
pub struct CompileQueue {
    shared: Arc<QueueShared>,
}

impl CompileQueue {
    fn submit(&self, job: Job) {
        let mut q = self.shared.jobs.lock().expect("compile queue poisoned");
        if self.shared.shutdown.load(Ordering::Acquire) {
            return; // tx drops; the submitter degrades to software-only
        }
        if q.len() >= self.shared.capacity {
            // Bounded queue: shed the oldest waiting job. Its submitter's
            // receiver disconnects and that session simply stays on its
            // software engine until it resubmits.
            q.pop_front();
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(job);
        self.shared.available.notify_one();
    }

    /// The shared bitstream cache.
    pub fn cache(&self) -> &Arc<BitstreamCache> {
        &self.shared.cache
    }

    /// Jobs waiting for a worker.
    pub fn depth(&self) -> usize {
        self.shared
            .jobs
            .lock()
            .expect("compile queue poisoned")
            .len()
    }

    /// Submissions coalesced onto an identical in-flight compile.
    pub fn coalesced(&self) -> u64 {
        self.shared.coalesced.load(Ordering::Relaxed)
    }

    /// Jobs shed because the queue was full.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }
}

/// K worker threads draining a bounded queue of compile jobs into a shared
/// [`BitstreamCache`]. Owns the threads; dropping the pool shuts them down
/// (queued jobs are abandoned, in-flight compiles finish).
pub struct CompilePool {
    queue: CompileQueue,
    workers: Vec<JoinHandle<()>>,
}

impl CompilePool {
    /// Spawns `workers` toolchain workers over a queue bounded to
    /// `queue_capacity` jobs and a cache bounded to `cache_capacity`
    /// bitstreams.
    pub fn new(workers: usize, queue_capacity: usize, cache_capacity: usize) -> Self {
        let shared = Arc::new(QueueShared {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            cache: Arc::new(BitstreamCache::new(cache_capacity)),
            in_progress: Mutex::new(HashMap::new()),
            coalesced: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            capacity: queue_capacity.max(1),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        CompilePool {
            queue: CompileQueue { shared },
            workers: handles,
        }
    }

    /// A submission handle for sessions.
    pub fn queue(&self) -> CompileQueue {
        self.queue.clone()
    }
}

impl Drop for CompilePool {
    fn drop(&mut self) {
        self.queue.shared.shutdown.store(true, Ordering::Release);
        self.queue.shared.available.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &QueueShared) {
    loop {
        let job = {
            let mut q = shared.jobs.lock().expect("compile queue poisoned");
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = shared.available.wait(q).expect("compile queue poisoned");
            }
        };
        run_pooled_job(shared, job);
    }
}

fn run_pooled_job(shared: &QueueShared, job: Job) {
    let (netlist, tc, key) = match synth_for_compile(&job.design, &job.toolchain, job.version) {
        Ok(parts) => parts,
        Err(outcome) => {
            let _ = job.tx.send(outcome);
            return;
        }
    };
    if let Some(bs) = shared.cache.get(key) {
        shared.cache.hits.fetch_add(1, Ordering::Relaxed);
        let _ = job.tx.send(hit_outcome(bs, &tc, job.version));
        return;
    }
    {
        let mut ip = shared.in_progress.lock().expect("in-progress map poisoned");
        if let Some(waiters) = ip.get_mut(&key) {
            // An identical compile is running: ride on its result.
            waiters.push((job.version, job.tx));
            shared.coalesced.fetch_add(1, Ordering::Relaxed);
            return;
        }
        ip.insert(key, Vec::new());
    }
    let outcome = run_toolchain(netlist, &tc, key, job.version, &shared.cache);
    let waiters = shared
        .in_progress
        .lock()
        .expect("in-progress map poisoned")
        .remove(&key)
        .unwrap_or_default();
    for (version, tx) in waiters {
        let _ = tx.send(outcome.clone_for(version));
    }
    let _ = job.tx.send(outcome);
}

// ---------------------------------------------------------------------
// Per-session background compiler
// ---------------------------------------------------------------------

/// A single-slot background compiler (a newer submission supersedes an
/// in-flight one: its result will be dropped as stale). Standalone by
/// default; attach a [`CompileQueue`] to share a server-wide worker pool
/// and cache instead of spawning a thread per submission.
pub struct BackgroundCompiler {
    rx: Option<Receiver<CompileOutcome>>,
    handle: Option<JoinHandle<()>>,
    /// Wall time (modeled seconds) at submission.
    submitted_s: f64,
    submitted_version: u64,
    /// Completed outcome waiting for its modeled latency to elapse.
    staged: Option<CompileOutcome>,
    cache: Arc<BitstreamCache>,
    queue: Option<CompileQueue>,
}

impl Default for BackgroundCompiler {
    fn default() -> Self {
        Self::new()
    }
}

impl BackgroundCompiler {
    /// An idle compiler with a private, default-bounded cache.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_BITSTREAM_CACHE_CAPACITY)
    }

    /// An idle compiler with a private cache bounded to `cache_capacity`.
    pub fn with_capacity(cache_capacity: usize) -> Self {
        BackgroundCompiler {
            rx: None,
            handle: None,
            submitted_s: 0.0,
            submitted_version: 0,
            staged: None,
            cache: Arc::new(BitstreamCache::new(cache_capacity)),
            queue: None,
        }
    }

    /// An idle compiler submitting into a shared pool (the pool's cache
    /// replaces the private one).
    pub fn with_queue(queue: CompileQueue) -> Self {
        let cache = Arc::clone(queue.cache());
        BackgroundCompiler {
            rx: None,
            handle: None,
            submitted_s: 0.0,
            submitted_version: 0,
            staged: None,
            cache,
            queue: Some(queue),
        }
    }

    /// Compiles whose synthesized netlist + toolchain matched a cached
    /// bitstream (and so returned in ~[`CACHE_HIT_LATENCY_S`]). Shared
    /// across sessions when pooled.
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Compiles that ran the full modeled toolchain flow.
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Bitstreams evicted from the (bounded) cache.
    pub fn cache_evictions(&self) -> u64 {
        self.cache.evictions()
    }

    /// Whether a compile is in flight or staged.
    pub fn busy(&self) -> bool {
        self.rx.is_some() || self.staged.is_some()
    }

    /// The version of the in-flight/staged compile.
    pub fn version(&self) -> u64 {
        self.submitted_version
    }

    /// Submits a design for compilation with the Cascade MMIO wrapper's
    /// overhead charged to area and latency. Supersedes any prior
    /// submission.
    pub fn submit(&mut self, design: Arc<Design>, toolchain: Toolchain, version: u64, wall_s: f64) {
        let (tx, rx) = channel();
        if let Some(queue) = &self.queue {
            queue.submit(Job {
                design,
                toolchain,
                version,
                tx,
            });
            self.handle = None;
        } else {
            let cache = Arc::clone(&self.cache);
            let handle = std::thread::spawn(move || {
                let outcome = compile_with_wrapper(&design, &toolchain, version, &cache);
                let _ = tx.send(outcome);
            });
            self.handle = Some(handle);
        }
        self.rx = Some(rx);
        self.submitted_s = wall_s;
        self.submitted_version = version;
        self.staged = None;
    }

    /// Polls the worker and, when the modeled latency has elapsed at
    /// `wall_s`, returns the outcome.
    pub fn poll(&mut self, wall_s: f64) -> Option<CompileOutcome> {
        if self.staged.is_none() {
            if let Some(rx) = &self.rx {
                match rx.try_recv() {
                    Ok(outcome) => {
                        self.staged = Some(outcome);
                        self.rx = None;
                        if let Some(h) = self.handle.take() {
                            let _ = h.join();
                        }
                    }
                    Err(TryRecvError::Empty) => {}
                    Err(TryRecvError::Disconnected) => {
                        // Pool shut down or shed the job: no bitstream is
                        // coming; stay in software.
                        self.rx = None;
                    }
                }
            }
        }
        let ready = self
            .staged
            .as_ref()
            .map(|o| wall_s >= self.submitted_s + o.latency.as_secs_f64())
            .unwrap_or(false);
        if ready {
            self.staged.take()
        } else {
            None
        }
    }

    /// The modeled wall-clock second at which the staged result becomes
    /// available, if known.
    pub fn ready_at(&self) -> Option<f64> {
        self.staged
            .as_ref()
            .map(|o| self.submitted_s + o.latency.as_secs_f64())
    }

    /// Blocks the calling thread until the worker finishes (test support;
    /// the modeled latency gate still applies to `poll`).
    pub fn wait_worker(&mut self) {
        if let Some(rx) = &self.rx {
            if let Ok(outcome) = rx.recv() {
                self.staged = Some(outcome);
            }
            self.rx = None;
            if let Some(h) = self.handle.take() {
                let _ = h.join();
            }
        }
    }
}

// ---------------------------------------------------------------------
// The compile flow (shared by solo and pooled workers)
// ---------------------------------------------------------------------

/// Synthesis plus cache-key derivation: the common prefix of every compile.
/// The key is a content hash of the synthesized netlist (plus toolchain
/// knobs), so semantically identical resubmissions — a re-eval of unchanged
/// source, a whitespace edit, another tenant running the same program —
/// share one cache entry.
// The large `Err` is deliberate: a synthesis failure IS a compile outcome
// (cold path), not an error to box and rethrow.
#[allow(clippy::type_complexity, clippy::result_large_err)]
fn synth_for_compile(
    design: &Design,
    toolchain: &Toolchain,
    version: u64,
) -> Result<(Arc<Netlist>, Toolchain, u64), CompileOutcome> {
    let netlist = match synthesize(design) {
        Ok(nl) => Arc::new(nl),
        Err(e) => {
            return Err(CompileOutcome {
                version,
                result: Err(CompileError::Synth(e)),
                // Synthesis errors surface early in a real flow.
                latency: Duration::from_secs(30),
            });
        }
    };
    let mut tc = toolchain.clone();
    tc.overhead_les = wrapper_overhead_les(&netlist);
    let key = tc.cache_key(fingerprint(&netlist));
    Ok((netlist, tc, key))
}

fn hit_outcome(mut bitstream: Bitstream, tc: &Toolchain, version: u64) -> CompileOutcome {
    let latency = Duration::from_secs_f64(CACHE_HIT_LATENCY_S * tc.time_scale);
    bitstream.modeled_duration = latency;
    CompileOutcome {
        version,
        result: Ok(bitstream),
        latency,
    }
}

/// Place-and-route with modeled latency; successful bitstreams enter the
/// cache. Failures carry a modeled latency too — a timing-closure failure
/// is only discovered after place-and-route (paper Sec. 6.4).
fn run_toolchain(
    netlist: Arc<Netlist>,
    tc: &Toolchain,
    key: u64,
    version: u64,
    cache: &BitstreamCache,
) -> CompileOutcome {
    cache.misses.fetch_add(1, Ordering::Relaxed);
    let area = cascade_netlist::estimate_area(&netlist);
    let mut padded = area;
    padded.logic_elements += tc.overhead_les;
    let full_latency = tc.modeled_duration(&padded, netlist.cell_count());
    match tc.compile_netlist(netlist) {
        Ok(bs) => {
            cache.insert(key, bs.clone());
            CompileOutcome {
                version,
                result: Ok(bs),
                latency: full_latency,
            }
        }
        Err(e @ CompileError::DoesNotFit { .. }) => CompileOutcome {
            version,
            result: Err(e),
            // Fit checks fail at the start of place-and-route.
            latency: Duration::from_secs_f64(full_latency.as_secs_f64() * 0.2),
        },
        Err(e) => CompileOutcome {
            version,
            result: Err(e),
            latency: full_latency,
        },
    }
}

/// Runs the full solo flow: synthesis, wrapper-overhead accounting, cache
/// lookup, placement, timing.
fn compile_with_wrapper(
    design: &Design,
    toolchain: &Toolchain,
    version: u64,
    cache: &BitstreamCache,
) -> CompileOutcome {
    let (netlist, tc, key) = match synth_for_compile(design, toolchain, version) {
        Ok(parts) => parts,
        Err(outcome) => return outcome,
    };
    if let Some(bs) = cache.get(key) {
        cache.hits.fetch_add(1, Ordering::Relaxed);
        return hit_outcome(bs, &tc, version);
    }
    run_toolchain(netlist, &tc, key, version, cache)
}
