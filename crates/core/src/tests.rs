use crate::{CascadeError, EngineKind, ExecMode, JitConfig, Repl, ReplResponse, Runtime};
use cascade_bits::Bits;
use cascade_fpga::{Board, Device, Toolchain};

/// The running example as the REPL sees it (paper Fig. 3): stdlib
/// components referenced by hierarchical name, no ports on the root.
const ROL_DECL: &str = "module Rol(input wire [7:0] x, output wire [7:0] y);\n\
    assign y = (x == 8'h80) ? 8'h1 : (x<<1);\nendmodule";

const MAIN_ITEMS: &str = "reg [7:0] cnt = 1;\n\
    Rol r(.x(cnt));\n\
    always @(posedge clk.val)\n\
      if (pad.val == 0)\n\
        cnt <= r.y;\n\
    assign led.val = cnt;";

fn runtime(config: JitConfig) -> (Runtime, Board) {
    let board = Board::new();
    let rt = Runtime::new(board.clone(), config).expect("runtime");
    (rt, board)
}

fn no_compile_config() -> JitConfig {
    JitConfig {
        auto_compile: false,
        ..JitConfig::default()
    }
}

#[test]
fn empty_runtime_ticks() {
    let (mut rt, _) = runtime(no_compile_config());
    rt.run_ticks(5).unwrap();
    assert_eq!(rt.ticks(), 5);
    assert_eq!(rt.mode(), ExecMode::Idle);
}

#[test]
fn running_example_in_software() {
    let (mut rt, board) = runtime(no_compile_config());
    rt.eval(ROL_DECL).unwrap();
    rt.eval(MAIN_ITEMS).unwrap();
    assert_eq!(rt.mode(), ExecMode::Software);
    assert_eq!(board.leds().to_u64(), 1, "visible before any tick");
    rt.run_ticks(3).unwrap();
    assert_eq!(board.leds().to_u64(), 8);
    // Wraps after 8 ticks total.
    rt.run_ticks(5).unwrap();
    assert_eq!(board.leds().to_u64(), 1);
}

#[test]
fn button_press_pauses_animation() {
    let (mut rt, board) = runtime(no_compile_config());
    rt.eval(ROL_DECL).unwrap();
    rt.eval(MAIN_ITEMS).unwrap();
    rt.run_ticks(2).unwrap();
    assert_eq!(board.leds().to_u64(), 4);
    board.set_button(0, true);
    rt.run_ticks(3).unwrap();
    assert_eq!(board.leds().to_u64(), 4, "paused while pressed");
    board.set_button(0, false);
    rt.run_ticks(1).unwrap();
    assert_eq!(board.leds().to_u64(), 8);
}

#[test]
fn display_and_finish_from_software() {
    let (mut rt, _) = runtime(no_compile_config());
    rt.eval(
        "reg [3:0] c = 0;\n\
         always @(posedge clk.val) begin\n\
           c <= c + 1;\n\
           $display(\"c=%d\", c);\n\
           if (c == 2) $finish;\n\
         end",
    )
    .unwrap();
    rt.run_ticks(10).unwrap();
    assert!(rt.is_finished());
    let out = rt.drain_output();
    assert_eq!(out, vec!["c=0", "c=1", "c=2"]);
}

#[test]
fn eval_statement_runs_once() {
    let (mut rt, _) = runtime(no_compile_config());
    rt.eval("reg [7:0] x = 0;").unwrap();
    rt.eval("$display(\"hello %d\", x);").unwrap();
    let out = rt.drain_output();
    assert_eq!(out, vec!["hello 0"]);
    // Subsequent evals and ticks must not re-run the statement.
    rt.eval("reg [7:0] y = 0;").unwrap();
    rt.run_ticks(2).unwrap();
    assert!(rt.drain_output().is_empty());
}

#[test]
fn state_survives_incremental_eval() {
    let (mut rt, board) = runtime(no_compile_config());
    rt.eval("reg [7:0] cnt = 1;").unwrap();
    rt.eval("always @(posedge clk.val) cnt <= cnt + 1;")
        .unwrap();
    rt.run_ticks(5).unwrap();
    // cnt == 6 now; adding the LED hookup must not reset it (paper Sec. 3.5:
    // "cnt must be preserved rather than reset").
    rt.eval("assign led.val = cnt;").unwrap();
    rt.run_ticks(0).unwrap();
    assert_eq!(board.leds().to_u64(), 6);
    rt.run_ticks(1).unwrap();
    assert_eq!(board.leds().to_u64(), 7);
}

#[test]
fn eval_errors_leave_program_unchanged() {
    let (mut rt, board) = runtime(no_compile_config());
    rt.eval("reg [7:0] cnt = 1;").unwrap();
    rt.eval("assign led.val = cnt;").unwrap();
    assert!(rt.eval("assign led.val = bogus_name;").is_err());
    assert!(rt.eval("wire [3:0] w = $$;").is_err());
    assert!(
        rt.eval("module Led(input wire x); endmodule").is_err(),
        "stdlib redeclare"
    );
    rt.eval("always @(posedge clk.val) cnt <= cnt + 1;")
        .unwrap();
    rt.run_ticks(1).unwrap();
    assert_eq!(board.leds().to_u64(), 2);
}

#[test]
fn jit_migrates_to_hardware_and_results_match() {
    let config = JitConfig {
        open_loop: false,
        ..JitConfig::default()
    };
    let (mut rt, board) = runtime(config);
    rt.eval(ROL_DECL).unwrap();
    rt.eval(MAIN_ITEMS).unwrap();
    assert_eq!(rt.mode(), ExecMode::Software);
    rt.run_ticks(3).unwrap();
    assert_eq!(board.leds().to_u64(), 8);
    // Let the background compile finish, then advance the wall past the
    // modeled latency.
    rt.wait_for_compile_worker();
    let ready = rt.compile_ready_at().expect("compile staged");
    rt.advance_wall(ready - rt.wall_seconds() + 1.0);
    rt.run_ticks(1).unwrap();
    assert!(
        matches!(rt.mode(), ExecMode::Hardware | ExecMode::HardwareForwarded),
        "should have migrated, got {:?}",
        rt.mode()
    );
    // State carried over: 3 ticks happened before, so led continues.
    assert_eq!(board.leds().to_u64(), 16, "state migrated seamlessly");
    rt.run_ticks(4).unwrap();
    assert_eq!(board.leds().to_u64(), 1, "wraps after 8 total");
}

#[test]
fn open_loop_reaches_hardware_speed() {
    let (mut rt, board) = runtime(JitConfig::default());
    rt.eval(ROL_DECL).unwrap();
    rt.eval(MAIN_ITEMS).unwrap();
    rt.wait_for_compile_worker();
    let ready = rt.compile_ready_at().expect("staged");
    rt.advance_wall(ready - rt.wall_seconds() + 1.0);
    rt.run_ticks(1).unwrap();
    assert_eq!(rt.mode(), ExecMode::HardwareForwarded);
    let t0 = rt.ticks();
    let w0 = rt.wall_seconds();
    rt.run_ticks(100_000).unwrap();
    let rate = (rt.ticks() - t0) as f64 / (rt.wall_seconds() - w0);
    assert!(rt.stats().open_loop_active, "open loop should engage");
    // 50 MHz fabric: open loop should land within ~3x of native.
    assert!(rate > 15e6, "virtual clock rate {rate:.0} Hz too slow");
    assert_eq!(board.leds().to_u64(), board.leds().to_u64());
}

#[test]
fn display_still_works_from_hardware() {
    let (mut rt, _) = runtime(JitConfig::default());
    rt.eval(
        "reg [15:0] c = 0;\n\
         always @(posedge clk.val) begin\n\
           c <= c + 1;\n\
           if (c == 16'd1000) $display(\"hit %d\", c);\n\
         end",
    )
    .unwrap();
    rt.wait_for_compile_worker();
    let ready = rt.compile_ready_at().expect("staged");
    rt.advance_wall(ready - rt.wall_seconds() + 1.0);
    rt.run_ticks(1).unwrap();
    assert_eq!(rt.mode(), ExecMode::HardwareForwarded);
    rt.drain_output();
    rt.run_ticks(2000).unwrap();
    let out = rt.drain_output();
    assert_eq!(
        out,
        vec!["hit 1000"],
        "printf from hardware (paper headline)"
    );
}

#[test]
fn finish_still_works_from_hardware() {
    let (mut rt, _) = runtime(JitConfig::default());
    rt.eval(
        "reg [15:0] c = 0;\n\
         always @(posedge clk.val) begin\n\
           c <= c + 1;\n\
           if (c == 16'd500) $finish;\n\
         end",
    )
    .unwrap();
    rt.wait_for_compile_worker();
    let ready = rt.compile_ready_at().expect("staged");
    rt.advance_wall(ready - rt.wall_seconds() + 1.0);
    let done = rt.run_ticks(10_000).unwrap();
    assert!(rt.is_finished());
    assert!(done < 10_000, "stopped early at $finish, ran {done}");
}

#[test]
fn eval_after_hardware_returns_to_software() {
    let (mut rt, board) = runtime(JitConfig::default());
    rt.eval("reg [7:0] cnt = 1;").unwrap();
    rt.eval("always @(posedge clk.val) cnt <= cnt + 1;")
        .unwrap();
    rt.eval("assign led.val = cnt;").unwrap();
    rt.wait_for_compile_worker();
    let ready = rt.compile_ready_at().expect("staged");
    rt.advance_wall(ready - rt.wall_seconds() + 1.0);
    rt.run_ticks(10).unwrap();
    assert_eq!(rt.mode(), ExecMode::HardwareForwarded);
    let led_before = board.leds().to_u64();
    // Modifying the program drops back to software with state intact.
    rt.eval("reg [7:0] other = 0;").unwrap();
    assert_eq!(rt.mode(), ExecMode::Software);
    rt.run_ticks(1).unwrap();
    assert_eq!(
        board.leds().to_u64(),
        led_before + 1,
        "cnt preserved through demotion"
    );
}

#[test]
fn compile_failure_is_reported_not_fatal() {
    let config = JitConfig {
        toolchain: Toolchain::new(Device::tiny(10)),
        ..JitConfig::default()
    };
    let (mut rt, board) = runtime(config);
    rt.eval("reg [63:0] a = 0;").unwrap();
    rt.eval("always @(posedge clk.val) a <= a * 64'd2654435761 + (a >> 7);")
        .unwrap();
    rt.eval("assign led.val = a[7:0];").unwrap();
    rt.wait_for_compile_worker();
    let ready = rt.compile_ready_at().expect("staged");
    rt.advance_wall(ready - rt.wall_seconds() + 1.0);
    rt.run_ticks(2).unwrap();
    assert_eq!(rt.mode(), ExecMode::Software, "stays in software");
    let out = rt.drain_output().join("\n");
    assert!(out.contains("compilation failed"), "user is told: {out}");
    let _ = board.leds();
}

#[test]
fn fifo_stream_through_stdlib() {
    let (mut rt, board) = runtime(no_compile_config());
    for i in 1..=4u64 {
        board.fifo_push(Bits::from_u64(8, i * 11));
    }
    rt.eval(
        "FIFO #(.WIDTH(8)) f();\n\
         reg [15:0] sum = 0;\n\
         assign f.rreq = !f.empty;\n\
         always @(posedge clk.val)\n\
           if (f.rreq) sum <= sum + f.rdata;\n\
         assign led.val = sum[7:0];",
    )
    .unwrap();
    rt.run_ticks(8).unwrap();
    // Tokens pop one per cycle; rdata lags rreq by a cycle, so the sum
    // settles after all four arrive.
    assert_eq!(board.fifo_pops(), 4);
    assert!(board.leds().to_u64() > 0);
}

#[test]
fn memory_stdlib_component() {
    let (mut rt, board) = runtime(no_compile_config());
    rt.eval(
        "Memory #(.ADDR(4), .WIDTH(8)) m();\n\
         reg [7:0] phase = 0;\n\
         assign m.wen = (phase < 8'd4);\n\
         assign m.waddr = phase[3:0];\n\
         assign m.wdata = {4'h5, phase[3:0]};\n\
         assign m.raddr = 4'd2;\n\
         assign led.val = m.rdata;\n\
         always @(posedge clk.val) phase <= phase + 1;",
    )
    .unwrap();
    rt.run_ticks(6).unwrap();
    // Address 2 was written with 0x52 during phase 2 and read back
    // asynchronously through the LED bank.
    assert_eq!(board.leds().to_u64(), 0x52);
}

#[test]
fn native_mode_full_performance() {
    let (mut rt, board) = runtime(JitConfig::default());
    rt.eval("reg [7:0] cnt = 1;").unwrap();
    rt.eval("always @(posedge clk.val) cnt <= cnt + 1;")
        .unwrap();
    rt.eval("assign led.val = cnt;").unwrap();
    rt.enter_native().unwrap();
    assert_eq!(rt.mode(), ExecMode::Native);
    let w0 = rt.wall_seconds();
    let t0 = rt.ticks();
    rt.run_ticks(1_000_000).unwrap();
    let rate = (rt.ticks() - t0) as f64 / (rt.wall_seconds() - w0);
    assert!(rate > 45e6, "native ≈ 50 MHz, got {rate:.0}");
    let _ = board.leds();
    rt.exit_native().unwrap();
    assert_eq!(rt.mode(), ExecMode::Software);
}

#[test]
fn native_mode_rejects_system_tasks() {
    let (mut rt, _) = runtime(no_compile_config());
    rt.eval("reg c = 0;").unwrap();
    rt.eval("always @(posedge clk.val) begin c <= ~c; $display(c); end")
        .unwrap();
    match rt.enter_native() {
        Err(CascadeError::NativeIneligible(_)) => {}
        other => panic!("expected ineligible, got {other:?}"),
    }
}

#[test]
fn stale_compiles_are_dropped() {
    let (mut rt, board) = runtime(JitConfig::default());
    rt.eval("reg [7:0] a = 0;").unwrap();
    rt.eval("always @(posedge clk.val) a <= a + 1;").unwrap();
    rt.wait_for_compile_worker();
    // Edit before the compile lands: version bumps, first result is stale.
    rt.eval("assign led.val = a;").unwrap();
    rt.wait_for_compile_worker();
    let ready = rt.compile_ready_at().expect("staged");
    rt.advance_wall(ready - rt.wall_seconds() + 1.0);
    rt.run_ticks(3).unwrap();
    assert!(
        matches!(rt.mode(), ExecMode::HardwareForwarded | ExecMode::Hardware),
        "second compile lands"
    );
    assert_eq!(board.leds().to_u64(), 3);
}

#[test]
fn interpreter_only_config_never_compiles() {
    let (mut rt, _) = runtime(JitConfig::interpreter_only());
    rt.eval("reg [7:0] a = 0;").unwrap();
    rt.eval("always @(posedge clk.val) a <= a + 1;").unwrap();
    rt.run_ticks(50).unwrap();
    assert_eq!(rt.mode(), ExecMode::Software);
    assert!(!rt.stats().compile_in_flight);
}

#[test]
fn stats_reflect_engines() {
    let (mut rt, _) = runtime(no_compile_config());
    rt.eval("reg [7:0] a = 0;").unwrap();
    rt.eval("assign led.val = a;").unwrap();
    let stats = rt.stats();
    assert!(stats
        .engines
        .iter()
        .any(|(n, k)| n == "clk" && *k == EngineKind::Clock));
    assert!(stats
        .engines
        .iter()
        .any(|(n, k)| n == "main" && *k == EngineKind::Software));
    assert!(stats
        .engines
        .iter()
        .any(|(n, k)| n == "led" && *k == EngineKind::Peripheral));
}

#[test]
fn wall_clock_advances_faster_in_software() {
    // The same workload costs more modeled time interpreted than in
    // hardware — the gap that motivates the whole system.
    let (mut sw, _) = runtime(JitConfig::interpreter_only());
    sw.eval("reg [15:0] a = 0;").unwrap();
    sw.eval("always @(posedge clk.val) a <= a + 1;").unwrap();
    sw.run_ticks(500).unwrap();
    let sw_rate = sw.ticks() as f64 / sw.wall_seconds();

    let (mut hw, _) = runtime(JitConfig::default());
    hw.eval("reg [15:0] a = 0;").unwrap();
    hw.eval("always @(posedge clk.val) a <= a + 1;").unwrap();
    hw.wait_for_compile_worker();
    let ready = hw.compile_ready_at().expect("staged");
    hw.advance_wall(ready - hw.wall_seconds() + 1.0);
    hw.run_ticks(1).unwrap();
    let t0 = hw.ticks();
    let w0 = hw.wall_seconds();
    hw.run_ticks(100_000).unwrap();
    let hw_rate = (hw.ticks() - t0) as f64 / (hw.wall_seconds() - w0);
    assert!(
        hw_rate > sw_rate * 10.0,
        "hardware {hw_rate:.0} Hz should dwarf software {sw_rate:.0} Hz"
    );
}

// ----------------------------------------------------------------------
// REPL
// ----------------------------------------------------------------------

#[test]
fn repl_accumulates_multiline_items() {
    let (rt, board) = runtime(no_compile_config());
    let mut repl = Repl::new(rt);
    assert_eq!(
        repl.line("module Rol(input wire [7:0] x, output wire [7:0] y);"),
        ReplResponse::Incomplete
    );
    assert_eq!(
        repl.line("assign y = (x == 8'h80) ? 8'h1 : (x<<1);"),
        ReplResponse::Incomplete
    );
    assert!(matches!(repl.line("endmodule"), ReplResponse::Evaluated(_)));
    assert!(matches!(
        repl.line("reg [7:0] cnt = 1;"),
        ReplResponse::Evaluated(_)
    ));
    assert!(matches!(
        repl.line("Rol r(.x(cnt));"),
        ReplResponse::Evaluated(_)
    ));
    assert_eq!(
        repl.line("always @(posedge clk.val)"),
        ReplResponse::Incomplete
    );
    assert!(matches!(
        repl.line("cnt <= r.y;"),
        ReplResponse::Evaluated(_)
    ));
    assert!(matches!(
        repl.line("assign led.val = cnt;"),
        ReplResponse::Evaluated(_)
    ));
    repl.runtime().run_ticks(2).unwrap();
    assert_eq!(board.leds().to_u64(), 4);
}

#[test]
fn repl_reports_errors_and_recovers() {
    let (rt, _) = runtime(no_compile_config());
    let mut repl = Repl::new(rt);
    let resp = repl.line("assign led.val = nonexistent;");
    assert!(matches!(resp, ReplResponse::Error(_)));
    // Still usable afterwards.
    assert!(matches!(
        repl.line("reg [3:0] ok = 0;"),
        ReplResponse::Evaluated(_)
    ));
}

#[test]
fn repl_immediate_output() {
    let (rt, _) = runtime(no_compile_config());
    let mut repl = Repl::new(rt);
    repl.line("reg [7:0] v = 42;");
    let ReplResponse::Evaluated(out) = repl.line("$display(\"v=%d\", v);") else {
        panic!("expected eval");
    };
    assert_eq!(out, vec!["v=42"]);
}

#[test]
fn repl_batched_error_names_offending_item() {
    let (rt, _) = runtime(no_compile_config());
    let mut repl = Repl::new(rt);
    // Two items close on one line; only the second is bad. The error must
    // name item 2 and give a buffer-relative position (line 2), and the
    // good first item must stay committed.
    assert_eq!(repl.line("reg [3:0] a"), ReplResponse::Incomplete);
    let ReplResponse::Error(msg) = repl.line("= 1; assign led.val = bad_name;") else {
        panic!("expected error for the second item");
    };
    assert!(msg.contains("item 2 of 2"), "got: {msg}");
    assert!(msg.contains("assign led.val"), "got: {msg}");
    assert!(msg.contains("2:"), "expected buffer line 2, got: {msg}");
    // `a` was committed before the failure.
    assert!(matches!(
        repl.line("assign led.val = a;"),
        ReplResponse::Evaluated(_)
    ));
}

#[test]
fn repl_batch_mode() {
    let (rt, board) = runtime(no_compile_config());
    let mut repl = Repl::new(rt);
    repl.batch(&format!("{ROL_DECL}\n{MAIN_ITEMS}")).unwrap();
    repl.runtime().run_ticks(3).unwrap();
    assert_eq!(board.leds().to_u64(), 8);
}

// ----------------------------------------------------------------------
// Transform unit behaviour
// ----------------------------------------------------------------------

#[test]
fn transform_promotes_hier_refs() {
    use crate::transform::{transform_module, Externals};
    use cascade_verilog::ast::Item;
    let unit = cascade_verilog::parse(
        "module M();\n\
         reg [7:0] cnt = 1;\n\
         always @(posedge clk.val) if (pad.val == 0) cnt <= cnt + 1;\n\
         assign led.val = cnt;\n\
         endmodule",
    )
    .unwrap();
    let Item::Module(m) = &unit.items[0] else {
        panic!()
    };
    let mut lib = cascade_verilog::typecheck::ModuleLibrary::new();
    for sm in cascade_stdlib::stdlib_modules() {
        lib.insert(sm);
    }
    let mut externals = Externals::new();
    externals.insert("clk".into(), ("Clock".into(), Default::default()));
    externals.insert("pad".into(), ("Pad".into(), Default::default()));
    externals.insert("led".into(), ("Led".into(), Default::default()));
    let mut wires = Vec::new();
    let out = transform_module("main", m, &externals, &lib, &mut wires).unwrap();
    let port_names: Vec<_> = out.ports.iter().map(|p| p.name.as_str()).collect();
    assert!(port_names.contains(&"clk_val"));
    assert!(port_names.contains(&"pad_val"));
    assert!(port_names.contains(&"led_val"));
    assert_eq!(wires.len(), 3);
    assert!(wires.iter().any(
        |w| w.from == ("clk".into(), "val".into()) && w.to == ("main".into(), "clk_val".into())
    ));
    assert!(wires.iter().any(
        |w| w.from == ("main".into(), "led_val".into()) && w.to == ("led".into(), "val".into())
    ));
    // The printed module is standalone Verilog.
    let printed = cascade_verilog::pretty::print_module(&out);
    assert!(printed.contains("input wire clk_val"));
    assert!(!printed.contains("clk.val"));
}

#[test]
fn transform_rejects_reading_external_inputs() {
    let (mut rt, _) = runtime(no_compile_config());
    // led.val is an input of the Led component; reading it is an error.
    let err = rt.eval("wire w = led.val;").unwrap_err();
    assert!(matches!(err, CascadeError::Unsupported(_)), "{err}");
}

// ----------------------------------------------------------------------
// Fig. 10 wrapper codegen
// ----------------------------------------------------------------------

mod fig10_wrapper {
    use crate::fig10::{generate_wrapper, WrapperSlot};
    use cascade_bits::Bits;
    use cascade_sim::Simulator;
    use cascade_verilog::ast::Item;
    use cascade_verilog::typecheck::ModuleLibrary;
    use std::sync::Arc;

    /// A small inlined subprogram in the shape the runtime produces: flat,
    /// promoted ports, a clocked body with a `$display`.
    const SUB: &str = "module Sub(\n\
        input wire clk_val,\n\
        input wire [3:0] pad_val,\n\
        output wire [7:0] led_val\n\
        );\n\
        reg [7:0] cnt = 1;\n\
        always @(posedge clk_val)\n\
          if (pad_val == 0)\n\
            cnt <= (cnt == 8'h80) ? 8'h1 : (cnt << 1);\n\
          else begin\n\
            $display(\"paused %d\", cnt);\n\
          end\n\
        assign led_val = cnt;\n\
        endmodule";

    fn wrapper_sim() -> (Simulator, crate::fig10::Fig10Wrapper) {
        let unit = cascade_verilog::parse(SUB).unwrap();
        let Item::Module(m) = &unit.items[0] else {
            panic!()
        };
        let wrapper = generate_wrapper(m, &ModuleLibrary::new()).unwrap();
        let lib = cascade_sim::library_from_source(&wrapper.source)
            .unwrap_or_else(|e| panic!("wrapper must parse: {e}\n{}", wrapper.source));
        let design = cascade_sim::elaborate("Main", &lib, &Default::default())
            .unwrap_or_else(|e| panic!("wrapper must elaborate: {e}\n{}", wrapper.source));
        let mut sim = Simulator::new(Arc::new(design));
        sim.initialize().unwrap();
        (sim, wrapper)
    }

    /// One bus write: set RW/ADDR/IN, let the address decode settle (setup
    /// time), pulse CLK.
    fn bus_write(sim: &mut Simulator, addr: u32, value: u64) {
        sim.poke("RW", Bits::from_u64(1, 1));
        sim.poke("ADDR", Bits::from_u64(32, addr as u64));
        sim.poke("IN", Bits::from_u64(32, value));
        sim.settle().unwrap();
        sim.tick("CLK").unwrap();
        sim.poke("RW", Bits::from_u64(1, 0));
        sim.settle().unwrap();
    }

    /// One bus read: set ADDR, sample OUT combinationally.
    fn bus_read(sim: &mut Simulator, addr: u32) -> u64 {
        sim.poke("RW", Bits::from_u64(1, 0));
        sim.poke("ADDR", Bits::from_u64(32, addr as u64));
        sim.settle().unwrap();
        sim.peek("OUT").to_u64()
    }

    #[test]
    fn wrapper_has_figure_structure() {
        let (_, wrapper) = wrapper_sim();
        assert!(wrapper.source.contains("input wire [31:0] ADDR"));
        assert!(wrapper.source.contains("_umask"));
        assert!(wrapper.source.contains("_oloop"));
        assert!(wrapper.source.contains("assign WAIT"));
        assert!(wrapper.ctrl.contains_key("LATCH"));
        assert!(wrapper.ctrl.contains_key("OLOOP"));
        assert!(wrapper
            .slots
            .iter()
            .any(|s| matches!(s, WrapperSlot::State(n) if n == "cnt")));
        assert!(wrapper
            .slots
            .iter()
            .any(|s| matches!(s, WrapperSlot::TaskArg { .. })));
    }

    #[test]
    fn wrapper_behaves_like_the_subprogram() {
        let (mut sim, wrapper) = wrapper_sim();
        let clk = wrapper.addr_of("clk_val").unwrap();
        let led = wrapper.addr_of("led_val").unwrap();
        let cnt = wrapper.addr_of("cnt").unwrap();
        let latch = wrapper.ctrl["LATCH"];
        let updates = wrapper.ctrl["UPDATES"];
        assert_eq!(bus_read(&mut sim, led), 1, "initial state");
        // Three virtual clock cycles over the bus protocol.
        for expect in [2u64, 4, 8] {
            bus_write(&mut sim, clk, 1); // clk rises: user logic stages an update
            assert_ne!(bus_read(&mut sim, updates), 0, "update pending");
            bus_write(&mut sim, latch, 1); // commit shadows
            bus_write(&mut sim, clk, 0); // clk falls
            assert_eq!(bus_read(&mut sim, led), expect);
        }
        // set_state over the bus: jump the counter.
        bus_write(&mut sim, cnt, 0x40);
        assert_eq!(bus_read(&mut sim, led), 0x40);
        bus_write(&mut sim, clk, 1);
        bus_write(&mut sim, latch, 1);
        bus_write(&mut sim, clk, 0);
        assert_eq!(bus_read(&mut sim, led), 0x80);
    }

    #[test]
    fn wrapper_captures_task_arguments() {
        let (mut sim, wrapper) = wrapper_sim();
        let clk = wrapper.addr_of("clk_val").unwrap();
        let pad = wrapper.addr_of("pad_val").unwrap();
        let tasks = wrapper.ctrl["TASKS"];
        let clear = wrapper.ctrl["CLEAR"];
        let targ = wrapper
            .slots
            .iter()
            .position(|s| matches!(s, WrapperSlot::TaskArg { .. }))
            .unwrap() as u32;
        assert_eq!(bus_read(&mut sim, tasks), 0, "no tasks yet");
        bus_write(&mut sim, pad, 1); // press a button
        bus_write(&mut sim, clk, 1); // the $display branch runs
        assert_ne!(bus_read(&mut sim, tasks), 0, "task mask set");
        assert_eq!(bus_read(&mut sim, targ), 1, "captured cnt at trigger");
        bus_write(&mut sim, clear, 1);
        assert_eq!(bus_read(&mut sim, tasks), 0, "mask cleared");
    }

    #[test]
    fn wrapper_open_loop_runs_cycles_in_fabric() {
        let (mut sim, wrapper) = wrapper_sim();
        let led = wrapper.addr_of("led_val").unwrap();
        let oloop = wrapper.ctrl["OLOOP"];
        let itrs = wrapper.ctrl["ITRS"];
        // Ask for 6 open-loop iterations: the wrapper toggles the virtual
        // clock itself; 6 CLK cycles = 3 virtual posedges.
        bus_write(&mut sim, oloop, 6);
        assert!(sim.peek("WAIT").to_bool(), "WAIT asserted during open loop");
        for _ in 0..6 {
            sim.tick("CLK").unwrap();
        }
        assert!(!sim.peek("WAIT").to_bool(), "budget exhausted");
        assert_eq!(bus_read(&mut sim, itrs), 6);
        assert_eq!(bus_read(&mut sim, led), 8, "three virtual cycles advanced");
    }

    #[test]
    fn wrapper_passes_memories_through() {
        // Memories stay inside the fabric (block RAM); they get no bus
        // address but the wrapper still builds and parses.
        let src = "module S(input wire clk_val, output wire [7:0] o);\n\
             reg [7:0] m [0:3];\n\
             reg [1:0] i = 0;\n\
             always @(posedge clk_val) begin m[i] <= m[i] + 1; i <= i + 1; end\n\
             assign o = m[0];\nendmodule";
        let unit = cascade_verilog::parse(src).unwrap();
        let cascade_verilog::ast::Item::Module(m) = &unit.items[0] else {
            panic!()
        };
        let w = generate_wrapper(m, &ModuleLibrary::new()).unwrap();
        assert!(w.addr_of("m").is_none(), "memory not bus-addressable");
        assert!(w.addr_of("i").is_some(), "scalar state is");
        cascade_verilog::parse(&w.source).expect("wrapper parses");
    }

    #[test]
    fn wrapper_rejects_blocking_state_writes() {
        let src = "module S(input wire clk_val, output wire [7:0] o);\n\
             reg [7:0] c = 0;\n\
             always @(posedge clk_val) c = c + 1;\n\
             assign o = c;\nendmodule";
        let unit = cascade_verilog::parse(src).unwrap();
        let cascade_verilog::ast::Item::Module(m) = &unit.items[0] else {
            panic!()
        };
        assert!(generate_wrapper(m, &ModuleLibrary::new()).is_err());
    }
}

#[test]
fn modules_are_append_only() {
    // Paper Sec. 7.2: eval can add code but never edit or delete it.
    let (mut rt, _) = runtime(no_compile_config());
    rt.eval("module A(input wire x, output wire y); assign y = x; endmodule")
        .unwrap();
    let err = rt
        .eval("module A(input wire x, output wire y); assign y = ~x; endmodule")
        .unwrap_err();
    assert!(err.to_string().contains("append-only"), "{err}");
}

#[test]
fn time_advances_with_virtual_clock() {
    let (mut rt, _) = runtime(no_compile_config());
    rt.eval(
        "reg [3:0] c = 0;\n\
         always @(posedge clk.val) begin\n\
           c <= c + 1;\n\
           if (c == 2) $display(\"t=%d\", $time);\n\
         end",
    )
    .unwrap();
    rt.run_ticks(5).unwrap();
    let out = rt.drain_output();
    assert_eq!(out, vec!["t=2"], "$time counts virtual clock ticks");
}

#[test]
fn memory_contents_survive_migration() {
    let (mut rt, board) = runtime(JitConfig::default());
    rt.eval(
        "reg [7:0] scratch [0:15];\n\
         reg [3:0] wp = 0;\n\
         reg [7:0] acc = 0;\n\
         always @(posedge clk.val) begin\n\
           scratch[wp] <= wp + 8'h10;\n\
           wp <= wp + 1;\n\
           acc <= acc + scratch[4'h3];\n\
         end\n\
         assign led.val = acc;",
    )
    .unwrap();
    rt.run_ticks(8).unwrap(); // scratch[3] written with 0x13 at tick 4
    let led_sw = board.leds().to_u64();
    rt.wait_for_compile_worker();
    let ready = rt.compile_ready_at().expect("staged");
    rt.advance_wall((ready - rt.wall_seconds()).max(0.0) + 1.0);
    rt.run_ticks(1).unwrap();
    assert_eq!(rt.mode(), ExecMode::HardwareForwarded);
    // If the memory had been lost, acc would stop growing by 0x13.
    rt.run_ticks(2).unwrap();
    let led_hw = board.leds().to_u64();
    assert_eq!(
        led_hw,
        (led_sw + 3 * 0x13) & 0xff,
        "memory state carried into hardware"
    );
}

#[test]
fn runaway_user_code_reports_sim_error() {
    let (mut rt, _) = runtime(no_compile_config());
    rt.eval(
        "reg [7:0] i = 0;\n\
         always @(posedge clk.val) begin\n\
           i = 1;\n\
           while (i != 0) i = 1;\n\
         end",
    )
    .unwrap();
    match rt.run_ticks(1) {
        Err(CascadeError::Sim(_)) => {}
        other => panic!("expected a simulation fault, got {other:?}"),
    }
}

#[test]
fn eval_runs_the_preprocessor() {
    let (mut rt, board) = runtime(no_compile_config());
    rt.eval(
        "`define WIDTH 8\n\
         reg [`WIDTH-1:0] c = 0;\n\
         always @(posedge clk.val) c <= c + 1;\n\
         assign led.val = c;",
    )
    .unwrap();
    rt.run_ticks(3).unwrap();
    assert_eq!(board.leds().to_u64(), 3);
}

#[test]
fn open_loop_budget_adapts_to_io_cost() {
    // A FIFO-bound program pays a bus round trip per cycle, so the adaptive
    // profiler must shrink the batch size to keep control returns near the
    // configured period.
    let config = JitConfig {
        open_loop_target_s: 0.05,
        ..JitConfig::default()
    };
    let (mut rt, board) = runtime(config);
    board.set_fifo_capacity(1 << 20);
    rt.eval(
        "FIFO #(.WIDTH(8)) f();\n\
         reg [15:0] sum = 0;\n\
         assign f.rreq = !f.empty;\n\
         always @(posedge clk.val) if (f.rreq) sum <= sum + f.rdata;\n\
         assign led.val = sum[7:0];",
    )
    .unwrap();
    rt.wait_for_compile_worker();
    let ready = rt.compile_ready_at().expect("staged");
    rt.advance_wall((ready - rt.wall_seconds()).max(0.0) + 1.0);
    rt.run_ticks(1).unwrap();
    assert_eq!(rt.mode(), ExecMode::HardwareForwarded);
    for _ in 0..500_000u64 {
        board.fifo_push(cascade_bits::Bits::from_u64(8, 7));
    }
    // Warm the controller, then measure one batch.
    rt.run_ticks(40_000).unwrap();
    let w0 = rt.wall_seconds();
    rt.run_ticks(30_000).unwrap();
    let elapsed = rt.wall_seconds() - w0;
    // Per-cycle cost ≈ 1.8µs, so 30k ticks ≈ 55ms of modeled time split
    // into batches near the 50ms target: control returned at least once
    // and batches were not the naive 2.5M-cycle fixed budget.
    assert!(
        elapsed < 0.5,
        "adaptive batches should keep modeled time bounded, got {elapsed:.3}s"
    );
    assert!(rt.stats().open_loop_active);
}

#[test]
fn negedge_design_runs_in_hardware_closed_loop() {
    // Negedge-clocked logic is ineligible for open loop (single-posedge
    // requirement) but must still migrate and stay correct through the
    // closed-loop hardware path.
    let config = JitConfig {
        open_loop: true,
        ..JitConfig::default()
    };
    let (mut rt, board) = runtime(config);
    rt.eval(
        "reg [7:0] up = 0;\n\
         reg [7:0] down = 0;\n\
         always @(posedge clk.val) up <= up + 1;\n\
         always @(negedge clk.val) down <= down + 2;\n\
         assign led.val = up + down;",
    )
    .unwrap();
    rt.run_ticks(3).unwrap();
    assert_eq!(board.leds().to_u64(), 9); // 3*1 + 3*2
    rt.wait_for_compile_worker();
    let ready = rt.compile_ready_at().expect("staged");
    rt.advance_wall((ready - rt.wall_seconds()).max(0.0) + 1.0);
    rt.run_ticks(1).unwrap();
    assert!(matches!(
        rt.mode(),
        ExecMode::Hardware | ExecMode::HardwareForwarded
    ));
    rt.run_ticks(2).unwrap();
    assert_eq!(board.leds().to_u64(), 18, "both edges serviced in hardware");
    assert!(
        !rt.stats().open_loop_active,
        "negedge domain forces closed loop"
    );
}

#[test]
fn resubmitting_unchanged_design_hits_bitstream_cache() {
    use crate::BackgroundCompiler;
    use std::sync::Arc;

    let lib = cascade_sim::library_from_source(
        "module M(input wire clk_val, output wire [7:0] led_val);\n\
         reg [7:0] c = 0;\n\
         always @(posedge clk_val) c <= c + 1;\n\
         assign led_val = c;\nendmodule",
    )
    .unwrap();
    let design = Arc::new(cascade_sim::elaborate("M", &lib, &Default::default()).unwrap());
    let tc = Toolchain::new(Device::cyclone_v());
    let mut bc = BackgroundCompiler::new();

    bc.submit(Arc::clone(&design), tc.clone(), 1, 0.0);
    bc.wait_worker();
    let first = bc.poll(f64::INFINITY).expect("first outcome");
    let first_bs = first.result.expect("compiles");
    assert_eq!((bc.cache_hits(), bc.cache_misses()), (0, 1));
    assert!(
        first.latency.as_secs_f64() > 60.0,
        "cold compile pays the modeled toolchain latency, got {:.1}s",
        first.latency.as_secs_f64()
    );

    // Identical design, same toolchain: served from the cache at
    // reprogramming cost, not place-and-route cost.
    bc.submit(Arc::clone(&design), tc.clone(), 2, 0.0);
    bc.wait_worker();
    let second = bc.poll(f64::INFINITY).expect("second outcome");
    let second_bs = second.result.expect("cache hit still succeeds");
    assert_eq!((bc.cache_hits(), bc.cache_misses()), (1, 1));
    assert!(
        second.latency.as_secs_f64() < 5.0,
        "cache hit must be near-instant, got {:.1}s",
        second.latency.as_secs_f64()
    );
    assert_eq!(first_bs.fmax_mhz, second_bs.fmax_mhz);
    assert_eq!(first_bs.logic_depth, second_bs.logic_depth);

    // A different placement seed is a different cache key.
    let reseeded = Toolchain {
        seed: tc.seed + 1,
        ..tc
    };
    bc.submit(design, reseeded, 3, 0.0);
    bc.wait_worker();
    let third = bc.poll(f64::INFINITY).expect("third outcome");
    assert!(third.result.is_ok());
    assert_eq!((bc.cache_hits(), bc.cache_misses()), (1, 2));
}

#[test]
fn runtime_stats_expose_compile_cache_counters() {
    let (mut rt, _) = runtime(JitConfig::default());
    rt.eval("reg [7:0] a = 0;").unwrap();
    rt.eval("always @(posedge clk.val) a <= a + 1;").unwrap();
    rt.eval("assign led.val = a;").unwrap();
    rt.wait_for_compile_worker();
    let stats = rt.stats();
    // Three evals submitted three (structurally different) designs; every
    // worker ran, none could hit.
    assert_eq!(stats.compile_cache_hits, 0);
    assert!(stats.compile_cache_misses >= 1);
}
