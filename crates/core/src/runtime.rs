//! The Cascade runtime (paper Sec. 3.4, Fig. 5 & 6).
//!
//! The runtime owns the program's source, the engine for each subprogram,
//! the data/control plane wiring them, the interrupt queue, and the
//! scheduler. Code eval'ed by the user is integrated between time steps —
//! when the event queue is empty and the system is in an observable state —
//! which is also when hardware engines replace software engines and
//! interrupts (system-task side effects) are serviced.

use crate::compiler::{BackgroundCompiler, CompileQueue, CompilerMetrics, RetryPolicy};
use crate::config::JitConfig;
use crate::engine::clock::ClockEngine;
use crate::engine::hw::{Forwarded, HwEngine};
use crate::engine::native::NativeEngine;
use crate::engine::peripheral::{PeripheralEngine, PERIPHERAL_CLOCK_PORT};
use crate::engine::sw::SwEngine;
use crate::engine::{Engine, EngineKind, EngineState, TaskEvent};
use crate::error::{panic_message, CascadeError};
use crate::transform::{transform_module, Externals, Wire};
use cascade_bits::Bits;
use cascade_fpga::{Board, FabricFault, Fleet, Lease, VirtualWall};
use cascade_sim::{Design, PortVcd};
use cascade_trace::{
    expose, Arg, Counter, Histogram, MetricSnapshot, Registry, RequestCtx, SnapValue, SpanRef,
    TraceSink, LATENCY_BUCKETS_S,
};
use cascade_verilog::ast::{Item, Module, ModuleItem};
use cascade_verilog::typecheck::{check_module, const_eval, ModuleLibrary, ParamEnv};
use cascade_verilog::Span;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// The name of the implicit root module.
const ROOT: &str = "main";

/// One accumulated root-module item and whether its one-shot part has
/// already executed (statements and initial blocks run exactly once, when
/// eval'ed).
#[derive(Debug, Clone)]
struct RootEntry {
    item: ModuleItem,
    executed: bool,
}

struct Slot {
    name: String,
    engine: Box<dyn Engine>,
}

struct ResolvedWire {
    from: (usize, String),
    to: (usize, String),
    last: Option<Bits>,
}

/// A consistent snapshot of every engine's state, taken at a verified
/// point (a clean scrub boundary in hardware, a tick boundary in
/// software). Restoring it rewinds the program to that point.
struct Checkpoint {
    states: BTreeMap<String, EngineState>,
    iterations: u64,
    finished: bool,
}

/// Registry-backed runtime counters. Handles are declared by name;
/// re-declaring after a component swap (shared compile queue, checkpoint
/// restore, engine replacement) returns the *same* cells, which is what
/// keeps recovery counters monotonic across rollback and replay.
#[derive(Clone)]
struct RuntimeMetrics {
    hw_promotions: Counter,
    lease_demotions: Counter,
    scrubs: Counter,
    scrub_detections: Counter,
    checkpoints_taken: Counter,
    checkpoints_restored: Counter,
    fabric_losses: Counter,
    /// Virtual seconds from "bitstream ready" to "fabric lease granted".
    lease_wait: Histogram,
}

impl RuntimeMetrics {
    fn from_registry(reg: &Registry) -> Self {
        RuntimeMetrics {
            hw_promotions: reg.counter(
                "jit_hw_promotions_total",
                "software-to-hardware engine swaps performed",
            ),
            lease_demotions: reg.counter(
                "jit_lease_demotions_total",
                "hardware-to-software demotions forced by lease revocation",
            ),
            scrubs: reg.counter(
                "jit_scrubs_total",
                "readback scrubs performed against the hardware engine",
            ),
            scrub_detections: reg.counter(
                "jit_scrub_detections_total",
                "scrubs that detected a fabric soft error",
            ),
            checkpoints_taken: reg
                .counter("jit_checkpoints_taken_total", "recovery checkpoints taken"),
            checkpoints_restored: reg.counter(
                "jit_checkpoints_restored_total",
                "recovery checkpoints restored (rollbacks)",
            ),
            fabric_losses: reg.counter(
                "jit_fabric_losses_total",
                "fabric losses survived (the program resumed in software)",
            ),
            lease_wait: reg.histogram(
                "jit_lease_wait_seconds",
                "virtual seconds a ready bitstream waited for a fabric lease",
                LATENCY_BUCKETS_S,
            ),
        }
    }
}

/// An active waveform dump: a VCD stream fed one sample per tick.
struct VcdTap {
    writer: PortVcd<std::io::BufWriter<std::fs::File>>,
    ports: Vec<String>,
    path: String,
}

/// Emit a `ticks_per_s` trace sample at least every this many ticks.
const RATE_SAMPLE_TICKS: u64 = 1024;

/// Scheduler iterations (2 per tick) a denied lease request waits before
/// re-asking the arbiter mid-run. Small enough that promotion lands within
/// microseconds of a freed fabric; large enough that leaseless tenants
/// don't serialize the server on the fleet mutex.
const LEASE_POLL_STRIDE_ITERS: u64 = 128;

/// How the program is currently executing (for instrumentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// No user logic yet.
    Idle,
    /// Software engines on the data plane.
    Software,
    /// User logic in hardware; stdlib still on the data plane.
    Hardware,
    /// Hardware with stdlib absorbed (ABI forwarding).
    HardwareForwarded,
    /// Wrapper-free native execution.
    Native,
}

impl ExecMode {
    /// Stable lowercase name (trace events, timeline, metrics).
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::Idle => "idle",
            ExecMode::Software => "software",
            ExecMode::Hardware => "hardware",
            ExecMode::HardwareForwarded => "hardware-forwarded",
            ExecMode::Native => "native",
        }
    }
}

/// Point-in-time runtime statistics.
#[derive(Debug, Clone)]
pub struct RuntimeStats {
    pub version: u64,
    pub ticks: u64,
    pub wall_seconds: f64,
    pub mode: ExecMode,
    pub compile_in_flight: bool,
    pub engines: Vec<(String, EngineKind)>,
    /// Whether the last `run_ticks` batch used open-loop scheduling.
    pub open_loop_active: bool,
    /// Background compiles answered from the content-hash bitstream cache.
    pub compile_cache_hits: u64,
    /// Background compiles that ran the full modeled toolchain flow.
    pub compile_cache_misses: u64,
    /// Bitstreams evicted from the bounded cache (LRU).
    pub compile_cache_evictions: u64,
    /// Whether this runtime currently holds a fabric lease from an
    /// attached [`Fleet`].
    pub lease_held: bool,
    /// Whether a compiled bitstream is ready but waiting for a fabric.
    pub hw_pending: bool,
    /// Software→hardware engine swaps performed.
    pub hw_promotions: u64,
    /// Hardware→software demotions forced by fleet lease revocation.
    pub lease_demotions: u64,
    /// Transient compile failures (faults, hangs, worker panics) that were
    /// retried with exponential backoff.
    pub compile_retries: u64,
    /// Hung toolchain runs cancelled by the modeled compile watchdog.
    pub compile_watchdog_cancels: u64,
    /// Compile-worker panics contained at an isolation boundary.
    pub panics_contained: u64,
    /// Readback scrubs performed against the hardware engine.
    pub scrubs: u64,
    /// Scrubs that detected a fabric soft error (each triggers a rollback
    /// to the last checkpoint and software re-execution).
    pub scrub_detections: u64,
    /// Recovery checkpoints taken.
    pub checkpoints_taken: u64,
    /// Recovery checkpoints restored (rollbacks).
    pub checkpoints_restored: u64,
    /// Fabric losses survived (the program resumed in software).
    pub fabric_losses: u64,
}

/// The Cascade runtime: eval Verilog, run it immediately, let the JIT move
/// it into (virtual) hardware behind your back.
///
/// # Examples
///
/// ```
/// use cascade_core::{JitConfig, Runtime};
/// use cascade_fpga::Board;
///
/// let board = Board::new();
/// let mut cascade = Runtime::new(board.clone(), JitConfig::default())?;
/// cascade.eval(
///     "reg [7:0] cnt = 1;\n\
///      always @(posedge clk.val) cnt <= (cnt == 8'h80) ? 8'h1 : (cnt << 1);\n\
///      assign led.val = cnt;",
/// )?;
/// cascade.run_ticks(3)?;
/// assert_eq!(board.leds().to_u64(), 8);
/// # Ok::<(), cascade_core::CascadeError>(())
/// ```
pub struct Runtime {
    config: JitConfig,
    board: Board,
    lib: ModuleLibrary,
    root: Vec<RootEntry>,
    version: u64,
    /// Committed source text in eval order. Programs are append-only
    /// (paper Sec. 7.2), so this log plus a checkpoint's engine states is
    /// a complete hibernation image — see [`Runtime::hibernate_image`].
    src_log: Vec<String>,

    slots: Vec<Slot>,
    wires: Vec<ResolvedWire>,
    clock_idx: usize,
    main_idx: Option<usize>,

    output: Vec<String>,
    finished: bool,
    wall: VirtualWall,
    iterations: u64,

    compiler: BackgroundCompiler,
    /// Design of the current main subprogram (what gets compiled).
    hw_design: Option<Arc<Design>>,
    native: bool,
    open_loop_last: bool,
    /// Adaptive open-loop budget in cycles (paper Sec. 4.4: "adaptive
    /// profiling is used to choose an iteration limit which allows the
    /// engine to relinquish control on a regular basis").
    open_loop_budget: f64,
    /// Warnings surfaced asynchronously (compile failures).
    warnings: Vec<String>,

    /// Shared fabric fleet this runtime arbitrates through (multi-tenant
    /// serving); `None` means a dedicated fabric is always available.
    fleet: Option<(Fleet, u64)>,
    /// The fabric lease currently held (hardware execution).
    lease: Option<Lease>,
    /// Activity heat reported to the fleet arbiter (server-assigned,
    /// monotonically increasing across tenants).
    heat: f64,
    /// A compiled bitstream waiting for a fabric lease.
    pending_hw: Option<Arc<cascade_netlist::Netlist>>,
    /// Virtual second at which `pending_hw` was staged (lease-wait
    /// histogram start point).
    hw_pending_since_s: Option<f64>,
    /// Iteration before which a denied lease request is not retried
    /// (per-tick arbiter polling serializes on the fleet mutex).
    lease_backoff_until_iter: u64,

    /// Last known-good snapshot (the rollback point).
    checkpoint: Option<Checkpoint>,
    /// Iteration of the last scrub boundary (hardware windows).
    last_scrub_iter: u64,
    /// Iteration of the last checkpoint.
    last_ckpt_iter: u64,
    /// Output produced inside the current unverified hardware window:
    /// committed at the next clean scrub, discarded on rollback.
    quarantine: Vec<String>,
    /// Recovery events. Deliberately separate from `output`: fault
    /// recovery must leave the user-visible transcript byte-identical to
    /// a fault-free run.
    recovery_log: Vec<String>,

    /// Typed metric cells backing the recovery/JIT counters (see
    /// [`RuntimeMetrics`]); declared in `registry`.
    metrics: RuntimeMetrics,
    /// The registry behind [`Runtime::metrics_snapshot`]; servers merge
    /// per-session registries into one exposition.
    registry: Registry,
    /// JIT lifecycle trace sink (disabled by default; see `JitConfig`).
    trace: TraceSink,
    /// Track id stamped on trace events (the serve session id).
    track: u64,
    /// The request currently being serviced (causal tracing): every trace
    /// event emitted while set joins that request's span tree, and compile
    /// submissions carry it into the shared pool.
    req_ctx: Option<RequestCtx>,
    /// Last execution mode announced on the trace (dedup).
    last_mode: Option<&'static str>,
    /// `ticks_per_s` sampling state: virtual second and tick count of the
    /// previous sample.
    rate_last_s: f64,
    rate_last_ticks: u64,
    /// Active waveform dump, if any (disables open-loop batching so every
    /// tick is observable).
    vcd: Option<VcdTap>,
}

// Sessions are hosted on server worker threads; the runtime must be free
// to migrate between them.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Runtime>();
};

impl Runtime {
    /// Creates a runtime bound to a virtual board. The standard library is
    /// declared and its implicit components (`clk`, `pad`, `led`) are
    /// instantiated.
    ///
    /// # Errors
    ///
    /// Returns [`CascadeError`] only on internal stdlib declaration
    /// failures.
    pub fn new(board: Board, config: JitConfig) -> Result<Self, CascadeError> {
        let mut lib = ModuleLibrary::new();
        for m in cascade_stdlib::stdlib_modules() {
            lib.insert(m);
        }
        // Seed the adaptive open-loop budget from the device clock: one
        // batch ≈ one control-return period at full fabric speed. The
        // controller rescales from measured cost after the first batch.
        let open_loop_budget = config
            .toolchain
            .device
            .open_loop_batch_hint(config.open_loop_target_s)
            .min(1 << 22) as f64;
        let cache_capacity = config.bitstream_cache_capacity;
        let registry = Registry::new();
        let metrics = RuntimeMetrics::from_registry(&registry);
        let trace = config.trace.clone();
        let mut rt = Runtime {
            config,
            board,
            lib,
            root: Vec::new(),
            version: 0,
            src_log: Vec::new(),
            slots: Vec::new(),
            wires: Vec::new(),
            clock_idx: 0,
            main_idx: None,
            output: Vec::new(),
            finished: false,
            wall: VirtualWall::new(),
            iterations: 0,
            compiler: BackgroundCompiler::with_capacity(cache_capacity),
            hw_design: None,
            native: false,
            open_loop_last: false,
            open_loop_budget,
            warnings: Vec::new(),
            fleet: None,
            lease: None,
            heat: 0.0,
            pending_hw: None,
            hw_pending_since_s: None,
            lease_backoff_until_iter: 0,
            checkpoint: None,
            last_scrub_iter: 0,
            last_ckpt_iter: 0,
            quarantine: Vec::new(),
            recovery_log: Vec::new(),
            metrics,
            registry,
            trace,
            track: 0,
            req_ctx: None,
            last_mode: None,
            rate_last_s: 0.0,
            rate_last_ticks: 0,
            vcd: None,
        };
        let policy = rt.retry_policy();
        rt.compiler.configure(policy, rt.config.faults.clone());
        rt.reattach_compiler_telemetry();
        rt.rebuild()?;
        Ok(rt)
    }

    /// (Re-)hands the compiler its registry-backed metric cells and the
    /// trace sink. Registration is idempotent, so a replaced compiler
    /// inherits the *same* counters — retries/watchdog/panic counts stay
    /// monotonic across compiler swaps and checkpoint restores.
    fn reattach_compiler_telemetry(&mut self) {
        self.compiler.attach_telemetry(
            CompilerMetrics::from_registry(&self.registry),
            self.trace.clone(),
            self.track,
        );
    }

    // ------------------------------------------------------------------
    // Trace emission. Every virtual-clock event is emitted from this
    // (session) thread against the modeled wall clock, so the
    // virtual-time export is deterministic for a given seed + FaultPlan.
    // ------------------------------------------------------------------

    #[inline]
    fn virt_ns(&self) -> u64 {
        (self.wall.seconds() * 1e9) as u64
    }

    /// `(event span, parent)` for an emission under the active request:
    /// each event gets a fresh child span under the request root. Zeroed
    /// (no attribution) outside a request.
    fn req_at(&self) -> (SpanRef, u64) {
        match &self.req_ctx {
            Some(ctx) => (ctx.span_ref(ctx.child_span()), ctx.root_span()),
            None => (SpanRef::default(), 0),
        }
    }

    /// Announces the execution mode on the trace when it changed — the
    /// paper's promotion staircase, one instant per step.
    fn trace_mode(&mut self) {
        if !self.trace.enabled() {
            return;
        }
        let m = self.mode().name();
        if self.last_mode == Some(m) {
            return;
        }
        self.last_mode = Some(m);
        let (at, parent) = self.req_at();
        self.trace.instant_ctx(
            self.track,
            "jit",
            "mode",
            self.virt_ns(),
            at,
            parent,
            &[("mode", Arg::Str(m)), ("ticks", Arg::U64(self.ticks()))],
        );
    }

    /// Rate-limited `ticks_per_s` counter samples: at most one per
    /// [`RATE_SAMPLE_TICKS`] ticks of progress. The rate is virtual ticks
    /// over virtual seconds — the "gets faster" curve itself.
    fn trace_rate(&mut self) {
        if !self.trace.enabled() {
            return;
        }
        let ticks = self.ticks();
        if ticks.saturating_sub(self.rate_last_ticks) < RATE_SAMPLE_TICKS {
            return;
        }
        let now = self.wall.seconds();
        let dt = now - self.rate_last_s;
        let dticks = ticks.saturating_sub(self.rate_last_ticks);
        self.rate_last_s = now;
        self.rate_last_ticks = ticks;
        if dt <= 0.0 {
            return;
        }
        let mode = self.mode().name();
        self.trace.counter(
            self.track,
            "jit",
            "ticks_per_s",
            self.virt_ns(),
            &[
                ("value", Arg::F64(dticks as f64 / dt)),
                ("mode", Arg::Str(mode)),
            ],
        );
    }

    /// Emits a virtual-clock instant in the `jit` category, attributed to
    /// the active request (when any).
    fn trace_instant(&self, name: &str, args: &[(&str, Arg)]) {
        if self.trace.enabled() {
            let (at, parent) = self.req_at();
            self.trace
                .instant_ctx(self.track, "jit", name, self.virt_ns(), at, parent, args);
        }
    }

    /// The compile retry/watchdog policy, with modeled seconds compressed
    /// by the toolchain's time scale (like compile latency itself).
    fn retry_policy(&self) -> RetryPolicy {
        let scale = self.config.toolchain.time_scale;
        RetryPolicy {
            max_retries: self.config.compile_max_retries,
            backoff_s: self.config.compile_backoff_s * scale,
            watchdog_s: self.config.compile_watchdog_s * scale,
        }
    }

    // ------------------------------------------------------------------
    // Public surface
    // ------------------------------------------------------------------

    /// The board this runtime drives.
    pub fn board(&self) -> &Board {
        &self.board
    }

    /// Virtual clock ticks executed.
    pub fn ticks(&self) -> u64 {
        self.iterations / 2
    }

    /// Modeled wall-clock seconds elapsed.
    pub fn wall_seconds(&self) -> f64 {
        self.wall.seconds()
    }

    /// Advances the modeled wall clock without executing (idle time, e.g.
    /// a user reading the screen in the study model).
    pub fn advance_wall(&mut self, seconds: f64) {
        self.wall.advance_ns(seconds * 1e9);
    }

    /// Whether `$finish` has executed.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Drains view output (`$display` text, warnings).
    pub fn drain_output(&mut self) -> Vec<String> {
        std::mem::take(&mut self.output)
    }

    /// Current statistics.
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats {
            version: self.version,
            ticks: self.ticks(),
            wall_seconds: self.wall.seconds(),
            mode: self.mode(),
            compile_in_flight: self.compiler.busy(),
            engines: self
                .slots
                .iter()
                .map(|s| {
                    let kind = s.engine.kind();
                    (s.name.clone(), kind)
                })
                .collect(),
            open_loop_active: self.open_loop_last,
            compile_cache_hits: self.compiler.cache_hits(),
            compile_cache_misses: self.compiler.cache_misses(),
            compile_cache_evictions: self.compiler.cache_evictions(),
            lease_held: self.lease.is_some(),
            hw_pending: self.pending_hw.is_some(),
            hw_promotions: self.metrics.hw_promotions.get(),
            lease_demotions: self.metrics.lease_demotions.get(),
            compile_retries: self.compiler.retries(),
            compile_watchdog_cancels: self.compiler.watchdog_cancels(),
            panics_contained: self.compiler.worker_panics(),
            scrubs: self.metrics.scrubs.get(),
            scrub_detections: self.metrics.scrub_detections.get(),
            checkpoints_taken: self.metrics.checkpoints_taken.get(),
            checkpoints_restored: self.metrics.checkpoints_restored.get(),
            fabric_losses: self.metrics.fabric_losses.get(),
        }
    }

    /// The metrics registry backing this runtime's typed counters and
    /// histograms. A server merges per-session registries into one
    /// Prometheus-style exposition.
    pub fn metrics_registry(&self) -> &Registry {
        &self.registry
    }

    /// Point-in-time metric snapshots: every registry metric plus derived
    /// gauges/counters for the remaining [`RuntimeStats`] fields, so the
    /// exposition covers the whole legacy stats surface.
    pub fn metrics_snapshot(&self) -> Vec<MetricSnapshot> {
        let mut snaps = self.registry.snapshot();
        let s = self.stats();
        let gauge = |name: &str, help: &str, v: f64| MetricSnapshot {
            name: name.to_string(),
            help: help.to_string(),
            value: SnapValue::Gauge(v),
        };
        let counter = |name: &str, help: &str, v: u64| MetricSnapshot {
            name: name.to_string(),
            help: help.to_string(),
            value: SnapValue::Counter(v),
        };
        let flag = |b: bool| {
            if b {
                1.0
            } else {
                0.0
            }
        };
        let mode_code = match s.mode {
            ExecMode::Idle => 0.0,
            ExecMode::Software => 1.0,
            ExecMode::Hardware => 2.0,
            ExecMode::HardwareForwarded => 3.0,
            ExecMode::Native => 4.0,
        };
        cascade_trace::merge(
            &mut snaps,
            vec![
                counter("jit_ticks_total", "virtual clock ticks executed", s.ticks),
                gauge(
                    "jit_wall_seconds",
                    "modeled wall-clock seconds elapsed",
                    s.wall_seconds,
                ),
                gauge(
                    "jit_version",
                    "program version (eval count)",
                    s.version as f64,
                ),
                gauge(
                    "jit_mode",
                    "execution mode (0=idle 1=software 2=hardware 3=hardware-forwarded 4=native)",
                    mode_code,
                ),
                gauge(
                    "jit_compile_in_flight",
                    "whether a background compile is in flight",
                    flag(s.compile_in_flight),
                ),
                gauge(
                    "jit_open_loop_active",
                    "whether the last batch used open-loop scheduling",
                    flag(s.open_loop_active),
                ),
                counter(
                    "jit_compile_cache_hits_total",
                    "background compiles answered from the bitstream cache",
                    s.compile_cache_hits,
                ),
                counter(
                    "jit_compile_cache_misses_total",
                    "background compiles that ran the full toolchain flow",
                    s.compile_cache_misses,
                ),
                counter(
                    "jit_compile_cache_evictions_total",
                    "bitstreams evicted from the bounded cache",
                    s.compile_cache_evictions,
                ),
                gauge(
                    "jit_lease_held",
                    "whether a fabric lease is currently held",
                    flag(s.lease_held),
                ),
                gauge(
                    "jit_hw_pending",
                    "whether a compiled bitstream is waiting for a fabric",
                    flag(s.hw_pending),
                ),
                counter(
                    "trace_ring_dropped_total",
                    "trace events dropped to ring-buffer overflow",
                    self.trace.dropped(),
                ),
            ],
        );
        snaps
    }

    /// Prometheus-style text exposition of [`Runtime::metrics_snapshot`].
    pub fn metrics_text(&self) -> String {
        expose(&self.metrics_snapshot())
    }

    /// The trace sink this runtime emits JIT lifecycle events into.
    pub fn trace_sink(&self) -> &TraceSink {
        &self.trace
    }

    /// Renders the active main engine's execution profile, or `None` when
    /// there is no user logic or profiling is off (tracing disabled).
    /// Attribution follows the engine: the bytecode engine reports source
    /// processes and opcode mnemonics, the virtual-hardware engine reports
    /// combinational levels, kernels, and hot nets.
    pub fn profile_text(&mut self) -> Option<String> {
        let idx = self.main_idx?;
        let engine = &mut self.slots[idx].engine;
        let mut out = String::new();
        use std::fmt::Write as _;
        if let Some(sw) = as_sw(engine) {
            let rep = sw.profile_report()?;
            let _ = writeln!(out, "profile (software engine, bytecode):");
            let _ = writeln!(out, "  process activations:");
            for (label, n) in rep.procs.iter().take(12) {
                let _ = writeln!(out, "    {n:>12}  {label}");
            }
            let _ = writeln!(out, "  opcode executions (est):");
            for (op, n) in rep.opcodes.iter().take(12) {
                let _ = writeln!(out, "    {n:>12}  {op}");
            }
            return Some(out);
        }
        if let Some(hw) = as_hw(engine) {
            let rep = hw.profile_report()?;
            if rep.lanes > 1 || rep.threads > 1 {
                let _ = writeln!(
                    out,
                    "profile (hardware engine, arena; lanes={}, threads={}):",
                    rep.lanes, rep.threads
                );
            } else {
                let _ = writeln!(out, "profile (hardware engine, arena):");
            }
            // Per-level thread utilization: share of the level's work that
            // ran split across the pool (cutover observability).
            let util: std::collections::BTreeMap<u32, f64> =
                rep.level_util.iter().copied().collect();
            let _ = writeln!(out, "  instruction executions by level:");
            for (lvl, n) in rep.levels.iter().take(12) {
                match util.get(lvl) {
                    Some(share) => {
                        let _ = writeln!(
                            out,
                            "    {n:>12}  level {lvl}  pool {:>3.0}%",
                            share * 100.0
                        );
                    }
                    None => {
                        let _ = writeln!(out, "    {n:>12}  level {lvl}");
                    }
                }
            }
            // Per-kernel lane occupancy: share of evaluated lanes whose
            // output changed on the change-tracking paths.
            let occ: std::collections::BTreeMap<&str, f64> =
                rep.kernel_occupancy.iter().map(|&(k, v)| (k, v)).collect();
            let _ = writeln!(out, "  kernel executions:");
            for (k, n) in rep.kernels.iter().take(12) {
                match occ.get(*k) {
                    Some(share) => {
                        let _ = writeln!(out, "    {n:>12}  {k}  occ {:>3.0}%", share * 100.0);
                    }
                    None => {
                        let _ = writeln!(out, "    {n:>12}  {k}");
                    }
                }
            }
            let _ = writeln!(out, "  hot nets:");
            for (name, n) in rep.hot_nets.iter().take(12) {
                let _ = writeln!(out, "    {n:>12}  {name}");
            }
            return Some(out);
        }
        None
    }

    /// Reconfigures the data-parallel knobs at runtime. `batch_width` is
    /// the advertised lane count for batch drivers (parameter sweeps,
    /// corpus grading); `eval_threads` sizes the worker pool of the
    /// compiled netlist engine and is applied to a live hardware engine
    /// immediately (software engines are unaffected). `None` leaves a
    /// knob unchanged.
    pub fn set_data_parallel(&mut self, batch_width: Option<u32>, eval_threads: Option<u32>) {
        if let Some(w) = batch_width {
            self.config.batch_width = w.clamp(1, cascade_netlist::MAX_BATCH_LANES);
        }
        if let Some(t) = eval_threads {
            self.config.eval_threads = t.max(1);
            if let Some(idx) = self.main_idx {
                if let Some(hw) = as_hw(&mut self.slots[idx].engine) {
                    hw.set_eval_threads(t);
                }
            }
        }
    }

    /// The current `(batch_width, eval_threads)` knobs.
    pub fn data_parallel(&self) -> (u32, u32) {
        (self.config.batch_width, self.config.eval_threads)
    }

    /// Sets the track id stamped on this runtime's trace events (servers
    /// use the session id, so one shared sink holds every session).
    pub fn set_trace_track(&mut self, track: u64) {
        self.track = track;
        self.reattach_compiler_telemetry();
    }

    /// Enters (or leaves, with `None`) a request's causal context: until
    /// changed, every trace event this runtime emits joins that request's
    /// span tree, and compile submissions carry the context into the
    /// shared pool. Servers set this around each protocol command.
    pub fn set_request_ctx(&mut self, ctx: Option<RequestCtx>) {
        self.req_ctx = ctx;
    }

    /// Joins a shared virtual-FPGA fleet: hardware promotion now requires a
    /// fabric lease from `fleet`, and the lease can be revoked (the runtime
    /// migrates back to its software engine at the next tick boundary).
    /// `tenant` must be unique across the fleet's tenants.
    pub fn attach_fleet(&mut self, fleet: Fleet, tenant: u64) {
        self.fleet = Some((fleet, tenant));
    }

    /// The trace track id stamped on this runtime's events.
    pub fn trace_track(&self) -> u64 {
        self.track
    }

    /// Routes background compiles through a shared [`CompilePool`] queue
    /// (replacing the private per-runtime compiler and cache). Call before
    /// the first `eval`.
    ///
    /// [`CompilePool`]: crate::CompilePool
    pub fn attach_compile_queue(&mut self, queue: CompileQueue) {
        self.compiler = BackgroundCompiler::with_queue(queue);
        self.compiler
            .configure(self.retry_policy(), self.config.faults.clone());
        // The replacement compiler re-fetches the same registry cells, so
        // retry/watchdog/panic counts survive the swap instead of
        // resetting to zero.
        self.reattach_compiler_telemetry();
    }

    /// Reports this tenant's activity heat to the fleet arbiter (higher =
    /// more recently active; the server assigns monotonically increasing
    /// stamps across tenants).
    pub fn set_heat(&mut self, heat: f64) {
        self.heat = heat;
        self.lease_backoff_until_iter = 0;
        if let Some((fleet, tenant)) = &self.fleet {
            fleet.touch(*tenant, heat);
        }
    }

    /// Whether this runtime currently holds a fabric lease.
    pub fn lease_held(&self) -> bool {
        self.lease.is_some()
    }

    /// Services fleet and compiler events without advancing virtual time:
    /// vacates a revoked lease (migrating state back to software), polls
    /// the background compiler, and claims a fabric when one is available.
    /// The server calls this on idle sessions so a revocation or a
    /// reservation does not wait for the tenant's next command.
    ///
    /// # Errors
    ///
    /// Returns [`CascadeError`] if an engine rebuild or swap fails.
    pub fn service(&mut self) -> Result<(), CascadeError> {
        self.check_revocation()?;
        self.poll_compiler()?;
        // Command boundary: always re-ask the arbiter, even mid-backoff.
        self.lease_backoff_until_iter = 0;
        self.try_promote()
    }

    /// The current execution mode.
    pub fn mode(&self) -> ExecMode {
        if self.native {
            return ExecMode::Native;
        }
        match self.main_idx {
            None => ExecMode::Idle,
            Some(i) => match self.slots[i].engine.kind() {
                EngineKind::Hardware => {
                    if self.slots.len() <= 2 {
                        ExecMode::HardwareForwarded
                    } else {
                        ExecMode::Hardware
                    }
                }
                EngineKind::Native => ExecMode::Native,
                _ => ExecMode::Software,
            },
        }
    }

    /// Evaluates Verilog source: module declarations enter the library;
    /// bare items (declarations, instantiations, statements) append to the
    /// implicit root module. Code begins executing immediately — statements
    /// run once, and any `$display` output is available from
    /// [`Runtime::drain_output`] on return.
    ///
    /// # Errors
    ///
    /// Returns [`CascadeError`] on parse/type errors; the program is left
    /// unchanged.
    pub fn eval(&mut self, src: &str) -> Result<(), CascadeError> {
        let t0 = self.virt_ns();
        let h0 = self.trace.host_ns();
        let src = cascade_verilog::preproc::preprocess(src, &cascade_verilog::preproc::NoIncludes)?;
        let unit = cascade_verilog::parse(&src)?;
        let h_parse = self.trace.host_ns();
        // Stage: validate before mutating.
        let mut staged_lib = self.lib.clone();
        let mut staged_root = self.root.clone();
        for item in unit.items {
            match item {
                Item::Module(m) => {
                    if cascade_stdlib::is_stdlib_module(&m.name) {
                        return Err(CascadeError::Unsupported(format!(
                            "cannot redeclare standard-library module `{}`",
                            m.name
                        )));
                    }
                    // Monotonicity (paper Sec. 7.2): eval may add code to a
                    // running program but never edit or delete it — the
                    // soundness of running code immediately depends on later
                    // evals not changing its semantics.
                    if staged_lib.contains(&m.name) {
                        return Err(CascadeError::Unsupported(format!(
                            "cannot redeclare module `{}`: Cascade programs are append-only \
                             (paper Sec. 7.2)",
                            m.name
                        )));
                    }
                    check_module(&m, &ParamEnv::new(), &staged_lib)
                        .map_err(CascadeError::Typecheck)?;
                    staged_lib.insert(m);
                }
                Item::RootItem(mi) => {
                    staged_root.push(RootEntry {
                        item: mi,
                        executed: false,
                    });
                }
            }
        }
        // Validate the composed root module.
        let root_module = compose_root(&staged_root, false);
        let externals = root_externals(&root_module, &staged_lib, &self.config, true)?;
        let mut wires = Vec::new();
        let transformed =
            transform_module(ROOT, &root_module, &externals, &staged_lib, &mut wires)?;
        check_module(&transformed, &ParamEnv::new(), &staged_lib)
            .map_err(CascadeError::Typecheck)?;
        let h_elaborate = self.trace.host_ns();
        // Commit. Any open speculation window is verified first so the
        // state a rebuild migrates is trustworthy; a mid-commit rebuild
        // failure (or panic) restores the previous program so one bad item
        // cannot take the session down.
        self.verify_speculation()?;
        let prev_lib = std::mem::replace(&mut self.lib, staged_lib);
        let prev_root = std::mem::replace(&mut self.root, staged_root);
        self.version += 1;
        self.native = false;
        match catch_unwind(AssertUnwindSafe(|| self.rebuild())) {
            Ok(Ok(())) => {
                // Committed: the (preprocessed) text joins the hibernation
                // replay log. Preprocessed form keeps `define scoping
                // per-eval even when the log is replayed as one unit.
                self.src_log.push(src.clone());
                if self.trace.enabled() {
                    let (at, parent) = self.req_at();
                    self.trace.span_ctx(
                        self.track,
                        "jit",
                        "eval",
                        t0,
                        self.virt_ns().saturating_sub(t0),
                        at,
                        parent,
                        &[("version", Arg::U64(self.version))],
                    );
                    // Host-clock parse/elaborate timings ride on a
                    // non-deterministic instant so the virtual-time export
                    // stays byte-identical across runs.
                    self.trace.host_instant(
                        self.track,
                        "jit",
                        "eval_host",
                        &[
                            ("parse_ns", Arg::U64(h_parse.saturating_sub(h0))),
                            (
                                "elaborate_ns",
                                Arg::U64(h_elaborate.saturating_sub(h_parse)),
                            ),
                            (
                                "total_ns",
                                Arg::U64(self.trace.host_ns().saturating_sub(h0)),
                            ),
                        ],
                    );
                }
                self.trace_mode();
                Ok(())
            }
            Ok(Err(e)) => {
                self.recover_failed_commit(prev_lib, prev_root);
                Err(e)
            }
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                self.recover_failed_commit(prev_lib, prev_root);
                Err(CascadeError::Internal(msg))
            }
        }
    }

    /// Restores the previous (known-good) program after a failed eval
    /// commit. Rebuilding the prior program is best-effort: it was running
    /// a moment ago, so a second failure means engine state is torn — the
    /// runtime is then left idle but alive.
    fn recover_failed_commit(&mut self, lib: ModuleLibrary, root: Vec<RootEntry>) {
        self.lib = lib;
        self.root = root;
        self.version += 1;
        let recovered = matches!(
            catch_unwind(AssertUnwindSafe(|| self.rebuild())),
            Ok(Ok(()))
        );
        if !recovered {
            self.slots.clear();
            self.wires.clear();
            self.clock_idx = 0;
            self.main_idx = None;
            self.hw_design = None;
        }
    }

    /// Runs `n` virtual clock ticks (or until `$finish`), using open-loop
    /// scheduling when eligible. Returns the ticks actually executed.
    ///
    /// # Errors
    ///
    /// Returns [`CascadeError`] on engine faults.
    pub fn run_ticks(&mut self, n: u64) -> Result<u64, CascadeError> {
        // Progress is derived from the iteration counter rather than
        // accumulated locally: a scrub-detected fault rolls the counter
        // back, and the rolled-back ticks must be re-executed.
        let start = self.iterations;
        self.open_loop_last = false;
        loop {
            loop {
                let done = self.iterations.saturating_sub(start) / 2;
                if done >= n || self.finished {
                    break;
                }
                self.check_revocation()?;
                self.poll_compiler()?;
                self.try_promote()?;
                self.maybe_scrub()?;
                self.maybe_checkpoint();
                // Servicing above may have rewound or advanced progress.
                let done = self.iterations.saturating_sub(start) / 2;
                if done >= n || self.finished {
                    break;
                }
                if self.try_open_loop(n - done)?.is_some() {
                    self.trace_rate();
                    continue;
                }
                self.tick()?;
                self.trace_rate();
            }
            // Never leave an unverified window at a command boundary: a
            // detection here rolls back (rewinding `iterations`) and the
            // outer loop re-executes the lost ticks in software.
            if self.speculating() && self.iterations != self.last_scrub_iter {
                self.scrub()?;
                continue;
            }
            break;
        }
        Ok(self.iterations.saturating_sub(start) / 2)
    }

    /// Runs one virtual clock tick (two scheduler iterations).
    ///
    /// # Errors
    ///
    /// Returns [`CascadeError`] on engine faults.
    pub fn tick(&mut self) -> Result<(), CascadeError> {
        self.iteration()?;
        self.iteration()?;
        if self.vcd.is_some() {
            self.vcd_sample();
        }
        Ok(())
    }

    /// Switches to native mode: the program is compiled exactly as written
    /// (no wrapper), sacrificing interactivity and system tasks for full
    /// native performance. Blocks for the (modeled) compile latency.
    ///
    /// # Errors
    ///
    /// Returns [`CascadeError::NativeIneligible`] when the program uses
    /// unsynthesizable Verilog, or the compile error otherwise.
    pub fn enter_native(&mut self) -> Result<(), CascadeError> {
        self.verify_speculation()?;
        let design = self
            .hw_design
            .clone()
            .ok_or_else(|| CascadeError::NativeIneligible("no user logic".to_string()))?;
        let mut tc = self.config.toolchain.clone();
        tc.overhead_les = 0;
        let bitstream = tc.compile(&design)?;
        if !bitstream.netlist.tasks.is_empty() {
            return Err(CascadeError::NativeIneligible(
                "program contains unsynthesizable system tasks".to_string(),
            ));
        }
        let t0 = self.virt_ns();
        self.wall.advance(bitstream.modeled_duration);
        // Gather peripherals for direct connection.
        let forwarded = self.collect_forwarded();
        let native = NativeEngine::new(Arc::clone(&bitstream.netlist), forwarded)
            .map_err(|e| CascadeError::NativeIneligible(e.to_string()))?;
        let main_idx = self.main_idx.expect("hw_design implies main");
        self.slots[main_idx].engine = Box::new(native);
        // Only the clock and the native engine remain.
        self.retain_clock_and_main();
        self.native = true;
        // Native mode restarts state; checkpoints of the old engines are
        // meaningless now.
        self.checkpoint = None;
        self.board.fifo_unmark();
        if self.trace.enabled() {
            let (at, parent) = self.req_at();
            self.trace.span_ctx(
                self.track,
                "jit",
                "native_handoff",
                t0,
                self.virt_ns().saturating_sub(t0),
                at,
                parent,
                &[("version", Arg::U64(self.version))],
            );
        }
        self.trace_mode();
        Ok(())
    }

    /// Leaves native mode, rebuilding interpreted engines (state restarts
    /// from initial values, as with a traditionally-deployed design).
    ///
    /// # Errors
    ///
    /// Returns [`CascadeError`] if the rebuild fails.
    pub fn exit_native(&mut self) -> Result<(), CascadeError> {
        self.native = false;
        self.version += 1;
        self.rebuild()
    }

    /// Test and instrumentation support: blocks until any in-flight
    /// compilation's worker thread finishes (its modeled latency still
    /// gates the swap).
    pub fn wait_for_compile_worker(&mut self) {
        self.compiler.wait_worker();
    }

    /// The modeled second of the next compiler event: a staged outcome
    /// becoming ready, or a watchdog deadline on a hung compile.
    pub fn compile_ready_at(&self) -> Option<f64> {
        self.compiler.wake_at()
    }

    /// Takes an explicit recovery checkpoint of the program. Any open
    /// speculation window is verified first. Returns whether a checkpoint
    /// was taken (`false` without user logic).
    ///
    /// # Errors
    ///
    /// Returns [`CascadeError`] if verifying the open window fails.
    pub fn checkpoint_now(&mut self) -> Result<bool, CascadeError> {
        self.verify_speculation()?;
        if self.main_idx.is_none() {
            return Ok(false);
        }
        self.take_checkpoint();
        Ok(true)
    }

    /// Rewinds the program to the last recovery checkpoint (engine state,
    /// tick count, `$finish` status, and peripheral FIFO positions),
    /// resuming in software. Returns whether a checkpoint existed.
    ///
    /// # Errors
    ///
    /// Returns [`CascadeError`] if the software rebuild fails.
    pub fn restore_checkpoint(&mut self) -> Result<bool, CascadeError> {
        if self.checkpoint.is_none() {
            return Ok(false);
        }
        self.rollback_to_checkpoint()?;
        Ok(true)
    }

    /// Freezes this runtime into a portable [`HibernateImage`]: the
    /// committed source log plus a verified checkpoint of every engine.
    /// Routes through the same machinery as [`Runtime::checkpoint_now`],
    /// so any open speculation window is scrubbed (and re-executed on
    /// corruption) before its state is trusted. After this returns the
    /// runtime can simply be dropped — a held fabric lease is released by
    /// the drop — and later resurrected with [`Runtime::restore_image`]
    /// on a fresh runtime bound to the *same* board.
    ///
    /// # Errors
    ///
    /// Returns [`CascadeError::Unsupported`] in native mode (the program
    /// is fused to its fabric) or during an active VCD dump (the tap
    /// holds a live file), and propagates speculation-verify failures.
    pub fn hibernate_image(&mut self) -> Result<crate::hibernate::HibernateImage, CascadeError> {
        if self.native {
            return Err(CascadeError::Unsupported(
                "native sessions cannot hibernate".to_string(),
            ));
        }
        if self.vcd.is_some() {
            return Err(CascadeError::Unsupported(
                "cannot hibernate during an active VCD dump".to_string(),
            ));
        }
        let took = self.checkpoint_now()?;
        let states = if took {
            self.checkpoint
                .as_ref()
                .map(|cp| cp.states.clone())
                .unwrap_or_default()
        } else {
            BTreeMap::new()
        };
        // take_checkpoint may have opened a FIFO journal mark (hardware
        // mode); this runtime is about to be dropped, so leave the board
        // unjournaled for its successor.
        self.board.fifo_unmark();
        Ok(crate::hibernate::HibernateImage {
            source: self.src_log.join("\n"),
            states,
            iterations: self.iterations,
            finished: self.finished,
            wall_seconds: self.wall.seconds(),
        })
    }

    /// Resurrects a hibernated program on this (fresh) runtime: advances
    /// the modeled wall clock to the image's, replays the append-only
    /// source log to rebuild the library and root structure (replay
    /// output is discarded — it already happened), then overwrites engine
    /// state with the checkpointed snapshot exactly as a rollback would.
    /// The restored state is re-armed as the recovery checkpoint, and the
    /// replayed design re-enters the compile pipeline (hitting the
    /// bitstream cache when the design was compiled before).
    ///
    /// # Errors
    ///
    /// Returns [`CascadeError`] if the source replay or the state rebuild
    /// fails; the runtime is then in the replayed-but-unrestored state
    /// and should be discarded.
    pub fn restore_image(
        &mut self,
        image: &crate::hibernate::HibernateImage,
    ) -> Result<(), CascadeError> {
        let dt = image.wall_seconds - self.wall.seconds();
        if dt > 0.0 {
            self.advance_wall(dt);
        }
        if !image.source.is_empty() {
            self.eval(&image.source)?;
        }
        // Replay re-ran the program's one-shot items; their output (and
        // any staged warnings) belongs to the pre-hibernation transcript.
        self.output.clear();
        self.iterations = image.iterations;
        self.finished = image.finished;
        if !image.states.is_empty() {
            self.rebuild_from(Some(image.states.clone()))?;
            self.output.clear();
            // Arm the restored snapshot as the last known-good point so an
            // immediate post-wake fault can still roll back.
            self.checkpoint = Some(Checkpoint {
                states: image.states.clone(),
                iterations: self.iterations,
                finished: self.finished,
            });
        }
        self.last_ckpt_iter = self.iterations;
        self.last_scrub_iter = self.iterations;
        Ok(())
    }

    /// Drains the recovery event log (retries, scrub detections,
    /// rollbacks). Kept separate from [`Runtime::drain_output`] because
    /// recovery must not perturb the user-visible transcript.
    pub fn drain_recovery_log(&mut self) -> Vec<String> {
        std::mem::take(&mut self.recovery_log)
    }

    /// Reads a named signal from the main engine (outputs and promoted
    /// ports), for tests and probes. Any open speculation window is
    /// verified first: a fault-plan upset can strike at the very scrub
    /// boundary that just came back clean, and probing the raw engine
    /// would leak that unverified (possibly corrupt) state to the caller.
    /// Returns `None` when verification cannot restore a trustworthy
    /// state.
    pub fn probe(&mut self, port: &str) -> Option<Bits> {
        self.verify_speculation().ok()?;
        let idx = self.main_idx?;
        Some(self.slots[idx].engine.output(port))
    }

    // ------------------------------------------------------------------
    // Waveform dumps (VCD)
    // ------------------------------------------------------------------

    /// Starts streaming a VCD waveform to `path`, sampled once per tick.
    /// `ports` names main-engine signals (as [`Runtime::probe`] sees
    /// them); an empty list defaults to every main-engine port on the
    /// data plane. The clock is always included. Open-loop scheduling is
    /// suspended while a dump is active so every tick is observable.
    ///
    /// # Errors
    ///
    /// Returns [`CascadeError::Unsupported`] when there is no user logic,
    /// a port is unknown, or the file cannot be created.
    pub fn vcd_start(&mut self, path: &str, ports: &[String]) -> Result<(), CascadeError> {
        if self.main_idx.is_none() {
            return Err(CascadeError::Unsupported(
                "vcd: no user logic to dump".to_string(),
            ));
        }
        let mut names: Vec<String> = if ports.is_empty() {
            let main_idx = self.main_idx;
            let mut auto: Vec<String> = self
                .wires
                .iter()
                .filter(|w| Some(w.from.0) == main_idx)
                .map(|w| w.from.1.clone())
                .collect();
            auto.sort();
            auto.dedup();
            auto
        } else {
            ports.to_vec()
        };
        names.retain(|n| n != "clk");
        names.insert(0, "clk".to_string());
        // Resolve widths from live values; unknown ports fail fast.
        let mut decls: Vec<(String, u32)> = Vec::new();
        for name in &names {
            let width = if name == "clk" {
                1
            } else {
                match self.probe(name) {
                    Some(b) => b.width(),
                    None => {
                        return Err(CascadeError::Unsupported(format!(
                            "vcd: unknown port `{name}`"
                        )))
                    }
                }
            };
            decls.push((name.clone(), width));
        }
        let file = std::fs::File::create(path)
            .map_err(|e| CascadeError::Unsupported(format!("vcd: cannot create `{path}`: {e}")))?;
        let writer = PortVcd::new(std::io::BufWriter::new(file), ROOT, &decls)
            .map_err(|e| CascadeError::Unsupported(format!("vcd: write failed: {e}")))?;
        self.vcd = Some(VcdTap {
            writer,
            ports: names,
            path: path.to_string(),
        });
        // Record the starting values immediately.
        self.vcd_sample();
        Ok(())
    }

    /// Whether a VCD dump is active.
    pub fn vcd_active(&self) -> bool {
        self.vcd.is_some()
    }

    /// Stops the active VCD dump, flushing the file. Returns its path.
    pub fn vcd_stop(&mut self) -> Option<String> {
        let mut tap = self.vcd.take()?;
        if let Err(e) = tap.writer.finish() {
            self.warnings.push(format!("vcd: flush failed: {e}"));
        }
        Some(tap.path)
    }

    /// Appends one sample of every tracked port to the active dump. A
    /// write failure stops the dump with a warning rather than killing
    /// the session.
    fn vcd_sample(&mut self) {
        let Some(tap) = &self.vcd else {
            return;
        };
        let names = tap.ports.clone();
        let values: Vec<Option<Bits>> = names
            .iter()
            .map(|n| {
                if n == "clk" {
                    Some(self.slots[self.clock_idx].engine.output("val"))
                } else {
                    self.probe(n)
                }
            })
            .collect();
        let Some(tap) = &mut self.vcd else {
            return;
        };
        if let Err(e) = tap.writer.sample(&values) {
            self.warnings
                .push(format!("vcd: write failed: {e}; dump stopped"));
            self.vcd = None;
        }
    }

    // ------------------------------------------------------------------
    // Rebuild: source → partition → engines
    // ------------------------------------------------------------------

    fn rebuild(&mut self) -> Result<(), CascadeError> {
        self.rebuild_from(None)
    }

    /// Rebuilds engines from source, seeding them from `override_states`
    /// when given (checkpoint restore — the live engines' state is
    /// deliberately ignored) or from the live engines otherwise.
    fn rebuild_from(
        &mut self,
        override_states: Option<BTreeMap<String, EngineState>>,
    ) -> Result<(), CascadeError> {
        // Engines are about to be replaced with software: any staged
        // bitstream is stale and a held fabric lease must be returned to
        // the fleet (dropping it releases the fabric).
        self.pending_hw = None;
        self.hw_pending_since_s = None;
        self.lease = None;
        // Speculation bookkeeping resets with the engines. Quarantined
        // output is committed — callers that intend to discard it
        // (rollback) clear the quarantine first.
        self.checkpoint = None;
        self.board.fifo_unmark();
        let leftover = std::mem::take(&mut self.quarantine);
        self.output.extend(leftover);
        // 1. Save state. A forwarding hardware engine reports absorbed
        // peripheral state under `instance::element` keys; split those
        // back out so peripherals survive demotion.
        let mut saved: BTreeMap<String, EngineState> = match override_states {
            Some(states) => states,
            None => {
                let mut saved = BTreeMap::new();
                for slot in &mut self.slots {
                    saved.insert(slot.name.clone(), slot.engine.get_state());
                }
                saved
            }
        };
        split_forwarded_state(&mut saved);
        // 2. Compose and transform. Without inlining (paper Fig. 9.1), every
        // root-level user-module instance becomes its own engine on the
        // data/control plane; with inlining (Fig. 9.2) they stay inside the
        // single main subprogram.
        let root_module = compose_root(&self.root, true);
        let mut externals = root_externals(&root_module, &self.lib, &self.config, true)?;
        let mut child_specs: Vec<(String, String, ParamEnv)> = Vec::new();
        if !self.config.inline {
            for item in &root_module.items {
                let ModuleItem::Instance(inst) = item else {
                    continue;
                };
                if cascade_stdlib::is_stdlib_module(&inst.module) {
                    continue;
                }
                let Some(decl) = self.lib.get(&inst.module) else {
                    continue;
                };
                let mut params = ParamEnv::new();
                for (i, conn) in inst.params.iter().enumerate() {
                    let name = match &conn.name {
                        Some(n) => n.clone(),
                        None => match decl.params.get(i) {
                            Some(p) => p.name.clone(),
                            None => continue,
                        },
                    };
                    if let Some(expr) = &conn.expr {
                        if let Ok(v) = const_eval(expr, &ParamEnv::new()) {
                            params.insert(name, v);
                        }
                    }
                }
                externals.insert(inst.name.clone(), (inst.module.clone(), params.clone()));
                child_specs.push((inst.name.clone(), inst.module.clone(), params));
            }
        }
        let mut wires: Vec<Wire> = Vec::new();
        let transformed = transform_module(ROOT, &root_module, &externals, &self.lib, &mut wires)?;

        // 3. Build engines.
        let mut slots: Vec<Slot> = Vec::new();
        slots.push(Slot {
            name: "clk".to_string(),
            engine: Box::new(ClockEngine::new()),
        });
        let clock_idx = 0;

        // Peripherals that actually participate (wired), instantiated via
        // the stdlib.
        let mut peripheral_names: Vec<String> = wires
            .iter()
            .flat_map(|w| [w.from.0.clone(), w.to.0.clone()])
            .filter(|n| n != ROOT && n != "clk")
            .collect();
        peripheral_names.sort();
        peripheral_names.dedup();
        for name in &peripheral_names {
            let Some((module, params)) = externals.get(name) else {
                continue;
            };
            if !cascade_stdlib::is_stdlib_module(module) {
                continue; // a non-inlined user instance: gets its own engine below
            }
            let Some(p) = cascade_stdlib::instantiate(module, params, &self.board) else {
                return Err(CascadeError::Unsupported(format!(
                    "`{module}` cannot be instantiated as a peripheral"
                )));
            };
            slots.push(Slot {
                name: name.clone(),
                engine: Box::new(PeripheralEngine::new(p)),
            });
        }

        // Child engines for non-inlined user instances (software only; the
        // JIT promotes to hardware only in the inlined configuration, as in
        // the paper's optimization flow).
        for (inst_name, module_name, params) in &child_specs {
            let design = cascade_sim::elaborate(module_name, &self.lib, params)
                .map_err(CascadeError::Elaborate)?;
            let engine = SwEngine::with_options(
                Arc::new(design),
                saved.get(inst_name.as_str()),
                self.config.sw_compile,
            )
            .map_err(|e| CascadeError::Unsupported(e.to_string()))?;
            slots.push(Slot {
                name: inst_name.clone(),
                engine: Box::new(engine),
            });
        }

        // The main engine (if there is user logic).
        let has_user_logic = !transformed.items.is_empty();
        let mut main_idx = None;
        let mut hw_design = None;
        if has_user_logic {
            // Software design includes not-yet-executed statements/initials.
            let sw_design = Arc::new(self.elaborate_subprogram(&transformed)?);
            // The hardware design excludes one-shot items entirely.
            let hw_module = strip_one_shot(&transformed);
            let hw = Arc::new(self.elaborate_subprogram(&hw_module)?);
            // Prior state is restored *before* initial blocks and freshly
            // eval'ed statements execute, so probes observe live values.
            let engine = SwEngine::with_options(
                Arc::clone(&sw_design),
                saved.get(ROOT),
                self.config.sw_compile,
            )
            .map_err(|e| CascadeError::Unsupported(e.to_string()))?;
            main_idx = Some(slots.len());
            slots.push(Slot {
                name: ROOT.to_string(),
                engine: Box::new(engine),
            });
            hw_design = Some(hw);
        }

        // 4. Resolve wires (plus the implicit clock wire to peripherals).
        let index_of = |name: &str, slots: &[Slot]| slots.iter().position(|s| s.name == name);
        let mut resolved = Vec::new();
        for w in &wires {
            let (Some(f), Some(t)) = (index_of(&w.from.0, &slots), index_of(&w.to.0, &slots))
            else {
                continue; // wire to an unused peripheral
            };
            resolved.push(ResolvedWire {
                from: (f, w.from.1.clone()),
                to: (t, w.to.1.clone()),
                last: None,
            });
        }
        for (i, slot) in slots.iter().enumerate() {
            if slot.engine.kind() == EngineKind::Peripheral {
                resolved.push(ResolvedWire {
                    from: (clock_idx, "val".to_string()),
                    to: (i, PERIPHERAL_CLOCK_PORT.to_string()),
                    last: None,
                });
            }
        }

        // Restore peripheral state (memories survive rebuilds).
        for slot in &mut slots {
            if let Some(prev) = saved.get(&slot.name) {
                if slot.engine.kind() == EngineKind::Peripheral {
                    slot.engine.set_state(prev);
                }
            }
        }

        self.slots = slots;
        self.wires = resolved;
        self.clock_idx = clock_idx;
        self.main_idx = main_idx;
        self.hw_design = hw_design;

        // 5. Mark one-shot items executed (they ran during engine init) and
        // surface their output.
        for entry in &mut self.root {
            if matches!(
                entry.item,
                ModuleItem::Statement(_) | ModuleItem::Initial(_)
            ) {
                entry.executed = true;
            }
        }
        self.collect_interrupts();
        // Initial propagation so peripherals see time-zero outputs.
        self.propagate();

        // Building (or bytecode-compiling) the software engine is itself a
        // JIT phase: announce it so the timeline shows the interpreter →
        // compiled-software step. Modeled duration is zero — software
        // compilation is instantaneous on the virtual clock.
        if let (Some(idx), true) = (self.main_idx, self.trace.enabled()) {
            if let Some(sw) = as_sw(&mut self.slots[idx].engine) {
                sw.enable_profiling();
            }
            let (at, parent) = self.req_at();
            self.trace.span_ctx(
                self.track,
                "jit",
                "software_compile",
                self.virt_ns(),
                0,
                at,
                parent,
                &[
                    ("version", Arg::U64(self.version)),
                    ("bytecode", Arg::Bool(self.config.sw_compile)),
                ],
            );
        }

        // 6. Kick background compilation (only meaningful for the inlined
        // configuration: a partitioned program would need one compile per
        // engine, which the paper's flow sidesteps by inlining first).
        if self.config.auto_compile && self.config.inline {
            if let Some(design) = &self.hw_design {
                // The compile work is attributed to the submitting request:
                // one child span covers the whole toolchain flow (attempts,
                // backoff) and rides into the shared pool so dedup joins can
                // link to it from other requests.
                let (at, parent) = self.req_at();
                self.compiler.set_origin(at, parent);
                self.compiler.submit(
                    Arc::clone(design),
                    self.config.toolchain.clone(),
                    self.version,
                    self.wall.seconds(),
                );
                if self.trace.enabled() {
                    self.trace.instant_ctx(
                        self.track,
                        "compile",
                        "submit",
                        self.virt_ns(),
                        at,
                        parent,
                        &[("version", Arg::U64(self.version))],
                    );
                }
            }
        }
        self.trace_mode();
        Ok(())
    }

    /// Elaborates a transformed subprogram against the user library.
    /// (Function inlining happens inside `cascade_sim::elaborate`.)
    fn elaborate_subprogram(&self, module: &Module) -> Result<Design, CascadeError> {
        let mut lib = self.lib.clone();
        let mut m = module.clone();
        m.name = "__cascade_sub".to_string();
        lib.insert(m);
        cascade_sim::elaborate("__cascade_sub", &lib, &ParamEnv::new())
            .map_err(CascadeError::Elaborate)
    }

    // ------------------------------------------------------------------
    // Scheduler (paper Fig. 6)
    // ------------------------------------------------------------------

    fn iteration(&mut self) -> Result<(), CascadeError> {
        if self.finished {
            return Ok(());
        }
        // Start-of-step: poll external inputs (board state the user changed
        // while the runtime was idle) and re-arm recurring events like the
        // clock tick. This is the paper's "end step for all engines",
        // executed at the equivalent point before the next iteration.
        for slot in &mut self.slots {
            slot.engine.end_step();
        }
        self.propagate();
        loop {
            // Evaluation events, batched per engine, with propagation.
            loop {
                let mut any = false;
                for slot in &mut self.slots {
                    if slot.engine.there_are_evals() {
                        slot.engine.evaluate().map_err(engine_err)?;
                        any = true;
                    }
                }
                let moved = self.propagate();
                if !any && !moved {
                    break;
                }
            }
            // Update events.
            let mut updated = false;
            for slot in &mut self.slots {
                if slot.engine.there_are_updates() {
                    slot.engine.update().map_err(engine_err)?;
                    updated = true;
                }
            }
            if !updated {
                break;
            }
            self.propagate();
        }
        // Observable state: interrupts are serviced, engines may be
        // replaced, time advances.
        self.collect_interrupts();
        self.iterations += 1;
        self.charge_costs();
        self.wall.advance_ns(self.config.costs.runtime_iteration_ns);
        Ok(())
    }

    /// Moves changed output values across data-plane wires. Returns whether
    /// anything moved.
    fn propagate(&mut self) -> bool {
        // Field-level split borrow: wires are walked mutably while slots
        // are indexed — port names stay borrowed, not cloned, because this
        // runs several times per scheduler iteration.
        let mut moved = false;
        for w in &mut self.wires {
            let (from_idx, from_port) = &w.from;
            let value = self.slots[*from_idx].engine.output(from_port);
            if w.last.as_ref() == Some(&value) {
                continue;
            }
            let (to_idx, to_port) = &w.to;
            self.slots[*to_idx].engine.read(to_port, &value);
            w.last = Some(value);
            moved = true;
        }
        moved
    }

    fn collect_interrupts(&mut self) {
        // Inside an unverified hardware window, user-visible output is
        // quarantined until a clean scrub proves the fabric configuration
        // intact; it is discarded if the window rolls back.
        let speculating = self.speculating();
        for i in 0..self.slots.len() {
            for ev in self.slots[i].engine.drain_tasks() {
                match ev {
                    TaskEvent::Display(s) | TaskEvent::Write(s) => {
                        if speculating {
                            self.quarantine.push(s);
                        } else {
                            self.output.push(s);
                        }
                    }
                    TaskEvent::Finish => {
                        self.finished = true;
                    }
                    TaskEvent::Fatal(s) => {
                        let line = format!("fatal: {s}");
                        if speculating {
                            self.quarantine.push(line);
                        } else {
                            self.output.push(line);
                        }
                        self.finished = true;
                    }
                }
            }
        }
        for w in std::mem::take(&mut self.warnings) {
            self.output.push(w);
        }
    }

    fn charge_costs(&mut self) {
        let costs = self.config.costs.clone();
        for slot in &mut self.slots {
            let ns = slot.engine.take_cost_ns(&costs);
            self.wall.advance_ns(ns);
        }
    }

    // ------------------------------------------------------------------
    // Fault recovery: scrubbing, checkpoints, rollback
    // ------------------------------------------------------------------

    fn main_is_hw(&self) -> bool {
        !self.native
            && self
                .main_idx
                .map(|i| self.slots[i].engine.kind() == EngineKind::Hardware)
                .unwrap_or(false)
    }

    /// Whether the main subprogram is executing inside an unverified
    /// hardware window (readback scrubbing enabled, checkpoint armed).
    fn speculating(&self) -> bool {
        self.config.scrub_interval_ticks > 0 && self.checkpoint.is_some() && self.main_is_hw()
    }

    /// Snapshots every engine (plus peripheral FIFO read positions) as the
    /// new rollback point.
    fn take_checkpoint(&mut self) {
        if self.main_idx.is_none() {
            return;
        }
        let mut states = BTreeMap::new();
        for slot in &mut self.slots {
            states.insert(slot.name.clone(), slot.engine.get_state());
        }
        self.checkpoint = Some(Checkpoint {
            states,
            iterations: self.iterations,
            finished: self.finished,
        });
        self.last_ckpt_iter = self.iterations;
        self.metrics.checkpoints_taken.inc();
        if self.main_is_hw() && self.config.scrub_interval_ticks > 0 {
            // Journal FIFO consumption from here so a rollback restores
            // stream peripherals too.
            self.board.fifo_mark();
        }
    }

    /// Periodic software checkpoints (hardware windows checkpoint at scrub
    /// boundaries instead).
    fn maybe_checkpoint(&mut self) {
        let interval = self.config.checkpoint_interval_ticks;
        if interval == 0 || self.native || self.main_is_hw() || self.main_idx.is_none() {
            return;
        }
        if self.iterations.saturating_sub(self.last_ckpt_iter) >= interval * 2 {
            self.take_checkpoint();
        }
    }

    /// Scrubs the hardware window when it has run long enough.
    fn maybe_scrub(&mut self) -> Result<(), CascadeError> {
        if !self.speculating() {
            return Ok(());
        }
        if self.iterations.saturating_sub(self.last_scrub_iter)
            >= self.config.scrub_interval_ticks * 2
        {
            self.scrub()?;
        }
        Ok(())
    }

    /// One readback scrub: re-derive the configuration CRC from the fabric
    /// and compare against the golden CRC recorded at programming time. A
    /// clean scrub commits the quarantined output and advances the
    /// checkpoint; a detection rolls back. Scrub boundaries are also where
    /// the fault plan's scheduled fabric faults strike, so the *next*
    /// window observes them.
    fn scrub(&mut self) -> Result<(), CascadeError> {
        let Some(main_idx) = self.main_idx else {
            return Ok(());
        };
        self.last_scrub_iter = self.iterations;
        let ok = match as_hw(&mut self.slots[main_idx].engine) {
            Some(hw) => hw.scrub_ok(),
            None => return Ok(()),
        };
        self.metrics.scrubs.inc();
        self.trace_instant("scrub", &[("ok", Arg::Bool(ok))]);
        if !ok {
            self.metrics.scrub_detections.inc();
            self.trace_instant("scrub_detection", &[]);
            self.recovery_log.push(
                "scrub detected a fabric soft error; rolled back to the last checkpoint"
                    .to_string(),
            );
            return self.rollback_to_checkpoint();
        }
        // Clean window: the quarantined output is real.
        let q = std::mem::take(&mut self.quarantine);
        self.output.extend(q);
        self.take_checkpoint();
        match self.config.faults.next_scrub_fault() {
            Some(FabricFault::SoftError { salt }) => {
                if let Some(hw) = as_hw(&mut self.slots[main_idx].engine) {
                    hw.inject_soft_error(salt);
                }
            }
            Some(FabricFault::Loss) => {
                // The fabric vanishes at the boundary we just verified, so
                // nothing re-executes: resume in software from the
                // checkpoint taken a moment ago.
                self.metrics.fabric_losses.inc();
                self.trace_instant("fabric_loss", &[]);
                if let Some((fleet, tenant)) = &self.fleet {
                    fleet.fail_fabric_of(*tenant);
                }
                self.recovery_log
                    .push("fabric lost; resumed in software from the checkpoint".to_string());
                self.rollback_to_checkpoint()?;
            }
            None => {}
        }
        Ok(())
    }

    /// Restores the last checkpoint: discards quarantined output, rewinds
    /// peripheral FIFO consumption, rewinds the tick counter, and rebuilds
    /// software engines from the checkpointed state. The checkpoint stays
    /// armed — it remains the last known-good point.
    fn rollback_to_checkpoint(&mut self) -> Result<(), CascadeError> {
        let Some(cp) = self.checkpoint.take() else {
            // No checkpoint (scrubbing disabled): degrade to a live-state
            // software migration.
            return self.rebuild();
        };
        self.quarantine.clear();
        self.board.fifo_rewind();
        let rewound = self.iterations.saturating_sub(cp.iterations) / 2;
        self.iterations = cp.iterations;
        self.finished = cp.finished;
        self.metrics.checkpoints_restored.inc();
        self.trace_instant("rollback", &[("ticks_rewound", Arg::U64(rewound))]);
        self.rebuild_from(Some(cp.states.clone()))?;
        self.checkpoint = Some(cp);
        self.last_ckpt_iter = self.iterations;
        Ok(())
    }

    /// Rolls back to the last checkpoint and immediately re-executes the
    /// rolled-back ticks in software, making the recovery invisible in the
    /// transcript.
    fn rollback_and_replay(&mut self) -> Result<(), CascadeError> {
        let target = self.iterations;
        let t0 = self.virt_ns();
        self.rollback_to_checkpoint()?;
        let replay_from = self.iterations;
        while self.iterations < target && !self.finished {
            self.tick()?;
        }
        if self.trace.enabled() {
            let (at, parent) = self.req_at();
            self.trace.span_ctx(
                self.track,
                "jit",
                "rollback_replay",
                t0,
                self.virt_ns().saturating_sub(t0),
                at,
                parent,
                &[(
                    "ticks_replayed",
                    Arg::U64(self.iterations.saturating_sub(replay_from) / 2),
                )],
            );
        }
        Ok(())
    }

    /// Closes any open speculation window before its state is trusted
    /// elsewhere (eval, native entry, cooperative lease migration,
    /// explicit checkpoints). On corruption the window is re-executed in
    /// software before control returns.
    fn verify_speculation(&mut self) -> Result<(), CascadeError> {
        if !self.speculating() {
            return Ok(());
        }
        let Some(main_idx) = self.main_idx else {
            return Ok(());
        };
        let ok = match as_hw(&mut self.slots[main_idx].engine) {
            Some(hw) => hw.scrub_ok(),
            None => return Ok(()),
        };
        self.metrics.scrubs.inc();
        self.trace_instant("scrub", &[("ok", Arg::Bool(ok))]);
        self.last_scrub_iter = self.iterations;
        if ok {
            let q = std::mem::take(&mut self.quarantine);
            self.output.extend(q);
            self.take_checkpoint();
            Ok(())
        } else {
            self.metrics.scrub_detections.inc();
            self.trace_instant("scrub_detection", &[]);
            self.recovery_log.push(
                "scrub detected a fabric soft error; re-executed the window in software"
                    .to_string(),
            );
            self.rollback_and_replay()
        }
    }

    // ------------------------------------------------------------------
    // JIT transitions
    // ------------------------------------------------------------------

    fn poll_compiler(&mut self) -> Result<(), CascadeError> {
        let Some(outcome) = self.compiler.poll(self.wall.seconds()) else {
            return Ok(());
        };
        if outcome.version != self.version || self.native {
            return Ok(()); // stale
        }
        match outcome.result {
            Ok(bitstream) => {
                if self.fleet.is_some() {
                    // Fleet-arbitrated: hold the bitstream until a fabric
                    // lease is granted.
                    self.pending_hw = Some(Arc::clone(&bitstream.netlist));
                    self.hw_pending_since_s = Some(self.wall.seconds());
                    self.lease_backoff_until_iter = 0;
                    self.try_promote()?;
                } else {
                    self.swap_to_hardware(Arc::clone(&bitstream.netlist))?;
                }
            }
            Err(e) => {
                let msg = e.to_string();
                if e.is_transient() {
                    // A transient failure that exhausted its retry budget.
                    // The program keeps running in software either way, and
                    // recovery events stay off the user transcript.
                    self.trace_instant("hw_compile_abandoned", &[("error", Arg::Str(&msg))]);
                    self.recovery_log
                        .push(format!("hardware compilation abandoned: {e}"));
                } else {
                    self.trace_instant("hw_compile_failed", &[("error", Arg::Str(&msg))]);
                    self.warnings
                        .push(format!("hardware compilation failed: {e}"));
                    self.collect_interrupts();
                }
            }
        }
        Ok(())
    }

    /// Claims a fabric lease for a pending bitstream, swapping to hardware
    /// when granted. No-op without a pending bitstream or with a lease
    /// already held; a denied request leaves the tenant registered as
    /// pending with the arbiter (and may flag a colder holder for
    /// revocation).
    fn try_promote(&mut self) -> Result<(), CascadeError> {
        if self.native || self.lease.is_some() || self.pending_hw.is_none() {
            return Ok(());
        }
        // A denied request backs off for a stride of iterations: the
        // arbiter's answer only changes on a heat/tenure/dwell edge, and
        // re-asking under the fleet mutex on every tick of every leaseless
        // tenant serializes the whole server on that lock. Heat changes
        // and command boundaries clear the backoff.
        if self.iterations < self.lease_backoff_until_iter {
            return Ok(());
        }
        let Some((fleet, tenant)) = &self.fleet else {
            return Ok(());
        };
        let Some(lease) = fleet.request(*tenant, self.heat) else {
            self.lease_backoff_until_iter = self.iterations + LEASE_POLL_STRIDE_ITERS;
            return Ok(());
        };
        self.lease = Some(lease);
        if let Some(since) = self.hw_pending_since_s.take() {
            let wait_s = (self.wall.seconds() - since).max(0.0);
            self.metrics.lease_wait.observe(wait_s);
            self.trace_instant("lease_granted", &[("wait_s", Arg::F64(wait_s))]);
        }
        // A scheduled mid-migration revocation fires here: the lease is
        // flagged before the swap completes, so the very next revocation
        // check migrates straight back.
        if self.config.faults.next_migration_revoke() {
            if let Some((fleet, tenant)) = &self.fleet {
                fleet.revoke(*tenant);
            }
        }
        let netlist = self.pending_hw.take().expect("pending bitstream");
        self.swap_to_hardware(netlist)
    }

    /// Vacates a revoked fabric lease: the hardware engine's state migrates
    /// back into a fresh software engine (`get_state`/`set_state` via
    /// `rebuild`), and the fabric returns to the fleet. The rebuild
    /// resubmits the design to the background compiler, so the tenant
    /// re-promotes through the (cached) compile path when a fabric frees
    /// up — the cache-hit latency doubles as thrash hysteresis.
    fn check_revocation(&mut self) -> Result<(), CascadeError> {
        let (lost, revoked) = match &self.lease {
            Some(l) => (l.lost(), l.revoked()),
            None => return Ok(()),
        };
        if lost {
            // The fabric is gone and its state with it. Resume from the
            // last checkpoint and re-execute the lost window in software,
            // so the transcript never notices.
            self.metrics.lease_demotions.inc();
            self.metrics.fabric_losses.inc();
            self.trace_instant("fabric_loss", &[]);
            self.recovery_log
                .push("fabric lost; resumed in software from the last checkpoint".to_string());
            return self.rollback_and_replay();
        }
        if !revoked {
            return Ok(());
        }
        // Cooperative migration: never migrate unverified state. A failed
        // verify rolls back and replays in software, which also vacates
        // the lease. No "just scrubbed" shortcut here: the fault plan
        // injects upsets *at* clean scrub boundaries, so state can be
        // corrupt even when `iterations == last_scrub_iter`.
        if self.speculating() {
            self.verify_speculation()?;
        }
        self.metrics.lease_demotions.inc();
        self.trace_instant("revocation", &[]);
        if self.lease.is_none() {
            // The verify above rolled back (and released the fabric).
            return Ok(());
        }
        self.lease = None; // dropping the lease releases the fabric
        self.trace_instant("state_migration", &[("direction", Arg::Str("hw_to_sw"))]);
        self.rebuild()
    }

    fn swap_to_hardware(
        &mut self,
        netlist: Arc<cascade_netlist::Netlist>,
    ) -> Result<(), CascadeError> {
        let Some(main_idx) = self.main_idx else {
            return Ok(());
        };
        self.metrics.hw_promotions.inc();
        // Swap only at a tick boundary (clock low) so edge detection stays
        // coherent.
        let mut hw =
            HwEngine::new(netlist).map_err(|e| CascadeError::Unsupported(e.to_string()))?;
        let state = self.slots[main_idx].engine.get_state();
        hw.set_state(&state);
        if self.trace.enabled() {
            hw.enable_profiling();
        }
        if self.config.eval_threads > 1 {
            hw.set_eval_threads(self.config.eval_threads);
        }
        self.slots[main_idx].engine = Box::new(hw);
        // Reset wire caches so current values are re-broadcast into the new
        // engine.
        for w in &mut self.wires {
            if w.to.0 == main_idx {
                w.last = None;
            }
        }
        self.propagate();
        let t0 = self.virt_ns();
        self.wall.advance_ns(self.config.costs.reprogram_ns);
        if self.trace.enabled() {
            let (at, parent) = self.req_at();
            self.trace.span_ctx(
                self.track,
                "jit",
                "program_fabric",
                t0,
                self.virt_ns().saturating_sub(t0),
                at,
                parent,
                &[("version", Arg::U64(self.version))],
            );
            self.trace_instant("state_migration", &[("direction", Arg::Str("sw_to_hw"))]);
        }
        if self.config.forwarding {
            self.absorb_peripherals(main_idx);
        }
        // Open a verified-execution window: checkpoint the just-migrated
        // (known-good) state and quarantine output until the first clean
        // scrub.
        if self.config.scrub_interval_ticks > 0 {
            self.last_scrub_iter = self.iterations;
            self.take_checkpoint();
        }
        self.trace_mode();
        Ok(())
    }

    /// ABI forwarding (paper Sec. 4.3): move peripherals into the hardware
    /// engine and collapse their data-plane wires.
    fn absorb_peripherals(&mut self, main_idx: usize) {
        let forwarded = self.collect_forwarded();
        if forwarded.is_empty() {
            return;
        }
        let slot = &mut self.slots[main_idx];
        if let Some(hw) = as_hw(&mut slot.engine) {
            hw.absorb(forwarded);
        }
        self.retain_clock_and_main();
    }

    /// Extracts peripheral engines and their bindings for absorption.
    fn collect_forwarded(&mut self) -> Vec<Forwarded> {
        let Some(main_idx) = self.main_idx else {
            return Vec::new();
        };
        let mut out: Vec<Forwarded> = Vec::new();
        let peripheral_indices: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.engine.kind() == EngineKind::Peripheral)
            .map(|(i, _)| i)
            .collect();
        for pi in peripheral_indices {
            let mut drives = Vec::new();
            let mut feeds = Vec::new();
            for w in &self.wires {
                if w.from.0 == main_idx && w.to.0 == pi {
                    drives.push((w.from.1.clone(), w.to.1.clone()));
                }
                if w.from.0 == pi && w.to.0 == main_idx {
                    feeds.push((w.from.1.clone(), w.to.1.clone()));
                }
            }
            // Replace the slot's engine with a placeholder and take the
            // peripheral out.
            let name = self.slots[pi].name.clone();
            let old = std::mem::replace(
                &mut self.slots[pi].engine,
                Box::new(ClockEngine::new()) as Box<dyn Engine>,
            );
            // Downcast via the concrete wrapper: engines are built here, so
            // the type is known.
            let peripheral = match into_peripheral(old) {
                Some(p) => p,
                None => continue,
            };
            out.push(Forwarded {
                instance: name,
                peripheral,
                drives,
                feeds,
            });
        }
        out
    }

    /// Drops every slot except the clock and main, rewiring accordingly.
    fn retain_clock_and_main(&mut self) {
        let Some(main_idx) = self.main_idx else {
            return;
        };
        let keep: Vec<usize> = vec![self.clock_idx, main_idx];
        let mut new_slots = Vec::new();
        let mut remap = BTreeMap::new();
        for (new_i, &old_i) in keep.iter().enumerate() {
            remap.insert(old_i, new_i);
            new_slots.push(std::mem::replace(
                &mut self.slots[old_i],
                Slot {
                    name: String::new(),
                    engine: Box::new(ClockEngine::new()),
                },
            ));
        }
        self.wires
            .retain(|w| remap.contains_key(&w.from.0) && remap.contains_key(&w.to.0));
        for w in &mut self.wires {
            w.from.0 = remap[&w.from.0];
            w.to.0 = remap[&w.to.0];
        }
        self.slots = new_slots;
        self.clock_idx = 0;
        self.main_idx = Some(1);
    }

    /// Open-loop scheduling (paper Sec. 4.4): hand the engine an iteration
    /// budget and let it run cycles internally.
    fn try_open_loop(&mut self, remaining: u64) -> Result<Option<u64>, CascadeError> {
        if !self.config.open_loop && !self.native {
            return Ok(None);
        }
        if self.vcd.is_some() {
            // Waveform dumps sample every tick; open-loop batches would
            // skip them.
            return Ok(None);
        }
        let Some(main_idx) = self.main_idx else {
            return Ok(None);
        };
        if self.slots.len() > 2 {
            return Ok(None); // peripherals still on the data plane
        }
        let kind = self.slots[main_idx].engine.kind();
        if kind != EngineKind::Hardware
            && kind != EngineKind::Native
            && kind != EngineKind::Software
        {
            return Ok(None);
        }
        // Adaptive budget: aim for the configured control-return period.
        // The profiler measures the modeled cost of the previous batch and
        // rescales — necessary because per-cycle cost varies wildly between
        // pure compute (one fabric cycle) and host-coupled IO (a bus
        // round trip per token).
        let mut budget = (self.open_loop_budget as u64).max(16).min(remaining.max(1));
        if self.speculating() {
            // Batches never cross a scrub boundary, bounding how much
            // work a detected fault can roll back.
            let until_scrub = (self.config.scrub_interval_ticks * 2)
                .saturating_sub(self.iterations.saturating_sub(self.last_scrub_iter))
                / 2;
            budget = budget.min(until_scrub.max(1));
        }
        if let Some(ready_at) = self.compiler.wake_at() {
            // For a software batch, estimate the per-cycle cost from the
            // adaptive controller's current target (software cycles are
            // orders of magnitude more expensive than fabric cycles).
            let per_tick_ns = if kind == EngineKind::Software {
                self.config.open_loop_target_s * 1e9 / self.open_loop_budget.max(16.0)
            } else {
                self.config.costs.hw_cycle_ns
            }
            .max(0.001);
            let until = ((ready_at - self.wall.seconds()).max(0.0) * 1e9 / per_tick_ns) as u64;
            budget = budget.min(until.max(1));
        }
        let w0 = self.wall.seconds();
        let done = self.slots[main_idx].engine.open_loop(budget);
        if done == 0 {
            return Ok(None);
        }
        self.iterations += 2 * done;
        self.collect_interrupts();
        self.charge_costs();
        let elapsed = self.wall.seconds() - w0;
        if elapsed > 0.0 {
            let per_cycle_s = elapsed / done as f64;
            let target = (self.config.open_loop_target_s / per_cycle_s).max(16.0);
            // Exponential smoothing keeps the controller stable when task
            // firings cut batches short.
            self.open_loop_budget = 0.5 * self.open_loop_budget + 0.5 * target;
        }
        self.open_loop_last = true;
        Ok(Some(done))
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Return the fabric and withdraw any pending fleet request so a
        // closed session cannot strand a reservation.
        self.lease = None;
        if let Some((fleet, tenant)) = &self.fleet {
            fleet.cancel(*tenant);
        }
    }
}

/// Splits `instance::element` memory entries out of the root snapshot into
/// per-instance peripheral snapshots — the inverse of ABI forwarding's
/// state absorption. Existing per-instance snapshots win.
fn split_forwarded_state(saved: &mut BTreeMap<String, EngineState>) {
    let Some(root) = saved.get(ROOT) else {
        return;
    };
    let mut split: BTreeMap<String, EngineState> = BTreeMap::new();
    for (key, words) in &root.mems {
        if let Some((inst, elem)) = key.split_once("::") {
            split
                .entry(inst.to_string())
                .or_default()
                .mems
                .insert(elem.to_string(), words.clone());
        }
    }
    for (inst, state) in split {
        saved.entry(inst).or_insert(state);
    }
}

fn engine_err(e: crate::engine::EngineError) -> CascadeError {
    match e {
        crate::engine::EngineError::Sim(s) => CascadeError::Sim(s),
        crate::engine::EngineError::Internal(m) => CascadeError::Unsupported(m),
    }
}

/// Composes the implicit root module from accumulated entries. When
/// `for_engine`, previously executed one-shot items are excluded.
fn compose_root(entries: &[RootEntry], for_engine: bool) -> Module {
    let items = entries
        .iter()
        .filter(|e| {
            if !for_engine {
                return true;
            }
            match e.item {
                ModuleItem::Statement(_) | ModuleItem::Initial(_) => !e.executed,
                _ => true,
            }
        })
        .map(|e| e.item.clone())
        .collect();
    Module {
        name: "Main".to_string(),
        params: Vec::new(),
        ports: Vec::new(),
        items,
        span: Span::synthetic(),
    }
}

/// A copy of the module without one-shot (statement/initial) items — the
/// form that goes to the hardware toolchain.
fn strip_one_shot(module: &Module) -> Module {
    let mut out = module.clone();
    out.items
        .retain(|i| !matches!(i, ModuleItem::Statement(_) | ModuleItem::Initial(_)));
    out
}

/// Determines the external components visible to the root subprogram: the
/// implicit stdlib instances plus any stdlib modules instantiated in the
/// root items.
fn root_externals(
    root: &Module,
    lib: &ModuleLibrary,
    config: &JitConfig,
    _inline: bool,
) -> Result<Externals, CascadeError> {
    let mut ext = Externals::new();
    ext.insert("clk".to_string(), ("Clock".to_string(), ParamEnv::new()));
    ext.insert(
        "pad".to_string(),
        (
            "Pad".to_string(),
            ParamEnv::from([(
                "WIDTH".to_string(),
                Bits::from_u64(32, config.pad_width as u64),
            )]),
        ),
    );
    ext.insert(
        "led".to_string(),
        (
            "Led".to_string(),
            ParamEnv::from([(
                "WIDTH".to_string(),
                Bits::from_u64(32, config.led_width as u64),
            )]),
        ),
    );
    ext.insert("rst".to_string(), ("Reset".to_string(), ParamEnv::new()));
    ext.insert("gpio".to_string(), ("GPIO".to_string(), ParamEnv::new()));
    // Explicit stdlib instances.
    for item in &root.items {
        let ModuleItem::Instance(inst) = item else {
            continue;
        };
        if !cascade_stdlib::is_stdlib_module(&inst.module) {
            continue;
        }
        let decl = lib.get(&inst.module).ok_or_else(|| {
            CascadeError::Unsupported(format!("unknown stdlib module `{}`", inst.module))
        })?;
        let mut params = ParamEnv::new();
        for (i, conn) in inst.params.iter().enumerate() {
            let name = match &conn.name {
                Some(n) => n.clone(),
                None => match decl.params.get(i) {
                    Some(p) => p.name.clone(),
                    None => continue,
                },
            };
            if let Some(expr) = &conn.expr {
                let v = const_eval(expr, &ParamEnv::new()).map_err(CascadeError::Elaborate)?;
                params.insert(name, v);
            }
        }
        ext.insert(inst.name.clone(), (inst.module.clone(), params));
    }
    Ok(ext)
}

// ---------------------------------------------------------------------
// Downcast helpers (engines are concrete types built in this module).
// ---------------------------------------------------------------------

fn as_hw(engine: &mut Box<dyn Engine>) -> Option<&mut HwEngine> {
    engine.as_any_mut().downcast_mut::<HwEngine>()
}

fn as_sw(engine: &mut Box<dyn Engine>) -> Option<&mut SwEngine> {
    engine.as_any_mut().downcast_mut::<SwEngine>()
}

fn into_peripheral(engine: Box<dyn Engine>) -> Option<Box<dyn cascade_stdlib::Peripheral>> {
    engine
        .into_any()
        .downcast::<PeripheralEngine>()
        .ok()
        .map(|p| p.into_peripheral())
}
