//! Unit tests for the bench harness utilities.

use cascade_bench::{fmt_rate, Curve};

#[test]
fn curve_rates_and_last_rate() {
    let mut c = Curve::new("test");
    assert_eq!(c.last_rate(), 0.0);
    c.push(0.0, 0);
    c.push(1.0, 100);
    c.push(3.0, 500);
    assert_eq!(c.last_rate(), 200.0);
    let rates = c.rates();
    assert_eq!(rates.len(), 2);
    assert_eq!(rates[0], (0.5, 100.0));
    assert_eq!(rates[1], (2.0, 200.0));
}

#[test]
fn curve_ignores_zero_width_intervals() {
    let mut c = Curve::new("test");
    c.push(1.0, 10);
    c.push(1.0, 20);
    assert!(c.rates().is_empty());
    assert_eq!(c.last_rate(), 0.0);
}

#[test]
fn rate_formatting() {
    assert_eq!(fmt_rate(650.0), "650 Hz");
    assert_eq!(fmt_rate(32_000.0), "32.0 KHz");
    assert_eq!(fmt_rate(50_000_000.0), "50.0 MHz");
}
