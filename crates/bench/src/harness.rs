//! A minimal Criterion-compatible micro-benchmark harness.
//!
//! The build environment has no registry access, so the real `criterion`
//! crate cannot be resolved; this module implements the subset of its API
//! the `benches/` files use (`benchmark_group`, `bench_function`,
//! `Throughput`, `criterion_group!`/`criterion_main!`) over `std::time`.
//! Results print as `group/name  <ns>/iter  (<rate>)` rows.
//!
//! Set `CASCADE_BENCH_SECS` (default 0.25) to control per-benchmark
//! measurement time.

use std::hint::black_box;
use std::sync::Once;
use std::time::{Duration, Instant};

/// The shared schema header every `bench_*` binary stamps into its JSON
/// output, as a ready-to-splice fragment (one indented line ending in
/// `,\n`): schema version, bench name, the repository revision, and which
/// clock the numbers are measured on — `"host"` for real nanoseconds,
/// `"virtual"` for the modeled wall, `"virtual+host"` for reports that
/// carry both.
pub fn schema_header(bench: &str, clock: &str) -> String {
    format!(
        "  \"schema\": {{\"version\": 1, \"bench\": \"{bench}\", \
         \"git\": \"{}\", \"clock\": \"{clock}\"}},\n",
        git_describe()
    )
}

/// The revision stamped into bench output: `CASCADE_BENCH_GIT` when set
/// (CI can pin the exact rev even in a stripped checkout), otherwise
/// `git describe --always --dirty` run at bench time. When neither is
/// available (a source tarball, no git binary) the stamp degrades to
/// `"unknown"` — loudly, once per process, on stderr — so a report with an
/// unattributable revision never slips through silently.
/// Stamping at runtime keeps `schema.git` honest — it names the tree the
/// numbers were measured on, never a stale build-time constant.
pub fn git_describe() -> String {
    if let Some(rev) = std::env::var("CASCADE_BENCH_GIT")
        .ok()
        .filter(|s| !s.is_empty())
    {
        return rev;
    }
    std::process::Command::new("git")
        .args(["describe", "--tags", "--always", "--dirty"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| {
            static WARN: Once = Once::new();
            WARN.call_once(|| {
                eprintln!(
                    "warning: bench git stamp unavailable — `git describe` failed and \
                     CASCADE_BENCH_GIT is unset; stamping schema.git = \"unknown\". \
                     Set CASCADE_BENCH_GIT=<rev> to attribute these numbers."
                );
            });
            "unknown".to_string()
        })
}

/// Work-per-iteration declaration, used to derive a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Each iteration processes this many logical elements (cycles, ticks).
    Elements(u64),
    /// Each iteration processes this many bytes.
    Bytes(u64),
}

/// Top-level harness handle passed to each registered bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    /// Collected `(label, ns_per_iter, rate_desc)` rows.
    results: Vec<(String, f64, String)>,
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            harness: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// All measured `(label, ns_per_iter, rate)` rows so far.
    pub fn results(&self) -> &[(String, f64, String)] {
        &self.results
    }
}

/// A group of benchmarks sharing a name prefix and throughput declaration.
pub struct BenchmarkGroup<'a> {
    harness: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed per iteration.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Accepted for Criterion API compatibility; this harness sizes its
    /// measurement loop by wall time (`CASCADE_BENCH_SECS`) instead.
    pub fn sample_size(&mut self, _n: usize) {}

    /// Measures one benchmark and prints its row.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        let label = format!("{}/{}", self.name, id);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if b.ns_per_iter > 0.0 => {
                format!("{}/s", fmt_si(n as f64 * 1e9 / b.ns_per_iter))
            }
            Some(Throughput::Bytes(n)) if b.ns_per_iter > 0.0 => {
                format!("{}B/s", fmt_si(n as f64 * 1e9 / b.ns_per_iter))
            }
            _ => String::new(),
        };
        println!("{label:<44} {:>14}/iter  {rate}", fmt_ns(b.ns_per_iter));
        self.harness.results.push((label, b.ns_per_iter, rate));
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the closure given to [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times the closure, auto-calibrating the iteration count.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        self.ns_per_iter = measure(&mut || {
            black_box(f());
        });
    }
}

/// Times one closure call in nanoseconds, averaged over an auto-calibrated
/// batch repeated for the configured measurement window; returns the best
/// (minimum) batch average, the conventional noise-resistant estimator.
pub fn measure(f: &mut dyn FnMut()) -> f64 {
    let budget = std::env::var("CASCADE_BENCH_SECS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.25)
        .max(0.01);
    // Calibrate: find an iteration count that takes ≥ ~1/20 of the budget.
    let mut iters: u64 = 1;
    let mut once;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        once = t0.elapsed();
        if once >= Duration::from_secs_f64(budget / 20.0) || iters >= 1 << 30 {
            break;
        }
        iters = iters.saturating_mul(4);
    }
    let mut best = once.as_secs_f64() / iters as f64;
    let deadline = Instant::now() + Duration::from_secs_f64(budget);
    while Instant::now() < deadline {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per = t0.elapsed().as_secs_f64() / iters as f64;
        if per < best {
            best = per;
        }
    }
    best * 1e9
}

/// Formats nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Formats a rate with SI prefixes.
pub fn fmt_si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}K", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Registers benchmark functions under one entry point, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($func:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $func(&mut c); )+
        }
    };
}

/// Emits `main` for a bench binary, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
