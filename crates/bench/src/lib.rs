//! Shared harness code for regenerating the Cascade paper's figures and
//! tables (see DESIGN.md's experiment index and EXPERIMENTS.md for the
//! recorded results).
//!
//! Each `src/bin/figNN_*.rs` binary prints the rows/series the paper
//! reports, computed against the *modeled* wall clock (deterministic,
//! machine-independent). The Criterion benches under `benches/` measure
//! *real* throughput of the substrates on the host machine.

pub mod harness;

pub use harness::{git_describe, schema_header};

use cascade_core::{JitConfig, Runtime};
use cascade_fpga::Board;

/// A sampled performance curve: `(modeled seconds, cumulative work)`.
#[derive(Debug, Clone, Default)]
pub struct Curve {
    pub points: Vec<(f64, u64)>,
    pub label: String,
}

impl Curve {
    /// Creates an empty curve.
    pub fn new(label: impl Into<String>) -> Self {
        Curve {
            points: Vec::new(),
            label: label.into(),
        }
    }

    /// Records a sample.
    pub fn push(&mut self, seconds: f64, work: u64) {
        self.points.push((seconds, work));
    }

    /// The instantaneous rate at the last sample (work/s over the final
    /// interval).
    pub fn last_rate(&self) -> f64 {
        match self.points.len() {
            0 | 1 => 0.0,
            n => {
                let (t1, w1) = self.points[n - 1];
                let (t0, w0) = self.points[n - 2];
                if t1 > t0 {
                    (w1 - w0) as f64 / (t1 - t0)
                } else {
                    0.0
                }
            }
        }
    }

    /// Rate between consecutive samples, as `(mid time, rate)` pairs.
    pub fn rates(&self) -> Vec<(f64, f64)> {
        self.points
            .windows(2)
            .filter(|w| w[1].0 > w[0].0)
            .map(|w| {
                let rate = (w[1].1 - w[0].1) as f64 / (w[1].0 - w[0].0);
                ((w[0].0 + w[1].0) / 2.0, rate)
            })
            .collect()
    }
}

/// Formats a rate in engineering units (Hz / KHz / MHz).
pub fn fmt_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.1} MHz", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1} KHz", rate / 1e3)
    } else {
        format!("{rate:.0} Hz")
    }
}

/// Runs a Cascade runtime, sampling `(wall seconds, ticks)` until the wall
/// passes `horizon_s` or the program finishes. `tick_batch` ticks are
/// executed between samples.
pub fn sample_runtime(
    rt: &mut Runtime,
    horizon_s: f64,
    tick_batch: u64,
    curve: &mut Curve,
) -> Result<(), cascade_core::CascadeError> {
    curve.push(rt.wall_seconds(), rt.ticks());
    while rt.wall_seconds() < horizon_s && !rt.is_finished() {
        rt.run_ticks(tick_batch)?;
        curve.push(rt.wall_seconds(), rt.ticks());
    }
    Ok(())
}

/// Builds a runtime on a fresh board.
pub fn fresh_runtime(config: JitConfig) -> (Runtime, Board) {
    let board = Board::new();
    let rt = Runtime::new(board.clone(), config).expect("runtime construction");
    (rt, board)
}

/// Prints a two-column table of `(time, rate)` rows for gnuplot-style
/// consumption.
pub fn print_series(name: &str, series: &[(f64, f64)]) {
    println!("# series: {name}");
    println!("# time_s rate_per_s");
    for (t, r) in series {
        println!("{t:.3} {r:.1}");
    }
    println!();
}
