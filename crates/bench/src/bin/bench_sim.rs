//! Software-engine throughput report: cycles/second of the bytecode-compiled
//! [`CompiledSim`] against the tree-walking [`Simulator`] oracle on the
//! SHA-256 proof-of-work miner and the regex-DFA matcher, simulated
//! *behaviourally* (no synthesis — this is the lane a program runs in the
//! moment after `eval`, before the background compile lands).
//!
//! Three evaluators per workload: the tree walker, the compiled engine
//! stepped one `tick` at a time (the closed-loop scheduler shape), and the
//! compiled engine batched through `tick_n` (the open-loop shape).
//!
//! Prints one row per (workload, evaluator) and writes the machine-readable
//! results to `BENCH_sim.json` at the repository root. Set
//! `CASCADE_BENCH_SECS` to trade precision for runtime.

use cascade_bench::harness::{fmt_si, measure};
use cascade_bits::Bits;
use cascade_sim::{elaborate, library_from_source, CompiledSim, Design, Simulator};
use cascade_workloads::regex::{compile, matcher_verilog, Dfa};
use cascade_workloads::sha256::{miner_verilog, Flavor, MinerConfig};
use std::fmt::Write as _;
use std::sync::Arc;

struct Row {
    workload: &'static str,
    evaluator: &'static str,
    cycles_per_sec: f64,
}

fn design_of(src: &str, top: &str) -> Arc<Design> {
    let lib = library_from_source(src).expect("workload parses");
    Arc::new(elaborate(top, &lib, &Default::default()).expect("elaborates"))
}

/// Measures the three evaluators on one design, in cycles per second.
fn bench_design(
    design: &Arc<Design>,
    inputs: &[(&str, Bits)],
    rows: &mut Vec<Row>,
    name: &'static str,
) {
    const BATCH: u64 = 256;
    let clk = design.var("clk").expect("clk port");

    let mut tree = Simulator::new(Arc::clone(design));
    tree.initialize().expect("initializes");
    for (port, v) in inputs {
        tree.poke(port, v.clone());
    }
    tree.settle().expect("settles");
    let ns = measure(&mut || {
        for _ in 0..BATCH {
            tree.tick_id(clk).expect("ticks");
        }
        tree.drain_events();
    });
    let tree_cps = BATCH as f64 * 1e9 / ns;

    let mut stepped = CompiledSim::new(Arc::clone(design));
    stepped.initialize().expect("initializes");
    for (port, v) in inputs {
        stepped.poke(port, v.clone());
    }
    stepped.settle().expect("settles");
    let ns = measure(&mut || {
        for _ in 0..BATCH {
            stepped.tick_id(clk).expect("ticks");
        }
        stepped.drain_events();
    });
    let stepped_cps = BATCH as f64 * 1e9 / ns;

    let mut batched = CompiledSim::new(Arc::clone(design));
    batched.initialize().expect("initializes");
    for (port, v) in inputs {
        batched.poke(port, v.clone());
    }
    batched.settle().expect("settles");
    let ns = measure(&mut || {
        batched.tick_n(clk, BATCH).expect("batch runs");
        batched.drain_events();
    });
    let batched_cps = BATCH as f64 * 1e9 / ns;

    for (evaluator, cycles_per_sec) in [
        ("tree", tree_cps),
        ("compiled", stepped_cps),
        ("compiled_batched", batched_cps),
    ] {
        rows.push(Row {
            workload: name,
            evaluator,
            cycles_per_sec,
        });
    }
    println!(
        "{name:<8} tree {:>9}cyc/s   compiled {:>9}cyc/s ({:.1}x)   batched {:>9}cyc/s ({:.1}x)",
        fmt_si(tree_cps),
        fmt_si(stepped_cps),
        stepped_cps / tree_cps,
        fmt_si(batched_cps),
        batched_cps / tree_cps,
    );
}

fn main() {
    let mut rows = Vec::new();

    let cfg = MinerConfig {
        target: 0,
        announce: false,
        ..MinerConfig::default()
    };
    let pow = design_of(&miner_verilog(&cfg, Flavor::Ported), "Miner");
    describe("pow", &pow);
    bench_design(&pow, &[], &mut rows, "pow");

    let dfa = compile("GET |POST |HEAD ").unwrap();
    let regex = design_of(&driven_matcher(&dfa), "Bench");
    describe("regex", &regex);
    bench_design(&regex, &[], &mut rows, "regex");

    let json = render_json(&rows);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    std::fs::write(path, &json).expect("write BENCH_sim.json");
    println!("\nwrote {path}");
}

/// The Ported matcher plus a self-driving harness that streams a request
/// line through it, one byte per cycle. A constant input byte would let the
/// DFA settle into a fixed point and the loop would measure an idle tick;
/// cycling real text forces a state transition and a next-state evaluation
/// every cycle, which is the work the matcher exists to do.
fn driven_matcher(dfa: &Dfa) -> String {
    let msg = b"GET /x HTTP/1.0 ";
    let mut s = matcher_verilog(dfa, cascade_workloads::regex::Flavor::Ported);
    s.push_str("module Bench(input wire clk, output wire [31:0] matches);\n");
    s.push_str("reg [7:0] msg [0:15];\nreg [3:0] ptr = 0;\nwire [7:0] ch;\nwire vld;\n");
    s.push_str("initial begin\n");
    for (i, b) in msg.iter().enumerate() {
        let _ = writeln!(s, "  msg[{i}] = 8'd{b};");
    }
    s.push_str("end\nassign vld = 1'b1;\nassign ch = msg[ptr];\n");
    s.push_str("always @(posedge clk) ptr <= ptr + 1;\n");
    s.push_str("Matcher m(.clk(clk), .byte_in(ch), .valid(vld), .matches(matches));\nendmodule\n");
    s
}

/// Prints the compiled-program profile for one workload design.
fn describe(name: &str, design: &Arc<Design>) {
    let sim = CompiledSim::new(Arc::clone(design));
    let stats = sim.program().stats();
    println!(
        "{name:<8} {} ops, {} procs, {} arena words, {} regs / {} wide regs",
        stats.ops, stats.procs, stats.arena_words, stats.regs, stats.wide_regs,
    );
}

fn render_json(rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&cascade_bench::schema_header("sim", "host"));
    out.push_str("  \"benchmark\": \"sw_engine_cycles_per_sec\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            out,
            "    {{\"workload\": \"{}\", \"evaluator\": \"{}\", \"cycles_per_sec\": {:.1}}}{comma}",
            r.workload, r.evaluator, r.cycles_per_sec
        )
        .unwrap();
    }
    // Per-workload speedups over the tree walker, the acceptance metric
    // for the compiled software engine.
    out.push_str("  ],\n  \"speedup\": {\n");
    let mut names: Vec<&str> = rows.iter().map(|r| r.workload).collect();
    names.dedup();
    let cps = |name: &str, evaluator: &str| {
        rows.iter()
            .find(|r| r.workload == name && r.evaluator == evaluator)
            .map(|r| r.cycles_per_sec)
            .unwrap_or(f64::NAN)
    };
    for (i, name) in names.iter().enumerate() {
        let tree = cps(name, "tree");
        let comma = if i + 1 < names.len() { "," } else { "" };
        writeln!(
            out,
            "    \"{name}\": {{\"compiled\": {:.2}, \"compiled_batched\": {:.2}}}{comma}",
            cps(name, "compiled") / tree,
            cps(name, "compiled_batched") / tree
        )
        .unwrap();
    }
    out.push_str("  }\n}\n");
    out
}
