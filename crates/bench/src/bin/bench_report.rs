//! Cross-bench trend report: folds every `BENCH_*.json` at the repository
//! root (they share the schema header) into one markdown table keyed by
//! each file's `schema.git` stamp, so the bench trajectory is readable
//! without opening the individual reports.
//!
//! Tracked metrics are the rate-style numeric leaves — member names
//! ending in `_per_sec`, `_per_s`, `_cps`, or `_rps`, where higher is
//! always better — addressed by their JSON path, with array rows labeled
//! by their identifying members (`rows[pow:compiled].cycles_per_sec`).
//!
//! - default: writes `BENCH_REPORT.md`, diffs against
//!   `BENCH_BASELINE.json`, and warns on any tracked rate more than 20%
//!   below its baseline
//! - `--write-baseline`: (re)writes `BENCH_BASELINE.json` from the
//!   current reports
//! - `CASCADE_BENCH_ASSERT=1`: a >20% regression exits non-zero with a
//!   loud per-metric diff (the CI trend gate)

use cascade_bench::harness::fmt_si;
use cascade_serve::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

const RATE_SUFFIXES: [&str; 4] = ["_per_sec", "_per_s", "_cps", "_rps"];

/// The regression budget: a tracked rate may not fall more than this
/// fraction below its committed baseline.
const BUDGET: f64 = 0.20;

fn is_rate_key(key: &str) -> bool {
    RATE_SUFFIXES.iter().any(|s| key.ends_with(s))
}

/// A stable label for one array row: its string members joined in key
/// order, plus the small identifying integers the benches sweep over.
fn row_label(v: &Json) -> Option<String> {
    let Json::Obj(m) = v else { return None };
    const AXES: [&str; 4] = ["sessions", "batch_width", "threads", "k"];
    let mut parts = Vec::new();
    for (k, val) in m {
        match val {
            Json::Str(s) => parts.push(s.clone()),
            Json::Num(n) if AXES.contains(&k.as_str()) => parts.push(format!("{k}{n}")),
            _ => {}
        }
    }
    (!parts.is_empty()).then(|| parts.join(":"))
}

/// Walks one report collecting every rate leaf under its JSON path.
fn collect(path: &str, v: &Json, out: &mut BTreeMap<String, f64>) {
    match v {
        Json::Obj(m) => {
            for (k, val) in m {
                if k == "schema" {
                    continue;
                }
                let sub = format!("{path}.{k}");
                if let Json::Num(n) = val {
                    if is_rate_key(k) {
                        out.insert(sub, *n);
                    }
                } else {
                    collect(&sub, val, out);
                }
            }
        }
        Json::Arr(a) => {
            for (i, el) in a.iter().enumerate() {
                let label = row_label(el).unwrap_or_else(|| i.to_string());
                collect(&format!("{path}[{label}]"), el, out);
            }
        }
        _ => {}
    }
}

fn load_baseline(path: &PathBuf) -> BTreeMap<String, f64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return BTreeMap::new();
    };
    let Ok(json) = Json::parse(&text) else {
        eprintln!("warning: {} is not valid JSON; ignoring it", path.display());
        return BTreeMap::new();
    };
    let Some(Json::Obj(m)) = json.get("metrics").cloned() else {
        return BTreeMap::new();
    };
    m.into_iter()
        .filter_map(|(k, v)| v.as_f64().map(|n| (k, n)))
        .collect()
}

fn main() {
    let root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let write_baseline = std::env::args().any(|a| a == "--write-baseline");

    let mut files: Vec<PathBuf> = std::fs::read_dir(&root)
        .expect("read repository root")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
                n.starts_with("BENCH_") && n.ends_with(".json") && n != "BENCH_BASELINE.json"
            })
        })
        .collect();
    files.sort();
    if files.is_empty() {
        eprintln!(
            "no BENCH_*.json at {}; run the bench bins first",
            root.display()
        );
        std::process::exit(2);
    }

    let mut metrics: BTreeMap<String, f64> = BTreeMap::new();
    let mut stamps: BTreeMap<String, String> = BTreeMap::new();
    for f in &files {
        let text = std::fs::read_to_string(f).expect("read bench report");
        let json = match Json::parse(&text) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("warning: skipping {}: {e}", f.display());
                continue;
            }
        };
        let schema = json.get("schema");
        let bench = schema
            .and_then(|s| s.get("bench"))
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        let git = schema
            .and_then(|s| s.get("git"))
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        stamps.insert(bench.clone(), git);
        collect(&bench, &json, &mut metrics);
    }

    let baseline_path = root.join("BENCH_BASELINE.json");
    if write_baseline {
        let mut top = BTreeMap::new();
        top.insert(
            "git".to_string(),
            Json::Obj(
                stamps
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            ),
        );
        top.insert(
            "metrics".to_string(),
            Json::Obj(
                metrics
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                    .collect(),
            ),
        );
        std::fs::write(&baseline_path, format!("{}\n", Json::Obj(top))).expect("write baseline");
        println!(
            "wrote {} ({} tracked rates)",
            baseline_path.display(),
            metrics.len()
        );
    }
    let baseline = load_baseline(&baseline_path);

    // The trend table: one row per tracked rate, keyed by the stamp of
    // the report it came from.
    let mut md = String::from("# Bench trend\n\n");
    let _ = writeln!(
        md,
        "{} tracked rates across {} reports. Regression budget: {}% below \
         `BENCH_BASELINE.json` fails under `CASCADE_BENCH_ASSERT=1`.\n",
        metrics.len(),
        stamps.len(),
        (BUDGET * 100.0) as u32
    );
    md.push_str("| metric | git | value | baseline | Δ% |\n");
    md.push_str("|---|---|---:|---:|---:|\n");
    let mut regressed: Vec<(String, f64, f64)> = Vec::new();
    for (name, value) in &metrics {
        let bench = name.split('.').next().unwrap_or("");
        let git = stamps.get(bench).map_or("unknown", String::as_str);
        let (base_s, delta_s) = match baseline.get(name) {
            Some(base) if *base > 0.0 => {
                let delta = (value - base) / base * 100.0;
                if *value < base * (1.0 - BUDGET) {
                    regressed.push((name.clone(), *base, *value));
                }
                (fmt_si(*base), format!("{delta:+.1}%"))
            }
            _ => ("—".to_string(), "—".to_string()),
        };
        let _ = writeln!(
            md,
            "| `{name}` | {git} | {} | {base_s} | {delta_s} |",
            fmt_si(*value)
        );
    }
    let report_path = root.join("BENCH_REPORT.md");
    std::fs::write(&report_path, &md).expect("write BENCH_REPORT.md");
    print!("{md}");
    println!("\nwrote {}", report_path.display());
    if baseline.is_empty() {
        println!("no baseline: run `bench_report --write-baseline` to pin one");
    }

    if !regressed.is_empty() {
        eprintln!(
            "\n{} tracked rate(s) regressed more than {}% vs baseline:",
            regressed.len(),
            (BUDGET * 100.0) as u32
        );
        for (name, base, value) in &regressed {
            eprintln!(
                "  {name}: {} -> {} ({:+.1}%)",
                fmt_si(*base),
                fmt_si(*value),
                (value - base) / base * 100.0
            );
        }
        if std::env::var("CASCADE_BENCH_ASSERT").as_deref() == Ok("1") {
            std::process::exit(1);
        }
    } else if !baseline.is_empty() {
        println!(
            "trend gate passed: no tracked rate >{}% below baseline",
            (BUDGET * 100.0) as u32
        );
    }
}
