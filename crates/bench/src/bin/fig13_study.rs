//! Figure 13: the user study.
//!
//! Reproduces the paper's Fig. 13 scatter plots from the stochastic
//! developer model (a documented substitution for the n=20 human study; see
//! DESIGN.md). Left plot: builds vs time-to-working-design. Right plot:
//! average compile time vs average test/debug time between compiles.
//!
//! Run with: `cargo run --release -p cascade-bench --bin fig13_study`

use cascade_workloads::study::{simulate_cohort, ToolModel};

fn main() {
    let seed: u64 = std::env::var("CASCADE_BENCH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2019);
    let n = 10; // per tool, matching the paper's 20 total participants
    let quartus = simulate_cohort(&ToolModel::quartus(), n, seed);
    let cascade = simulate_cohort(&ToolModel::cascade(), n, seed ^ 0xABCD);

    println!("# Figure 13 (left): builds vs experiment time (minutes)");
    println!("# tool builds total_min");
    for cohort in [&quartus, &cascade] {
        for p in &cohort.participants {
            println!("{} {} {:.1}", cohort.tool, p.builds, p.total_min);
        }
    }
    println!();
    println!("# Figure 13 (right): avg compile time vs avg test/debug time (minutes)");
    println!("# tool avg_compile_min avg_debug_min");
    for cohort in [&quartus, &cascade] {
        for p in &cohort.participants {
            let per_build = p.builds.max(1) as f64;
            println!(
                "{} {:.2} {:.2}",
                cohort.tool,
                p.compile_min / per_build,
                p.debug_min / per_build
            );
        }
    }
    println!();
    println!("# --- summary (paper's Sec 6.3 claims in parentheses) ---");
    println!(
        "# builds: cascade {:.1} vs quartus {:.1} => +{:.0}% (paper: +43%)",
        cascade.mean_builds(),
        quartus.mean_builds(),
        (cascade.mean_builds() / quartus.mean_builds() - 1.0) * 100.0
    );
    println!(
        "# completion: cascade {:.1} min vs quartus {:.1} min => {:.0}% faster (paper: 21%)",
        cascade.mean_total_min(),
        quartus.mean_total_min(),
        (1.0 - cascade.mean_total_min() / quartus.mean_total_min()) * 100.0
    );
    println!(
        "# compile time: quartus/cascade = {:.0}x less time compiling (paper: 67x)",
        quartus.mean_compile_min() / cascade.mean_compile_min()
    );
    println!(
        "# debug time: cascade {:.1} min vs quartus {:.1} min (paper: 'only slightly less')",
        cascade.mean_debug_min(),
        quartus.mean_debug_min()
    );
}
