//! Table 1: aggregate statistics for Needleman-Wunsch student solutions.
//!
//! Generates a 31-solution corpus (matching the paper's 31 analysed
//! submissions; a documented substitution for the class logs, DESIGN.md),
//! parses every solution with the real frontend, and prints the same
//! mean/min/max rows as the paper's Table 1.
//!
//! Run with: `cargo run --release -p cascade-bench --bin table1_needleman`

use cascade_verilog::analysis;
use cascade_workloads::needleman::{student_solution, student_style};

fn main() {
    let n = 31;
    let seed_base: u64 = std::env::var("CASCADE_BENCH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2018);
    let mut rows: Vec<[u64; 6]> = Vec::new();
    for i in 0..n {
        let style = student_style(seed_base.wrapping_add(i));
        let src = student_solution(&style);
        let unit = cascade_verilog::parse(&src).expect("generated solution parses");
        let stats = analysis::source_stats(&src, &unit);
        rows.push([
            stats.lines as u64,
            stats.always_blocks as u64,
            stats.blocking_assignments as u64,
            stats.nonblocking_assignments as u64,
            stats.display_statements as u64,
            style.builds as u64,
        ]);
    }

    let metrics = [
        ("Lines of Verilog code", 287u64, 113u64, 709u64),
        ("Always blocks", 5, 2, 12),
        ("Blocking-assignments", 57, 28, 132),
        ("Nonblocking-assignments", 7, 2, 33),
        ("Display statements", 11, 1, 32),
        ("Number of builds", 27, 1, 123),
    ];
    println!("# Table 1: aggregate statistics over {n} generated submissions");
    println!(
        "{:<26} {:>6} {:>5} {:>5}   (paper: mean/min/max)",
        "metric", "mean", "min", "max"
    );
    for (k, (name, pm, pmin, pmax)) in metrics.iter().enumerate() {
        let vals: Vec<u64> = rows.iter().map(|r| r[k]).collect();
        let mean = vals.iter().sum::<u64>() / vals.len() as u64;
        let min = *vals.iter().min().unwrap();
        let max = *vals.iter().max().unwrap();
        println!("{name:<26} {mean:>6} {min:>5} {max:>5}   ({pm}/{pmin}/{pmax})");
    }
    let blocking: u64 = rows.iter().map(|r| r[2]).sum();
    let nonblocking: u64 = rows.iter().map(|r| r[3]).sum();
    println!(
        "\n# blocking used {:.1}x more than nonblocking in aggregate (paper: 8x)",
        blocking as f64 / nonblocking.max(1) as f64
    );
    let pipelined = (0..n)
        .filter(|i| student_style(seed_base.wrapping_add(*i)).pipelined)
        .count();
    println!(
        "# {:.0}% of solutions pipelined (paper: 29%)",
        pipelined as f64 / n as f64 * 100.0
    );
    let total_builds: u64 = rows.iter().map(|r| r[5]).sum();
    println!("# corpus logged {total_builds} build cycles (paper: 'over 100')");
}
