//! Figure 11: proof-of-work performance benchmark.
//!
//! Reproduces the paper's Fig. 11 series — virtual clock rate over wall
//! time for iVerilog, Quartus, and Cascade running the SHA-256
//! proof-of-work miner — against the modeled wall clock (deterministic,
//! machine-independent). Set `CASCADE_BENCH_SCALE` (default 0.05) to scale
//! the 900-second experiment window; the curve shapes are scale-invariant.
//!
//! Run with: `cargo run --release -p cascade-bench --bin fig11_pow`

use cascade_bench::{fmt_rate, fresh_runtime, print_series, Curve};
use cascade_core::{ExecMode, JitConfig};
use cascade_fpga::{wrapper_overhead_les, CostModel, Toolchain};
use cascade_netlist::{estimate_area, synthesize};
use cascade_sim::{elaborate, library_from_source, Simulator};
use cascade_workloads::sha256::{miner_verilog, Flavor, MinerConfig};
use std::sync::Arc;

/// The paper measured iVerilog's event dispatch to be several times slower
/// than Cascade's optimized software engines (Sec. 6.1: Cascade simulated
/// 2.4x faster). We model iVerilog with a proportionally costlier
/// per-statement dispatch.
const IVERILOG_DISPATCH_FACTOR: f64 = 2.6;

fn main() {
    let scale: f64 = std::env::var("CASCADE_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05);
    let horizon_s = 900.0 * scale;
    println!("# Figure 11: proof-of-work virtual clock rate vs time");
    println!("# scale={scale} => horizon {horizon_s:.0} modeled seconds\n");

    // Never-found target keeps the miner hashing for the whole window.
    let cfg = MinerConfig {
        target: 0,
        announce: false,
        ..MinerConfig::default()
    };
    let costs = CostModel::default();

    // ------------------------------------------------------------------
    // iVerilog baseline: pure interpretation, constant rate.
    // ------------------------------------------------------------------
    let ported = miner_verilog(&cfg, Flavor::Ported);
    let lib = library_from_source(&ported).expect("parse");
    let design = Arc::new(elaborate("Miner", &lib, &Default::default()).expect("elaborate"));
    let mut sim = Simulator::new(Arc::clone(&design));
    sim.initialize().unwrap();
    let probe_cycles = 2_000u64;
    for _ in 0..probe_cycles {
        sim.tick("clk").unwrap();
    }
    let per_tick_ns = (sim.activations as f64 * costs.sw_activation_ns
        + sim.statements as f64 * costs.sw_statement_ns)
        / probe_cycles as f64;
    let iverilog_rate = 1e9 / (per_tick_ns * IVERILOG_DISPATCH_FACTOR);
    println!("# iVerilog: starts <1s, flat {}", fmt_rate(iverilog_rate));

    // ------------------------------------------------------------------
    // Quartus baseline: nothing until compilation ends, then native rate.
    // ------------------------------------------------------------------
    let quartus_tc = Toolchain {
        time_scale: scale,
        ..Toolchain::default()
    };
    let native_bitstream = quartus_tc.compile(&design).expect("native compile");
    let quartus_ready = native_bitstream.modeled_duration.as_secs_f64();
    let native_rate = quartus_tc.device.clock_mhz * 1e6;
    println!(
        "# Quartus: 0 Hz until {quartus_ready:.0}s, then native {} (fmax {:.1} MHz)",
        fmt_rate(native_rate),
        native_bitstream.fmax_mhz
    );

    // ------------------------------------------------------------------
    // Cascade: run the real JIT against the modeled wall clock.
    // ------------------------------------------------------------------
    let mut config = JitConfig::default();
    config.toolchain.time_scale = scale;
    let (mut rt, _board) = fresh_runtime(config);
    rt.eval(&miner_verilog(&cfg, Flavor::Cascade))
        .expect("eval");
    let startup_s = rt.wall_seconds();
    // The worker thread is fast in real time; the modeled latency still
    // gates the swap.
    rt.wait_for_compile_worker();
    let mut cascade = Curve::new("cascade");
    cascade.push(rt.wall_seconds(), rt.ticks());
    // Software phase, sampled until migration.
    let mut sim_rate = 0.0;
    while rt.mode() == ExecMode::Software && rt.wall_seconds() < horizon_s {
        rt.run_ticks(500).unwrap();
        cascade.push(rt.wall_seconds(), rt.ticks());
        sim_rate = cascade.last_rate();
    }
    let crossover_s = rt.wall_seconds();
    if rt.mode() == ExecMode::Software {
        println!("# WARNING: compile did not land within the window; raise CASCADE_BENCH_SCALE");
        return;
    }
    // Hardware phase: measure the steady open-loop rate over a bounded run,
    // then extend analytically (the curve is flat).
    rt.run_ticks(2_000_000).unwrap();
    cascade.push(rt.wall_seconds(), rt.ticks());
    let hw_rate = cascade.last_rate();
    let mut t = rt.wall_seconds();
    while t < horizon_s {
        t += horizon_s / 20.0;
        let (lt, lw) = *cascade.points.last().unwrap();
        cascade.push(t, lw + ((t - lt) * hw_rate) as u64);
    }

    // ------------------------------------------------------------------
    // Series output.
    // ------------------------------------------------------------------
    let iverilog_series: Vec<(f64, f64)> = (0..=20)
        .map(|i| (horizon_s * i as f64 / 20.0, iverilog_rate))
        .collect();
    let quartus_series: Vec<(f64, f64)> = (0..=20)
        .map(|i| {
            let t = horizon_s * i as f64 / 20.0;
            (t, if t >= quartus_ready { native_rate } else { 0.0 })
        })
        .collect();
    print_series("iverilog", &iverilog_series);
    print_series("quartus", &quartus_series);
    print_series("cascade", &cascade.rates());

    // ------------------------------------------------------------------
    // Headline numbers (paper Sec. 6.1).
    // ------------------------------------------------------------------
    let nl = synthesize(&design).unwrap();
    let native_area = estimate_area(&nl).logic_elements.max(1);
    let cascade_area = native_area + wrapper_overhead_les(&nl);
    println!("# --- summary (paper's Sec 6.1 claims in parentheses) ---");
    println!("# cascade startup latency: {startup_s:.3}s (paper: <1s)");
    println!(
        "# cascade sim rate {} vs iVerilog {} => {:.1}x (paper: 2.4x)",
        fmt_rate(sim_rate),
        fmt_rate(iverilog_rate),
        sim_rate / iverilog_rate
    );
    println!(
        "# cascade crossover to hardware at {crossover_s:.0}s; quartus ready at {quartus_ready:.0}s"
    );
    println!(
        "# cascade hw rate {} => within {:.1}x of native 50 MHz (paper: 2.9x)",
        fmt_rate(hw_rate),
        native_rate / hw_rate
    );
    println!(
        "# spatial overhead: {cascade_area} LEs vs {native_area} LEs native => {:.1}x (paper: 2.9x)",
        cascade_area as f64 / native_area as f64
    );
}
