//! Throughput report for the `cascade-verify` subsystem: how fast the
//! correctness tooling itself runs. Three rates matter for CI budgeting —
//! differential-fuzz designs/s (bounds the nightly campaign size), BMC
//! unrolled cycles/s (bounds how many optimizer proofs fit in a smoke
//! job), and chaos-soak sessions/s (bounds the fault-matrix sweep).
//!
//! Writes `BENCH_verify.json` at the repository root with the shared
//! schema header. All campaigns are fixed-seed, so run-to-run deltas are
//! host speed, not workload drift.

use cascade_bits::Prng;
use cascade_netlist::{synthesize, synthesize_raw};
use cascade_sim::{elaborate, library_from_source};
use cascade_verify::{
    check_equiv, run_soak, BmcResult, DesignSpec, FuzzConfig, Fuzzer, SoakConfig,
};
use std::fmt::Write as _;
use std::time::Instant;

const FUZZ_ITERS: u32 = 150;
const BMC_DESIGNS: u32 = 10;
const BMC_K: u32 = 16;
const SOAK_SESSIONS: u32 = 64;

fn main() {
    // Differential fuzzing: designs through the six-way engine stack.
    let mut fuzzer = Fuzzer::new(FuzzConfig {
        seed: 0xBE7C,
        iterations: FUZZ_ITERS,
        ..FuzzConfig::default()
    });
    let t0 = Instant::now();
    let fuzz = fuzzer.run();
    let fuzz_dt = t0.elapsed().as_secs_f64();
    let designs_per_s = fuzz.executed as f64 / fuzz_dt.max(1e-9);
    assert_eq!(fuzz.diverged, 0, "bench campaign found a real divergence");
    println!(
        "fuzz:  {} designs in {fuzz_dt:.2}s  ({designs_per_s:.1} designs/s, {} cycles)",
        fuzz.executed, fuzz.cycles_total
    );

    // BMC: raw-vs-optimized proofs over generated designs.
    let mut proved = 0u32;
    let mut gates = 0u64;
    let mut conflicts = 0u64;
    let mut salt = 0u64;
    let t0 = Instant::now();
    while proved < BMC_DESIGNS && salt < BMC_DESIGNS as u64 * 4 {
        salt += 1;
        let mut rng = Prng::new(0xB11C_u64.wrapping_add(salt.wrapping_mul(0x9e37_79b9)));
        let spec = DesignSpec::generate(&mut rng);
        let Ok(lib) = library_from_source(&spec.render()) else {
            continue;
        };
        let Ok(design) = elaborate("T", &lib, &Default::default()) else {
            continue;
        };
        let (Ok(raw), Ok(opt)) = (synthesize_raw(&design), synthesize(&design)) else {
            continue;
        };
        match check_equiv(&raw, &opt, BMC_K) {
            BmcResult::Equivalent(stats) => {
                proved += 1;
                gates += stats.gates;
                conflicts += stats.conflicts;
            }
            BmcResult::Counterexample { frame, .. } => {
                panic!("optimizer miscompile at frame {frame}:\n{}", spec.render())
            }
            BmcResult::Unsupported(_) => {}
        }
    }
    let bmc_dt = t0.elapsed().as_secs_f64();
    let unrolled = proved as u64 * BMC_K as u64;
    let cycles_per_s = unrolled as f64 / bmc_dt.max(1e-9);
    println!(
        "bmc:   {proved} proofs at K={BMC_K} in {bmc_dt:.2}s  ({cycles_per_s:.1} unrolled cycles/s, \
         {gates} gates, {conflicts} conflicts)"
    );

    // Chaos soak: faulted serve sessions across the config matrix.
    let t0 = Instant::now();
    let soak = run_soak(&SoakConfig {
        seed: 0x50AC,
        sessions: SOAK_SESSIONS,
        ..SoakConfig::default()
    });
    let soak_dt = t0.elapsed().as_secs_f64();
    let sessions_per_s = soak.sessions as f64 / soak_dt.max(1e-9);
    assert!(
        soak.violations.is_empty(),
        "bench soak hit invariant violations:\n{}",
        soak.violations.join("\n")
    );
    println!(
        "soak:  {} sessions in {soak_dt:.2}s  ({sessions_per_s:.1} sessions/s, {} ticks, \
         {} faults)",
        soak.sessions, soak.ticks, soak.faults_injected
    );

    let mut out = String::from("{\n");
    out.push_str(&cascade_bench::schema_header("verify", "host"));
    out.push_str("  \"benchmark\": \"verify_throughput\",\n");
    writeln!(
        out,
        "  \"fuzz\": {{\"designs\": {}, \"seconds\": {fuzz_dt:.3}, \
         \"designs_per_s\": {designs_per_s:.1}, \"cycles_total\": {}, \
         \"coverage_keys\": {}}},",
        fuzz.executed, fuzz.cycles_total, fuzz.coverage_keys
    )
    .unwrap();
    writeln!(
        out,
        "  \"bmc\": {{\"proofs\": {proved}, \"k\": {BMC_K}, \"seconds\": {bmc_dt:.3}, \
         \"unrolled_cycles_per_s\": {cycles_per_s:.1}, \"gates\": {gates}, \
         \"conflicts\": {conflicts}}},"
    )
    .unwrap();
    writeln!(
        out,
        "  \"soak\": {{\"sessions\": {}, \"seconds\": {soak_dt:.3}, \
         \"sessions_per_s\": {sessions_per_s:.1}, \"ticks\": {}, \
         \"faults_injected\": {}}}",
        soak.sessions, soak.ticks, soak.faults_injected
    )
    .unwrap();
    out.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_verify.json");
    std::fs::write(path, &out).expect("write BENCH_verify.json");
    println!("\nwrote {path}");
}
