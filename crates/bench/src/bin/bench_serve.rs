//! Serving-layer load generator: throughput and request latency as the
//! session count grows on a fixed two-fabric fleet.
//!
//! For each session count S, a fresh server hosts S concurrent clients.
//! Each client evals the counter design (measuring `eval` round-trip
//! latency), then hammers `run` commands until the deadline, with a few
//! more timed evals spread through the run (the interactive-user pattern:
//! code keeps changing while it executes). Reported per S: total virtual
//! ticks/second across all sessions, and p50/p99 latency for `eval` and
//! `run` round trips.
//!
//! Prints one row per session count and writes `BENCH_serve.json` at the
//! repository root. Set `CASCADE_BENCH_SECS` (default 0.25) per point;
//! CI smoke uses 0.05.

use cascade_serve::{InProcClient, ServeConfig, Server};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const COUNTER: &str = "reg [31:0] cnt = 0;\n\
                       always @(posedge clk.val) cnt <= cnt + 1;\n\
                       assign led.val = cnt[7:0];";

/// Extra timed evals per session after setup (kept small: every eval
/// appends an item, and rebuild cost grows with program size).
const EXTRA_EVALS: usize = 8;

const RUN_TICKS: u64 = 256;

struct Point {
    sessions: usize,
    ticks_per_sec: f64,
    eval_p50_us: f64,
    eval_p99_us: f64,
    run_p50_us: f64,
    run_p99_us: f64,
    promotions: u64,
    revocations: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn drive(sessions: usize, secs: f64) -> Point {
    let mut config = ServeConfig::quick();
    config.fabrics = 2;
    config.workers = sessions.clamp(2, 8);
    let server = Server::new(config);

    let handles: Vec<_> = (0..sessions)
        .map(|i| {
            let server = server.clone();
            std::thread::spawn(move || {
                let mut client = InProcClient::connect(&server);
                client.open().expect("open");
                let mut eval_lat = Vec::new();
                let mut run_lat = Vec::new();
                let mut ticks = 0u64;
                for line in COUNTER.lines() {
                    let t0 = Instant::now();
                    client.eval(line).expect("eval");
                    eval_lat.push(micros(t0.elapsed()));
                }
                let deadline = Instant::now() + Duration::from_secs_f64(secs);
                let mut iter = 0usize;
                while Instant::now() < deadline {
                    let t0 = Instant::now();
                    let r = client.run(RUN_TICKS).expect("run");
                    run_lat.push(micros(t0.elapsed()));
                    ticks += r.ticks;
                    iter += 1;
                    // Interactive-user pattern: occasional live edits.
                    if eval_lat.len() < COUNTER.lines().count() + EXTRA_EVALS
                        && iter.is_multiple_of(16)
                    {
                        let t0 = Instant::now();
                        client
                            .eval(&format!("initial $display(\"hb{i} {iter}\");"))
                            .expect("eval hb");
                        eval_lat.push(micros(t0.elapsed()));
                        let _ = client.drain().expect("drain");
                    }
                }
                let stats = client.stats().expect("stats");
                let promotions = stats
                    .get("promotions")
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0);
                (eval_lat, run_lat, ticks, promotions)
            })
        })
        .collect();

    let mut eval_lat = Vec::new();
    let mut run_lat = Vec::new();
    let mut total_ticks = 0u64;
    let mut promotions = 0u64;
    let t0 = Instant::now();
    for h in handles {
        let (e, r, t, p) = h.join().expect("session thread");
        eval_lat.extend(e);
        run_lat.extend(r);
        total_ticks += t;
        promotions += p;
    }
    let elapsed = t0.elapsed().as_secs_f64().max(secs);

    let mut probe = InProcClient::connect(&server);
    probe.open().expect("open probe");
    let server_stats = probe.server_stats().expect("server stats");
    let revocations = server_stats
        .get("fabric_revocations")
        .and_then(|v| v.as_u64())
        .unwrap_or(0);

    eval_lat.sort_by(f64::total_cmp);
    run_lat.sort_by(f64::total_cmp);
    Point {
        sessions,
        ticks_per_sec: total_ticks as f64 / elapsed,
        eval_p50_us: percentile(&eval_lat, 0.50),
        eval_p99_us: percentile(&eval_lat, 0.99),
        run_p50_us: percentile(&run_lat, 0.50),
        run_p99_us: percentile(&run_lat, 0.99),
        promotions,
        revocations,
    }
}

fn render_json(points: &[Point]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&cascade_bench::schema_header("serve", "host"));
    out.push_str("  \"benchmark\": \"serve_scaling\",\n  \"fabrics\": 2,\n  \"rows\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        writeln!(
            out,
            "    {{\"sessions\": {}, \"ticks_per_sec\": {:.0}, \
             \"eval_p50_us\": {:.1}, \"eval_p99_us\": {:.1}, \
             \"run_p50_us\": {:.1}, \"run_p99_us\": {:.1}, \
             \"promotions\": {}, \"revocations\": {}}}{comma}",
            p.sessions,
            p.ticks_per_sec,
            p.eval_p50_us,
            p.eval_p99_us,
            p.run_p50_us,
            p.run_p99_us,
            p.promotions,
            p.revocations,
        )
        .unwrap();
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let secs: f64 = std::env::var("CASCADE_BENCH_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    println!("serve scaling on a 2-fabric fleet ({secs}s per point)\n");
    println!(
        "{:>8} {:>14} {:>12} {:>12} {:>12} {:>12} {:>6} {:>6}",
        "sessions",
        "ticks/s",
        "eval p50 µs",
        "eval p99 µs",
        "run p50 µs",
        "run p99 µs",
        "promo",
        "revoke"
    );
    let mut points = Vec::new();
    for sessions in [1usize, 2, 4, 8] {
        let p = drive(sessions, secs);
        println!(
            "{:>8} {:>14.0} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>6} {:>6}",
            p.sessions,
            p.ticks_per_sec,
            p.eval_p50_us,
            p.eval_p99_us,
            p.run_p50_us,
            p.run_p99_us,
            p.promotions,
            p.revocations,
        );
        points.push(p);
    }
    let json = render_json(&points);
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");
}
