//! Serving-layer load generator: throughput and request latency as the
//! session count grows on a fixed two-fabric fleet.
//!
//! For each session count S, a fresh server hosts S concurrent clients.
//! Each client evals the counter design (measuring `eval` round-trip
//! latency), then hammers `run` commands until the deadline, with a few
//! more timed evals spread through the run (the interactive-user pattern:
//! code keeps changing while it executes). Reported per S: total virtual
//! ticks/second across all sessions, p50/p99 latency for `eval` and `run`
//! round trips, lease-wait p50/p99 (from the server's
//! `jit_lease_wait_seconds` histogram — virtual seconds a ready bitstream
//! waited for a fabric), work-steal count, promotions, and revocations
//! (taken and suppressed by hysteresis).
//!
//! Prints one row per session count and writes `BENCH_serve.json` at the
//! repository root. Knobs:
//!
//! - `CASCADE_BENCH_SECS`: seconds per point (default 0.25; CI smoke 0.05)
//! - `CASCADE_BENCH_SESSIONS`: comma-separated sweep (default
//!   `1,2,4,8,16,32,64`)
//! - `CASCADE_BENCH_ASSERT=1`: exit non-zero if aggregate ticks/s drops
//!   more than 20% between adjacent session counts (the serve-scale CI
//!   gate; generous because CI machines are noisy)

use cascade_serve::{InProcClient, ServeConfig, Server};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const COUNTER: &str = "reg [31:0] cnt = 0;\n\
                       always @(posedge clk.val) cnt <= cnt + 1;\n\
                       assign led.val = cnt[7:0];";

/// Extra timed evals per session after setup (kept small: every eval
/// appends an item, and rebuild cost grows with program size).
const EXTRA_EVALS: usize = 8;

const RUN_TICKS: u64 = 256;

struct Point {
    sessions: usize,
    ticks_per_sec: f64,
    eval_p50_us: f64,
    eval_p99_us: f64,
    run_p50_us: f64,
    run_p99_us: f64,
    lease_wait_p50_s: f64,
    lease_wait_p99_s: f64,
    steals: u64,
    promotions: u64,
    revocations: u64,
    revocations_suppressed: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// Estimates a percentile from a Prometheus cumulative histogram in the
/// exposition text: the smallest bucket bound whose cumulative count
/// reaches `p` of the total. Returns 0.0 when the histogram is empty.
fn histogram_percentile(metrics_text: &str, name: &str, p: f64) -> f64 {
    let prefix = format!("{name}_bucket{{le=\"");
    let mut buckets: Vec<(f64, u64)> = Vec::new();
    for line in metrics_text.lines() {
        let Some(rest) = line.strip_prefix(&prefix) else {
            continue;
        };
        let Some((le, count)) = rest.split_once("\"} ") else {
            continue;
        };
        let bound = if le == "+Inf" {
            f64::INFINITY
        } else {
            le.parse().unwrap_or(f64::INFINITY)
        };
        let count: u64 = count.trim().parse().unwrap_or(0);
        buckets.push((bound, count));
    }
    buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total = buckets.last().map_or(0, |b| b.1);
    if total == 0 {
        return 0.0;
    }
    let target = (p * total as f64).ceil() as u64;
    for (bound, cum) in &buckets {
        if *cum >= target {
            return if bound.is_finite() { *bound } else { f64::NAN };
        }
    }
    f64::NAN
}

fn drive(sessions: usize, secs: f64) -> Point {
    let mut config = ServeConfig::quick();
    config.fabrics = std::env::var("CASCADE_BENCH_FABRICS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    // Workers track cores, not tenants: the sharded scheduler multiplexes
    // any number of sessions over a core-sized pool, and oversubscribing
    // a small host with one thread per session only buys context-switch
    // thrash.
    config.workers = std::env::var("CASCADE_BENCH_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            (2 * cores).clamp(2, 8)
        });
    let server = Server::new(config);

    let handles: Vec<_> = (0..sessions)
        .map(|i| {
            let server = server.clone();
            std::thread::spawn(move || {
                let mut client = InProcClient::connect(&server);
                client.open().expect("open");
                let mut eval_lat = Vec::new();
                let mut run_lat = Vec::new();
                let mut ticks = 0u64;
                for line in COUNTER.lines() {
                    let t0 = Instant::now();
                    client.eval(line).expect("eval");
                    eval_lat.push(micros(t0.elapsed()));
                }
                let deadline = Instant::now() + Duration::from_secs_f64(secs);
                let mut iter = 0usize;
                while Instant::now() < deadline {
                    let t0 = Instant::now();
                    let r = client.run(RUN_TICKS).expect("run");
                    run_lat.push(micros(t0.elapsed()));
                    ticks += r.ticks;
                    iter += 1;
                    // Interactive-user pattern: occasional live edits.
                    if eval_lat.len() < COUNTER.lines().count() + EXTRA_EVALS
                        && iter.is_multiple_of(16)
                    {
                        let t0 = Instant::now();
                        client
                            .eval(&format!("initial $display(\"hb{i} {iter}\");"))
                            .expect("eval hb");
                        eval_lat.push(micros(t0.elapsed()));
                        let _ = client.drain().expect("drain");
                    }
                }
                let stats = client.stats().expect("stats");
                let promotions = stats
                    .get("promotions")
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0);
                (eval_lat, run_lat, ticks, promotions)
            })
        })
        .collect();

    let mut eval_lat = Vec::new();
    let mut run_lat = Vec::new();
    let mut total_ticks = 0u64;
    let mut promotions = 0u64;
    let t0 = Instant::now();
    for h in handles {
        let (e, r, t, p) = h.join().expect("session thread");
        eval_lat.extend(e);
        run_lat.extend(r);
        total_ticks += t;
        promotions += p;
    }
    let elapsed = t0.elapsed().as_secs_f64().max(secs);

    let mut probe = InProcClient::connect(&server);
    probe.open().expect("open probe");
    // Read the merged exposition *before* sessions can hibernate: a woken
    // session's registry starts over, so the histogram must be captured
    // while the load's cells are still live.
    let metrics_text = probe.server_metrics().expect("server metrics");
    let server_stats = probe.server_stats().expect("server stats");
    let stat = |key: &str| server_stats.get(key).and_then(|v| v.as_u64()).unwrap_or(0);

    eval_lat.sort_by(f64::total_cmp);
    run_lat.sort_by(f64::total_cmp);
    Point {
        sessions,
        ticks_per_sec: total_ticks as f64 / elapsed,
        eval_p50_us: percentile(&eval_lat, 0.50),
        eval_p99_us: percentile(&eval_lat, 0.99),
        run_p50_us: percentile(&run_lat, 0.50),
        run_p99_us: percentile(&run_lat, 0.99),
        lease_wait_p50_s: histogram_percentile(&metrics_text, "jit_lease_wait_seconds", 0.50),
        lease_wait_p99_s: histogram_percentile(&metrics_text, "jit_lease_wait_seconds", 0.99),
        steals: stat("steals"),
        promotions,
        revocations: stat("fabric_revocations"),
        revocations_suppressed: stat("fabric_revocations_suppressed"),
    }
}

struct RestartPoint {
    cold_first_native_tick_ms: f64,
    warm_first_native_tick_ms: f64,
    warm_bitstream_hits: u64,
}

/// Times a tenant's path to its first hardware tick on a cold server
/// (full toolchain compile) versus after a drain → recover restart, where
/// the persistent bitstream store makes the recompile warm.
fn drive_restart() -> RestartPoint {
    let dir = std::env::temp_dir().join(format!("cascade-bench-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = ServeConfig::quick();
    config.fabrics = 1;
    config.workers = 2;
    config.hibernate_after_s = 0.0;
    config.durable_dir = Some(dir.to_string_lossy().into_owned());
    // quick()'s 1e-6 scale shrinks the modeled toolchain below the
    // request-loop noise floor; at 1e-3 the ~100-virtual-second cold
    // compile costs ~100ms wall while the 2-virtual-second store hit
    // costs ~2ms, so the row measures the toolchain, not the loop.
    config.jit.toolchain.time_scale = 1e-3;

    let first_native_tick = |client: &mut InProcClient| -> f64 {
        let t0 = Instant::now();
        loop {
            client.run(RUN_TICKS).expect("run");
            let stats = client.stats().expect("stats");
            if stats
                .get("promotions")
                .and_then(|v| v.as_u64())
                .unwrap_or(0)
                >= 1
            {
                return t0.elapsed().as_secs_f64() * 1e3;
            }
            assert!(
                t0.elapsed().as_secs_f64() < 60.0,
                "session never promoted to hardware"
            );
        }
    };

    let server = Server::new(config.clone());
    let mut client = InProcClient::connect(&server);
    let id = client.open().expect("open");
    let token = client.token().expect("token");
    client.eval_all(COUNTER).expect("eval");
    let cold_ms = first_native_tick(&mut client);
    client.drain_server().expect("drain");
    drop(client);
    drop(server);

    let recovered = Server::recover(config);
    let mut client = InProcClient::connect(&recovered);
    let t0 = Instant::now();
    client.resume(id, token).expect("resume");
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3 + first_native_tick(&mut client);
    let server_stats = client.server_stats().expect("server stats");
    let warm_hits = server_stats
        .get("warm_bitstream_hits")
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    let _ = std::fs::remove_dir_all(&dir);
    RestartPoint {
        cold_first_native_tick_ms: cold_ms,
        warm_first_native_tick_ms: warm_ms,
        warm_bitstream_hits: warm_hits,
    }
}

fn render_json(points: &[Point], restart: &RestartPoint) -> String {
    let mut out = String::from("{\n");
    out.push_str(&cascade_bench::schema_header("serve", "host"));
    writeln!(
        out,
        "  \"restart\": {{\"cold_first_native_tick_ms\": {:.1}, \
         \"warm_first_native_tick_ms\": {:.1}, \"warm_bitstream_hits\": {}}},",
        restart.cold_first_native_tick_ms,
        restart.warm_first_native_tick_ms,
        restart.warm_bitstream_hits,
    )
    .unwrap();
    out.push_str("  \"benchmark\": \"serve_scaling\",\n  \"fabrics\": 2,\n  \"rows\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        writeln!(
            out,
            "    {{\"sessions\": {}, \"ticks_per_sec\": {:.0}, \
             \"eval_p50_us\": {:.1}, \"eval_p99_us\": {:.1}, \
             \"run_p50_us\": {:.1}, \"run_p99_us\": {:.1}, \
             \"lease_wait_p50_s\": {:.6}, \"lease_wait_p99_s\": {:.6}, \
             \"steals\": {}, \"promotions\": {}, \
             \"revocations\": {}, \"revocations_suppressed\": {}}}{comma}",
            p.sessions,
            p.ticks_per_sec,
            p.eval_p50_us,
            p.eval_p99_us,
            p.run_p50_us,
            p.run_p99_us,
            p.lease_wait_p50_s,
            p.lease_wait_p99_s,
            p.steals,
            p.promotions,
            p.revocations,
            p.revocations_suppressed,
        )
        .unwrap();
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let secs: f64 = std::env::var("CASCADE_BENCH_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let sweep: Vec<usize> = std::env::var("CASCADE_BENCH_SESSIONS")
        .ok()
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8, 16, 32, 64]);
    println!("serve scaling on a 2-fabric fleet ({secs}s per point)\n");
    println!(
        "{:>8} {:>14} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10} {:>7} {:>6} {:>7} {:>9}",
        "sessions",
        "ticks/s",
        "eval p50 µs",
        "eval p99 µs",
        "run p50 µs",
        "run p99 µs",
        "lw p50 s",
        "lw p99 s",
        "steals",
        "promo",
        "revoke",
        "suppress"
    );
    let mut points = Vec::new();
    for &sessions in &sweep {
        let p = drive(sessions, secs);
        println!(
            "{:>8} {:>14.0} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>10.4} {:>10.4} {:>7} {:>6} {:>7} {:>9}",
            p.sessions,
            p.ticks_per_sec,
            p.eval_p50_us,
            p.eval_p99_us,
            p.run_p50_us,
            p.run_p99_us,
            p.lease_wait_p50_s,
            p.lease_wait_p99_s,
            p.steals,
            p.promotions,
            p.revocations,
            p.revocations_suppressed,
        );
        points.push(p);
    }
    let restart = drive_restart();
    println!(
        "\nrestart: first native tick cold {:.1} ms, warm {:.1} ms ({} warm store hits)",
        restart.cold_first_native_tick_ms,
        restart.warm_first_native_tick_ms,
        restart.warm_bitstream_hits,
    );
    let json = render_json(&points, &restart);
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");

    if std::env::var("CASCADE_BENCH_ASSERT").as_deref() == Ok("1") {
        let mut failed = false;
        if restart.warm_bitstream_hits == 0 {
            eprintln!("FAIL: warm restart compiled from scratch (no bitstream-store hit)");
            failed = true;
        }
        for pair in points.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            if b.ticks_per_sec < a.ticks_per_sec * 0.80 {
                eprintln!(
                    "FAIL: aggregate ticks/s regressed {} -> {} sessions: {:.0} -> {:.0} (> 20%)",
                    a.sessions, b.sessions, a.ticks_per_sec, b.ticks_per_sec
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("scale assertion passed: no >20% adjacent-step regression");
    }
}
