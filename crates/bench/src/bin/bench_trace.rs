//! Tracing/profiling overhead report: the cost of the `cascade-trace`
//! hooks on the two hot loops the JIT lives in — the bytecode software
//! engine's batched `tick_n` (bench_sim's shape) and the netlist arena
//! evaluator's `run_cycles` (bench_netlist's shape).
//!
//! The disabled path cannot be compiled out (it is one branch per
//! `settle`/process activation), so "overhead when off" is measured as an
//! A/A comparison: the same disabled loop timed twice, with the relative
//! delta bounding the hook cost within measurement noise. The enabled
//! path is measured against the disabled one directly. A third section
//! times raw sink emission (disabled vs. ring-buffered).
//!
//! A fourth section bounds the serve observability plane the same way:
//! the plane (request tracing, phase attribution, metering, flight ring)
//! cannot be compiled out of the server, so its idle cost — active, no
//! subscribers — is measured A/A as two timings of the same request loop
//! on one server, and the dormant-hook cost as the minimum of three A/A
//! deltas on the profiling-off hot loop.
//!
//! Writes `BENCH_trace.json` at the repository root; the acceptance gates
//! are `max_off_overhead_pct <= 2`, plane idle ≤ 2%, and plane disabled
//! ≤ 0.15% — warnings by default, process failure under
//! `CASCADE_BENCH_ASSERT=1`. Set `CASCADE_BENCH_SECS` to trade precision
//! for runtime.

use cascade_bench::harness::{fmt_si, measure};
use cascade_netlist::{synthesize, NetlistSim};
use cascade_serve::{InProcClient, ServeConfig, Server};
use cascade_sim::{elaborate, library_from_source, CompiledSim};
use cascade_trace::{Arg, TraceSink};
use cascade_workloads::sha256::{miner_verilog, Flavor, MinerConfig};
use std::fmt::Write as _;
use std::sync::Arc;

const BATCH: u64 = 256;

struct Row {
    hot_loop: &'static str,
    off_cps: f64,
    off_aa_cps: f64,
    on_cps: f64,
}

impl Row {
    /// The A/A delta between the two disabled measurements, as a percent
    /// of the faster one — the noise-bounded cost of the dormant hooks.
    fn off_overhead_pct(&self) -> f64 {
        let best = self.off_cps.max(self.off_aa_cps);
        ((self.off_cps - self.off_aa_cps).abs() / best) * 100.0
    }

    /// Throughput lost with profiling actually enabled.
    fn on_overhead_pct(&self) -> f64 {
        let off = self.off_cps.max(self.off_aa_cps);
        ((off - self.on_cps) / off) * 100.0
    }
}

fn main() {
    let cfg = MinerConfig {
        target: 0,
        announce: false,
        ..MinerConfig::default()
    };
    let src = miner_verilog(&cfg, Flavor::Ported);
    let lib = library_from_source(&src).expect("workload parses");
    let design = Arc::new(elaborate("Miner", &lib, &Default::default()).expect("elaborates"));
    let netlist = Arc::new(synthesize(&design).expect("synthesizes"));

    let mut rows = Vec::new();

    // Software engine: batched bytecode execution, profiling off/off/on.
    {
        let clk = design.var("clk").expect("clk port");
        let mut sim = CompiledSim::new(Arc::clone(&design));
        sim.initialize().expect("initializes");
        sim.settle().expect("settles");
        let loop_body = |sim: &mut CompiledSim| {
            sim.tick_n(clk, BATCH).expect("batch runs");
            sim.drain_events();
        };
        let off_a = BATCH as f64 * 1e9 / measure(&mut || loop_body(&mut sim));
        let off_b = BATCH as f64 * 1e9 / measure(&mut || loop_body(&mut sim));
        sim.enable_profiling();
        let on = BATCH as f64 * 1e9 / measure(&mut || loop_body(&mut sim));
        rows.push(Row {
            hot_loop: "sim_tick_n",
            off_cps: off_a,
            off_aa_cps: off_b,
            on_cps: on,
        });
    }

    // Netlist arena evaluator: run_cycles, profiling off/off/on.
    {
        let mut sim = NetlistSim::new(Arc::clone(&netlist)).expect("levelize");
        let loop_body = |sim: &mut NetlistSim| {
            sim.run_cycles(BATCH, usize::MAX);
            sim.drain_tasks();
        };
        let off_a = BATCH as f64 * 1e9 / measure(&mut || loop_body(&mut sim));
        let off_b = BATCH as f64 * 1e9 / measure(&mut || loop_body(&mut sim));
        sim.enable_profiling();
        let on = BATCH as f64 * 1e9 / measure(&mut || loop_body(&mut sim));
        rows.push(Row {
            hot_loop: "netlist_run_cycles",
            off_cps: off_a,
            off_aa_cps: off_b,
            on_cps: on,
        });
    }

    for r in &rows {
        println!(
            "{:<20} off {:>9}cyc/s   on {:>9}cyc/s   off-overhead {:.2}%   on-overhead {:.2}%",
            r.hot_loop,
            fmt_si(r.off_cps.max(r.off_aa_cps)),
            fmt_si(r.on_cps),
            r.off_overhead_pct(),
            r.on_overhead_pct(),
        );
    }

    // Raw sink emission: a disabled sink (the default everywhere outside
    // serve) against an enabled bounded ring.
    let disabled = TraceSink::disabled();
    let disabled_ns = measure(&mut || {
        disabled.instant(0, "jit", "scrub", 1, &[("ok", Arg::Bool(true))]);
    });
    let ring = TraceSink::ring(4096);
    let ring_ns = measure(&mut || {
        ring.instant(0, "jit", "scrub", 1, &[("ok", Arg::Bool(true))]);
    });
    println!("sink emission: disabled {disabled_ns:.1} ns/event, ring {ring_ns:.1} ns/event");

    // Serve plane, idle: one server with the telemetry plane active but
    // no subscribers, bounded A/A — the same run loop timed twice. Zero
    // fabrics keeps the session in software so no mid-measurement
    // promotion shifts the floor between the A and B timings.
    let (idle_a_rps, idle_b_rps) = {
        let mut config = ServeConfig::quick();
        config.fabrics = 0;
        config.workers = 2;
        let server = Server::new(config);
        let mut client = InProcClient::connect(&server);
        client.open().expect("open");
        client
            .eval_all(
                "reg [31:0] cnt = 0;\n\
                 always @(posedge clk.val) cnt <= cnt + 1;\n\
                 assign led.val = cnt[7:0];",
            )
            .expect("eval");
        let mut loop_body = || {
            client.run(64).expect("run");
        };
        let a = 1e9 / measure(&mut loop_body);
        let b = 1e9 / measure(&mut loop_body);
        (a, b)
    };
    let plane_idle_pct = ((idle_a_rps - idle_b_rps).abs() / idle_a_rps.max(idle_b_rps)) * 100.0;

    // Dormant hooks, bounded tighter: four back-to-back timings of the
    // same profiling-off loop give three A/A deltas; the minimum is the
    // repeatable (non-noise) cost of the disabled instrumentation.
    let plane_disabled_pct = {
        let clk = design.var("clk").expect("clk port");
        let mut sim = CompiledSim::new(Arc::clone(&design));
        sim.initialize().expect("initializes");
        sim.settle().expect("settles");
        let mut samples = [0.0f64; 4];
        for s in &mut samples {
            *s = BATCH as f64 * 1e9
                / measure(&mut || {
                    sim.tick_n(clk, BATCH).expect("batch runs");
                    sim.drain_events();
                });
        }
        samples
            .windows(2)
            .map(|w| ((w[0] - w[1]).abs() / w[0].max(w[1])) * 100.0)
            .fold(f64::INFINITY, f64::min)
    };
    println!(
        "plane: idle A/A {} vs {} req/s ({plane_idle_pct:.3}% delta), \
         disabled hooks {plane_disabled_pct:.3}% (min of 3 A/A deltas)",
        fmt_si(idle_a_rps),
        fmt_si(idle_b_rps),
    );

    let max_off = rows
        .iter()
        .map(Row::off_overhead_pct)
        .fold(0.0f64, f64::max);
    if max_off > 2.0 {
        println!("WARNING: disabled-tracer overhead {max_off:.2}% exceeds the 2% budget");
    }
    if plane_idle_pct > 2.0 {
        println!("WARNING: idle observability plane A/A delta {plane_idle_pct:.2}% exceeds 2%");
    }
    if plane_disabled_pct > 0.15 {
        println!("WARNING: disabled-plane hook cost {plane_disabled_pct:.3}% exceeds 0.15%");
    }

    let mut out = String::from("{\n");
    out.push_str(&cascade_bench::schema_header("trace", "host"));
    out.push_str("  \"benchmark\": \"trace_overhead\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            out,
            "    {{\"hot_loop\": \"{}\", \"off_cps\": {:.1}, \"off_aa_cps\": {:.1}, \
             \"on_cps\": {:.1}, \"off_overhead_pct\": {:.3}, \"on_overhead_pct\": {:.3}}}{comma}",
            r.hot_loop,
            r.off_cps,
            r.off_aa_cps,
            r.on_cps,
            r.off_overhead_pct(),
            r.on_overhead_pct()
        )
        .unwrap();
    }
    out.push_str("  ],\n");
    writeln!(
        out,
        "  \"sink_ns_per_event\": {{\"disabled\": {disabled_ns:.2}, \"ring\": {ring_ns:.2}}},"
    )
    .unwrap();
    writeln!(
        out,
        "  \"plane\": {{\"idle_a_rps\": {idle_a_rps:.1}, \"idle_b_rps\": {idle_b_rps:.1}, \
         \"idle_overhead_pct\": {plane_idle_pct:.3}, \
         \"disabled_overhead_pct\": {plane_disabled_pct:.3}}},"
    )
    .unwrap();
    writeln!(out, "  \"max_off_overhead_pct\": {max_off:.3}").unwrap();
    out.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    std::fs::write(path, &out).expect("write BENCH_trace.json");
    println!("\nwrote {path}");

    if std::env::var("CASCADE_BENCH_ASSERT").as_deref() == Ok("1") {
        let mut failed = false;
        if max_off > 2.0 {
            eprintln!("FAIL: disabled-tracer overhead {max_off:.2}% > 2%");
            failed = true;
        }
        if plane_idle_pct > 2.0 {
            eprintln!("FAIL: idle observability plane A/A delta {plane_idle_pct:.2}% > 2%");
            failed = true;
        }
        if plane_disabled_pct > 0.15 {
            eprintln!("FAIL: disabled-plane hook cost {plane_disabled_pct:.3}% > 0.15%");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("trace overhead gates passed: off ≤2%, plane idle ≤2%, plane disabled ≤0.15%");
    }
}
