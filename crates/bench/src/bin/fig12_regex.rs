//! Figure 12: streaming regular-expression IO/s benchmark.
//!
//! Reproduces the paper's Fig. 12 — IO operations per second over time for
//! Quartus and Cascade, one byte per FIFO transfer — on the modeled wall
//! clock. (No iVerilog series: as in the paper, "it does not provide
//! support for interactions with IO peripherals".)
//!
//! Run with: `cargo run --release -p cascade-bench --bin fig12_regex`

use cascade_bench::{fmt_rate, fresh_runtime, print_series};
use cascade_bits::Bits;
use cascade_core::{ExecMode, JitConfig};
use cascade_fpga::{wrapper_overhead_les, CostModel, Toolchain};
use cascade_netlist::estimate_area;
use cascade_sim::{elaborate, library_from_source};
use cascade_workloads::regex::{compile, matcher_verilog, Flavor};
use std::sync::Arc;

const PATTERN: &str = "GET |POST |HEAD |PUT ";

fn main() {
    let scale: f64 = std::env::var("CASCADE_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05);
    let horizon_s = 900.0 * scale;
    println!("# Figure 12: streaming regex IO/s vs time (pattern {PATTERN:?})");
    println!("# scale={scale} => horizon {horizon_s:.0} modeled seconds\n");

    let dfa = compile(PATTERN).expect("pattern");
    let costs = CostModel::default();

    // ------------------------------------------------------------------
    // Quartus baseline: the matcher compiled directly; IO is bus-bound at
    // one memory-mapped transfer per byte.
    // ------------------------------------------------------------------
    let ported = matcher_verilog(&dfa, Flavor::Ported);
    let lib = library_from_source(&ported).expect("parse");
    let design = Arc::new(elaborate("Matcher", &lib, &Default::default()).expect("elaborate"));
    let tc = Toolchain {
        time_scale: scale,
        ..Toolchain::default()
    };
    let native = tc.compile(&design).expect("native compile");
    let quartus_ready = native.modeled_duration.as_secs_f64();
    // One token per bus transfer plus one fabric cycle.
    let quartus_ios = 1e9 / (costs.abi_message_ns + costs.hw_cycle_ns);
    println!(
        "# Quartus: 0 until {quartus_ready:.0}s, then {} (paper: 560 KIO/s after 9.5 min)",
        fmt_rate(quartus_ios)
    );

    // ------------------------------------------------------------------
    // Cascade with the stdlib FIFO.
    // ------------------------------------------------------------------
    let mut config = JitConfig::default();
    config.toolchain.time_scale = scale;
    let (mut rt, board) = fresh_runtime(config);
    board.set_fifo_capacity(1 << 20);
    rt.eval(&matcher_verilog(&dfa, Flavor::Cascade))
        .expect("eval");
    rt.wait_for_compile_worker();

    let mut series: Vec<(f64, f64)> = Vec::new();
    let feed = |board: &cascade_fpga::Board, n: u64| {
        for i in 0..n {
            board.fifo_push(Bits::from_u64(8, b"GET /xPOST#"[(i % 11) as usize] as u64));
        }
    };

    // Software phase.
    let mut sim_ios = 0.0;
    while rt.mode() == ExecMode::Software && rt.wall_seconds() < horizon_s {
        feed(&board, 600);
        let p0 = board.fifo_pops();
        let w0 = rt.wall_seconds();
        rt.run_ticks(600).unwrap();
        sim_ios = (board.fifo_pops() - p0) as f64 / (rt.wall_seconds() - w0);
        series.push(((w0 + rt.wall_seconds()) / 2.0, sim_ios));
    }
    let crossover_s = rt.wall_seconds();
    if rt.mode() == ExecMode::Software {
        println!("# WARNING: compile did not land within the window; raise CASCADE_BENCH_SCALE");
        return;
    }

    // Hardware phase: measure steady IO/s, then extend analytically.
    feed(&board, 3_000_000);
    let p0 = board.fifo_pops();
    let w0 = rt.wall_seconds();
    rt.run_ticks(2_000_000).unwrap();
    let hw_ios = (board.fifo_pops() - p0) as f64 / (rt.wall_seconds() - w0);
    let mut t = rt.wall_seconds();
    series.push((t, hw_ios));
    while t < horizon_s {
        t += horizon_s / 20.0;
        series.push((t, hw_ios));
    }

    let quartus_series: Vec<(f64, f64)> = (0..=20)
        .map(|i| {
            let t = horizon_s * i as f64 / 20.0;
            (t, if t >= quartus_ready { quartus_ios } else { 0.0 })
        })
        .collect();
    print_series("quartus", &quartus_series);
    print_series("cascade", &series);

    // ------------------------------------------------------------------
    // Headline numbers (paper Sec. 6.2).
    // ------------------------------------------------------------------
    let nl = cascade_netlist::synthesize(&design).unwrap();
    let native_area = estimate_area(&nl).logic_elements.max(1);
    let cascade_area = native_area + wrapper_overhead_les(&nl);
    println!("# --- summary (paper's Sec 6.2 claims in parentheses) ---");
    println!(
        "# cascade sim IO rate: {} (paper: 32 KIO/s)",
        fmt_rate(sim_ios)
    );
    println!("# cascade crossover at {crossover_s:.0}s; quartus ready at {quartus_ready:.0}s");
    println!(
        "# cascade hw {} vs quartus {} => {:.2}x (paper: 492 vs 560 KIO/s = 0.88x)",
        fmt_rate(hw_ios),
        fmt_rate(quartus_ios),
        hw_ios / quartus_ios
    );
    println!(
        "# spatial overhead: {cascade_area} vs {native_area} LEs => {:.1}x (paper: 6.5x)",
        cascade_area as f64 / native_area as f64
    );
}
