//! Fault-recovery latency report: how much a contained fault costs, for
//! each recovery path in the JIT pipeline — transient toolchain retry,
//! watchdog-cancelled hang, readback-scrub rollback with software replay,
//! and fabric loss with software fall-back.
//!
//! Each scenario runs the counter workload under a deterministic seeded
//! [`FaultPlan`], so the numbers are reproducible. Two latencies are
//! reported per scenario: the *modeled* seconds of virtual wall-clock the
//! recovery consumed (what a user of the real system would wait), and the
//! *host* nanoseconds the recovery machinery itself took (checkpoint
//! restore, state migration, replay). Writes `BENCH_faults.json` at the
//! repository root. Set `CASCADE_BENCH_SECS` to trade precision for
//! runtime.

use cascade_bench::harness::{fmt_ns, measure};
use cascade_core::{JitConfig, Runtime};
use cascade_fpga::{Board, FaultPlan, Fleet};
use std::fmt::Write as _;

const COUNTER: &str = "reg [15:0] cnt = 0;\n\
                       always @(posedge clk.val) cnt <= cnt + 1;\n\
                       assign led.val = cnt[7:0];";

struct Row {
    scenario: &'static str,
    /// Virtual wall-clock seconds the recovery consumed (modeled time).
    modeled_recovery_s: f64,
    /// Host time for one full fault-to-recovered cycle.
    host_recovery_ns: f64,
    /// Recovery events observed in the run (retries, cancels, rollbacks…).
    events: u64,
    /// Ticks re-executed in software to recover (rollback replay depth).
    ticks_replayed: u64,
}

fn base_config() -> JitConfig {
    let mut config = JitConfig::default();
    config.toolchain.time_scale = 1e-6;
    config.scrub_interval_ticks = 8;
    config
}

/// Drives a background compile to settlement, chasing retry backoffs and
/// watchdog deadlines through modeled time.
fn settle(rt: &mut Runtime) {
    for _ in 0..64 {
        if !rt.stats().compile_in_flight {
            break;
        }
        rt.wait_for_compile_worker();
        if let Some(at) = rt.compile_ready_at() {
            rt.advance_wall((at - rt.wall_seconds()).max(0.0) + 1e-9);
        }
        rt.service().expect("service");
    }
}

fn new_runtime(faults: FaultPlan) -> Runtime {
    let mut config = base_config();
    config.faults = faults;
    let mut rt = Runtime::new(Board::new(), config).expect("runtime");
    rt.eval(COUNTER).expect("eval");
    rt
}

/// Modeled seconds from eval to hardware promotion under `faults`,
/// relative to the fault-free baseline; plus one recovery-event count
/// read through `pick`.
fn compile_path_row(
    scenario: &'static str,
    faults: FaultPlan,
    pick: fn(&cascade_core::RuntimeStats) -> u64,
) -> Row {
    let promote = |faults: FaultPlan| -> (f64, Runtime) {
        let mut rt = new_runtime(faults);
        settle(&mut rt);
        rt.run_ticks(2).expect("run");
        assert!(
            rt.stats().hw_promotions >= 1,
            "{scenario}: must still reach hardware"
        );
        (rt.wall_seconds(), rt)
    };
    let (baseline_s, _) = promote(FaultPlan::none());
    let (faulted_s, rt) = promote(faults.clone());
    let stats = rt.stats();
    let events = pick(&stats);
    assert!(events >= 1, "{scenario}: fault must have fired");

    let host_ns = measure(&mut || {
        let mut rt = new_runtime(faults.clone());
        settle(&mut rt);
        rt.run_ticks(2).expect("run");
    });
    Row {
        scenario,
        modeled_recovery_s: faulted_s - baseline_s,
        host_recovery_ns: host_ns,
        events,
        ticks_replayed: 0,
    }
}

/// A scrub-detected soft error: modeled cost is the bus scrub exchanges
/// plus the re-executed window; host cost is rollback + replay.
fn scrub_rollback_row() -> Row {
    let plan = || {
        FaultPlan::builder()
            .scrub_soft_error(1, 0xDEAD_BEEF)
            .build()
    };
    let run_to_detection = |faults: FaultPlan| -> (Runtime, u64) {
        let mut rt = new_runtime(faults);
        settle(&mut rt);
        let mut ticks = 0;
        for _ in 0..32 {
            ticks += rt.run_ticks(16).expect("run");
            if rt.stats().scrub_detections >= 1 {
                break;
            }
        }
        (rt, ticks)
    };
    let (rt, _) = run_to_detection(plan());
    let stats = rt.stats();
    assert!(stats.scrub_detections >= 1, "soft error must be detected");
    assert!(stats.checkpoints_restored >= 1, "detection must roll back");

    // The replay depth is bounded by the scrub window.
    let ticks_replayed = base_config().scrub_interval_ticks;
    let host_ns = measure(&mut || {
        let (rt, _) = run_to_detection(plan());
        assert!(rt.stats().scrub_detections >= 1);
    });
    // Modeled recovery: faulted wall minus a fault-free run of equal ticks.
    let (faulted, ticks) = run_to_detection(plan());
    let mut clean = new_runtime(FaultPlan::none());
    settle(&mut clean);
    clean.run_ticks(ticks).expect("run");
    Row {
        scenario: "scrub_rollback",
        modeled_recovery_s: (faulted.wall_seconds() - clean.wall_seconds()).max(0.0),
        host_recovery_ns: host_ns,
        events: faulted.stats().scrub_detections,
        ticks_replayed,
    }
}

/// Fabric loss at scrub time: the program falls back to software with
/// zero lost ticks; the cost is the rebuild plus losing hardware speed.
fn fabric_loss_row() -> Row {
    let run_to_loss = || -> Runtime {
        let mut config = base_config();
        config.faults = FaultPlan::builder().fabric_loss(1).build();
        let mut rt = Runtime::new(Board::new(), config).expect("runtime");
        rt.attach_fleet(Fleet::new(1), 1);
        rt.eval(COUNTER).expect("eval");
        settle(&mut rt);
        for _ in 0..32 {
            rt.run_ticks(16).expect("run");
            if rt.stats().fabric_losses >= 1 {
                break;
            }
        }
        rt
    };
    let rt = run_to_loss();
    let stats = rt.stats();
    assert!(stats.fabric_losses >= 1, "loss must fire");
    let host_ns = measure(&mut || {
        let rt = run_to_loss();
        assert!(rt.stats().fabric_losses >= 1);
    });
    Row {
        scenario: "fabric_loss",
        modeled_recovery_s: 0.0, // zero lost ticks; throughput degrades instead
        host_recovery_ns: host_ns,
        events: stats.fabric_losses,
        ticks_replayed: 0,
    }
}

fn main() {
    let rows = vec![
        compile_path_row(
            "transient_retry",
            FaultPlan::builder().toolchain_transient(1).build(),
            |s| s.compile_retries,
        ),
        compile_path_row(
            "watchdog_hang",
            FaultPlan::builder().toolchain_hang(1).build(),
            |s| s.compile_watchdog_cancels,
        ),
        compile_path_row(
            "worker_panic",
            FaultPlan::builder().worker_panic(1).build(),
            |s| s.panics_contained,
        ),
        scrub_rollback_row(),
        fabric_loss_row(),
    ];

    println!("fault recovery latency (counter workload, deterministic plans)");
    for r in &rows {
        println!(
            "{:<16} modeled {:>12.6}s   host {:>10}   events {}   replayed {} ticks",
            r.scenario,
            r.modeled_recovery_s,
            fmt_ns(r.host_recovery_ns),
            r.events,
            r.ticks_replayed
        );
    }

    let json = render_json(&rows);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json");
    std::fs::write(path, &json).expect("write BENCH_faults.json");
    println!("\nwrote {path}");
}

fn render_json(rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&cascade_bench::schema_header("faults", "virtual+host"));
    out.push_str("  \"benchmark\": \"fault_recovery_latency\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            out,
            "    {{\"scenario\": \"{}\", \"modeled_recovery_s\": {:.9}, \"host_recovery_ns\": {:.1}, \"events\": {}, \"ticks_replayed\": {}}}{comma}",
            r.scenario, r.modeled_recovery_s, r.host_recovery_ns, r.events, r.ticks_replayed
        )
        .unwrap();
    }
    out.push_str("  ]\n}\n");
    out
}
