//! Compiled-evaluator throughput report: cycles/second of the word-arena
//! [`NetlistSim`] against the interpretive [`ReferenceSim`] baseline on the
//! SHA-256 proof-of-work miner and the regex-DFA matcher netlists, plus
//! the data-parallel execution paths: bit-parallel batch simulation
//! ([`BatchHarness`]) across a sweep of lane widths, and level-parallel
//! multicore eval across a sweep of worker-thread counts.
//!
//! Prints one row per configuration and writes the machine-readable
//! results to `BENCH_netlist.json` at the repository root. Knobs:
//!
//! - `CASCADE_BENCH_SECS`: seconds per point (default 0.25; CI smoke less)
//! - `--batch-width 1,8,64` / `CASCADE_BENCH_BATCH_WIDTHS`: lane sweep
//! - `--threads 1,2,4,8` / `CASCADE_BENCH_THREADS`: worker-pool sweep
//!   (threads beyond the host's cores measure oversubscription, honestly)
//! - `CASCADE_BENCH_ASSERT=1`: exit non-zero if the widest batch fails to
//!   deliver at least 2x the aggregate vectors*cycles/s of batch width 1
//!   on every netlist (the parallel-path CI gate; the local target is
//!   >= 4x at width 64)

use cascade_bench::harness::{fmt_si, measure};
use cascade_bits::Bits;
use cascade_netlist::{levelize, synthesize, BatchHarness, Netlist, NetlistSim, ReferenceSim};
use cascade_sim::{elaborate, library_from_source};
use cascade_workloads::regex::{compile, matcher_verilog};
use cascade_workloads::sha256::{miner_verilog, Flavor, MinerConfig};
use std::fmt::Write as _;
use std::sync::Arc;

struct Row {
    netlist: &'static str,
    evaluator: &'static str,
    batch_width: u32,
    threads: u32,
    /// Per-lane settled cycles per second.
    cycles_per_sec: f64,
    /// Aggregate throughput: `batch_width * cycles_per_sec` (the quantity
    /// the batch path trades latency for).
    vectors_cycles_per_sec: f64,
}

fn netlist_of(src: &str, top: &str) -> Arc<Netlist> {
    let lib = library_from_source(src).expect("workload parses");
    let design = elaborate(top, &lib, &Default::default()).expect("elaborates");
    Arc::new(synthesize(&design).expect("synthesizes"))
}

/// Parses a comma-separated sweep list from a CLI flag or env fallback.
fn sweep(args: &[String], flag: &str, env: &str, default: &[u32]) -> Vec<u32> {
    let from_args = args
        .iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned());
    let raw = from_args.or_else(|| std::env::var(env).ok());
    match raw {
        Some(list) => list
            .split(',')
            .filter_map(|s| s.trim().parse::<u32>().ok())
            .filter(|&v| v >= 1)
            .collect(),
        None => default.to_vec(),
    }
}

const BATCH: u64 = 256;

/// Measures the scalar compiled evaluator and the interpretive reference.
fn bench_pair(nl: &Arc<Netlist>, rows: &mut Vec<Row>, name: &'static str) {
    let mut hw = NetlistSim::new(Arc::clone(nl)).expect("levelize");
    let ns = measure(&mut || {
        hw.run_cycles(BATCH, usize::MAX);
        hw.drain_tasks();
    });
    let compiled = BATCH as f64 * 1e9 / ns;
    rows.push(Row {
        netlist: name,
        evaluator: "compiled",
        batch_width: 1,
        threads: 1,
        cycles_per_sec: compiled,
        vectors_cycles_per_sec: compiled,
    });

    let mut reference = ReferenceSim::new(Arc::clone(nl)).expect("levelize");
    let ns = measure(&mut || {
        reference.run(BATCH);
        reference.drain_tasks();
    });
    let interp = BATCH as f64 * 1e9 / ns;
    rows.push(Row {
        netlist: name,
        evaluator: "reference",
        batch_width: 1,
        threads: 1,
        cycles_per_sec: interp,
        vectors_cycles_per_sec: interp,
    });

    println!(
        "{name:<10} compiled {:>10}cyc/s   reference {:>10}cyc/s   speedup {:.1}x",
        fmt_si(compiled),
        fmt_si(interp),
        compiled / interp
    );
}

/// Measures the bit-parallel batch path at one lane width. `drive` sets
/// the stimulus on a fresh harness (all lanes identical — throughput, not
/// correctness, is under test here; the equivalence suite owns the latter).
fn bench_batch(
    nl: &Arc<Netlist>,
    rows: &mut Vec<Row>,
    name: &'static str,
    width: u32,
    drive: &dyn Fn(&mut BatchHarness),
) {
    let mut h = BatchHarness::new(Arc::clone(nl), width).expect("levelize");
    drive(&mut h);
    let ns = measure(&mut || {
        h.run_cycles(BATCH);
        h.drain_tasks();
    });
    let per_lane = BATCH as f64 * 1e9 / ns;
    let aggregate = per_lane * width as f64;
    rows.push(Row {
        netlist: name,
        evaluator: "batch",
        batch_width: width,
        threads: 1,
        cycles_per_sec: per_lane,
        vectors_cycles_per_sec: aggregate,
    });
    println!(
        "{name:<10} batch  w={width:<4} {:>10}cyc/s/lane   aggregate {:>10}vec*cyc/s",
        fmt_si(per_lane),
        fmt_si(aggregate)
    );
}

/// Measures the level-parallel multicore path at one thread count,
/// composed with a batch of `width` lanes. The batch multiplies each
/// level's work by the lane count, which is what pushes wide levels past
/// the activity cutover — a scalar run of these netlists stays serial by
/// design (no level carries enough work to amortize a hand-off).
fn bench_threads(
    nl: &Arc<Netlist>,
    rows: &mut Vec<Row>,
    name: &'static str,
    width: u32,
    threads: u32,
) {
    let mut h = BatchHarness::new(Arc::clone(nl), width).expect("levelize");
    h.set_eval_threads(threads);
    let ns = measure(&mut || {
        h.run_cycles(BATCH);
        h.drain_tasks();
    });
    let per_lane = BATCH as f64 * 1e9 / ns;
    let aggregate = per_lane * width as f64;
    rows.push(Row {
        netlist: name,
        evaluator: "parallel",
        batch_width: width,
        threads,
        cycles_per_sec: per_lane,
        vectors_cycles_per_sec: aggregate,
    });
    println!(
        "{name:<10} pool   t={threads:<2} w={width:<4} {:>10}cyc/s/lane   aggregate {:>10}vec*cyc/s",
        fmt_si(per_lane),
        fmt_si(aggregate)
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let widths = sweep(
        &args,
        "--batch-width",
        "CASCADE_BENCH_BATCH_WIDTHS",
        &[1, 8, 64],
    );
    let threads = sweep(&args, "--threads", "CASCADE_BENCH_THREADS", &[1, 2, 4, 8]);
    let mut rows = Vec::new();

    let cfg = MinerConfig {
        target: 0,
        announce: false,
        ..MinerConfig::default()
    };
    let pow = netlist_of(&miner_verilog(&cfg, Flavor::Ported), "Miner");
    describe("pow", &pow);
    bench_pair(&pow, &mut rows, "pow");
    for &w in &widths {
        bench_batch(&pow, &mut rows, "pow", w, &|_| {});
    }
    // The miner's wide levels are where the worker pool earns its keep;
    // the thread sweep runs on pow only, at the widest batch in the sweep
    // so each level carries enough lane-work to clear the cutover.
    let pool_width = widths.iter().copied().max().unwrap_or(8);
    for &t in &threads {
        bench_threads(&pow, &mut rows, "pow", pool_width, t);
    }

    let dfa = compile("GET |POST |HEAD ").unwrap();
    let regex = netlist_of(
        &matcher_verilog(&dfa, cascade_workloads::regex::Flavor::Ported),
        "Matcher",
    );
    describe("regex", &regex);
    bench_pair(&regex, &mut rows, "regex");
    // The matcher consumes a byte per cycle; drive a fixed input so every
    // lane stays busy.
    for &w in &widths {
        bench_batch(&regex, &mut rows, "regex", w, &|h| {
            h.set_all_by_name("valid", Bits::from_u64(1, 1));
            h.set_all_by_name("byte_in", Bits::from_u64(8, b'G' as u64));
        });
    }

    let json = render_json(&rows);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_netlist.json");
    std::fs::write(path, &json).expect("write BENCH_netlist.json");
    println!("\nwrote {path}");

    if std::env::var("CASCADE_BENCH_ASSERT").as_deref() == Ok("1") {
        let mut failed = false;
        for name in ["pow", "regex"] {
            let batch = |w: u32| {
                rows.iter()
                    .find(|r| r.netlist == name && r.evaluator == "batch" && r.batch_width == w)
                    .map(|r| r.vectors_cycles_per_sec)
            };
            let Some(base) = widths.first().copied().and_then(batch) else {
                continue;
            };
            let Some(wide) = widths.last().copied().and_then(batch) else {
                continue;
            };
            if widths.len() >= 2 && wide < base * 2.0 {
                eprintln!(
                    "FAIL: {name} batch w={} aggregate {:.0} < 2x of w={} ({:.0})",
                    widths.last().unwrap(),
                    wide,
                    widths.first().unwrap(),
                    base
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("assert: batch scaling gate passed");
    }
}

/// Prints the compiled-program profile for one workload netlist.
fn describe(name: &str, nl: &Arc<Netlist>) {
    let sim = NetlistSim::new(Arc::clone(nl)).expect("levelize");
    let stats = sim.program_stats();
    let order = levelize(nl).expect("acyclic");
    let pop = cascade_netlist::level_population(nl, &order);
    let widest = pop.iter().copied().max().unwrap_or(0);
    println!(
        "{name:<10} {} instrs ({} wide), {} arena words, {} levels (widest {widest})",
        stats.instrs, stats.wide_instrs, stats.arena_words, stats.levels
    );
}

fn render_json(rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&cascade_bench::schema_header("netlist", "host"));
    out.push_str("  \"benchmark\": \"netlist_eval_cycles_per_sec\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            out,
            "    {{\"netlist\": \"{}\", \"evaluator\": \"{}\", \"batch_width\": {}, \"threads\": {}, \"cycles_per_sec\": {:.1}, \"vectors_cycles_per_sec\": {:.1}}}{comma}",
            r.netlist, r.evaluator, r.batch_width, r.threads, r.cycles_per_sec, r.vectors_cycles_per_sec
        )
        .unwrap();
    }
    // Per-netlist speedups: compiled over reference (the scalar acceptance
    // metric) and widest-batch aggregate over batch width 1 (the
    // data-parallel one).
    out.push_str("  ],\n  \"speedup\": {\n");
    let mut names: Vec<&str> = rows.iter().map(|r| r.netlist).collect();
    names.dedup();
    let find = |name: &str, evaluator: &str| {
        rows.iter()
            .find(|r| r.netlist == name && r.evaluator == evaluator)
            .map(|r| r.cycles_per_sec)
    };
    for (i, name) in names.iter().enumerate() {
        let compiled = find(name, "compiled").unwrap_or(0.0);
        let reference = find(name, "reference").unwrap_or(f64::INFINITY);
        let comma = if i + 1 < names.len() { "," } else { "" };
        writeln!(out, "    \"{name}\": {:.2}{comma}", compiled / reference).unwrap();
    }
    out.push_str("  },\n  \"batch_speedup\": {\n");
    for (i, name) in names.iter().enumerate() {
        let batches: Vec<&Row> = rows
            .iter()
            .filter(|r| r.netlist == *name && r.evaluator == "batch")
            .collect();
        let ratio = match (batches.first(), batches.last()) {
            (Some(a), Some(b)) if a.vectors_cycles_per_sec > 0.0 => {
                b.vectors_cycles_per_sec / a.vectors_cycles_per_sec
            }
            _ => 0.0,
        };
        let comma = if i + 1 < names.len() { "," } else { "" };
        writeln!(out, "    \"{name}\": {:.2}{comma}", ratio).unwrap();
    }
    out.push_str("  }\n}\n");
    out
}
