//! Compiled-evaluator throughput report: cycles/second of the word-arena
//! [`NetlistSim`] against the interpretive [`ReferenceSim`] baseline on the
//! SHA-256 proof-of-work miner and the regex-DFA matcher netlists.
//!
//! Prints one row per (netlist, evaluator) and writes the machine-readable
//! results to `BENCH_netlist.json` at the repository root. Set
//! `CASCADE_BENCH_SECS` to trade precision for runtime.

use cascade_bench::harness::{fmt_si, measure};
use cascade_bits::Bits;
use cascade_netlist::{levelize, synthesize, Netlist, NetlistSim, ReferenceSim};
use cascade_sim::{elaborate, library_from_source};
use cascade_workloads::regex::{compile, matcher_verilog};
use cascade_workloads::sha256::{miner_verilog, Flavor, MinerConfig};
use std::fmt::Write as _;
use std::sync::Arc;

struct Row {
    netlist: &'static str,
    evaluator: &'static str,
    cycles_per_sec: f64,
}

fn netlist_of(src: &str, top: &str) -> Arc<Netlist> {
    let lib = library_from_source(src).expect("workload parses");
    let design = elaborate(top, &lib, &Default::default()).expect("elaborates");
    Arc::new(synthesize(&design).expect("synthesizes"))
}

/// Measures one evaluator on one netlist, in settled cycles per second.
fn bench_pair(nl: &Arc<Netlist>, rows: &mut Vec<Row>, name: &'static str) {
    const BATCH: u64 = 256;
    let mut hw = NetlistSim::new(Arc::clone(nl)).expect("levelize");
    let ns = measure(&mut || {
        hw.run_cycles(BATCH, usize::MAX);
        hw.drain_tasks();
    });
    let compiled = BATCH as f64 * 1e9 / ns;
    rows.push(Row {
        netlist: name,
        evaluator: "compiled",
        cycles_per_sec: compiled,
    });

    let mut reference = ReferenceSim::new(Arc::clone(nl)).expect("levelize");
    let ns = measure(&mut || {
        reference.run(BATCH);
        reference.drain_tasks();
    });
    let interp = BATCH as f64 * 1e9 / ns;
    rows.push(Row {
        netlist: name,
        evaluator: "reference",
        cycles_per_sec: interp,
    });

    println!(
        "{name:<10} compiled {:>10}cyc/s   reference {:>10}cyc/s   speedup {:.1}x",
        fmt_si(compiled),
        fmt_si(interp),
        compiled / interp
    );
}

fn main() {
    let mut rows = Vec::new();

    let cfg = MinerConfig {
        target: 0,
        announce: false,
        ..MinerConfig::default()
    };
    let pow = netlist_of(&miner_verilog(&cfg, Flavor::Ported), "Miner");
    describe("pow", &pow);
    bench_pair(&pow, &mut rows, "pow");

    let dfa = compile("GET |POST |HEAD ").unwrap();
    let regex = netlist_of(
        &matcher_verilog(&dfa, cascade_workloads::regex::Flavor::Ported),
        "Matcher",
    );
    describe("regex", &regex);
    // The matcher consumes a byte per cycle; drive a fixed input so the
    // measured loop matches the substrates bench's shape.
    {
        let mut hw = NetlistSim::new(Arc::clone(&regex)).expect("levelize");
        hw.set_by_name("valid", Bits::from_u64(1, 1));
        hw.set_by_name("byte_in", Bits::from_u64(8, b'G' as u64));
        drop(hw);
    }
    bench_pair(&regex, &mut rows, "regex");

    let json = render_json(&rows);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_netlist.json");
    std::fs::write(path, &json).expect("write BENCH_netlist.json");
    println!("\nwrote {path}");
}

/// Prints the compiled-program profile for one workload netlist.
fn describe(name: &str, nl: &Arc<Netlist>) {
    let sim = NetlistSim::new(Arc::clone(nl)).expect("levelize");
    let stats = sim.program_stats();
    let order = levelize(nl).expect("acyclic");
    let pop = cascade_netlist::level_population(nl, &order);
    let widest = pop.iter().copied().max().unwrap_or(0);
    println!(
        "{name:<10} {} instrs ({} wide), {} arena words, {} levels (widest {widest})",
        stats.instrs, stats.wide_instrs, stats.arena_words, stats.levels
    );
}

fn render_json(rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&cascade_bench::schema_header("netlist", "host"));
    out.push_str("  \"benchmark\": \"netlist_eval_cycles_per_sec\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            out,
            "    {{\"netlist\": \"{}\", \"evaluator\": \"{}\", \"cycles_per_sec\": {:.1}}}{comma}",
            r.netlist, r.evaluator, r.cycles_per_sec
        )
        .unwrap();
    }
    // Per-netlist speedups, the acceptance metric for the compiled lane.
    out.push_str("  ],\n  \"speedup\": {\n");
    let mut names: Vec<&str> = rows.iter().map(|r| r.netlist).collect();
    names.dedup();
    for (i, name) in names.iter().enumerate() {
        let compiled = rows
            .iter()
            .find(|r| r.netlist == *name && r.evaluator == "compiled")
            .map(|r| r.cycles_per_sec)
            .unwrap_or(0.0);
        let reference = rows
            .iter()
            .find(|r| r.netlist == *name && r.evaluator == "reference")
            .map(|r| r.cycles_per_sec)
            .unwrap_or(f64::INFINITY);
        let comma = if i + 1 < names.len() { "," } else { "" };
        writeln!(out, "    \"{name}\": {:.2}{comma}", compiled / reference).unwrap();
    }
    out.push_str("  }\n}\n");
    out
}
