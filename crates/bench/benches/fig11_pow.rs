//! Real-throughput companion to Fig. 11: host-machine cycles/second of the
//! SHA-256 miner on each execution substrate (AST interpreter vs compiled
//! netlist), plus the end-to-end JIT tick rate.

use cascade_bench::harness::{Criterion, Throughput};
use cascade_bench::{criterion_group, criterion_main};
use cascade_core::{JitConfig, Runtime};
use cascade_fpga::Board;
use cascade_netlist::{synthesize, NetlistSim};
use cascade_sim::{elaborate, library_from_source, Simulator};
use cascade_workloads::sha256::{miner_verilog, Flavor, MinerConfig};
use std::sync::Arc;

fn bench_miner(c: &mut Criterion) {
    let cfg = MinerConfig {
        target: 0,
        announce: false,
        ..MinerConfig::default()
    };
    let src = miner_verilog(&cfg, Flavor::Ported);
    let lib = library_from_source(&src).unwrap();
    let design = Arc::new(elaborate("Miner", &lib, &Default::default()).unwrap());

    let mut group = c.benchmark_group("fig11_pow");
    group.throughput(Throughput::Elements(128));

    group.bench_function("interpreter_128_cycles", |b| {
        let mut sim = Simulator::new(Arc::clone(&design));
        sim.initialize().unwrap();
        b.iter(|| {
            for _ in 0..128 {
                sim.tick("clk").unwrap();
            }
        });
    });

    let nl = Arc::new(synthesize(&design).unwrap());
    group.bench_function("netlist_128_cycles", |b| {
        let mut hw = NetlistSim::new(Arc::clone(&nl)).unwrap();
        b.iter(|| {
            hw.run(128);
        });
    });

    group.bench_function("cascade_jit_hw_128_ticks", |b| {
        let board = Board::new();
        let mut rt = Runtime::new(board, JitConfig::default()).unwrap();
        rt.eval(&miner_verilog(&cfg, Flavor::Cascade)).unwrap();
        rt.wait_for_compile_worker();
        let ready = rt.compile_ready_at().expect("staged");
        rt.advance_wall((ready - rt.wall_seconds()).max(0.0) + 1.0);
        rt.run_ticks(1).unwrap();
        b.iter(|| {
            rt.run_ticks(128).unwrap();
        });
    });

    group.finish();
}

criterion_group!(benches, bench_miner);
criterion_main!(benches);
