//! Real-throughput companion to Fig. 12: bytes/second through the regex
//! matcher on each substrate, and the Rust reference DFA as an upper bound.

use cascade_bench::harness::{Criterion, Throughput};
use cascade_bench::{criterion_group, criterion_main};
use cascade_bits::Bits;
use cascade_netlist::{synthesize, NetlistSim};
use cascade_sim::{elaborate, library_from_source, Simulator};
use cascade_workloads::regex::{compile, matcher_verilog, Flavor};
use std::sync::Arc;

const PATTERN: &str = "GET |POST |HEAD ";
const STREAM: &[u8] = b"GET /index.html POST /submit HEAD /x PUT /y noise GET /z ";

fn bench_regex(c: &mut Criterion) {
    let dfa = compile(PATTERN).unwrap();
    let src = matcher_verilog(&dfa, Flavor::Ported);
    let lib = library_from_source(&src).unwrap();
    let design = Arc::new(elaborate("Matcher", &lib, &Default::default()).unwrap());

    let mut group = c.benchmark_group("fig12_regex");
    group.throughput(Throughput::Bytes(STREAM.len() as u64));

    group.bench_function("reference_dfa", |b| {
        b.iter(|| dfa.count_matches(std::hint::black_box(STREAM)));
    });

    group.bench_function("interpreter", |b| {
        let mut sim = Simulator::new(Arc::clone(&design));
        sim.initialize().unwrap();
        sim.poke("valid", Bits::from_u64(1, 1));
        b.iter(|| {
            for &byte in STREAM {
                sim.poke("byte_in", Bits::from_u64(8, byte as u64));
                sim.tick("clk").unwrap();
            }
        });
    });

    let nl = Arc::new(synthesize(&design).unwrap());
    group.bench_function("netlist", |b| {
        let mut hw = NetlistSim::new(Arc::clone(&nl)).unwrap();
        hw.set_by_name("valid", Bits::from_u64(1, 1));
        b.iter(|| {
            for &byte in STREAM {
                hw.set_by_name("byte_in", Bits::from_u64(8, byte as u64));
                hw.step_clock(0);
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_regex);
criterion_main!(benches);
