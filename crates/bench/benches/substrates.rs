//! Microbenchmarks of the execution substrates: bit-vector ops, frontend
//! passes, interpreter event dispatch, and netlist evaluation.

use cascade_bench::harness::Criterion;
use cascade_bench::{criterion_group, criterion_main};
use cascade_bits::Bits;
use cascade_netlist::{synthesize, NetlistSim};
use cascade_sim::{elaborate, library_from_source, Simulator};
use std::sync::Arc;

const COUNTER: &str = "module Count(input wire clk, output wire [31:0] o);\n\
    reg [31:0] c = 0;\n\
    always @(posedge clk) c <= c + 1;\n\
    assign o = c;\nendmodule";

fn bench_bits(c: &mut Criterion) {
    let mut group = c.benchmark_group("bits");
    let a = Bits::from_words(256, &[0x0123_4567_89ab_cdef; 4]);
    let b = Bits::from_words(256, &[0xfedc_ba98_7654_3210; 4]);
    group.bench_function("add_256", |bch| {
        bch.iter(|| std::hint::black_box(&a).add(&b))
    });
    group.bench_function("mul_256", |bch| {
        bch.iter(|| std::hint::black_box(&a).mul(&b))
    });
    group.bench_function("shl_256", |bch| {
        bch.iter(|| std::hint::black_box(&a).shl(97))
    });
    group.bench_function("cmp_256", |bch| {
        bch.iter(|| std::hint::black_box(&a).cmp_unsigned(&b))
    });
    let small = Bits::from_u64(32, 0xdead_beef);
    group.bench_function("add_32", |bch| {
        bch.iter(|| std::hint::black_box(&small).add(&small))
    });
    group.finish();
}

fn bench_frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend");
    let src = cascade_verilog::corpus::RUNNING_EXAMPLE;
    group.bench_function("lex", |b| {
        b.iter(|| cascade_verilog::lex(std::hint::black_box(src)))
    });
    group.bench_function("parse", |b| {
        b.iter(|| cascade_verilog::parse(std::hint::black_box(src)))
    });
    let lib = library_from_source(src).unwrap();
    group.bench_function("elaborate", |b| {
        b.iter(|| elaborate("Main", &lib, &Default::default()).unwrap())
    });
    let design = elaborate("Main", &lib, &Default::default()).unwrap();
    group.bench_function("synthesize", |b| b.iter(|| synthesize(&design).unwrap()));
    group.finish();
}

fn bench_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval");
    let lib = library_from_source(COUNTER).unwrap();
    let design = Arc::new(elaborate("Count", &lib, &Default::default()).unwrap());
    group.bench_function("interpreter_tick", |b| {
        let mut sim = Simulator::new(Arc::clone(&design));
        sim.initialize().unwrap();
        b.iter(|| sim.tick("clk").unwrap());
    });
    let nl = Arc::new(synthesize(&design).unwrap());
    group.bench_function("netlist_cycle", |b| {
        let mut hw = NetlistSim::new(Arc::clone(&nl)).unwrap();
        b.iter(|| hw.step_clock(0));
    });
    group.finish();
}

criterion_group!(benches, bench_bits, bench_frontend, bench_eval);
criterion_main!(benches);
