//! Ablations of Cascade's optimization stages (paper Sec. 4): the modeled
//! virtual-clock rate of the running example with inlining, ABI
//! forwarding, and open-loop scheduling individually disabled.
//!
//! Criterion measures the *real* cost of driving each configuration; the
//! printed modeled rates (stderr, once per config) show the virtual-clock
//! impact each stage has — the quantity DESIGN.md's ablation index tracks.

use cascade_bench::harness::Criterion;
use cascade_bench::{criterion_group, criterion_main};
use cascade_core::{JitConfig, Runtime};
use cascade_fpga::Board;

const PROGRAM: &str = "module Rol(input wire [7:0] x, output wire [7:0] y);\n\
    assign y = (x == 8'h80) ? 8'h1 : (x<<1);\nendmodule\n\
    reg [7:0] cnt = 1;\n\
    Rol r(.x(cnt));\n\
    always @(posedge clk.val) if (pad.val == 0) cnt <= r.y;\n\
    assign led.val = cnt;";

fn runtime_for(config: JitConfig, migrate: bool) -> Runtime {
    let board = Board::new();
    let mut rt = Runtime::new(board, config).unwrap();
    rt.eval(PROGRAM).unwrap();
    if migrate {
        rt.wait_for_compile_worker();
        if let Some(ready) = rt.compile_ready_at() {
            rt.advance_wall((ready - rt.wall_seconds()).max(0.0) + 1.0);
            rt.run_ticks(1).unwrap();
        }
    }
    rt
}

fn modeled_rate(rt: &mut Runtime, ticks: u64) -> f64 {
    let t0 = rt.ticks();
    let w0 = rt.wall_seconds();
    rt.run_ticks(ticks).unwrap();
    (rt.ticks() - t0) as f64 / (rt.wall_seconds() - w0)
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    let configs: Vec<(&str, JitConfig, bool)> = vec![
        ("full_jit", JitConfig::default(), true),
        (
            "no_open_loop",
            JitConfig::default().without("open_loop"),
            true,
        ),
        (
            "no_forwarding",
            JitConfig::default().without("forwarding"),
            true,
        ),
        // Software-only pair isolating the inlining stage (Sec. 4.2):
        // one engine for all user logic vs one engine per instance.
        (
            "sw_inlined",
            JitConfig::default().without("auto_compile"),
            false,
        ),
        ("sw_partitioned", JitConfig::interpreter_only(), false),
    ];
    for (name, config, migrate) in configs {
        let mut rt = runtime_for(config.clone(), migrate);
        let rate = modeled_rate(&mut rt, if migrate { 100_000 } else { 500 });
        eprintln!("# ablation {name}: modeled virtual clock {rate:.0} Hz");
        group.bench_function(name, |b| {
            let mut rt = runtime_for(config.clone(), migrate);
            b.iter(|| rt.run_ticks(64).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
