//! Compiled word-arena evaluator vs the interpretive reference walker on
//! the paper's two throughput-bound netlists: the SHA-256 proof-of-work
//! miner and the regex-DFA matcher. Batched `run_cycles` is measured
//! alongside single stepping so the open-loop dense-streak path shows up
//! as its own row.

use cascade_bench::harness::{Criterion, Throughput};
use cascade_bench::{criterion_group, criterion_main};
use cascade_bits::Bits;
use cascade_netlist::{synthesize, Netlist, NetlistSim, ReferenceSim};
use cascade_sim::{elaborate, library_from_source};
use cascade_workloads::regex::{compile, matcher_verilog};
use cascade_workloads::sha256::{miner_verilog, Flavor, MinerConfig};
use std::sync::Arc;

const BATCH: u64 = 256;

fn netlist_of(src: &str, top: &str) -> Arc<Netlist> {
    let lib = library_from_source(src).expect("workload parses");
    let design = elaborate(top, &lib, &Default::default()).expect("elaborates");
    Arc::new(synthesize(&design).expect("synthesizes"))
}

fn bench_netlist(c: &mut Criterion, name: &str, nl: &Arc<Netlist>) {
    let mut group = c.benchmark_group(name);
    group.throughput(Throughput::Elements(BATCH));
    group.bench_function("compiled_batched", |b| {
        let mut hw = NetlistSim::new(Arc::clone(nl)).unwrap();
        b.iter(|| {
            hw.run_cycles(BATCH, usize::MAX);
            hw.drain_tasks();
        });
    });
    group.bench_function("compiled_stepped", |b| {
        let mut hw = NetlistSim::new(Arc::clone(nl)).unwrap();
        b.iter(|| {
            for _ in 0..BATCH {
                hw.step_clock(0);
            }
            hw.drain_tasks();
        });
    });
    group.bench_function("reference", |b| {
        let mut rf = ReferenceSim::new(Arc::clone(nl)).unwrap();
        b.iter(|| {
            rf.run(BATCH);
            rf.drain_tasks();
        });
    });
    group.finish();
}

fn bench_pow(c: &mut Criterion) {
    let cfg = MinerConfig {
        target: 0,
        announce: false,
        ..MinerConfig::default()
    };
    let nl = netlist_of(&miner_verilog(&cfg, Flavor::Ported), "Miner");
    bench_netlist(c, "netlist_pow", &nl);
}

fn bench_regex(c: &mut Criterion) {
    let dfa = compile("GET |POST |HEAD ").unwrap();
    let nl = netlist_of(
        &matcher_verilog(&dfa, cascade_workloads::regex::Flavor::Ported),
        "Matcher",
    );
    // Drive a fixed byte so the DFA does real transitions each cycle.
    let mut warm = NetlistSim::new(Arc::clone(&nl)).unwrap();
    warm.set_by_name("valid", Bits::from_u64(1, 1));
    warm.set_by_name("byte_in", Bits::from_u64(8, b'G' as u64));
    drop(warm);
    bench_netlist(c, "netlist_regex", &nl);
}

criterion_group!(benches, bench_pow, bench_regex);
criterion_main!(benches);
