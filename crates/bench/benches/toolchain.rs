//! The virtual toolchain's real cost: synthesis, placement, and full
//! compilation of the paper's benchmark designs (the work Cascade hides in
//! the background).

use cascade_bench::harness::Criterion;
use cascade_bench::{criterion_group, criterion_main};
use cascade_fpga::{place, Toolchain};
use cascade_netlist::synthesize;
use cascade_sim::{elaborate, library_from_source};
use cascade_workloads::regex::{compile as regex_compile, matcher_verilog};
use cascade_workloads::sha256::{miner_verilog, Flavor, MinerConfig};
use std::sync::Arc;

fn bench_toolchain(c: &mut Criterion) {
    let mut group = c.benchmark_group("toolchain");
    group.sample_size(10);

    let miner_cfg = MinerConfig {
        target: 0,
        announce: false,
        ..MinerConfig::default()
    };
    let miner_src = miner_verilog(&miner_cfg, Flavor::Ported);
    let miner_lib = library_from_source(&miner_src).unwrap();
    let miner = Arc::new(elaborate("Miner", &miner_lib, &Default::default()).unwrap());

    let dfa = regex_compile("GET |POST |HEAD ").unwrap();
    let matcher_src = matcher_verilog(&dfa, cascade_workloads::regex::Flavor::Ported);
    let matcher_lib = library_from_source(&matcher_src).unwrap();
    let matcher = Arc::new(elaborate("Matcher", &matcher_lib, &Default::default()).unwrap());

    group.bench_function("synthesize_miner", |b| {
        b.iter(|| synthesize(&miner).unwrap())
    });
    group.bench_function("synthesize_matcher", |b| {
        b.iter(|| synthesize(&matcher).unwrap())
    });

    let miner_nl = Arc::new(synthesize(&miner).unwrap());
    group.bench_function("place_miner", |b| b.iter(|| place(&miner_nl, 1, 1.0)));

    group.bench_function("compile_miner_full", |b| {
        let tc = Toolchain::default();
        b.iter(|| tc.compile_netlist(Arc::clone(&miner_nl)).unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench_toolchain);
criterion_main!(benches);
