//! Shared Verilog source snippets used across the workspace's tests,
//! examples, and benchmarks.

/// The paper's Fig. 1 running example: an LED rotator that pauses (and, in
/// a debugging session, prints and finishes) when a button is pressed.
pub const RUNNING_EXAMPLE: &str = r#"
module Rol(
  input wire [7:0] x,
  output wire [7:0] y
);
  assign y = (x == 8'h80) ? 1 : (x<<1);
endmodule

module Main(
  input wire clk,
  input wire [3:0] pad,
  output wire [7:0] led
);
  reg [7:0] cnt = 1;
  Rol r(.x(cnt));
  always @(posedge clk)
    if (pad == 0)
      cnt <= r.y;
    else begin
      $display(cnt);
      $finish;
    end
  assign led = cnt;
endmodule
"#;

/// The synthesizable-only variant of the running example (no system tasks),
/// eligible for native mode.
pub const RUNNING_EXAMPLE_SYNTH: &str = r#"
module Rol(
  input wire [7:0] x,
  output wire [7:0] y
);
  assign y = (x == 8'h80) ? 1 : (x<<1);
endmodule

module Main(
  input wire clk,
  input wire [3:0] pad,
  output wire [7:0] led
);
  reg [7:0] cnt = 1;
  Rol r(.x(cnt));
  always @(posedge clk)
    if (pad == 0)
      cnt <= r.y;
  assign led = cnt;
endmodule
"#;

/// A four-bit ripple-carry adder built from gate-level full adders —
/// exercises deep combinational hierarchies.
pub const RIPPLE_ADDER: &str = r#"
module FullAdder(
  input wire a, input wire b, input wire cin,
  output wire s, output wire cout
);
  assign s = a ^ b ^ cin;
  assign cout = (a & b) | (cin & (a ^ b));
endmodule

module Adder4(
  input wire [3:0] a, input wire [3:0] b,
  output wire [3:0] s, output wire cout
);
  wire c0, c1, c2;
  FullAdder f0(.a(a[0]), .b(b[0]), .cin(1'b0), .s(s[0]), .cout(c0));
  FullAdder f1(.a(a[1]), .b(b[1]), .cin(c0), .s(s[1]), .cout(c1));
  FullAdder f2(.a(a[2]), .b(b[2]), .cin(c1), .s(s[2]), .cout(c2));
  FullAdder f3(.a(a[3]), .b(b[3]), .cin(c2), .s(s[3]), .cout(cout));
endmodule
"#;
