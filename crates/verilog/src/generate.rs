//! Generate-block expansion: unrolls `generate for` loops at elaboration
//! time.
//!
//! Each iteration clones the block's items with the genvar substituted by
//! its constant value; names *declared inside* the block (nets, instances)
//! are suffixed with the block label and iteration index so the unrolled
//! copies do not collide, mirroring Verilog's `label[i].name` scoping in a
//! flat namespace.

use crate::ast::*;
use crate::inline_fn::{rename_expr, rename_lvalue, rename_stmt, walk_subexprs_mut};
use crate::source::{Diagnostic, FrontendResult, Phase, Span};
use crate::typecheck::{const_eval, ParamEnv};
use cascade_bits::Bits;
use std::collections::BTreeMap;

fn err(msg: impl Into<String>) -> Diagnostic {
    Diagnostic::new(Phase::Elaborate, msg, Span::synthetic())
}

/// Maximum total unrolled iterations per module.
const GENERATE_LIMIT: u64 = 10_000;

/// Whether the module contains generate constructs.
pub fn has_generates(module: &Module) -> bool {
    module
        .items
        .iter()
        .any(|i| matches!(i, ModuleItem::Genvar(_) | ModuleItem::GenerateFor(_)))
}

/// Unrolls every generate loop under the given (already resolved)
/// parameter environment.
///
/// # Errors
///
/// Returns a [`Diagnostic`] when loop bounds are not compile-time constants
/// or the unroll limit is exceeded.
pub fn expand_generates(module: &Module, params: &ParamEnv) -> FrontendResult<Module> {
    let mut out = module.clone();
    let mut budget = GENERATE_LIMIT;
    let mut items = Vec::with_capacity(out.items.len());
    for item in out.items {
        match item {
            ModuleItem::Genvar(_) => {}
            ModuleItem::GenerateFor(g) => {
                expand_for(&g, params, &mut items, &mut budget)?;
            }
            other => items.push(other),
        }
    }
    out.items = items;
    Ok(out)
}

fn expand_for(
    g: &GenerateFor,
    params: &ParamEnv,
    out: &mut Vec<ModuleItem>,
    budget: &mut u64,
) -> FrontendResult<()> {
    let mut env = params.clone();
    let mut value = const_eval(&g.init, &env)
        .map_err(|d| err(format!("generate init for `{}`: {}", g.genvar, d.message)))?;
    loop {
        env.insert(g.genvar.clone(), value.clone());
        let cont = const_eval(&g.cond, &env)
            .map_err(|d| err(format!("generate condition: {}", d.message)))?;
        if !cont.to_bool() {
            break;
        }
        if *budget == 0 {
            return Err(err(format!(
                "generate unrolling exceeded {GENERATE_LIMIT} iterations"
            )));
        }
        *budget -= 1;
        let idx = value.to_u64();
        let label = g.label.clone().unwrap_or_else(|| "genblk".to_string());
        instantiate_iteration(g, &env, &label, idx, out, budget)?;
        value =
            const_eval(&g.step, &env).map_err(|d| err(format!("generate step: {}", d.message)))?;
    }
    Ok(())
}

fn instantiate_iteration(
    g: &GenerateFor,
    env: &ParamEnv,
    label: &str,
    idx: u64,
    out: &mut Vec<ModuleItem>,
    budget: &mut u64,
) -> FrontendResult<()> {
    // Names declared inside the block are suffixed per iteration.
    let mut renames: BTreeMap<String, String> = BTreeMap::new();
    for item in &g.items {
        match item {
            ModuleItem::Net(decl) => {
                for d in &decl.decls {
                    renames.insert(d.name.clone(), format!("{}__{label}_{idx}", d.name));
                }
            }
            ModuleItem::Instance(inst) => {
                renames.insert(inst.name.clone(), format!("{}__{label}_{idx}", inst.name));
            }
            _ => {}
        }
    }
    let genvar_value = env
        .get(&g.genvar)
        .cloned()
        .unwrap_or_else(|| Bits::from_u64(32, idx));
    for item in &g.items {
        let mut it = item.clone();
        subst_item(&mut it, &g.genvar, &genvar_value, &renames)?;
        match it {
            ModuleItem::GenerateFor(inner) => {
                // Nested loop: expand with the outer genvar in scope.
                expand_for(&inner, env, out, budget)?;
            }
            other => out.push(other),
        }
    }
    Ok(())
}

/// Substitutes the genvar with a literal and applies declaration renames.
fn subst_item(
    item: &mut ModuleItem,
    genvar: &str,
    value: &Bits,
    renames: &BTreeMap<String, String>,
) -> FrontendResult<()> {
    let subst = |e: &mut Expr| {
        subst_expr(e, genvar, value);
        rename_expr(e, renames);
    };
    match item {
        ModuleItem::Net(decl) => {
            for d in &mut decl.decls {
                if let Some(new) = renames.get(&d.name) {
                    d.name = new.clone();
                }
                if let Some(init) = &mut d.init {
                    subst(init);
                }
            }
            if let Some(r) = &mut decl.range {
                subst(&mut r.msb);
                subst(&mut r.lsb);
            }
        }
        ModuleItem::Assign(a) => {
            subst_lvalue(&mut a.lhs, genvar, value, renames);
            subst(&mut a.rhs);
        }
        ModuleItem::Always(al) => {
            if let Sensitivity::List(items) = &mut al.sensitivity {
                for it in items {
                    subst(&mut it.expr);
                }
            }
            subst_stmt(&mut al.body, genvar, value, renames);
        }
        ModuleItem::Initial(i) => subst_stmt(&mut i.body, genvar, value, renames),
        ModuleItem::Instance(inst) => {
            if let Some(new) = renames.get(&inst.name) {
                inst.name = new.clone();
            }
            for c in inst.ports.iter_mut().chain(inst.params.iter_mut()) {
                if let Some(e) = &mut c.expr {
                    subst(e);
                }
            }
        }
        ModuleItem::Statement(s) => subst_stmt(s, genvar, value, renames),
        ModuleItem::GenerateFor(inner) => {
            // Substitute the outer genvar in the inner header and body;
            // the caller expands it afterwards.
            subst(&mut inner.init);
            subst(&mut inner.cond);
            subst(&mut inner.step);
            for it in &mut inner.items {
                subst_item(it, genvar, value, renames)?;
            }
        }
        ModuleItem::Param(_) | ModuleItem::Function(_) | ModuleItem::Genvar(_) => {
            return Err(err(
                "parameters, functions, and genvars cannot be declared inside generate blocks",
            ));
        }
    }
    Ok(())
}

fn subst_expr(e: &mut Expr, genvar: &str, value: &Bits) {
    if let Expr::Ident(n) = e {
        if n == genvar {
            *e = Expr::Literal {
                value: value.clone(),
                sized: false,
            };
        }
        return;
    }
    let _ = walk_subexprs_mut(e, &mut |sub| {
        subst_expr(sub, genvar, value);
        Ok(())
    });
}

fn subst_lvalue(lv: &mut LValue, genvar: &str, value: &Bits, renames: &BTreeMap<String, String>) {
    rename_lvalue(lv, renames);
    lv.visit_exprs_mut(&mut |e| subst_expr(e, genvar, value));
}

fn subst_stmt(s: &mut Stmt, genvar: &str, value: &Bits, renames: &BTreeMap<String, String>) {
    // Rename declared names first, then substitute the genvar.
    rename_stmt(s, renames);
    visit_stmt_exprs_mut(s, &mut |e| subst_expr(e, genvar, value));
}

fn visit_stmt_exprs_mut(s: &mut Stmt, f: &mut impl FnMut(&mut Expr)) {
    match s {
        Stmt::Block { stmts, .. } => {
            for st in stmts {
                visit_stmt_exprs_mut(st, f);
            }
        }
        Stmt::Blocking { lhs, rhs, .. } | Stmt::NonBlocking { lhs, rhs, .. } => {
            lhs.visit_exprs_mut(f);
            f(rhs);
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            f(cond);
            visit_stmt_exprs_mut(then_branch, f);
            if let Some(e) = else_branch {
                visit_stmt_exprs_mut(e, f);
            }
        }
        Stmt::Case {
            scrutinee,
            arms,
            default,
            ..
        } => {
            f(scrutinee);
            for arm in arms {
                for l in &mut arm.labels {
                    f(l);
                }
                visit_stmt_exprs_mut(&mut arm.body, f);
            }
            if let Some(d) = default {
                visit_stmt_exprs_mut(d, f);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            visit_stmt_exprs_mut(init, f);
            f(cond);
            visit_stmt_exprs_mut(step, f);
            visit_stmt_exprs_mut(body, f);
        }
        Stmt::While { cond, body, .. } => {
            f(cond);
            visit_stmt_exprs_mut(body, f);
        }
        Stmt::Repeat { count, body, .. } => {
            f(count);
            visit_stmt_exprs_mut(body, f);
        }
        Stmt::Forever { body, .. } => visit_stmt_exprs_mut(body, f),
        Stmt::SystemTask { args, .. } => {
            for a in args {
                f(a);
            }
        }
        Stmt::Null => {}
    }
}
