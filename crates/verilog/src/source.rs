//! Source positions and diagnostics shared by the lexer, parser, and
//! type checker.

use std::error::Error;
use std::fmt;

/// A half-open byte range into a source buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    pub fn new(start: u32, end: u32) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span::new(self.start.min(other.start), self.end.max(other.end))
    }

    /// A zero-length span, used for synthesized nodes.
    pub fn synthetic() -> Span {
        Span::default()
    }
}

/// Line/column location (1-based) resolved from a [`Span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    pub line: u32,
    pub col: u32,
}

/// Resolves the 1-based line/column of a byte offset within `text`.
pub fn line_col(text: &str, offset: u32) -> LineCol {
    let offset = (offset as usize).min(text.len());
    let mut line = 1;
    let mut col = 1;
    for (i, c) in text.char_indices() {
        if i >= offset {
            break;
        }
        if c == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    LineCol { line, col }
}

/// The phase of the frontend that produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Preprocess,
    Lex,
    Parse,
    Typecheck,
    Elaborate,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Preprocess => "preprocess",
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Typecheck => "typecheck",
            Phase::Elaborate => "elaborate",
        };
        f.write_str(s)
    }
}

/// A frontend diagnostic: phase, message, and source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub phase: Phase,
    pub message: String,
    pub span: Span,
}

impl Diagnostic {
    /// Creates a diagnostic for the given phase.
    pub fn new(phase: Phase, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            phase,
            message: message.into(),
            span,
        }
    }

    /// Renders with line/column resolved against the original source text.
    pub fn render(&self, source: &str) -> String {
        let lc = line_col(source, self.span.start);
        format!(
            "{}:{}: {} error: {}",
            lc.line, lc.col, self.phase, self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} error: {} (at byte {})",
            self.phase, self.message, self.span.start
        )
    }
}

impl Error for Diagnostic {}

/// Result alias for frontend passes.
pub type FrontendResult<T> = Result<T, Diagnostic>;
