//! Abstract syntax for the supported Verilog-2005 subset.
//!
//! The tree deliberately mirrors the grammar the Cascade paper relies on:
//! modules with ports and parameters, net/reg declarations, continuous
//! assignments, `always`/`initial` blocks, module instantiations, and the
//! unsynthesizable system tasks (`$display`, `$write`, `$finish`) that the
//! runtime keeps alive in hardware.

use crate::source::Span;
use cascade_bits::Bits;

/// A parsed source unit: a sequence of top-level items.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SourceUnit {
    pub items: Vec<Item>,
}

/// A top-level item. Cascade's REPL additionally accepts bare module items
/// (instantiations and statements destined for the root module), which is why
/// they appear here as well as inside [`Module`].
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A `module ... endmodule` declaration.
    Module(Module),
    /// A bare module item eval'ed into the root module (REPL usage).
    RootItem(ModuleItem),
}

/// A module declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    pub name: String,
    pub params: Vec<ParamDecl>,
    pub ports: Vec<Port>,
    pub items: Vec<ModuleItem>,
    pub span: Span,
}

impl Module {
    /// Finds a port by name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Finds a parameter by name.
    pub fn param(&self, name: &str) -> Option<&ParamDecl> {
        self.params.iter().find(|p| p.name == name)
    }
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    Input,
    Output,
    Inout,
}

/// An ANSI-style port declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    pub dir: PortDir,
    /// `true` when declared `output reg`.
    pub is_reg: bool,
    pub signed: bool,
    pub range: Option<Range>,
    pub name: String,
    pub span: Span,
}

/// A `parameter`/`localparam` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    pub local: bool,
    pub range: Option<Range>,
    pub name: String,
    pub value: Expr,
    pub span: Span,
}

/// A bit range `[msb:lsb]` with constant (elaboration-time) bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct Range {
    pub msb: Expr,
    pub lsb: Expr,
}

/// Net flavour for declarations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetKind {
    Wire,
    Reg,
    /// `integer` — a 32-bit signed reg.
    Integer,
}

/// A single declarator within a net declaration: name, optional unpacked
/// array dimension, and optional initializer (`reg [7:0] cnt = 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct Declarator {
    pub name: String,
    /// Unpacked dimension for memories: `reg [7:0] mem [0:255]`.
    pub array: Option<Range>,
    pub init: Option<Expr>,
    pub span: Span,
}

/// A `wire`/`reg`/`integer` declaration possibly declaring several names.
#[derive(Debug, Clone, PartialEq)]
pub struct NetDecl {
    pub kind: NetKind,
    pub signed: bool,
    pub range: Option<Range>,
    pub decls: Vec<Declarator>,
    pub span: Span,
}

/// A `function ... endfunction` declaration (synthesizable, combinational).
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDecl {
    pub name: String,
    pub signed: bool,
    /// Return range; `None` = 1 bit.
    pub range: Option<Range>,
    /// Inputs in declaration order: `(name, range, signed)`.
    pub inputs: Vec<(String, Option<Range>, bool)>,
    /// Local variable declarations.
    pub locals: Vec<NetDecl>,
    pub body: Stmt,
    pub span: Span,
}

/// A `for (i = a; i < b; i = i + c) begin : label ... end` generate loop.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateFor {
    pub genvar: String,
    pub init: Expr,
    pub cond: Expr,
    pub step: Expr,
    pub label: Option<String>,
    pub items: Vec<ModuleItem>,
    pub span: Span,
}

/// Items permitted inside a module body.
#[derive(Debug, Clone, PartialEq)]
pub enum ModuleItem {
    /// A function declaration (inlined away before elaboration).
    Function(FunctionDecl),
    /// `genvar i;` — loop variables for generate blocks.
    Genvar(Vec<String>),
    /// A `generate for` block (unrolled away before elaboration).
    GenerateFor(GenerateFor),
    Net(NetDecl),
    Param(ParamDecl),
    /// `assign lhs = rhs;`
    Assign(ContinuousAssign),
    Always(AlwaysBlock),
    Initial(InitialBlock),
    Instance(Instance),
    /// A bare procedural statement appended to the root module's implicit
    /// `always` region by the REPL (Cascade Fig. 3); regular parsed modules
    /// never contain these.
    Statement(Stmt),
}

/// A continuous assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct ContinuousAssign {
    pub lhs: LValue,
    pub rhs: Expr,
    pub span: Span,
}

/// An `always @(...)` block.
#[derive(Debug, Clone, PartialEq)]
pub struct AlwaysBlock {
    pub sensitivity: Sensitivity,
    pub body: Stmt,
    pub span: Span,
}

/// An `initial` block.
#[derive(Debug, Clone, PartialEq)]
pub struct InitialBlock {
    pub body: Stmt,
    pub span: Span,
}

/// The sensitivity list of an `always` block.
#[derive(Debug, Clone, PartialEq)]
pub enum Sensitivity {
    /// `@(*)` or `@*` — combinational.
    Star,
    /// `@(posedge a, negedge b, c)`.
    List(Vec<SensItem>),
}

/// One entry in a sensitivity list.
#[derive(Debug, Clone, PartialEq)]
pub struct SensItem {
    pub edge: Option<Edge>,
    pub expr: Expr,
}

/// Signal edge polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    Pos,
    Neg,
}

/// A module instantiation, e.g. `Rol #(8) r(.x(cnt));`.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    pub module: String,
    pub name: String,
    pub params: Vec<Connection>,
    pub ports: Vec<Connection>,
    pub span: Span,
}

/// A parameter or port connection. `name` is `None` for positional
/// connections; `expr` is `None` for explicitly unconnected ports `.x()`.
#[derive(Debug, Clone, PartialEq)]
pub struct Connection {
    pub name: Option<String>,
    pub expr: Option<Expr>,
    pub span: Span,
}

/// Case statement flavour. `casez`/`casex` treat `?`-like bits as wildcards;
/// in two-state mode both behave as `casez` with explicit wildcard masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaseKind {
    Case,
    Casez,
    Casex,
}

/// One arm of a case statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseArm {
    pub labels: Vec<Expr>,
    pub body: Stmt,
}

/// Procedural statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `begin ... end` (optionally named).
    Block {
        name: Option<String>,
        stmts: Vec<Stmt>,
    },
    /// Blocking assignment `lhs = rhs;`.
    Blocking {
        lhs: LValue,
        rhs: Expr,
        span: Span,
    },
    /// Nonblocking assignment `lhs <= rhs;`.
    NonBlocking {
        lhs: LValue,
        rhs: Expr,
        span: Span,
    },
    If {
        cond: Expr,
        then_branch: Box<Stmt>,
        else_branch: Option<Box<Stmt>>,
        span: Span,
    },
    Case {
        kind: CaseKind,
        scrutinee: Expr,
        arms: Vec<CaseArm>,
        default: Option<Box<Stmt>>,
        span: Span,
    },
    For {
        init: Box<Stmt>,
        cond: Expr,
        step: Box<Stmt>,
        body: Box<Stmt>,
        span: Span,
    },
    While {
        cond: Expr,
        body: Box<Stmt>,
        span: Span,
    },
    Repeat {
        count: Expr,
        body: Box<Stmt>,
        span: Span,
    },
    Forever {
        body: Box<Stmt>,
        span: Span,
    },
    /// A system task call such as `$display("%d", cnt);`.
    SystemTask {
        task: SystemTask,
        args: Vec<Expr>,
        span: Span,
    },
    /// The null statement `;`.
    Null,
}

/// The unsynthesizable system tasks Cascade keeps alive in hardware
/// (paper Sec. 2.3, 3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemTask {
    Display,
    Write,
    Finish,
    Monitor,
    Fatal,
}

impl SystemTask {
    /// Parses a system-task name (without the `$`).
    pub fn from_name(name: &str) -> Option<SystemTask> {
        Some(match name {
            "display" => SystemTask::Display,
            "write" => SystemTask::Write,
            "finish" => SystemTask::Finish,
            "monitor" => SystemTask::Monitor,
            "fatal" => SystemTask::Fatal,
            _ => return None,
        })
    }

    /// The source spelling, with `$`.
    pub fn as_str(self) -> &'static str {
        match self {
            SystemTask::Display => "$display",
            SystemTask::Write => "$write",
            SystemTask::Finish => "$finish",
            SystemTask::Monitor => "$monitor",
            SystemTask::Fatal => "$fatal",
        }
    }
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A plain identifier.
    Ident(String),
    /// A whole-variable hierarchical target such as `led.val` (used to
    /// drive standard-library component inputs, paper Fig. 3).
    Hier(Vec<String>),
    /// A single bit or array element select: `x[i]` / `mem[addr]`.
    Index { base: String, index: Expr },
    /// A constant part select `x[msb:lsb]`.
    Part { base: String, msb: Expr, lsb: Expr },
    /// An indexed part select `x[base +: width]` / `x[base -: width]`.
    IndexedPart {
        base: String,
        offset: Expr,
        width: Expr,
        ascending: bool,
    },
    /// A concatenation target `{a, b[3:0]}`.
    Concat(Vec<LValue>),
    /// A memory word select with a further bit range: `mem[addr][3:0]`.
    IndexThenPart {
        base: String,
        index: Expr,
        msb: Expr,
        lsb: Expr,
    },
}

impl LValue {
    /// The identifiers written by this lvalue.
    pub fn written_names(&self) -> Vec<&str> {
        match self {
            LValue::Hier(path) => vec![path[0].as_str()],
            LValue::Ident(n)
            | LValue::Index { base: n, .. }
            | LValue::Part { base: n, .. }
            | LValue::IndexedPart { base: n, .. }
            | LValue::IndexThenPart { base: n, .. } => vec![n.as_str()],
            LValue::Concat(parts) => parts.iter().flat_map(|p| p.written_names()).collect(),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Plus,
    Neg,
    LogicalNot,
    BitNot,
    ReduceAnd,
    ReduceOr,
    ReduceXor,
    ReduceNand,
    ReduceNor,
    ReduceXnor,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Pow,
    And,
    Or,
    Xor,
    Xnor,
    LogicalAnd,
    LogicalOr,
    Eq,
    Ne,
    CaseEq,
    CaseNe,
    Lt,
    Le,
    Gt,
    Ge,
    Shl,
    Shr,
    AShl,
    AShr,
}

/// System functions usable in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemFunction {
    /// `$time` — current simulation time.
    Time,
    /// `$random` — pseudo-random 32-bit value.
    Random,
    /// `$signed(x)` — reinterpret as signed.
    Signed,
    /// `$unsigned(x)` — reinterpret as unsigned.
    Unsigned,
    /// `$clog2(x)` — ceiling log base 2.
    Clog2,
}

impl SystemFunction {
    /// Parses a system-function name (without the `$`).
    pub fn from_name(name: &str) -> Option<SystemFunction> {
        Some(match name {
            "time" => SystemFunction::Time,
            "random" => SystemFunction::Random,
            "signed" => SystemFunction::Signed,
            "unsigned" => SystemFunction::Unsigned,
            "clog2" => SystemFunction::Clog2,
            _ => return None,
        })
    }

    /// The source spelling, with `$`.
    pub fn as_str(self) -> &'static str {
        match self {
            SystemFunction::Time => "$time",
            SystemFunction::Random => "$random",
            SystemFunction::Signed => "$signed",
            SystemFunction::Unsigned => "$unsigned",
            SystemFunction::Clog2 => "$clog2",
        }
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A sized or unsized literal. `sized` records whether the width was
    /// written explicitly (it affects context-determined sizing).
    Literal {
        value: Bits,
        sized: bool,
    },
    /// A literal containing `x`/`z`/`?` wildcard digits. `care` has a zero
    /// bit where the digit was a wildcard. Meaningful as a `casez`/`casex`
    /// label; elsewhere wildcard bits read as zero (two-state mode).
    MaskedLiteral {
        value: Bits,
        care: Bits,
    },
    /// A string literal (only meaningful as a `$display` argument).
    Str(String),
    /// A simple identifier reference.
    Ident(String),
    /// A hierarchical reference such as `r.y` (paper Fig. 1 line 10).
    Hier(Vec<String>),
    Unary {
        op: UnaryOp,
        operand: Box<Expr>,
    },
    Binary {
        op: BinaryOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    Ternary {
        cond: Box<Expr>,
        then_expr: Box<Expr>,
        else_expr: Box<Expr>,
    },
    /// Bit select or memory word select: `base[index]`.
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
    },
    /// Constant part select `base[msb:lsb]`.
    Part {
        base: Box<Expr>,
        msb: Box<Expr>,
        lsb: Box<Expr>,
    },
    /// Indexed part select `base[offset +: width]`.
    IndexedPart {
        base: Box<Expr>,
        offset: Box<Expr>,
        width: Box<Expr>,
        ascending: bool,
    },
    Concat(Vec<Expr>),
    /// Replication `{count{inner}}`.
    Replicate {
        count: Box<Expr>,
        inner: Box<Expr>,
    },
    /// A system function call.
    SystemCall {
        func: SystemFunction,
        args: Vec<Expr>,
    },
    /// A user function call (inlined away before elaboration).
    FnCall {
        name: String,
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for an unsigned sized literal.
    pub fn literal(width: u32, value: u64) -> Expr {
        Expr::Literal {
            value: Bits::from_u64(width, value),
            sized: true,
        }
    }

    /// Convenience constructor for an unsized decimal literal.
    pub fn number(value: u64) -> Expr {
        Expr::Literal {
            value: Bits::from_u64(32, value),
            sized: false,
        }
    }

    /// Convenience constructor for an identifier.
    pub fn ident(name: impl Into<String>) -> Expr {
        Expr::Ident(name.into())
    }

    /// Visits every identifier and hierarchical name read by this
    /// expression.
    pub fn visit_reads(&self, f: &mut impl FnMut(&[String])) {
        match self {
            Expr::Literal { .. } | Expr::MaskedLiteral { .. } | Expr::Str(_) => {}
            Expr::Ident(n) => f(std::slice::from_ref(n)),
            Expr::Hier(path) => f(path),
            Expr::Unary { operand, .. } => operand.visit_reads(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit_reads(f);
                rhs.visit_reads(f);
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                cond.visit_reads(f);
                then_expr.visit_reads(f);
                else_expr.visit_reads(f);
            }
            Expr::Index { base, index } => {
                base.visit_reads(f);
                index.visit_reads(f);
            }
            Expr::Part { base, msb, lsb } => {
                base.visit_reads(f);
                msb.visit_reads(f);
                lsb.visit_reads(f);
            }
            Expr::IndexedPart {
                base,
                offset,
                width,
                ..
            } => {
                base.visit_reads(f);
                offset.visit_reads(f);
                width.visit_reads(f);
            }
            Expr::Concat(parts) => {
                for p in parts {
                    p.visit_reads(f);
                }
            }
            Expr::Replicate { count, inner } => {
                count.visit_reads(f);
                inner.visit_reads(f);
            }
            Expr::SystemCall { args, .. } | Expr::FnCall { args, .. } => {
                for a in args {
                    a.visit_reads(f);
                }
            }
        }
    }
}

impl Stmt {
    /// Visits every expression contained in this statement (shallow walk of
    /// nested statements included).
    pub fn visit_exprs(&self, f: &mut impl FnMut(&Expr)) {
        match self {
            Stmt::Block { stmts, .. } => {
                for s in stmts {
                    s.visit_exprs(f);
                }
            }
            Stmt::Blocking { lhs, rhs, .. } | Stmt::NonBlocking { lhs, rhs, .. } => {
                lhs.visit_exprs(f);
                f(rhs);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                f(cond);
                then_branch.visit_exprs(f);
                if let Some(e) = else_branch {
                    e.visit_exprs(f);
                }
            }
            Stmt::Case {
                scrutinee,
                arms,
                default,
                ..
            } => {
                f(scrutinee);
                for arm in arms {
                    for l in &arm.labels {
                        f(l);
                    }
                    arm.body.visit_exprs(f);
                }
                if let Some(d) = default {
                    d.visit_exprs(f);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                init.visit_exprs(f);
                f(cond);
                step.visit_exprs(f);
                body.visit_exprs(f);
            }
            Stmt::While { cond, body, .. } => {
                f(cond);
                body.visit_exprs(f);
            }
            Stmt::Repeat { count, body, .. } => {
                f(count);
                body.visit_exprs(f);
            }
            Stmt::Forever { body, .. } => body.visit_exprs(f),
            Stmt::SystemTask { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Stmt::Null => {}
        }
    }

    /// Visits every lvalue assigned within this statement.
    pub fn visit_writes(&self, f: &mut impl FnMut(&LValue, bool)) {
        match self {
            Stmt::Block { stmts, .. } => {
                for s in stmts {
                    s.visit_writes(f);
                }
            }
            Stmt::Blocking { lhs, .. } => f(lhs, true),
            Stmt::NonBlocking { lhs, .. } => f(lhs, false),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.visit_writes(f);
                if let Some(e) = else_branch {
                    e.visit_writes(f);
                }
            }
            Stmt::Case { arms, default, .. } => {
                for arm in arms {
                    arm.body.visit_writes(f);
                }
                if let Some(d) = default {
                    d.visit_writes(f);
                }
            }
            Stmt::For {
                init, step, body, ..
            } => {
                init.visit_writes(f);
                step.visit_writes(f);
                body.visit_writes(f);
            }
            Stmt::While { body, .. } | Stmt::Repeat { body, .. } | Stmt::Forever { body, .. } => {
                body.visit_writes(f)
            }
            Stmt::SystemTask { .. } | Stmt::Null => {}
        }
    }
}

impl LValue {
    /// Mutable variant of [`LValue::visit_exprs`].
    pub fn visit_exprs_mut(&mut self, f: &mut impl FnMut(&mut Expr)) {
        match self {
            LValue::Ident(_) | LValue::Hier(_) => {}
            LValue::Index { index, .. } => f(index),
            LValue::Part { msb, lsb, .. } => {
                f(msb);
                f(lsb);
            }
            LValue::IndexedPart { offset, width, .. } => {
                f(offset);
                f(width);
            }
            LValue::Concat(parts) => {
                for p in parts {
                    p.visit_exprs_mut(f);
                }
            }
            LValue::IndexThenPart {
                index, msb, lsb, ..
            } => {
                f(index);
                f(msb);
                f(lsb);
            }
        }
    }

    /// Visits the expressions appearing inside index computations of this
    /// lvalue (not the written target itself).
    pub fn visit_exprs(&self, f: &mut impl FnMut(&Expr)) {
        match self {
            LValue::Ident(_) | LValue::Hier(_) => {}
            LValue::Index { index, .. } => f(index),
            LValue::Part { msb, lsb, .. } => {
                f(msb);
                f(lsb);
            }
            LValue::IndexedPart { offset, width, .. } => {
                f(offset);
                f(width);
            }
            LValue::Concat(parts) => {
                for p in parts {
                    p.visit_exprs(f);
                }
            }
            LValue::IndexThenPart {
                index, msb, lsb, ..
            } => {
                f(index);
                f(msb);
                f(lsb);
            }
        }
    }
}
