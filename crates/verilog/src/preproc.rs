//! A minimal Verilog preprocessor: `` `define ``, `` `undef ``,
//! `` `ifdef ``/`` `ifndef ``/`` `else ``/`` `endif ``, `` `include ``, and
//! macro substitution (object-like macros only).

use crate::source::{Diagnostic, FrontendResult, Phase, Span};
use std::collections::BTreeMap;

/// Provides the text of `` `include ``d files.
pub trait IncludeProvider {
    /// Returns the contents of `path`, or `None` if it does not exist.
    fn read(&self, path: &str) -> Option<String>;
}

/// An include provider backed by an in-memory map (used by tests and the
/// REPL, which has no filesystem notion of its own).
#[derive(Debug, Clone, Default)]
pub struct MemoryIncludes {
    files: BTreeMap<String, String>,
}

impl MemoryIncludes {
    /// Creates an empty provider.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a file.
    pub fn insert(&mut self, path: impl Into<String>, text: impl Into<String>) {
        self.files.insert(path.into(), text.into());
    }
}

impl IncludeProvider for MemoryIncludes {
    fn read(&self, path: &str) -> Option<String> {
        self.files.get(path).cloned()
    }
}

/// An include provider that refuses every include (default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoIncludes;

impl IncludeProvider for NoIncludes {
    fn read(&self, _path: &str) -> Option<String> {
        None
    }
}

/// Preprocesses `src`, expanding directives and macros.
///
/// # Errors
///
/// Returns a [`Diagnostic`] on unbalanced conditionals, unknown directives,
/// missing includes, or include recursion deeper than 16 levels.
pub fn preprocess(src: &str, includes: &dyn IncludeProvider) -> FrontendResult<String> {
    let mut defines = BTreeMap::new();
    preprocess_with(src, includes, &mut defines, 0)
}

fn preprocess_with(
    src: &str,
    includes: &dyn IncludeProvider,
    defines: &mut BTreeMap<String, String>,
    depth: usize,
) -> FrontendResult<String> {
    let err = |msg: String| Diagnostic::new(Phase::Preprocess, msg, Span::synthetic());
    if depth > 16 {
        return Err(err("include depth exceeds 16".into()));
    }
    let mut out = String::with_capacity(src.len());
    // Stack of conditional states: (this branch active, any branch taken).
    let mut conds: Vec<(bool, bool)> = Vec::new();
    for line in src.lines() {
        let trimmed = line.trim_start();
        let active = conds.iter().all(|&(a, _)| a);
        if let Some(rest) = trimmed.strip_prefix('`') {
            let (directive, arg) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
            let arg = arg.trim();
            match directive {
                "define" if active => {
                    let (name, body) = arg.split_once(char::is_whitespace).unwrap_or((arg, ""));
                    if name.is_empty() {
                        return Err(err("`define needs a name".into()));
                    }
                    defines.insert(name.to_string(), body.trim().to_string());
                    out.push('\n');
                    continue;
                }
                "undef" if active => {
                    defines.remove(arg);
                    out.push('\n');
                    continue;
                }
                "ifdef" => {
                    let taken = active && defines.contains_key(arg);
                    conds.push((taken, taken));
                    out.push('\n');
                    continue;
                }
                "ifndef" => {
                    let taken = active && !defines.contains_key(arg);
                    conds.push((taken, taken));
                    out.push('\n');
                    continue;
                }
                "else" => {
                    let (branch, taken) = conds
                        .pop()
                        .ok_or_else(|| err("`else without `ifdef".into()))?;
                    let parent_active = conds.iter().all(|&(a, _)| a);
                    conds.push((parent_active && !taken && !branch, true));
                    out.push('\n');
                    continue;
                }
                "endif" => {
                    conds
                        .pop()
                        .ok_or_else(|| err("`endif without `ifdef".into()))?;
                    out.push('\n');
                    continue;
                }
                "include" if active => {
                    let path = arg.trim_matches('"');
                    let text = includes
                        .read(path)
                        .ok_or_else(|| err(format!("cannot include {path:?}")))?;
                    out.push_str(&preprocess_with(&text, includes, defines, depth + 1)?);
                    out.push('\n');
                    continue;
                }
                "timescale" | "default_nettype" => {
                    // Accepted and ignored: timing directives have no meaning
                    // for Cascade's virtual-clock model.
                    out.push('\n');
                    continue;
                }
                _ if !active => {
                    out.push('\n');
                    continue;
                }
                other => {
                    // A macro use at line start, or an unknown directive.
                    if defines.contains_key(other) {
                        // fall through to macro expansion below
                    } else {
                        return Err(err(format!("unknown directive `{other}`")));
                    }
                }
            }
        }
        if !active {
            out.push('\n');
            continue;
        }
        out.push_str(&expand_macros(line, defines)?);
        out.push('\n');
    }
    if !conds.is_empty() {
        return Err(err("unterminated `ifdef".into()));
    }
    Ok(out)
}

fn expand_macros(line: &str, defines: &BTreeMap<String, String>) -> FrontendResult<String> {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.char_indices().peekable();
    while let Some((_, c)) = chars.next() {
        if c != '`' {
            out.push(c);
            continue;
        }
        let mut name = String::new();
        while let Some(&(_, nc)) = chars.peek() {
            if nc.is_ascii_alphanumeric() || nc == '_' {
                name.push(nc);
                chars.next();
            } else {
                break;
            }
        }
        match defines.get(&name) {
            Some(body) => out.push_str(body),
            None => {
                return Err(Diagnostic::new(
                    Phase::Preprocess,
                    format!("undefined macro `{name}`"),
                    Span::synthetic(),
                ));
            }
        }
    }
    Ok(out)
}
