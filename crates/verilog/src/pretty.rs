//! Pretty-printer: AST back to Verilog source.
//!
//! Used to emit the transformed subprograms that hardware engines hand to
//! the (virtual) toolchain, and to round-trip programs in tests.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a source unit as Verilog text.
pub fn print_unit(unit: &SourceUnit) -> String {
    let mut p = Printer::default();
    for item in &unit.items {
        match item {
            Item::Module(m) => p.module(m),
            Item::RootItem(mi) => p.module_item(mi),
        }
    }
    p.out
}

/// Renders a single module.
pub fn print_module(module: &Module) -> String {
    let mut p = Printer::default();
    p.module(module);
    p.out
}

/// Renders a single statement.
pub fn print_stmt(stmt: &Stmt) -> String {
    let mut p = Printer::default();
    p.stmt(stmt);
    p.out
}

/// Renders a single expression.
pub fn print_expr(expr: &Expr) -> String {
    let mut p = Printer::default();
    p.expr(expr);
    p.out
}

#[derive(Default)]
struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn open(&mut self, text: &str) {
        self.line(text);
        self.indent += 1;
    }

    fn close(&mut self, text: &str) {
        self.indent = self.indent.saturating_sub(1);
        self.line(text);
    }

    fn module(&mut self, m: &Module) {
        let mut header = format!("module {}", m.name);
        if !m.params.is_empty() {
            header.push_str(" #(");
            for (i, p) in m.params.iter().enumerate() {
                if i > 0 {
                    header.push_str(", ");
                }
                write!(header, "parameter {} = {}", p.name, print_expr(&p.value))
                    .expect("write to string");
            }
            header.push(')');
        }
        if m.ports.is_empty() {
            header.push_str("();");
            self.open(&header);
        } else {
            header.push('(');
            self.open(&header);
            for (i, port) in m.ports.iter().enumerate() {
                let dir = match port.dir {
                    PortDir::Input => "input",
                    PortDir::Output => "output",
                    PortDir::Inout => "inout",
                };
                let kind = if port.is_reg { " reg" } else { " wire" };
                let signed = if port.signed { " signed" } else { "" };
                let range = port
                    .range
                    .as_ref()
                    .map(|r| self.range(r))
                    .unwrap_or_default();
                let comma = if i + 1 < m.ports.len() { "," } else { "" };
                self.line(&format!("{dir}{kind}{signed}{range} {}{comma}", port.name));
            }
            self.close(");");
            self.indent += 1;
        }
        for item in &m.items {
            self.module_item(item);
        }
        self.close("endmodule");
    }

    fn range(&self, r: &Range) -> String {
        format!(" [{}:{}]", print_expr(&r.msb), print_expr(&r.lsb))
    }

    fn module_item(&mut self, item: &ModuleItem) {
        match item {
            ModuleItem::Genvar(names) => {
                self.line(&format!("genvar {};", names.join(", ")));
            }
            ModuleItem::GenerateFor(g) => {
                self.open("generate");
                let label = g
                    .label
                    .as_deref()
                    .map(|l| format!(" : {l}"))
                    .unwrap_or_default();
                self.open(&format!(
                    "for ({gv} = {init}; {cond}; {gv} = {step}) begin{label}",
                    gv = g.genvar,
                    init = print_expr(&g.init),
                    cond = print_expr(&g.cond),
                    step = print_expr(&g.step),
                ));
                for it in &g.items {
                    self.module_item(it);
                }
                self.close("end");
                self.close("endgenerate");
            }
            ModuleItem::Function(f) => {
                let range = f.range.as_ref().map(|r| self.range(r)).unwrap_or_default();
                let signed = if f.signed { " signed" } else { "" };
                self.open(&format!("function{signed}{range} {};", f.name));
                for (name, r, s) in &f.inputs {
                    let rng = r.as_ref().map(|r| self.range(r)).unwrap_or_default();
                    let sg = if *s { " signed" } else { "" };
                    self.line(&format!("input{sg}{rng} {name};"));
                }
                let locals: Vec<ModuleItem> =
                    f.locals.iter().cloned().map(ModuleItem::Net).collect();
                for l in &locals {
                    self.module_item(l);
                }
                self.stmt(&f.body);
                self.close("endfunction");
            }
            ModuleItem::Net(d) => {
                let kind = match d.kind {
                    NetKind::Wire => "wire",
                    NetKind::Reg => "reg",
                    NetKind::Integer => "integer",
                };
                let signed = if d.signed && d.kind != NetKind::Integer {
                    " signed"
                } else {
                    ""
                };
                let range = d.range.as_ref().map(|r| self.range(r)).unwrap_or_default();
                let decls = d
                    .decls
                    .iter()
                    .map(|decl| {
                        let mut s = decl.name.clone();
                        if let Some(arr) = &decl.array {
                            s.push_str(&self.range(arr));
                        }
                        if let Some(init) = &decl.init {
                            write!(s, " = {}", print_expr(init)).expect("write to string");
                        }
                        s
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                self.line(&format!("{kind}{signed}{range} {decls};"));
            }
            ModuleItem::Param(p) => {
                let kw = if p.local { "localparam" } else { "parameter" };
                let range = p.range.as_ref().map(|r| self.range(r)).unwrap_or_default();
                self.line(&format!(
                    "{kw}{range} {} = {};",
                    p.name,
                    print_expr(&p.value)
                ));
            }
            ModuleItem::Assign(a) => {
                self.line(&format!(
                    "assign {} = {};",
                    self.lvalue(&a.lhs),
                    print_expr(&a.rhs)
                ));
            }
            ModuleItem::Always(a) => {
                let sens = match &a.sensitivity {
                    Sensitivity::Star => "*".to_string(),
                    Sensitivity::List(items) => {
                        let parts = items
                            .iter()
                            .map(|item| {
                                let edge = match item.edge {
                                    Some(Edge::Pos) => "posedge ",
                                    Some(Edge::Neg) => "negedge ",
                                    None => "",
                                };
                                format!("{edge}{}", print_expr(&item.expr))
                            })
                            .collect::<Vec<_>>()
                            .join(" or ");
                        format!("({parts})")
                    }
                };
                self.open(&format!("always @{sens}"));
                self.stmt(&a.body);
                self.indent -= 1;
            }
            ModuleItem::Initial(i) => {
                self.open("initial");
                self.stmt(&i.body);
                self.indent -= 1;
            }
            ModuleItem::Instance(inst) => {
                let mut s = inst.module.clone();
                if !inst.params.is_empty() {
                    write!(s, " #({})", self.connections(&inst.params)).expect("write to string");
                }
                write!(s, " {}({});", inst.name, self.connections(&inst.ports))
                    .expect("write to string");
                self.line(&s);
            }
            ModuleItem::Statement(stmt) => self.stmt(stmt),
        }
    }

    fn connections(&self, conns: &[Connection]) -> String {
        conns
            .iter()
            .map(|c| match (&c.name, &c.expr) {
                (Some(n), Some(e)) => format!(".{n}({})", print_expr(e)),
                (Some(n), None) => format!(".{n}()"),
                (None, Some(e)) => print_expr(e),
                (None, None) => String::new(),
            })
            .collect::<Vec<_>>()
            .join(", ")
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Block { name, stmts } => {
                match name {
                    Some(n) => self.open(&format!("begin : {n}")),
                    None => self.open("begin"),
                }
                for st in stmts {
                    self.stmt(st);
                }
                self.close("end");
            }
            Stmt::Blocking { lhs, rhs, .. } => {
                self.line(&format!("{} = {};", self.lvalue(lhs), print_expr(rhs)));
            }
            Stmt::NonBlocking { lhs, rhs, .. } => {
                self.line(&format!("{} <= {};", self.lvalue(lhs), print_expr(rhs)));
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                self.open(&format!("if ({})", print_expr(cond)));
                self.stmt(then_branch);
                self.indent -= 1;
                if let Some(e) = else_branch {
                    self.open("else");
                    self.stmt(e);
                    self.indent -= 1;
                }
            }
            Stmt::Case {
                kind,
                scrutinee,
                arms,
                default,
                ..
            } => {
                let kw = match kind {
                    CaseKind::Case => "case",
                    CaseKind::Casez => "casez",
                    CaseKind::Casex => "casex",
                };
                self.open(&format!("{kw} ({})", print_expr(scrutinee)));
                for arm in arms {
                    let labels = arm
                        .labels
                        .iter()
                        .map(print_expr)
                        .collect::<Vec<_>>()
                        .join(", ");
                    self.open(&format!("{labels}:"));
                    self.stmt(&arm.body);
                    self.indent -= 1;
                }
                if let Some(d) = default {
                    self.open("default:");
                    self.stmt(d);
                    self.indent -= 1;
                }
                self.close("endcase");
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                let init_s = self.inline_assign(init);
                let step_s = self.inline_assign(step);
                self.open(&format!("for ({init_s}; {}; {step_s})", print_expr(cond)));
                self.stmt(body);
                self.indent -= 1;
            }
            Stmt::While { cond, body, .. } => {
                self.open(&format!("while ({})", print_expr(cond)));
                self.stmt(body);
                self.indent -= 1;
            }
            Stmt::Repeat { count, body, .. } => {
                self.open(&format!("repeat ({})", print_expr(count)));
                self.stmt(body);
                self.indent -= 1;
            }
            Stmt::Forever { body, .. } => {
                self.open("forever");
                self.stmt(body);
                self.indent -= 1;
            }
            Stmt::SystemTask { task, args, .. } => {
                if args.is_empty() {
                    self.line(&format!("{};", task.as_str()));
                } else {
                    let args_s = args.iter().map(print_expr).collect::<Vec<_>>().join(", ");
                    self.line(&format!("{}({args_s});", task.as_str()));
                }
            }
            Stmt::Null => self.line(";"),
        }
    }

    fn inline_assign(&self, s: &Stmt) -> String {
        match s {
            Stmt::Blocking { lhs, rhs, .. } => {
                format!("{} = {}", self.lvalue(lhs), print_expr(rhs))
            }
            Stmt::NonBlocking { lhs, rhs, .. } => {
                format!("{} <= {}", self.lvalue(lhs), print_expr(rhs))
            }
            other => print_stmt(other).trim().to_string(),
        }
    }

    fn lvalue(&self, lv: &LValue) -> String {
        match lv {
            LValue::Ident(n) => n.clone(),
            LValue::Hier(path) => path.join("."),
            LValue::Index { base, index } => format!("{base}[{}]", print_expr(index)),
            LValue::Part { base, msb, lsb } => {
                format!("{base}[{}:{}]", print_expr(msb), print_expr(lsb))
            }
            LValue::IndexedPart {
                base,
                offset,
                width,
                ascending,
            } => {
                let op = if *ascending { "+:" } else { "-:" };
                format!("{base}[{} {op} {}]", print_expr(offset), print_expr(width))
            }
            LValue::Concat(parts) => {
                let inner = parts
                    .iter()
                    .map(|p| self.lvalue(p))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("{{{inner}}}")
            }
            LValue::IndexThenPart {
                base,
                index,
                msb,
                lsb,
            } => format!(
                "{base}[{}][{}:{}]",
                print_expr(index),
                print_expr(msb),
                print_expr(lsb)
            ),
        }
    }

    fn expr(&mut self, e: &Expr) {
        let s = render_expr(e);
        self.out.push_str(&s);
    }
}

fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Literal { value, sized } => {
            if *sized {
                format!("{}'h{}", value.width(), value.to_hex_string())
            } else {
                value.to_decimal_string()
            }
        }
        Expr::MaskedLiteral { value, care } => {
            let w = value.width();
            let mut s = format!("{w}'b");
            for i in (0..w).rev() {
                if care.bit(i) {
                    s.push(if value.bit(i) { '1' } else { '0' });
                } else {
                    s.push('?');
                }
            }
            s
        }
        Expr::Str(text) => format!("\"{}\"", text.replace('\\', "\\\\").replace('"', "\\\"")),
        Expr::Ident(n) => n.clone(),
        Expr::Hier(path) => path.join("."),
        Expr::Unary { op, operand } => {
            let op_s = match op {
                UnaryOp::Plus => "+",
                UnaryOp::Neg => "-",
                UnaryOp::LogicalNot => "!",
                UnaryOp::BitNot => "~",
                UnaryOp::ReduceAnd => "&",
                UnaryOp::ReduceOr => "|",
                UnaryOp::ReduceXor => "^",
                UnaryOp::ReduceNand => "~&",
                UnaryOp::ReduceNor => "~|",
                UnaryOp::ReduceXnor => "~^",
            };
            format!("{op_s}({})", render_expr(operand))
        }
        Expr::Binary { op, lhs, rhs } => {
            let op_s = match op {
                BinaryOp::Add => "+",
                BinaryOp::Sub => "-",
                BinaryOp::Mul => "*",
                BinaryOp::Div => "/",
                BinaryOp::Rem => "%",
                BinaryOp::Pow => "**",
                BinaryOp::And => "&",
                BinaryOp::Or => "|",
                BinaryOp::Xor => "^",
                BinaryOp::Xnor => "~^",
                BinaryOp::LogicalAnd => "&&",
                BinaryOp::LogicalOr => "||",
                BinaryOp::Eq => "==",
                BinaryOp::Ne => "!=",
                BinaryOp::CaseEq => "===",
                BinaryOp::CaseNe => "!==",
                BinaryOp::Lt => "<",
                BinaryOp::Le => "<=",
                BinaryOp::Gt => ">",
                BinaryOp::Ge => ">=",
                BinaryOp::Shl => "<<",
                BinaryOp::Shr => ">>",
                BinaryOp::AShl => "<<<",
                BinaryOp::AShr => ">>>",
            };
            format!("({} {op_s} {})", render_expr(lhs), render_expr(rhs))
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => format!(
            "({} ? {} : {})",
            render_expr(cond),
            render_expr(then_expr),
            render_expr(else_expr)
        ),
        Expr::Index { base, index } => format!("{}[{}]", render_expr(base), render_expr(index)),
        Expr::Part { base, msb, lsb } => {
            format!(
                "{}[{}:{}]",
                render_expr(base),
                render_expr(msb),
                render_expr(lsb)
            )
        }
        Expr::IndexedPart {
            base,
            offset,
            width,
            ascending,
        } => {
            let op = if *ascending { "+:" } else { "-:" };
            format!(
                "{}[{} {op} {}]",
                render_expr(base),
                render_expr(offset),
                render_expr(width)
            )
        }
        Expr::Concat(parts) => {
            let inner = parts.iter().map(render_expr).collect::<Vec<_>>().join(", ");
            format!("{{{inner}}}")
        }
        Expr::Replicate { count, inner } => {
            format!("{{{}{{{}}}}}", render_expr(count), render_expr(inner))
        }
        Expr::FnCall { name, args } => {
            let args_s = args.iter().map(render_expr).collect::<Vec<_>>().join(", ");
            format!("{name}({args_s})")
        }
        Expr::SystemCall { func, args } => {
            if args.is_empty() {
                func.as_str().to_string()
            } else {
                let args_s = args.iter().map(render_expr).collect::<Vec<_>>().join(", ");
                format!("{}({args_s})", func.as_str())
            }
        }
    }
}
