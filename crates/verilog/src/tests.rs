use crate::analysis::{self, SourceStats, UnsynthesizableReason};
use crate::ast::*;
use crate::preproc::{preprocess, MemoryIncludes, NoIncludes};
use crate::pretty;
use crate::typecheck::{check_module, clog2, const_eval, ModuleLibrary, ParamEnv};
use crate::{lex, parse, parse_expr, parse_stmt, TokenKind};
use cascade_bits::Bits;

/// The paper's Fig. 1 running example, verbatim modulo comments.
pub const RUNNING_EXAMPLE: &str = r#"
module Rol(
  input wire [7:0] x,
  output wire [7:0] y
);
  assign y = (x == 8'h80) ? 1 : (x<<1);
endmodule

module Main(
  input wire clk,
  input wire [3:0] pad,
  output wire [7:0] led
);
  reg [7:0] cnt = 1;
  Rol r(.x(cnt));
  always @(posedge clk)
    if (pad == 0)
      cnt <= r.y;
    else begin
      $display(cnt);
      $finish;
    end
  assign led = cnt;
endmodule
"#;

fn first_module(src: &str) -> Module {
    let unit = parse(src).expect("parse");
    unit.items
        .into_iter()
        .find_map(|i| match i {
            Item::Module(m) => Some(m),
            _ => None,
        })
        .expect("has module")
}

fn modules(src: &str) -> Vec<Module> {
    parse(src)
        .expect("parse")
        .items
        .into_iter()
        .filter_map(|i| match i {
            Item::Module(m) => Some(m),
            _ => None,
        })
        .collect()
}

// ----------------------------------------------------------------------
// Lexer
// ----------------------------------------------------------------------

#[test]
fn lex_basic_tokens() {
    let toks = lex("module x; endmodule").unwrap();
    assert!(matches!(
        toks[0].kind,
        TokenKind::Keyword(crate::Keyword::Module)
    ));
    assert!(matches!(toks.last().unwrap().kind, TokenKind::Eof));
}

#[test]
fn lex_numbers() {
    let toks = lex("42 8'hff 4'b1010 'd9 16 'h dead").unwrap();
    assert!(matches!(toks[0].kind, TokenKind::Decimal(42)));
    assert!(
        matches!(&toks[1].kind, TokenKind::Number { size: Some(8), radix: 16, body } if body == "ff")
    );
    assert!(
        matches!(&toks[2].kind, TokenKind::Number { size: Some(4), radix: 2, body } if body == "1010")
    );
    assert!(matches!(
        &toks[3].kind,
        TokenKind::Number {
            size: None,
            radix: 10,
            ..
        }
    ));
}

#[test]
fn lex_number_with_space_before_tick() {
    let toks = lex("8 'hff").unwrap();
    assert!(matches!(
        &toks[0].kind,
        TokenKind::Number {
            size: Some(8),
            radix: 16,
            ..
        }
    ));
}

#[test]
fn lex_operators() {
    let toks = lex("<<< >>> << >> <= >= == != === !== && || ~^ ~& ~| +: -: **").unwrap();
    let kinds: Vec<_> = toks.iter().map(|t| &t.kind).collect();
    assert!(matches!(kinds[0], TokenKind::AShl));
    assert!(matches!(kinds[1], TokenKind::AShr));
    assert!(matches!(kinds[2], TokenKind::Shl));
    assert!(matches!(kinds[3], TokenKind::Shr));
    assert!(matches!(kinds[4], TokenKind::LtEq));
    assert!(matches!(kinds[5], TokenKind::GtEq));
    assert!(matches!(kinds[6], TokenKind::EqEq));
    assert!(matches!(kinds[7], TokenKind::BangEq));
    assert!(matches!(kinds[8], TokenKind::EqEqEq));
    assert!(matches!(kinds[9], TokenKind::BangEqEq));
    assert!(matches!(kinds[10], TokenKind::AmpAmp));
    assert!(matches!(kinds[11], TokenKind::PipePipe));
    assert!(matches!(kinds[12], TokenKind::TildeCaret));
}

#[test]
fn lex_comments_and_attributes() {
    let toks = lex("a // line\n /* block\nmore */ b (* attr = 1 *) c").unwrap();
    let idents: Vec<_> = toks
        .iter()
        .filter_map(|t| match &t.kind {
            TokenKind::Ident(n) => Some(n.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(idents, vec!["a", "b", "c"]);
}

#[test]
fn lex_strings() {
    let toks = lex(r#""hello\nworld" "q\"uote""#).unwrap();
    assert!(matches!(&toks[0].kind, TokenKind::Str(s) if s == "hello\nworld"));
    assert!(matches!(&toks[1].kind, TokenKind::Str(s) if s == "q\"uote"));
}

#[test]
fn lex_errors() {
    assert!(lex("/* unterminated").is_err());
    assert!(lex("\"unterminated").is_err());
    assert!(lex("8'q7").is_err());
    assert!(lex("@@ §").is_err());
}

#[test]
fn lex_escaped_ident() {
    let toks = lex(r"\foo+bar x").unwrap();
    assert!(matches!(&toks[0].kind, TokenKind::Ident(n) if n == "foo+bar"));
}

// ----------------------------------------------------------------------
// Parser
// ----------------------------------------------------------------------

#[test]
fn parse_running_example() {
    let unit = parse(RUNNING_EXAMPLE).unwrap();
    assert_eq!(unit.items.len(), 2);
    let mods = modules(RUNNING_EXAMPLE);
    assert_eq!(mods[0].name, "Rol");
    assert_eq!(mods[1].name, "Main");
    assert_eq!(mods[1].ports.len(), 3);
    // Main contains: net, instance, always, assign
    assert_eq!(mods[1].items.len(), 4);
}

#[test]
fn parse_parameters() {
    let m = first_module(
        "module Pad #(parameter N = 4, parameter W = 2*N)(output wire [N-1:0] val); endmodule",
    );
    assert_eq!(m.params.len(), 2);
    assert_eq!(m.params[1].name, "W");
}

#[test]
fn parse_localparam_and_integer() {
    let m = first_module("module T; localparam W = 8; integer i; reg [W-1:0] x; endmodule");
    assert_eq!(m.items.len(), 3);
    assert!(matches!(
        &m.items[1],
        ModuleItem::Net(NetDecl {
            kind: NetKind::Integer,
            ..
        })
    ));
}

#[test]
fn parse_memory_decl() {
    let m = first_module("module T; reg [31:0] mem [0:255]; endmodule");
    let ModuleItem::Net(d) = &m.items[0] else {
        panic!()
    };
    assert!(d.decls[0].array.is_some());
}

#[test]
fn parse_multi_declarator() {
    let m = first_module("module T; wire [3:0] a, b = 4'h7, c; endmodule");
    let ModuleItem::Net(d) = &m.items[0] else {
        panic!()
    };
    assert_eq!(d.decls.len(), 3);
    assert!(d.decls[1].init.is_some());
}

#[test]
fn parse_always_variants() {
    let m = first_module(
        "module T(input wire clk, input wire rst);\n\
         reg a; reg b;\n\
         always @(posedge clk or negedge rst) a <= 1;\n\
         always @(*) b = a;\n\
         always @* b = a;\n\
         endmodule",
    );
    let sens: Vec<_> = m
        .items
        .iter()
        .filter_map(|i| match i {
            ModuleItem::Always(a) => Some(&a.sensitivity),
            _ => None,
        })
        .collect();
    assert_eq!(sens.len(), 3);
    assert!(matches!(sens[0], Sensitivity::List(items) if items.len() == 2));
    assert!(matches!(sens[1], Sensitivity::Star));
    assert!(matches!(sens[2], Sensitivity::Star));
}

#[test]
fn parse_case_statement() {
    let s =
        parse_stmt("case (x)\n 2'b00: y = 1;\n 2'b01, 2'b10: y = 2;\n default: y = 3;\n endcase")
            .unwrap();
    let Stmt::Case {
        arms,
        default,
        kind,
        ..
    } = s
    else {
        panic!()
    };
    assert_eq!(kind, CaseKind::Case);
    assert_eq!(arms.len(), 2);
    assert_eq!(arms[1].labels.len(), 2);
    assert!(default.is_some());
}

#[test]
fn parse_casez_wildcards() {
    let s = parse_stmt("casez (x) 4'b1???: y = 1; endcase").unwrap();
    let Stmt::Case { arms, .. } = s else { panic!() };
    let Expr::MaskedLiteral { value, care } = &arms[0].labels[0] else {
        panic!("expected masked literal, got {:?}", arms[0].labels[0]);
    };
    assert_eq!(value.to_u64(), 0b1000);
    assert_eq!(care.to_u64(), 0b1000);
}

#[test]
fn parse_for_loop() {
    let s = parse_stmt("for (i = 0; i < 8; i = i + 1) mem[i] <= 0;").unwrap();
    assert!(matches!(s, Stmt::For { .. }));
}

#[test]
fn parse_system_tasks() {
    let s = parse_stmt("$display(\"%d %h\", a, b);").unwrap();
    let Stmt::SystemTask { task, args, .. } = s else {
        panic!()
    };
    assert_eq!(task, SystemTask::Display);
    assert_eq!(args.len(), 3);
    assert!(parse_stmt("$finish;").is_ok());
    assert!(parse_stmt("$bogus;").is_err());
}

#[test]
fn parse_instances() {
    let m = first_module(
        "module T;\nwire [7:0] c;\nRol r(.x(c));\nAdder #(8) a1(c, c);\nFifo #(.W(8), .D(16)) f(.in(c), .out());\nendmodule",
    );
    let insts: Vec<_> = m
        .items
        .iter()
        .filter_map(|i| match i {
            ModuleItem::Instance(inst) => Some(inst),
            _ => None,
        })
        .collect();
    assert_eq!(insts.len(), 3);
    assert_eq!(insts[0].ports[0].name.as_deref(), Some("x"));
    assert_eq!(insts[1].params.len(), 1);
    assert!(insts[1].ports[0].name.is_none());
    assert_eq!(insts[2].params[1].name.as_deref(), Some("D"));
    assert!(insts[2].ports[1].expr.is_none());
}

#[test]
fn parse_expressions() {
    // Precedence: a + b * c == a + (b * c)
    let e = parse_expr("a + b * c").unwrap();
    let Expr::Binary {
        op: BinaryOp::Add,
        rhs,
        ..
    } = e
    else {
        panic!()
    };
    assert!(matches!(
        *rhs,
        Expr::Binary {
            op: BinaryOp::Mul,
            ..
        }
    ));

    // Right-associative power.
    let e = parse_expr("a ** b ** c").unwrap();
    let Expr::Binary {
        op: BinaryOp::Pow,
        rhs,
        ..
    } = e
    else {
        panic!()
    };
    assert!(matches!(
        *rhs,
        Expr::Binary {
            op: BinaryOp::Pow,
            ..
        }
    ));

    // Ternary chains.
    let e = parse_expr("a ? b : c ? d : e").unwrap();
    let Expr::Ternary { else_expr, .. } = e else {
        panic!()
    };
    assert!(matches!(*else_expr, Expr::Ternary { .. }));

    // Concatenation & replication.
    let e = parse_expr("{a, 2'b01, {4{b}}}").unwrap();
    let Expr::Concat(parts) = e else { panic!() };
    assert_eq!(parts.len(), 3);
    assert!(matches!(parts[2], Expr::Replicate { .. }));

    // Part selects.
    assert!(matches!(parse_expr("x[7:0]").unwrap(), Expr::Part { .. }));
    assert!(matches!(
        parse_expr("x[i +: 8]").unwrap(),
        Expr::IndexedPart {
            ascending: true,
            ..
        }
    ));
    assert!(matches!(
        parse_expr("x[i -: 8]").unwrap(),
        Expr::IndexedPart {
            ascending: false,
            ..
        }
    ));

    // Hierarchical names.
    assert!(matches!(parse_expr("r.y").unwrap(), Expr::Hier(p) if p.len() == 2));

    // Reduction vs binary operators.
    let e = parse_expr("a & &b").unwrap();
    let Expr::Binary {
        op: BinaryOp::And,
        rhs,
        ..
    } = e
    else {
        panic!()
    };
    assert!(matches!(
        *rhs,
        Expr::Unary {
            op: UnaryOp::ReduceAnd,
            ..
        }
    ));

    // Reduction nand.
    assert!(matches!(
        parse_expr("~&x").unwrap(),
        Expr::Unary {
            op: UnaryOp::ReduceNand,
            ..
        }
    ));
}

#[test]
fn parse_lvalues() {
    assert!(matches!(
        parse_stmt("x = 1;").unwrap(),
        Stmt::Blocking {
            lhs: LValue::Ident(_),
            ..
        }
    ));
    assert!(matches!(
        parse_stmt("x[3] <= 1;").unwrap(),
        Stmt::NonBlocking {
            lhs: LValue::Index { .. },
            ..
        }
    ));
    assert!(matches!(
        parse_stmt("x[7:4] = 1;").unwrap(),
        Stmt::Blocking {
            lhs: LValue::Part { .. },
            ..
        }
    ));
    assert!(matches!(
        parse_stmt("{c, s} = a + b;").unwrap(),
        Stmt::Blocking {
            lhs: LValue::Concat(_),
            ..
        }
    ));
    assert!(matches!(
        parse_stmt("mem[i][7:0] <= 0;").unwrap(),
        Stmt::NonBlocking {
            lhs: LValue::IndexThenPart { .. },
            ..
        }
    ));
    assert!(matches!(
        parse_stmt("x[i +: 4] = 0;").unwrap(),
        Stmt::Blocking {
            lhs: LValue::IndexedPart { .. },
            ..
        }
    ));
}

#[test]
fn parse_root_items_for_repl() {
    let unit = parse("reg [7:0] cnt = 1;\nRol r(.x(cnt));\ncnt <= r.y;").unwrap();
    assert_eq!(unit.items.len(), 3);
    assert!(matches!(&unit.items[0], Item::RootItem(ModuleItem::Net(_))));
    assert!(matches!(
        &unit.items[1],
        Item::RootItem(ModuleItem::Instance(_))
    ));
    assert!(matches!(
        &unit.items[2],
        Item::RootItem(ModuleItem::Statement(_))
    ));
}

#[test]
fn parse_errors() {
    assert!(parse("module M; wire x").is_err()); // missing ; and endmodule
    assert!(parse("module M(input wire x,); endmodule").is_err());
    assert!(parse_expr("a +").is_err());
    assert!(parse_expr("(a").is_err());
    assert!(parse_stmt("x = ;").is_err());
    assert!(parse_stmt("if (a) x = 1; else").is_err());
    assert!(parse("module ; endmodule").is_err());
}

#[test]
fn parse_error_reports_position() {
    let err = parse("module M;\n  wire 42;\nendmodule").unwrap_err();
    let rendered = err.render("module M;\n  wire 42;\nendmodule");
    assert!(rendered.contains("2:"), "got {rendered}");
}

// ----------------------------------------------------------------------
// Pretty printer round trip
// ----------------------------------------------------------------------

#[test]
fn pretty_round_trip_running_example() {
    let unit = parse(RUNNING_EXAMPLE).unwrap();
    let printed = pretty::print_unit(&unit);
    let reparsed = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
    let printed2 = pretty::print_unit(&reparsed);
    assert_eq!(printed, printed2, "pretty print not a fixpoint");
}

#[test]
fn pretty_round_trip_constructs() {
    let src = "module T #(parameter W = 8)(input wire clk, input wire signed [W-1:0] a, output reg [W-1:0] q);\n\
        localparam D = W * 2;\n\
        reg [W-1:0] mem [0:15];\n\
        integer i;\n\
        wire [D-1:0] wide = {a, a};\n\
        always @(posedge clk) begin : blk\n\
          casez (a)\n\
            8'b1???_????: q <= ~a;\n\
            default: q <= a ^ {W{1'b1}};\n\
          endcase\n\
          for (i = 0; i < 16; i = i + 1) mem[i] <= mem[i] + 1;\n\
          if (a[3] || a[0 +: 2] == 2'b11) q[7:4] <= a[W-1 -: 4];\n\
          else repeat (3) q <= q <<< 1;\n\
          while (0) q <= $random;\n\
          $display(\"%d\", $time);\n\
        end\n\
        initial q = 0;\n\
        endmodule";
    let unit = parse(src).unwrap();
    let printed = pretty::print_unit(&unit);
    let reparsed = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
    assert_eq!(pretty::print_unit(&reparsed), printed);
}

// ----------------------------------------------------------------------
// Const eval
// ----------------------------------------------------------------------

#[test]
fn const_eval_arithmetic() {
    let env = ParamEnv::from([("N".to_string(), Bits::from_u64(32, 8))]);
    let cases = [
        ("N * 2 - 1", 15),
        ("1 << N", 256),
        ("N == 8 ? 100 : 200", 100),
        ("$clog2(N)", 3),
        ("$clog2(N + 1)", 4),
        ("{N[1:0], 2'b11}", 0b0011),
        ("(N > 4) && (N < 16)", 1),
    ];
    for (src, expect) in cases {
        let e = parse_expr(src).unwrap();
        assert_eq!(const_eval(&e, &env).unwrap().to_u64(), expect, "{src}");
    }
}

#[test]
fn const_eval_rejects_runtime() {
    let env = ParamEnv::new();
    assert!(const_eval(&parse_expr("$time").unwrap(), &env).is_err());
    assert!(const_eval(&parse_expr("x + 1").unwrap(), &env).is_err());
    assert!(const_eval(&parse_expr("r.y").unwrap(), &env).is_err());
}

#[test]
fn clog2_values() {
    assert_eq!(clog2(&Bits::from_u64(32, 0)), 0);
    assert_eq!(clog2(&Bits::from_u64(32, 1)), 0);
    assert_eq!(clog2(&Bits::from_u64(32, 2)), 1);
    assert_eq!(clog2(&Bits::from_u64(32, 3)), 2);
    assert_eq!(clog2(&Bits::from_u64(32, 255)), 8);
    assert_eq!(clog2(&Bits::from_u64(32, 256)), 8);
    assert_eq!(clog2(&Bits::from_u64(32, 257)), 9);
}

// ----------------------------------------------------------------------
// Typecheck
// ----------------------------------------------------------------------

fn lib_of(src: &str) -> ModuleLibrary {
    let mut lib = ModuleLibrary::new();
    for m in modules(src) {
        lib.insert(m);
    }
    lib
}

#[test]
fn typecheck_running_example() {
    let lib = lib_of(RUNNING_EXAMPLE);
    let main = lib.get("Main").unwrap().clone();
    let checked = check_module(&main, &ParamEnv::new(), &lib).unwrap();
    assert_eq!(checked.symbol("cnt").unwrap().width(), 8);
    assert_eq!(checked.symbol("pad").unwrap().width(), 4);
    assert_eq!(checked.instances.len(), 1);
    assert_eq!(checked.instances[0].module_name, "Rol");
    assert_eq!(checked.instances[0].connections[0].0, "x");
}

#[test]
fn typecheck_parameter_resolution() {
    let lib = lib_of(
        "module P #(parameter N = 4, parameter M = N * 2)(output wire [M-1:0] o); endmodule",
    );
    let m = lib.get("P").unwrap().clone();
    let checked = check_module(&m, &ParamEnv::new(), &lib).unwrap();
    assert_eq!(checked.symbol("o").unwrap().width(), 8);
    // Override N; M derives from the default expression unless overridden.
    let overrides = ParamEnv::from([("N".to_string(), Bits::from_u64(32, 8))]);
    let checked = check_module(&m, &overrides, &lib).unwrap();
    assert_eq!(checked.symbol("o").unwrap().width(), 16);
}

#[test]
fn typecheck_rejects_bad_programs() {
    let lib = ModuleLibrary::new();
    let bad = [
        "module T; wire x; wire x; endmodule",       // duplicate
        "module T; assign y = 1; endmodule",         // undeclared lhs
        "module T; wire y; assign y = z; endmodule", // undeclared rhs
        "module T; reg r; assign r = 1; endmodule",  // assign to reg
        "module T(input wire clk); wire w; always @(posedge clk) w <= 1; endmodule", // proc to wire
        "module T(input wire i); assign i = 1; endmodule", // assign to input
        "module T; Unknown u(); endmodule",          // unknown module
        "module T; wire w; assign w = r.y; endmodule", // unknown instance
    ];
    for src in bad {
        let m = first_module(src);
        assert!(
            check_module(&m, &ParamEnv::new(), &lib).is_err(),
            "expected rejection: {src}"
        );
    }
}

#[test]
fn typecheck_instance_connections() {
    let lib = lib_of(
        "module Sub(input wire a, output wire b); assign b = a; endmodule\n\
         module T; wire x; wire y; Sub s(.a(x), .b(y)); endmodule",
    );
    let t = lib.get("T").unwrap().clone();
    assert!(check_module(&t, &ParamEnv::new(), &lib).is_ok());

    let lib2 = lib_of(
        "module Sub(input wire a); endmodule\n\
         module T; wire x; Sub s(.bogus(x)); endmodule",
    );
    let t2 = lib2.get("T").unwrap().clone();
    assert!(check_module(&t2, &ParamEnv::new(), &lib2).is_err());

    let lib3 = lib_of(
        "module Sub(input wire a); endmodule\n\
         module T; wire x; wire z; Sub s(x, z); endmodule",
    );
    let t3 = lib3.get("T").unwrap().clone();
    assert!(
        check_module(&t3, &ParamEnv::new(), &lib3).is_err(),
        "too many positional"
    );
}

#[test]
fn symbol_bit_offsets() {
    let lib = lib_of("module T; wire [7:0] d; wire [0:7] a; reg [15:8] h; endmodule");
    let m = lib.get("T").unwrap().clone();
    let checked = check_module(&m, &ParamEnv::new(), &lib).unwrap();
    let d = checked.symbol("d").unwrap();
    assert_eq!(d.bit_offset(0), Some(0));
    assert_eq!(d.bit_offset(7), Some(7));
    assert_eq!(d.bit_offset(8), None);
    let a = checked.symbol("a").unwrap();
    assert_eq!(a.bit_offset(0), Some(7)); // [0:7]: index 0 is the MSB
    assert_eq!(a.bit_offset(7), Some(0));
    let h = checked.symbol("h").unwrap();
    assert_eq!(h.bit_offset(8), Some(0));
    assert_eq!(h.bit_offset(15), Some(7));
    assert_eq!(h.bit_offset(0), None);
}

#[test]
fn symbol_array_offsets() {
    let lib = lib_of("module T; reg [7:0] m [0:255]; reg [7:0] r [255:0]; endmodule");
    let m = lib.get("T").unwrap().clone();
    let checked = check_module(&m, &ParamEnv::new(), &lib).unwrap();
    let mem = checked.symbol("m").unwrap();
    assert_eq!(mem.array_len(), 256);
    assert_eq!(mem.array_offset(0), Some(0));
    assert_eq!(mem.array_offset(255), Some(255));
    assert_eq!(mem.array_offset(256), None);
    let rev = checked.symbol("r").unwrap();
    assert_eq!(rev.array_offset(0), Some(0));
}

// ----------------------------------------------------------------------
// Analysis
// ----------------------------------------------------------------------

#[test]
fn analysis_hierarchical_reads() {
    let mods = modules(RUNNING_EXAMPLE);
    let refs = analysis::hierarchical_reads(&mods[1]);
    assert_eq!(refs.len(), 1);
    assert!(refs.contains(&vec!["r".to_string(), "y".to_string()]));
}

#[test]
fn analysis_read_write_sets() {
    let mods = modules(RUNNING_EXAMPLE);
    let reads = analysis::read_set(&mods[1]);
    assert!(reads.contains("clk"));
    assert!(reads.contains("pad"));
    assert!(reads.contains("cnt"));
    let writes = analysis::write_set(&mods[1]);
    assert!(writes.contains("cnt"));
    assert!(writes.contains("led"));
}

#[test]
fn analysis_synthesizability() {
    let mods = modules(RUNNING_EXAMPLE);
    assert!(analysis::is_synthesizable(&mods[0]));
    assert!(!analysis::is_synthesizable(&mods[1]));
    let reasons = analysis::unsynthesizable_constructs(&mods[1]);
    assert!(reasons
        .iter()
        .any(|r| matches!(r, UnsynthesizableReason::SystemTask(SystemTask::Display))));
    assert!(reasons
        .iter()
        .any(|r| matches!(r, UnsynthesizableReason::SystemTask(SystemTask::Finish))));
}

#[test]
fn analysis_source_stats() {
    let unit = parse(RUNNING_EXAMPLE).unwrap();
    let stats: SourceStats = analysis::source_stats(RUNNING_EXAMPLE, &unit);
    assert_eq!(stats.modules, 2);
    assert_eq!(stats.always_blocks, 1);
    assert_eq!(stats.nonblocking_assignments, 1);
    assert_eq!(stats.display_statements, 1);
    assert_eq!(stats.instances, 1);
    assert!(stats.lines > 10);
}

// ----------------------------------------------------------------------
// Preprocessor
// ----------------------------------------------------------------------

#[test]
fn preproc_define_and_expand() {
    let out = preprocess("`define W 8\nwire [`W-1:0] x;", &NoIncludes).unwrap();
    assert!(out.contains("wire [8-1:0] x;"));
}

#[test]
fn preproc_conditionals() {
    let src = "`define FAST\n`ifdef FAST\nfast\n`else\nslow\n`endif\n`ifndef FAST\nnope\n`endif";
    let out = preprocess(src, &NoIncludes).unwrap();
    assert!(out.contains("fast"));
    assert!(!out.contains("slow"));
    assert!(!out.contains("nope"));
}

#[test]
fn preproc_nested_conditionals() {
    let src = "`ifdef A\n`ifdef B\nab\n`endif\n`else\nno_a\n`endif";
    let out = preprocess(src, &NoIncludes).unwrap();
    assert!(out.contains("no_a"));
    assert!(!out.contains("ab"));
}

#[test]
fn preproc_include() {
    let mut inc = MemoryIncludes::new();
    inc.insert("defs.vh", "`define N 16");
    let out = preprocess("`include \"defs.vh\"\nwire [`N-1:0] x;", &inc).unwrap();
    assert!(out.contains("wire [16-1:0] x;"));
}

#[test]
fn preproc_errors() {
    assert!(preprocess("`ifdef X\n", &NoIncludes).is_err());
    assert!(preprocess("`endif\n", &NoIncludes).is_err());
    assert!(preprocess("`include \"missing.vh\"", &NoIncludes).is_err());
    assert!(preprocess("`UNDEFINED_MACRO x;", &NoIncludes).is_err());
    assert!(preprocess("`bogus_directive\n", &NoIncludes).is_err());
}

#[test]
fn preproc_undef() {
    let src = "`define X 1\n`undef X\n`ifdef X\nyes\n`endif";
    let out = preprocess(src, &NoIncludes).unwrap();
    assert!(!out.contains("yes"));
}

#[test]
fn preproc_ignores_timescale() {
    assert!(preprocess("`timescale 1ns/1ps\nwire x;", &NoIncludes).is_ok());
}

// ----------------------------------------------------------------------
// Functions
// ----------------------------------------------------------------------

#[test]
fn parse_function_classic_style() {
    let m = first_module(
        "module T(input wire [7:0] a, input wire [7:0] b, output wire [7:0] o);\n\
         function [7:0] max2;\n\
           input [7:0] x;\n\
           input [7:0] y;\n\
           begin\n\
             if (x > y) max2 = x; else max2 = y;\n\
           end\n\
         endfunction\n\
         assign o = max2(a, b);\n\
         endmodule",
    );
    let ModuleItem::Function(f) = &m.items[0] else {
        panic!("expected function")
    };
    assert_eq!(f.name, "max2");
    assert_eq!(f.inputs.len(), 2);
    let ModuleItem::Assign(a) = &m.items[1] else {
        panic!()
    };
    assert!(matches!(&a.rhs, Expr::FnCall { name, args } if name == "max2" && args.len() == 2));
}

#[test]
fn parse_function_ansi_style_with_locals() {
    let m = first_module(
        "module T;\n\
         function signed [15:0] dot(input signed [7:0] a, input signed [7:0] b);\n\
           reg signed [15:0] tmp;\n\
           begin tmp = a * b; dot = tmp; end\n\
         endfunction\n\
         endmodule",
    );
    let ModuleItem::Function(f) = &m.items[0] else {
        panic!()
    };
    assert!(f.signed);
    assert_eq!(f.inputs.len(), 2);
    assert_eq!(f.locals.len(), 1);
}

#[test]
fn inline_functions_produces_comb_blocks() {
    let m = first_module(
        "module T(input wire [7:0] a, input wire [7:0] b, output wire [7:0] o);\n\
         function [7:0] max2;\n\
           input [7:0] x; input [7:0] y;\n\
           max2 = (x > y) ? x : y;\n\
         endfunction\n\
         assign o = max2(a, max2(b, 8'd7));\n\
         endmodule",
    );
    let out = crate::inline_functions(&m).unwrap();
    assert!(!out
        .items
        .iter()
        .any(|i| matches!(i, ModuleItem::Function(_))));
    let blocks = out
        .items
        .iter()
        .filter(|i| matches!(i, ModuleItem::Always(_)))
        .count();
    assert_eq!(blocks, 2, "one block per call site");
    // The result still type-checks as a plain module.
    let lib = ModuleLibrary::new();
    check_module(&out, &ParamEnv::new(), &lib).unwrap();
}

#[test]
fn inline_functions_rejects_bad_calls() {
    let unknown = first_module("module T(output wire o); assign o = nope(1); endmodule");
    assert!(crate::inline_functions(&unknown).is_err());

    let arity = first_module(
        "module T(output wire [7:0] o);\n\
         function [7:0] id; input [7:0] x; id = x; endfunction\n\
         assign o = id(1, 2);\n\
         endmodule",
    );
    assert!(crate::inline_functions(&arity).is_err());

    let recursive = first_module(
        "module T(output wire [7:0] o);\n\
         function [7:0] f; input [7:0] x; f = f(x); endfunction\n\
         assign o = f(1);\n\
         endmodule",
    );
    assert!(crate::inline_functions(&recursive).is_err());
}

#[test]
fn typecheck_validates_function_calls() {
    let lib = ModuleLibrary::new();
    let good = first_module(
        "module T(input wire [7:0] a, output wire [7:0] o);\n\
         function [7:0] inc; input [7:0] x; inc = x + 1; endfunction\n\
         assign o = inc(a);\n\
         endmodule",
    );
    assert!(check_module(&good, &ParamEnv::new(), &lib).is_ok());
    let bad = first_module(
        "module T(input wire [7:0] a, output wire [7:0] o);\n\
         function [7:0] inc; input [7:0] x; inc = x + 1; endfunction\n\
         assign o = inc(a, a);\n\
         endmodule",
    );
    assert!(check_module(&bad, &ParamEnv::new(), &lib).is_err());
}

#[test]
fn function_pretty_roundtrip() {
    let src = "module T(input wire [7:0] a, output wire [7:0] o);\n\
         function [7:0] twice;\n\
           input [7:0] x;\n\
           reg [7:0] t;\n\
           begin t = x + x; twice = t; end\n\
         endfunction\n\
         assign o = twice(a);\n\
         endmodule";
    let unit = parse(src).unwrap();
    let printed = pretty::print_unit(&unit);
    let reparsed = parse(&printed).unwrap_or_else(|e| panic!("reparse: {e}\n{printed}"));
    assert_eq!(pretty::print_unit(&reparsed), printed);
}

// ----------------------------------------------------------------------
// Generate blocks
// ----------------------------------------------------------------------

#[test]
fn parse_generate_for() {
    let m = first_module(
        "module T #(parameter N = 4)(input wire [N-1:0] a, output wire [N-1:0] o);\n\
         genvar i;\n\
         generate\n\
           for (i = 0; i < N; i = i + 1) begin : bits\n\
             assign o[i] = ~a[i];\n\
           end\n\
         endgenerate\n\
         endmodule",
    );
    assert!(matches!(&m.items[0], ModuleItem::Genvar(names) if names == &vec!["i".to_string()]));
    let ModuleItem::GenerateFor(g) = &m.items[1] else {
        panic!()
    };
    assert_eq!(g.genvar, "i");
    assert_eq!(g.label.as_deref(), Some("bits"));
    assert_eq!(g.items.len(), 1);
}

#[test]
fn expand_generates_unrolls_assigns() {
    let m = first_module(
        "module T(input wire [3:0] a, output wire [3:0] o);\n\
         genvar i;\n\
         generate\n\
           for (i = 0; i < 4; i = i + 1) begin : inv\n\
             assign o[i] = ~a[3 - i];\n\
           end\n\
         endgenerate\n\
         endmodule",
    );
    let out = crate::expand_generates(&m, &ParamEnv::new()).unwrap();
    let assigns = out
        .items
        .iter()
        .filter(|i| matches!(i, ModuleItem::Assign(_)))
        .count();
    assert_eq!(assigns, 4);
    assert!(!out
        .items
        .iter()
        .any(|i| matches!(i, ModuleItem::GenerateFor(_))));
}

#[test]
fn expand_generates_renames_inner_decls() {
    let m = first_module(
        "module T(input wire clk, output wire [1:0] o);\n\
         genvar i;\n\
         generate\n\
           for (i = 0; i < 2; i = i + 1) begin : stage\n\
             reg r = 0;\n\
             always @(posedge clk) r <= ~r;\n\
             assign o[i] = r;\n\
           end\n\
         endgenerate\n\
         endmodule",
    );
    let out = crate::expand_generates(&m, &ParamEnv::new()).unwrap();
    let printed = pretty::print_module(&out);
    assert!(printed.contains("r__stage_0"), "{printed}");
    assert!(printed.contains("r__stage_1"), "{printed}");
    // The unrolled module type-checks (no duplicate declarations).
    check_module(&out, &ParamEnv::new(), &ModuleLibrary::new()).unwrap();
}

#[test]
fn expand_generates_rejects_nonconstant_bounds() {
    let m = first_module(
        "module T(input wire [3:0] n, output wire o);\n\
         genvar i;\n\
         generate\n\
           for (i = 0; i < n; i = i + 1) begin : b\n\
             assign o = 0;\n\
           end\n\
         endgenerate\n\
         endmodule",
    );
    assert!(crate::expand_generates(&m, &ParamEnv::new()).is_err());
}

#[test]
fn generate_pretty_roundtrip() {
    let src = "module T #(parameter N = 3)(input wire [N-1:0] a, output wire [N-1:0] o);\n\
         genvar i;\n\
         generate\n\
           for (i = 0; i < N; i = i + 1) begin : g\n\
             assign o[i] = a[i];\n\
           end\n\
         endgenerate\n\
         endmodule";
    let unit = parse(src).unwrap();
    let printed = pretty::print_unit(&unit);
    let reparsed = parse(&printed).unwrap_or_else(|e| panic!("reparse: {e}\n{printed}"));
    assert_eq!(pretty::print_unit(&reparsed), printed);
}
