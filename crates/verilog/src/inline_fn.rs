//! Function inlining: rewrites user function calls into combinational
//! `always @(*)` blocks.
//!
//! Synthesizable Verilog functions are pure combinational logic. Each call
//! site becomes a dedicated block that copies the arguments into materialized
//! input registers (getting the input-range truncation semantics right),
//! executes the renamed body, and leaves the result in a return register the
//! call expression is replaced by. Both the simulator and the synthesizer
//! consume the inlined form, so this is the single implementation of
//! function semantics.

use crate::ast::*;
use crate::source::{Diagnostic, FrontendResult, Phase, Span};
use std::collections::BTreeMap;

fn err(msg: impl Into<String>) -> Diagnostic {
    Diagnostic::new(Phase::Elaborate, msg, Span::synthetic())
}

/// Rewrites every function call in `module`, removing the function
/// declarations. Idempotent on modules without functions.
///
/// # Errors
///
/// Returns a [`Diagnostic`] for unknown functions, arity mismatches,
/// recursion (directly or through other functions, depth > 16), or calls in
/// constant contexts (parameter values and declared ranges).
pub fn inline_functions(module: &Module) -> FrontendResult<Module> {
    let mut functions: BTreeMap<String, FunctionDecl> = BTreeMap::new();
    for item in &module.items {
        if let ModuleItem::Function(f) = item {
            if functions.contains_key(&f.name) {
                return Err(err(format!("duplicate function `{}`", f.name)));
            }
            functions.insert(f.name.clone(), f.clone());
        }
    }
    let mut out = module.clone();
    out.items.retain(|i| !matches!(i, ModuleItem::Function(_)));
    if functions.is_empty() {
        // Still reject stray calls.
        return match find_any_call(&out) {
            Some(name) => Err(err(format!("unknown function `{name}`"))),
            None => Ok(out),
        };
    }
    let mut ctx = Inliner {
        functions,
        counter: 0,
        new_items: Vec::new(),
    };
    for item in &mut out.items {
        ctx.rewrite_item(item, 0)?;
    }
    out.items.extend(ctx.new_items);
    Ok(out)
}

/// Whether the module declares or calls any functions (used to skip the
/// pass cheaply).
pub fn has_functions(module: &Module) -> bool {
    module
        .items
        .iter()
        .any(|i| matches!(i, ModuleItem::Function(_)))
        || find_any_call(module).is_some()
}

fn find_any_call(module: &Module) -> Option<String> {
    fn in_expr(e: &Expr, hit: &mut Option<String>) {
        if hit.is_some() {
            return;
        }
        if let Expr::FnCall { name, .. } = e {
            *hit = Some(name.clone());
            return;
        }
        walk_subexprs(e, &mut |sub| in_expr(sub, hit));
    }
    let mut hit = None;
    for item in &module.items {
        for_each_item_expr(item, &mut |e| in_expr(e, &mut hit));
        if hit.is_some() {
            break;
        }
    }
    hit
}

struct Inliner {
    functions: BTreeMap<String, FunctionDecl>,
    counter: u32,
    new_items: Vec<ModuleItem>,
}

impl Inliner {
    fn rewrite_item(&mut self, item: &mut ModuleItem, depth: u32) -> FrontendResult<()> {
        match item {
            ModuleItem::Net(decl) => {
                for d in &mut decl.decls {
                    if let Some(init) = &mut d.init {
                        self.rewrite_expr(init, depth)?;
                    }
                }
            }
            ModuleItem::Param(p) => {
                if expr_has_call(&p.value) {
                    return Err(err(format!(
                        "function call in constant expression for parameter `{}` is unsupported",
                        p.name
                    )));
                }
            }
            ModuleItem::Assign(a) => {
                self.rewrite_expr(&mut a.rhs, depth)?;
                let mut lhs_err = Ok(());
                a.lhs.visit_exprs(&mut |e| {
                    if expr_has_call(e) {
                        lhs_err = Err(err("function call in a select expression of an assignment target is unsupported"));
                    }
                });
                lhs_err?;
            }
            ModuleItem::Always(a) => {
                if let Sensitivity::List(items) = &mut a.sensitivity {
                    for it in &mut items.iter_mut() {
                        self.rewrite_expr(&mut it.expr, depth)?;
                    }
                }
                self.rewrite_stmt(&mut a.body, depth)?;
            }
            ModuleItem::Initial(i) => self.rewrite_stmt(&mut i.body, depth)?,
            ModuleItem::Instance(inst) => {
                for c in inst.ports.iter_mut().chain(inst.params.iter_mut()) {
                    if let Some(e) = &mut c.expr {
                        self.rewrite_expr(e, depth)?;
                    }
                }
            }
            ModuleItem::Statement(s) => self.rewrite_stmt(s, depth)?,
            ModuleItem::Function(_) | ModuleItem::Genvar(_) => {}
            ModuleItem::GenerateFor(_) => {
                return Err(err(
                    "generate blocks must be expanded before function inlining (internal error)",
                ));
            }
        }
        Ok(())
    }

    fn rewrite_stmt(&mut self, s: &mut Stmt, depth: u32) -> FrontendResult<()> {
        match s {
            Stmt::Block { stmts, .. } => {
                for st in stmts {
                    self.rewrite_stmt(st, depth)?;
                }
            }
            Stmt::Blocking { rhs, .. } | Stmt::NonBlocking { rhs, .. } => {
                self.rewrite_expr(rhs, depth)?;
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                self.rewrite_expr(cond, depth)?;
                self.rewrite_stmt(then_branch, depth)?;
                if let Some(e) = else_branch {
                    self.rewrite_stmt(e, depth)?;
                }
            }
            Stmt::Case {
                scrutinee,
                arms,
                default,
                ..
            } => {
                self.rewrite_expr(scrutinee, depth)?;
                for arm in arms {
                    for l in &mut arm.labels {
                        self.rewrite_expr(l, depth)?;
                    }
                    self.rewrite_stmt(&mut arm.body, depth)?;
                }
                if let Some(d) = default {
                    self.rewrite_stmt(d, depth)?;
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.rewrite_stmt(init, depth)?;
                self.rewrite_expr(cond, depth)?;
                self.rewrite_stmt(step, depth)?;
                self.rewrite_stmt(body, depth)?;
            }
            Stmt::While { cond, body, .. } => {
                self.rewrite_expr(cond, depth)?;
                self.rewrite_stmt(body, depth)?;
            }
            Stmt::Repeat { count, body, .. } => {
                self.rewrite_expr(count, depth)?;
                self.rewrite_stmt(body, depth)?;
            }
            Stmt::Forever { body, .. } => self.rewrite_stmt(body, depth)?,
            Stmt::SystemTask { args, .. } => {
                for a in args {
                    self.rewrite_expr(a, depth)?;
                }
            }
            Stmt::Null => {}
        }
        Ok(())
    }

    /// Replaces calls bottom-up in one expression.
    fn rewrite_expr(&mut self, e: &mut Expr, depth: u32) -> FrontendResult<()> {
        if depth > 16 {
            return Err(err("function expansion exceeds depth 16 (recursion?)"));
        }
        // Children first, so nested calls inside arguments are expanded.
        walk_subexprs_mut(e, &mut |sub| self.rewrite_expr(sub, depth))?;
        if let Expr::FnCall { name, args } = e {
            let name = name.clone();
            let args = std::mem::take(args);
            let ret = self.expand_call(&name, args, depth)?;
            *e = Expr::Ident(ret);
        }
        Ok(())
    }

    /// Expands one call, returning the name of its return register.
    fn expand_call(&mut self, name: &str, args: Vec<Expr>, depth: u32) -> FrontendResult<String> {
        let f = self
            .functions
            .get(name)
            .cloned()
            .ok_or_else(|| err(format!("unknown function `{name}`")))?;
        if args.len() != f.inputs.len() {
            return Err(err(format!(
                "function `{name}` takes {} argument(s), got {}",
                f.inputs.len(),
                args.len()
            )));
        }
        let k = self.counter;
        self.counter += 1;
        let prefix = format!("__fn_{name}_{k}");
        let ret = format!("{prefix}_ret");

        // Return register.
        self.new_items.push(ModuleItem::Net(NetDecl {
            kind: NetKind::Reg,
            signed: f.signed,
            range: f.range.clone(),
            decls: vec![Declarator {
                name: ret.clone(),
                array: None,
                init: None,
                span: Span::synthetic(),
            }],
            span: Span::synthetic(),
        }));
        // Materialized inputs (the copy gives input-width truncation).
        let mut renames: BTreeMap<String, String> = BTreeMap::new();
        renames.insert(f.name.clone(), ret.clone());
        let mut prologue: Vec<Stmt> = Vec::new();
        for ((in_name, in_range, in_signed), arg) in f.inputs.iter().zip(args) {
            let mat = format!("{prefix}_{in_name}");
            self.new_items.push(ModuleItem::Net(NetDecl {
                kind: NetKind::Reg,
                signed: *in_signed,
                range: in_range.clone(),
                decls: vec![Declarator {
                    name: mat.clone(),
                    array: None,
                    init: None,
                    span: Span::synthetic(),
                }],
                span: Span::synthetic(),
            }));
            prologue.push(Stmt::Blocking {
                lhs: LValue::Ident(mat.clone()),
                rhs: arg,
                span: Span::synthetic(),
            });
            renames.insert(in_name.clone(), mat);
        }
        // Locals.
        for local in &f.locals {
            let mut decl = local.clone();
            for d in &mut decl.decls {
                let mat = format!("{prefix}_{}", d.name);
                renames.insert(d.name.clone(), mat.clone());
                d.name = mat;
            }
            self.new_items.push(ModuleItem::Net(decl));
        }
        // Renamed body; nested calls inside it expand recursively.
        let mut body = f.body.clone();
        rename_stmt(&mut body, &renames);
        let mut full = Stmt::Block {
            name: None,
            stmts: prologue.into_iter().chain([body]).collect(),
        };
        self.rewrite_stmt(&mut full, depth + 1)?;
        self.new_items.push(ModuleItem::Always(AlwaysBlock {
            sensitivity: Sensitivity::Star,
            body: full,
            span: Span::synthetic(),
        }));
        Ok(ret)
    }
}

fn expr_has_call(e: &Expr) -> bool {
    let mut found = false;
    fn walk(e: &Expr, found: &mut bool) {
        if *found {
            return;
        }
        if matches!(e, Expr::FnCall { .. }) {
            *found = true;
            return;
        }
        walk_subexprs(e, &mut |sub| walk(sub, found));
    }
    walk(e, &mut found);
    found
}

// ----------------------------------------------------------------------
// Generic walkers / renamers
// ----------------------------------------------------------------------

pub(crate) fn walk_subexprs(e: &Expr, f: &mut impl FnMut(&Expr)) {
    match e {
        Expr::Literal { .. }
        | Expr::MaskedLiteral { .. }
        | Expr::Str(_)
        | Expr::Ident(_)
        | Expr::Hier(_) => {}
        Expr::Unary { operand, .. } => f(operand),
        Expr::Binary { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            f(cond);
            f(then_expr);
            f(else_expr);
        }
        Expr::Index { base, index } => {
            f(base);
            f(index);
        }
        Expr::Part { base, msb, lsb } => {
            f(base);
            f(msb);
            f(lsb);
        }
        Expr::IndexedPart {
            base,
            offset,
            width,
            ..
        } => {
            f(base);
            f(offset);
            f(width);
        }
        Expr::Concat(parts) => parts.iter().for_each(f),
        Expr::Replicate { count, inner } => {
            f(count);
            f(inner);
        }
        Expr::SystemCall { args, .. } | Expr::FnCall { args, .. } => args.iter().for_each(f),
    }
}

pub(crate) fn walk_subexprs_mut(
    e: &mut Expr,
    f: &mut impl FnMut(&mut Expr) -> FrontendResult<()>,
) -> FrontendResult<()> {
    match e {
        Expr::Literal { .. }
        | Expr::MaskedLiteral { .. }
        | Expr::Str(_)
        | Expr::Ident(_)
        | Expr::Hier(_) => Ok(()),
        Expr::Unary { operand, .. } => f(operand),
        Expr::Binary { lhs, rhs, .. } => {
            f(lhs)?;
            f(rhs)
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            f(cond)?;
            f(then_expr)?;
            f(else_expr)
        }
        Expr::Index { base, index } => {
            f(base)?;
            f(index)
        }
        Expr::Part { base, msb, lsb } => {
            f(base)?;
            f(msb)?;
            f(lsb)
        }
        Expr::IndexedPart {
            base,
            offset,
            width,
            ..
        } => {
            f(base)?;
            f(offset)?;
            f(width)
        }
        Expr::Concat(parts) => parts.iter_mut().try_for_each(f),
        Expr::Replicate { count, inner } => {
            f(count)?;
            f(inner)
        }
        Expr::SystemCall { args, .. } | Expr::FnCall { args, .. } => {
            args.iter_mut().try_for_each(f)
        }
    }
}

pub(crate) fn rename_expr(e: &mut Expr, renames: &BTreeMap<String, String>) {
    if let Expr::Ident(n) = e {
        if let Some(new) = renames.get(n) {
            *n = new.clone();
        }
        return;
    }
    let _ = walk_subexprs_mut(e, &mut |sub| {
        rename_expr(sub, renames);
        Ok(())
    });
}

pub(crate) fn rename_lvalue(lv: &mut LValue, renames: &BTreeMap<String, String>) {
    match lv {
        LValue::Ident(n)
        | LValue::Index { base: n, .. }
        | LValue::Part { base: n, .. }
        | LValue::IndexedPart { base: n, .. }
        | LValue::IndexThenPart { base: n, .. } => {
            if let Some(new) = renames.get(n) {
                *n = new.clone();
            }
        }
        LValue::Hier(_) => {}
        LValue::Concat(parts) => {
            for p in parts {
                rename_lvalue(p, renames);
            }
        }
    }
    match lv {
        LValue::Index { index, .. } => rename_expr(index, renames),
        LValue::Part { msb, lsb, .. } => {
            rename_expr(msb, renames);
            rename_expr(lsb, renames);
        }
        LValue::IndexedPart { offset, width, .. } => {
            rename_expr(offset, renames);
            rename_expr(width, renames);
        }
        LValue::IndexThenPart {
            index, msb, lsb, ..
        } => {
            rename_expr(index, renames);
            rename_expr(msb, renames);
            rename_expr(lsb, renames);
        }
        _ => {}
    }
}

pub(crate) fn rename_stmt(s: &mut Stmt, renames: &BTreeMap<String, String>) {
    match s {
        Stmt::Block { stmts, .. } => {
            for st in stmts {
                rename_stmt(st, renames);
            }
        }
        Stmt::Blocking { lhs, rhs, .. } | Stmt::NonBlocking { lhs, rhs, .. } => {
            rename_lvalue(lhs, renames);
            rename_expr(rhs, renames);
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            rename_expr(cond, renames);
            rename_stmt(then_branch, renames);
            if let Some(e) = else_branch {
                rename_stmt(e, renames);
            }
        }
        Stmt::Case {
            scrutinee,
            arms,
            default,
            ..
        } => {
            rename_expr(scrutinee, renames);
            for arm in arms {
                for l in &mut arm.labels {
                    rename_expr(l, renames);
                }
                rename_stmt(&mut arm.body, renames);
            }
            if let Some(d) = default {
                rename_stmt(d, renames);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            rename_stmt(init, renames);
            rename_expr(cond, renames);
            rename_stmt(step, renames);
            rename_stmt(body, renames);
        }
        Stmt::While { cond, body, .. } => {
            rename_expr(cond, renames);
            rename_stmt(body, renames);
        }
        Stmt::Repeat { count, body, .. } => {
            rename_expr(count, renames);
            rename_stmt(body, renames);
        }
        Stmt::Forever { body, .. } => rename_stmt(body, renames),
        Stmt::SystemTask { args, .. } => {
            for a in args {
                rename_expr(a, renames);
            }
        }
        Stmt::Null => {}
    }
}

fn for_each_item_expr(item: &ModuleItem, f: &mut impl FnMut(&Expr)) {
    fn stmt_exprs(s: &Stmt, f: &mut impl FnMut(&Expr)) {
        s.visit_exprs(f);
    }
    match item {
        ModuleItem::Net(d) => {
            for decl in &d.decls {
                if let Some(init) = &decl.init {
                    f(init);
                }
            }
        }
        ModuleItem::Param(p) => f(&p.value),
        ModuleItem::Assign(a) => {
            f(&a.rhs);
            a.lhs.visit_exprs(f);
        }
        ModuleItem::Always(a) => {
            if let Sensitivity::List(items) = &a.sensitivity {
                for it in items {
                    f(&it.expr);
                }
            }
            stmt_exprs(&a.body, f);
        }
        ModuleItem::Initial(i) => stmt_exprs(&i.body, f),
        ModuleItem::Instance(inst) => {
            for c in inst.ports.iter().chain(&inst.params) {
                if let Some(e) = &c.expr {
                    f(e);
                }
            }
        }
        ModuleItem::Statement(s) => stmt_exprs(s, f),
        ModuleItem::Function(func) => stmt_exprs(&func.body, f),
        ModuleItem::Genvar(_) => {}
        ModuleItem::GenerateFor(g) => {
            for it in &g.items {
                for_each_item_expr(it, f);
            }
        }
    }
}
