//! Type checking, constant evaluation, and symbol resolution.
//!
//! The checker resolves a module against a library of declared modules and a
//! set of parameter overrides, producing a [`CheckedModule`] with a fully
//! resolved symbol table. Both the simulator and the synthesizer elaborate
//! from this structure.

use crate::ast::*;
use crate::source::{Diagnostic, FrontendResult, Phase, Span};
use cascade_bits::Bits;
use std::collections::BTreeMap;

/// Resolved parameter values, in declaration order.
pub type ParamEnv = BTreeMap<String, Bits>;

/// What a name in a module's scope refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolKind {
    Wire,
    Reg,
    Integer,
    Parameter,
}

impl SymbolKind {
    /// Whether the symbol holds procedural state (assignable in `always`).
    pub fn is_variable(self) -> bool {
        matches!(self, SymbolKind::Reg | SymbolKind::Integer)
    }
}

/// A resolved declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Symbol {
    pub name: String,
    pub kind: SymbolKind,
    pub signed: bool,
    /// Declared bounds; `(0, 0)` for scalars.
    pub msb: i64,
    pub lsb: i64,
    /// Unpacked array bounds for memories.
    pub array: Option<(i64, i64)>,
    /// Port direction when the symbol is a port.
    pub port: Option<PortDir>,
    /// Declaration initializer (`reg [7:0] cnt = 1`).
    pub init: Option<Expr>,
    /// Resolved value for parameters.
    pub value: Option<Bits>,
}

impl Symbol {
    /// The packed width in bits.
    pub fn width(&self) -> u32 {
        ((self.msb - self.lsb).unsigned_abs() + 1) as u32
    }

    /// The number of array words (1 for non-arrays).
    pub fn array_len(&self) -> u64 {
        match self.array {
            Some((a, b)) => (a - b).unsigned_abs() + 1,
            None => 1,
        }
    }

    /// Maps a source-level bit index to an offset from the LSB end, or
    /// `None` when out of declared range.
    pub fn bit_offset(&self, index: i64) -> Option<u32> {
        let (lo, hi) = if self.msb >= self.lsb {
            (self.lsb, self.msb)
        } else {
            (self.msb, self.lsb)
        };
        if index < lo || index > hi {
            return None;
        }
        let off = if self.msb >= self.lsb {
            index - self.lsb
        } else {
            self.lsb - index
        };
        Some(off as u32)
    }

    /// Maps a source-level array index to a word offset, or `None` when out
    /// of range.
    pub fn array_offset(&self, index: i64) -> Option<u64> {
        let (a, b) = self.array?;
        let (lo, hi) = if a >= b { (b, a) } else { (a, b) };
        if index < lo || index > hi {
            return None;
        }
        Some((index - lo) as u64)
    }
}

/// A type-checked module: the AST plus resolved parameters and symbols.
#[derive(Debug, Clone)]
pub struct CheckedModule {
    pub module: Module,
    pub params: ParamEnv,
    pub symbols: BTreeMap<String, Symbol>,
    /// `(instance name, module name, resolved parameter overrides)`.
    pub instances: Vec<ResolvedInstance>,
}

/// A resolved instantiation site.
#[derive(Debug, Clone)]
pub struct ResolvedInstance {
    pub inst_name: String,
    pub module_name: String,
    pub params: ParamEnv,
    /// Port connections resolved to `(port name, expr)`.
    pub connections: Vec<(String, Option<Expr>)>,
}

impl CheckedModule {
    /// Looks up a symbol.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.get(name)
    }

    /// The declared width of a named symbol, if any.
    pub fn width_of(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).map(Symbol::width)
    }
}

/// Evaluates a constant expression under a parameter environment.
///
/// Supports every operator the parser accepts except runtime-only constructs
/// (hierarchical names, `$time`, `$random`).
///
/// # Errors
///
/// Returns a [`Diagnostic`] when the expression references a non-parameter
/// name or a runtime-only construct.
pub fn const_eval(expr: &Expr, env: &ParamEnv) -> FrontendResult<Bits> {
    let err = |msg: String| Diagnostic::new(Phase::Elaborate, msg, Span::synthetic());
    match expr {
        Expr::Literal { value, .. } => Ok(value.clone()),
        Expr::MaskedLiteral { value, .. } => Ok(value.clone()),
        Expr::Str(_) => Err(err("string is not a constant value".into())),
        Expr::Ident(name) => env
            .get(name)
            .cloned()
            .ok_or_else(|| err(format!("`{name}` is not a constant parameter"))),
        Expr::Hier(path) => Err(err(format!(
            "hierarchical name `{}` is not constant",
            path.join(".")
        ))),
        Expr::Unary { op, operand } => {
            let v = const_eval(operand, env)?;
            Ok(apply_unary(*op, &v))
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = const_eval(lhs, env)?;
            let r = const_eval(rhs, env)?;
            Ok(apply_binary(*op, &l, &r))
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            if const_eval(cond, env)?.to_bool() {
                const_eval(then_expr, env)
            } else {
                const_eval(else_expr, env)
            }
        }
        Expr::Index { base, index } => {
            let b = const_eval(base, env)?;
            let i = const_eval(index, env)?.to_u64() as u32;
            Ok(Bits::from_bool(b.bit(i)))
        }
        Expr::Part { base, msb, lsb } => {
            let b = const_eval(base, env)?;
            let m = const_eval(msb, env)?.to_u64() as u32;
            let l = const_eval(lsb, env)?.to_u64() as u32;
            let (lo, hi) = if m >= l { (l, m) } else { (m, l) };
            Ok(b.slice(lo, hi - lo + 1))
        }
        Expr::IndexedPart {
            base,
            offset,
            width,
            ascending,
        } => {
            let b = const_eval(base, env)?;
            let off = const_eval(offset, env)?.to_u64() as u32;
            let w = const_eval(width, env)?.to_u64() as u32;
            let lo = if *ascending {
                off
            } else {
                off.saturating_sub(w.saturating_sub(1))
            };
            Ok(b.slice(lo, w))
        }
        Expr::Concat(parts) => {
            let mut acc = Bits::zero(0);
            for p in parts {
                let v = const_eval(p, env)?;
                acc = acc.concat(&v);
            }
            Ok(acc)
        }
        Expr::Replicate { count, inner } => {
            let c = const_eval(count, env)?.to_u64() as u32;
            Ok(const_eval(inner, env)?.repeat(c))
        }
        Expr::FnCall { name, .. } => Err(err(format!(
            "function call `{name}(...)` in a constant expression is unsupported"
        ))),
        Expr::SystemCall { func, args } => match func {
            SystemFunction::Clog2 => {
                let v = const_eval(
                    args.first()
                        .ok_or_else(|| err("$clog2 requires an argument".into()))?,
                    env,
                )?;
                Ok(Bits::from_u64(32, clog2(&v)))
            }
            SystemFunction::Signed | SystemFunction::Unsigned => const_eval(
                args.first()
                    .ok_or_else(|| err(format!("{} requires an argument", func.as_str())))?,
                env,
            ),
            SystemFunction::Time | SystemFunction::Random => {
                Err(err(format!("{} is not constant", func.as_str())))
            }
        },
    }
}

/// Ceiling log base 2 (Verilog `$clog2` semantics: `$clog2(0) == 0`).
pub fn clog2(v: &Bits) -> u64 {
    match v.leading_one() {
        None => 0,
        Some(msb) => {
            // Exact power of two => msb; otherwise msb + 1.
            if v.count_ones() == 1 {
                msb as u64
            } else {
                msb as u64 + 1
            }
        }
    }
}

/// Applies a unary operator with Verilog semantics (context-free widths).
pub fn apply_unary(op: UnaryOp, v: &Bits) -> Bits {
    match op {
        UnaryOp::Plus => v.clone(),
        UnaryOp::Neg => v.neg(),
        UnaryOp::LogicalNot => Bits::from_bool(!v.to_bool()),
        UnaryOp::BitNot => v.not(),
        UnaryOp::ReduceAnd => Bits::from_bool(v.reduce_and()),
        UnaryOp::ReduceOr => Bits::from_bool(v.reduce_or()),
        UnaryOp::ReduceXor => Bits::from_bool(v.reduce_xor()),
        UnaryOp::ReduceNand => Bits::from_bool(!v.reduce_and()),
        UnaryOp::ReduceNor => Bits::from_bool(!v.reduce_or()),
        UnaryOp::ReduceXnor => Bits::from_bool(!v.reduce_xor()),
    }
}

/// Applies a binary operator with Verilog two-state, unsigned semantics.
pub fn apply_binary(op: BinaryOp, l: &Bits, r: &Bits) -> Bits {
    use std::cmp::Ordering;
    match op {
        BinaryOp::Add => l.add(r),
        BinaryOp::Sub => l.sub(r),
        BinaryOp::Mul => l.mul(r),
        BinaryOp::Div => l.div(r),
        BinaryOp::Rem => l.rem(r),
        BinaryOp::Pow => l.pow(r),
        BinaryOp::And => l.and(r),
        BinaryOp::Or => l.or(r),
        BinaryOp::Xor => l.xor(r),
        BinaryOp::Xnor => l.xnor(r),
        BinaryOp::LogicalAnd => Bits::from_bool(l.to_bool() && r.to_bool()),
        BinaryOp::LogicalOr => Bits::from_bool(l.to_bool() || r.to_bool()),
        BinaryOp::Eq | BinaryOp::CaseEq => Bits::from_bool(l.eq_value(r)),
        BinaryOp::Ne | BinaryOp::CaseNe => Bits::from_bool(!l.eq_value(r)),
        BinaryOp::Lt => Bits::from_bool(l.cmp_unsigned(r) == Ordering::Less),
        BinaryOp::Le => Bits::from_bool(l.cmp_unsigned(r) != Ordering::Greater),
        BinaryOp::Gt => Bits::from_bool(l.cmp_unsigned(r) == Ordering::Greater),
        BinaryOp::Ge => Bits::from_bool(l.cmp_unsigned(r) != Ordering::Less),
        BinaryOp::Shl | BinaryOp::AShl => l.shl(r.to_u64().min(u32::MAX as u64) as u32),
        BinaryOp::Shr => l.shr(r.to_u64().min(u32::MAX as u64) as u32),
        BinaryOp::AShr => l.ashr(r.to_u64().min(u32::MAX as u64) as u32),
    }
}

/// Resolves a module's parameters (header defaults plus body
/// `parameter`/`localparam` items) under the given overrides, without
/// running the full checker.
///
/// # Errors
///
/// Returns the first diagnostic from a non-constant default value.
pub fn resolve_params(module: &Module, overrides: &ParamEnv) -> FrontendResult<ParamEnv> {
    let mut env = ParamEnv::new();
    for p in &module.params {
        let value = match overrides.get(&p.name) {
            Some(v) => v.clone(),
            None => const_eval(&p.value, &env)?,
        };
        env.insert(p.name.clone(), value);
    }
    for item in &module.items {
        if let ModuleItem::Param(p) = item {
            let value = if !p.local && overrides.contains_key(&p.name) {
                overrides[&p.name].clone()
            } else {
                const_eval(&p.value, &env)?
            };
            env.insert(p.name.clone(), value);
        }
    }
    Ok(env)
}

/// A library of module declarations used to resolve instantiations.
#[derive(Debug, Clone, Default)]
pub struct ModuleLibrary {
    modules: BTreeMap<String, Module>,
}

impl ModuleLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a module declaration.
    pub fn insert(&mut self, module: Module) {
        self.modules.insert(module.name.clone(), module);
    }

    /// Looks up a module by name.
    pub fn get(&self, name: &str) -> Option<&Module> {
        self.modules.get(name)
    }

    /// Whether a module with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.modules.contains_key(name)
    }

    /// Iterates over the declared modules.
    pub fn iter(&self) -> impl Iterator<Item = &Module> {
        self.modules.values()
    }
}

/// Type-checks `module` against `library` with the given parameter
/// overrides.
///
/// # Errors
///
/// Returns every diagnostic found (declaration conflicts, unresolved names,
/// illegal assignment targets, bad instantiations).
pub fn check_module(
    module: &Module,
    overrides: &ParamEnv,
    library: &ModuleLibrary,
) -> Result<CheckedModule, Vec<Diagnostic>> {
    let mut ck = Checker {
        library,
        diags: Vec::new(),
        symbols: BTreeMap::new(),
        params: BTreeMap::new(),
        functions: BTreeMap::new(),
    };
    let out = ck.run(module, overrides);
    if ck.diags.is_empty() {
        Ok(out)
    } else {
        Err(ck.diags)
    }
}

struct Checker<'a> {
    library: &'a ModuleLibrary,
    diags: Vec<Diagnostic>,
    symbols: BTreeMap<String, Symbol>,
    params: ParamEnv,
    /// Declared functions: name → arity.
    functions: BTreeMap<String, usize>,
}

impl<'a> Checker<'a> {
    fn error(&mut self, msg: impl Into<String>, span: Span) {
        self.diags
            .push(Diagnostic::new(Phase::Typecheck, msg, span));
    }

    fn declare(&mut self, sym: Symbol, span: Span) {
        if self.symbols.contains_key(&sym.name) {
            self.error(format!("duplicate declaration of `{}`", sym.name), span);
            return;
        }
        self.symbols.insert(sym.name.clone(), sym);
    }

    fn resolve_range(&mut self, range: &Option<Range>, span: Span) -> (i64, i64) {
        match range {
            None => (0, 0),
            Some(r) => {
                let msb = match const_eval(&r.msb, &self.params) {
                    Ok(v) => v.to_i64(),
                    Err(e) => {
                        self.error(format!("range bound: {}", e.message), span);
                        0
                    }
                };
                let lsb = match const_eval(&r.lsb, &self.params) {
                    Ok(v) => v.to_i64(),
                    Err(e) => {
                        self.error(format!("range bound: {}", e.message), span);
                        0
                    }
                };
                if (msb - lsb).unsigned_abs() + 1 > 1_000_000 {
                    self.error("range exceeds 1,000,000 bits", span);
                    return (0, 0);
                }
                (msb, lsb)
            }
        }
    }

    fn run(&mut self, module: &Module, overrides: &ParamEnv) -> CheckedModule {
        // Pass 0: parameters (in order; later ones may use earlier ones).
        for p in &module.params {
            let value = overrides.get(&p.name).cloned().or_else(|| {
                const_eval(&p.value, &self.params)
                    .map_err(|e| {
                        self.error(format!("parameter `{}`: {}", p.name, e.message), p.span)
                    })
                    .ok()
            });
            let value = value.unwrap_or_else(|| Bits::from_u64(32, 0));
            self.params.insert(p.name.clone(), value.clone());
            let (msb, lsb) = self.resolve_range(&p.range, p.span);
            self.declare(
                Symbol {
                    name: p.name.clone(),
                    kind: SymbolKind::Parameter,
                    signed: false,
                    msb,
                    lsb,
                    array: None,
                    port: None,
                    init: None,
                    value: Some(value),
                },
                p.span,
            );
        }
        // Collect function names for call checking.
        for item in &module.items {
            if let ModuleItem::Function(f) = item {
                self.functions.insert(f.name.clone(), f.inputs.len());
            }
        }
        for item in &module.items {
            if let ModuleItem::Param(p) = item {
                if !p.local && overrides.contains_key(&p.name) {
                    self.params
                        .insert(p.name.clone(), overrides[&p.name].clone());
                } else {
                    match const_eval(&p.value, &self.params) {
                        Ok(v) => {
                            self.params.insert(p.name.clone(), v);
                        }
                        Err(e) => {
                            self.error(format!("parameter `{}`: {}", p.name, e.message), p.span)
                        }
                    }
                }
                let value = self.params.get(&p.name).cloned();
                let (msb, lsb) = self.resolve_range(&p.range, p.span);
                self.declare(
                    Symbol {
                        name: p.name.clone(),
                        kind: SymbolKind::Parameter,
                        signed: false,
                        msb,
                        lsb,
                        array: None,
                        port: None,
                        init: None,
                        value,
                    },
                    p.span,
                );
            }
        }

        // Pass 1: ports and nets.
        for port in &module.ports {
            let (msb, lsb) = self.resolve_range(&port.range, port.span);
            self.declare(
                Symbol {
                    name: port.name.clone(),
                    kind: if port.is_reg {
                        SymbolKind::Reg
                    } else {
                        SymbolKind::Wire
                    },
                    signed: port.signed,
                    msb,
                    lsb,
                    array: None,
                    port: Some(port.dir),
                    init: None,
                    value: None,
                },
                port.span,
            );
        }
        for item in &module.items {
            if let ModuleItem::Net(decl) = item {
                let (msb, lsb) = self.resolve_range(&decl.range, decl.span);
                for d in &decl.decls {
                    // `output foo;` followed by `reg foo;` re-declaration is
                    // common non-ANSI style; upgrade the port instead.
                    if let Some(existing) = self.symbols.get_mut(&d.name) {
                        if existing.port.is_some()
                            && !existing.kind.is_variable()
                            && decl.kind == NetKind::Reg
                        {
                            existing.kind = SymbolKind::Reg;
                            existing.init = d.init.clone();
                            continue;
                        }
                    }
                    let array = d.array.as_ref().map(|_| {
                        let r = self.resolve_range(&d.array, d.span);
                        if (r.0 - r.1).unsigned_abs() + 1 > 16_777_216 {
                            self.error("array exceeds 16M words", d.span);
                            (0, 0)
                        } else {
                            r
                        }
                    });
                    let (kind, signed, msb, lsb) = match decl.kind {
                        NetKind::Wire => (SymbolKind::Wire, decl.signed, msb, lsb),
                        NetKind::Reg => (SymbolKind::Reg, decl.signed, msb, lsb),
                        NetKind::Integer => (SymbolKind::Integer, true, 31, 0),
                    };
                    self.declare(
                        Symbol {
                            name: d.name.clone(),
                            kind,
                            signed,
                            msb,
                            lsb,
                            array,
                            port: None,
                            init: d.init.clone(),
                            value: None,
                        },
                        d.span,
                    );
                }
            }
        }

        // Pass 2: instances (names enter scope for hierarchical refs).
        let mut instances = Vec::new();
        for item in &module.items {
            if let ModuleItem::Instance(inst) = item {
                instances.push(self.check_instance(inst));
            }
        }

        // Pass 3: bodies.
        let inst_names: BTreeMap<String, String> = instances
            .iter()
            .map(|ri| (ri.inst_name.clone(), ri.module_name.clone()))
            .collect();
        for item in &module.items {
            match item {
                ModuleItem::Assign(a) => {
                    self.check_lvalue(&a.lhs, false, a.span);
                    self.check_expr(&a.rhs, &inst_names, a.span);
                }
                ModuleItem::Always(a) => {
                    if let Sensitivity::List(items) = &a.sensitivity {
                        for it in items {
                            self.check_expr(&it.expr, &inst_names, a.span);
                        }
                    }
                    self.check_stmt(&a.body, &inst_names, a.span);
                }
                ModuleItem::Initial(i) => self.check_stmt(&i.body, &inst_names, i.span),
                ModuleItem::Statement(s) => self.check_stmt(s, &inst_names, module.span),
                ModuleItem::Net(_)
                | ModuleItem::Param(_)
                | ModuleItem::Instance(_)
                | ModuleItem::Function(_)
                | ModuleItem::Genvar(_)
                | ModuleItem::GenerateFor(_) => {}
            }
        }

        CheckedModule {
            module: module.clone(),
            params: self.params.clone(),
            symbols: self.symbols.clone(),
            instances,
        }
    }

    fn check_instance(&mut self, inst: &Instance) -> ResolvedInstance {
        let mut params = ParamEnv::new();
        let mut connections = Vec::new();
        match self.library.get(&inst.module) {
            None => {
                self.error(format!("unknown module `{}`", inst.module), inst.span);
            }
            Some(decl) => {
                // Parameter overrides.
                for (i, conn) in inst.params.iter().enumerate() {
                    let target = match &conn.name {
                        Some(n) => {
                            if decl.param(n).is_none() {
                                self.error(
                                    format!("module `{}` has no parameter `{n}`", inst.module),
                                    conn.span,
                                );
                                continue;
                            }
                            n.clone()
                        }
                        None => match decl.params.get(i) {
                            Some(p) => p.name.clone(),
                            None => {
                                self.error(
                                    format!("too many positional parameters for `{}`", inst.module),
                                    conn.span,
                                );
                                continue;
                            }
                        },
                    };
                    if let Some(expr) = &conn.expr {
                        match const_eval(expr, &self.params) {
                            Ok(v) => {
                                params.insert(target, v);
                            }
                            Err(e) => self.error(
                                format!("parameter override `{target}`: {}", e.message),
                                conn.span,
                            ),
                        }
                    }
                }
                // Port connections.
                let named = inst.ports.iter().any(|c| c.name.is_some());
                if named {
                    for conn in &inst.ports {
                        match &conn.name {
                            Some(n) => {
                                if decl.port(n).is_none() {
                                    self.error(
                                        format!("module `{}` has no port `{n}`", inst.module),
                                        conn.span,
                                    );
                                } else {
                                    connections.push((n.clone(), conn.expr.clone()));
                                }
                            }
                            None => {
                                self.error("cannot mix named and positional connections", conn.span)
                            }
                        }
                    }
                } else {
                    for (i, conn) in inst.ports.iter().enumerate() {
                        match decl.ports.get(i) {
                            Some(p) => connections.push((p.name.clone(), conn.expr.clone())),
                            None => self.error(
                                format!("too many positional connections for `{}`", inst.module),
                                conn.span,
                            ),
                        }
                    }
                }
            }
        }
        if self.symbols.contains_key(&inst.name) {
            self.error(
                format!("instance name `{}` conflicts with a declaration", inst.name),
                inst.span,
            );
        }
        ResolvedInstance {
            inst_name: inst.name.clone(),
            module_name: inst.module.clone(),
            params,
            connections,
        }
    }

    #[allow(clippy::only_used_in_recursion)]
    fn check_stmt(&mut self, stmt: &Stmt, inst_names: &BTreeMap<String, String>, span: Span) {
        match stmt {
            Stmt::Block { stmts, .. } => {
                for s in stmts {
                    self.check_stmt(s, inst_names, span);
                }
            }
            Stmt::Blocking { lhs, rhs, span } | Stmt::NonBlocking { lhs, rhs, span } => {
                self.check_lvalue(lhs, true, *span);
                self.check_expr(rhs, inst_names, *span);
                let mut f = |e: &Expr| self.check_expr_inner(e, inst_names, *span);
                lhs.visit_exprs(&mut f);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                span,
            } => {
                self.check_expr(cond, inst_names, *span);
                self.check_stmt(then_branch, inst_names, *span);
                if let Some(e) = else_branch {
                    self.check_stmt(e, inst_names, *span);
                }
            }
            Stmt::Case {
                scrutinee,
                arms,
                default,
                span,
                ..
            } => {
                self.check_expr(scrutinee, inst_names, *span);
                for arm in arms {
                    for l in &arm.labels {
                        self.check_expr(l, inst_names, *span);
                    }
                    self.check_stmt(&arm.body, inst_names, *span);
                }
                if let Some(d) = default {
                    self.check_stmt(d, inst_names, *span);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                span,
            } => {
                self.check_stmt(init, inst_names, *span);
                self.check_expr(cond, inst_names, *span);
                self.check_stmt(step, inst_names, *span);
                self.check_stmt(body, inst_names, *span);
            }
            Stmt::While { cond, body, span } => {
                self.check_expr(cond, inst_names, *span);
                self.check_stmt(body, inst_names, *span);
            }
            Stmt::Repeat { count, body, span } => {
                self.check_expr(count, inst_names, *span);
                self.check_stmt(body, inst_names, *span);
            }
            Stmt::Forever { body, span } => self.check_stmt(body, inst_names, *span),
            Stmt::SystemTask { args, span, .. } => {
                for a in args {
                    self.check_expr(a, inst_names, *span);
                }
            }
            Stmt::Null => {}
        }
    }

    fn check_lvalue(&mut self, lv: &LValue, procedural: bool, span: Span) {
        match lv {
            // Hierarchical targets are validated against the instantiated
            // module where the instance table is known (the runtime's
            // transform); here we only require a plausible path.
            LValue::Hier(path) => {
                if path.len() < 2 {
                    self.error("hierarchical target needs at least two components", span);
                }
            }
            LValue::Concat(parts) => {
                for p in parts {
                    self.check_lvalue(p, procedural, span);
                }
            }
            _ => {
                let name = lv.written_names()[0].to_string();
                match self.symbols.get(&name).cloned() {
                    None => self.error(format!("assignment to undeclared `{name}`"), span),
                    Some(sym) => {
                        if procedural && !sym.kind.is_variable() {
                            self.error(format!("procedural assignment to non-reg `{name}`"), span);
                        }
                        if !procedural && sym.kind.is_variable() {
                            self.error(format!("continuous assignment to reg `{name}`"), span);
                        }
                        if !procedural && sym.kind == SymbolKind::Parameter {
                            self.error(format!("assignment to parameter `{name}`"), span);
                        }
                        if sym.port == Some(PortDir::Input) {
                            self.error(format!("assignment to input port `{name}`"), span);
                        }
                    }
                }
            }
        }
    }

    fn check_expr(&mut self, expr: &Expr, inst_names: &BTreeMap<String, String>, span: Span) {
        self.check_expr_inner(expr, inst_names, span);
    }

    fn check_expr_inner(&mut self, expr: &Expr, inst_names: &BTreeMap<String, String>, span: Span) {
        // Function-call validation (names and arity).
        let mut call_errors: Vec<String> = Vec::new();
        fn walk_calls(e: &Expr, functions: &BTreeMap<String, usize>, errors: &mut Vec<String>) {
            if let Expr::FnCall { name, args } = e {
                match functions.get(name) {
                    None => errors.push(format!("unknown function `{name}`")),
                    Some(&arity) if arity != args.len() => errors.push(format!(
                        "function `{name}` takes {arity} argument(s), got {}",
                        args.len()
                    )),
                    Some(_) => {}
                }
                for a in args {
                    walk_calls(a, functions, errors);
                }
                return;
            }
            match e {
                Expr::Unary { operand, .. } => walk_calls(operand, functions, errors),
                Expr::Binary { lhs, rhs, .. } => {
                    walk_calls(lhs, functions, errors);
                    walk_calls(rhs, functions, errors);
                }
                Expr::Ternary {
                    cond,
                    then_expr,
                    else_expr,
                } => {
                    walk_calls(cond, functions, errors);
                    walk_calls(then_expr, functions, errors);
                    walk_calls(else_expr, functions, errors);
                }
                Expr::Index { base, index } => {
                    walk_calls(base, functions, errors);
                    walk_calls(index, functions, errors);
                }
                Expr::Part { base, msb, lsb } => {
                    walk_calls(base, functions, errors);
                    walk_calls(msb, functions, errors);
                    walk_calls(lsb, functions, errors);
                }
                Expr::IndexedPart {
                    base,
                    offset,
                    width,
                    ..
                } => {
                    walk_calls(base, functions, errors);
                    walk_calls(offset, functions, errors);
                    walk_calls(width, functions, errors);
                }
                Expr::Concat(parts) => {
                    for p in parts {
                        walk_calls(p, functions, errors);
                    }
                }
                Expr::Replicate { count, inner } => {
                    walk_calls(count, functions, errors);
                    walk_calls(inner, functions, errors);
                }
                Expr::SystemCall { args, .. } => {
                    for a in args {
                        walk_calls(a, functions, errors);
                    }
                }
                _ => {}
            }
        }
        walk_calls(expr, &self.functions, &mut call_errors);
        for msg in call_errors {
            self.error(msg, span);
        }
        let mut unknown: Vec<String> = Vec::new();
        expr.visit_reads(&mut |path: &[String]| {
            if path.len() == 1 {
                let n = &path[0];
                if !self.symbols.contains_key(n) && !inst_names.contains_key(n) {
                    unknown.push(format!("unknown identifier `{n}`"));
                }
            } else {
                // Hierarchical: first component must be a known instance; the
                // rest is validated against the instantiated module when the
                // runtime flattens the design.
                let head = &path[0];
                if !inst_names.contains_key(head) {
                    unknown.push(format!(
                        "hierarchical reference through unknown instance `{head}`"
                    ));
                } else if let Some(target) = inst_names.get(head) {
                    if let Some(decl) = self.library.get(target) {
                        let leaf = &path[1];
                        let is_port = decl.port(leaf).is_some();
                        let is_net = decl.items.iter().any(|it| match it {
                            ModuleItem::Net(d) => d.decls.iter().any(|dd| &dd.name == leaf),
                            _ => false,
                        });
                        if !is_port && !is_net {
                            unknown.push(format!("module `{target}` has no member `{leaf}`"));
                        }
                    }
                }
            }
        });
        for msg in unknown {
            self.error(msg, span);
        }
    }
}
