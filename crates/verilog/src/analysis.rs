//! Static analyses over the AST: cross-module references, read/write sets,
//! synthesizability classification, and the syntax statistics reported in
//! the paper's Table 1.

use crate::ast::*;
use std::collections::BTreeSet;

/// Collects every hierarchical reference (`r.y`) read inside a module.
///
/// The Cascade IR transform promotes these to ports (paper Fig. 4). Verilog
/// has no pointers, so the analysis is exact ("tractable, sound, and
/// complete" in the paper's words).
pub fn hierarchical_reads(module: &Module) -> BTreeSet<Vec<String>> {
    let mut out = BTreeSet::new();
    let mut visit = |e: &Expr| {
        e.visit_reads(&mut |path: &[String]| {
            if path.len() > 1 {
                out.insert(path.to_vec());
            }
        });
    };
    for_each_expr(module, &mut visit);
    out
}

/// Collects the simple identifiers read anywhere in a module.
pub fn read_set(module: &Module) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut visit = |e: &Expr| {
        e.visit_reads(&mut |path: &[String]| {
            if path.len() == 1 {
                out.insert(path[0].clone());
            }
        });
    };
    for_each_expr(module, &mut visit);
    out
}

/// Collects the identifiers written anywhere in a module (procedural and
/// continuous targets).
pub fn write_set(module: &Module) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for item in &module.items {
        match item {
            ModuleItem::Assign(a) => {
                for n in a.lhs.written_names() {
                    out.insert(n.to_string());
                }
            }
            ModuleItem::Always(a) => {
                a.body.visit_writes(&mut |lv, _| {
                    for n in lv.written_names() {
                        out.insert(n.to_string());
                    }
                });
            }
            ModuleItem::Initial(i) => {
                i.body.visit_writes(&mut |lv, _| {
                    for n in lv.written_names() {
                        out.insert(n.to_string());
                    }
                });
            }
            ModuleItem::Statement(s) => {
                s.visit_writes(&mut |lv, _| {
                    for n in lv.written_names() {
                        out.insert(n.to_string());
                    }
                });
            }
            _ => {}
        }
    }
    out
}

/// Applies `visit` to every expression in the module.
fn for_each_expr(module: &Module, visit: &mut impl FnMut(&Expr)) {
    for item in &module.items {
        match item {
            ModuleItem::Net(d) => {
                for decl in &d.decls {
                    if let Some(init) = &decl.init {
                        visit(init);
                    }
                }
            }
            ModuleItem::Param(p) => visit(&p.value),
            ModuleItem::Assign(a) => {
                visit(&a.rhs);
                a.lhs.visit_exprs(visit);
            }
            ModuleItem::Always(a) => {
                if let Sensitivity::List(items) = &a.sensitivity {
                    for it in items {
                        visit(&it.expr);
                    }
                }
                a.body.visit_exprs(visit);
            }
            ModuleItem::Initial(i) => i.body.visit_exprs(visit),
            ModuleItem::Instance(inst) => {
                for c in inst.params.iter().chain(&inst.ports) {
                    if let Some(e) = &c.expr {
                        visit(e);
                    }
                }
            }
            ModuleItem::Statement(s) => s.visit_exprs(visit),
            ModuleItem::Function(f) => f.body.visit_exprs(visit),
            ModuleItem::Genvar(_) => {}
            ModuleItem::GenerateFor(g) => {
                visit(&g.init);
                visit(&g.cond);
                visit(&g.step);
            }
        }
    }
}

/// Why a construct is unsynthesizable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnsynthesizableReason {
    /// A system task such as `$display` or `$finish` (paper Sec. 2.3).
    SystemTask(SystemTask),
    /// An `initial` block with statements beyond state initialization.
    InitialBlock,
    /// `forever`/`while` loops without static bounds.
    UnboundedLoop,
}

/// Classifies the unsynthesizable constructs in a module.
///
/// Cascade deletes none of these: software engines execute them directly and
/// hardware engines trap them through the task mask (paper Fig. 10). The
/// classification drives native-mode eligibility (paper Sec. 4.5).
pub fn unsynthesizable_constructs(module: &Module) -> Vec<UnsynthesizableReason> {
    let mut out = Vec::new();
    fn walk_stmt(s: &Stmt, out: &mut Vec<UnsynthesizableReason>) {
        match s {
            Stmt::SystemTask { task, .. } => {
                out.push(UnsynthesizableReason::SystemTask(*task));
            }
            Stmt::Block { stmts, .. } => {
                for st in stmts {
                    walk_stmt(st, out);
                }
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                walk_stmt(then_branch, out);
                if let Some(e) = else_branch {
                    walk_stmt(e, out);
                }
            }
            Stmt::Case { arms, default, .. } => {
                for arm in arms {
                    walk_stmt(&arm.body, out);
                }
                if let Some(d) = default {
                    walk_stmt(d, out);
                }
            }
            Stmt::For { body, .. } | Stmt::Repeat { body, .. } => walk_stmt(body, out),
            Stmt::While { body, .. } => {
                out.push(UnsynthesizableReason::UnboundedLoop);
                walk_stmt(body, out);
            }
            Stmt::Forever { body, .. } => {
                out.push(UnsynthesizableReason::UnboundedLoop);
                walk_stmt(body, out);
            }
            _ => {}
        }
    }
    for item in &module.items {
        match item {
            ModuleItem::Always(a) => walk_stmt(&a.body, &mut out),
            ModuleItem::Initial(i) => {
                out.push(UnsynthesizableReason::InitialBlock);
                walk_stmt(&i.body, &mut out);
            }
            ModuleItem::Statement(s) => walk_stmt(s, &mut out),
            _ => {}
        }
    }
    out
}

/// Whether the module is fully synthesizable (eligible for native mode).
pub fn is_synthesizable(module: &Module) -> bool {
    unsynthesizable_constructs(module).is_empty()
}

/// The per-program syntax statistics aggregated in the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SourceStats {
    /// Non-blank lines of Verilog.
    pub lines: usize,
    /// Number of `always` blocks.
    pub always_blocks: usize,
    /// Number of blocking assignments (`=`).
    pub blocking_assignments: usize,
    /// Number of nonblocking assignments (`<=`).
    pub nonblocking_assignments: usize,
    /// Number of `$display`/`$write` statements.
    pub display_statements: usize,
    /// Number of module instantiations.
    pub instances: usize,
    /// Number of module declarations.
    pub modules: usize,
}

/// Measures Table 1 statistics over raw source text (lines) and its parsed
/// form (syntax counts).
pub fn source_stats(text: &str, unit: &SourceUnit) -> SourceStats {
    let mut stats = SourceStats {
        lines: text.lines().filter(|l| !l.trim().is_empty()).count(),
        ..SourceStats::default()
    };
    fn walk_stmt(s: &Stmt, stats: &mut SourceStats) {
        match s {
            Stmt::Blocking { .. } => stats.blocking_assignments += 1,
            Stmt::NonBlocking { .. } => stats.nonblocking_assignments += 1,
            Stmt::SystemTask {
                task: SystemTask::Display | SystemTask::Write,
                ..
            } => {
                stats.display_statements += 1;
            }
            Stmt::Block { stmts, .. } => {
                for st in stmts {
                    walk_stmt(st, stats);
                }
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                walk_stmt(then_branch, stats);
                if let Some(e) = else_branch {
                    walk_stmt(e, stats);
                }
            }
            Stmt::Case { arms, default, .. } => {
                for arm in arms {
                    walk_stmt(&arm.body, stats);
                }
                if let Some(d) = default {
                    walk_stmt(d, stats);
                }
            }
            Stmt::For {
                init, step, body, ..
            } => {
                walk_stmt(init, stats);
                walk_stmt(step, stats);
                walk_stmt(body, stats);
            }
            Stmt::While { body, .. } | Stmt::Repeat { body, .. } | Stmt::Forever { body, .. } => {
                walk_stmt(body, stats);
            }
            _ => {}
        }
    }
    fn walk_items(items: &[ModuleItem], stats: &mut SourceStats) {
        for item in items {
            match item {
                ModuleItem::Always(a) => {
                    stats.always_blocks += 1;
                    walk_stmt(&a.body, stats);
                }
                ModuleItem::Initial(i) => walk_stmt(&i.body, stats),
                ModuleItem::Instance(_) => stats.instances += 1,
                ModuleItem::Statement(s) => walk_stmt(s, stats),
                _ => {}
            }
        }
    }
    for item in &unit.items {
        match item {
            Item::Module(m) => {
                stats.modules += 1;
                walk_items(&m.items, &mut stats);
            }
            Item::RootItem(mi) => walk_items(std::slice::from_ref(mi), &mut stats),
        }
    }
    stats
}
