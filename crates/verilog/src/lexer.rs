//! The Verilog lexer: source text to a token stream.

use crate::source::{Diagnostic, FrontendResult, Phase, Span};
use crate::token::{Keyword, Token, TokenKind};

/// Lexes `src` into a token vector terminated by [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`Diagnostic`] on an unterminated comment or string, an invalid
/// based literal, or an unexpected character.
pub fn lex(src: &str) -> FrontendResult<Vec<Token>> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> FrontendResult<Vec<Token>> {
        loop {
            self.skip_trivia()?;
            let start = self.pos as u32;
            let Some(c) = self.peek() else {
                self.push(TokenKind::Eof, start);
                return Ok(self.tokens);
            };
            match c {
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(start),
                b'\\' => self.escaped_ident(start)?,
                b'$' => self.sys_ident(start)?,
                b'0'..=b'9' | b'\'' => self.number(start)?,
                b'"' => self.string(start)?,
                _ => self.operator(start)?,
            }
        }
    }

    fn err(&self, msg: impl Into<String>, start: u32) -> Diagnostic {
        Diagnostic::new(Phase::Lex, msg, Span::new(start, self.pos as u32))
    }

    #[inline]
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    #[inline]
    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    #[inline]
    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, start: u32) {
        self.tokens.push(Token {
            kind,
            span: Span::new(start, self.pos as u32),
        });
    }

    fn skip_trivia(&mut self) -> FrontendResult<()> {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.pos += 1;
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos as u32;
                    self.pos += 2;
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.pos += 2;
                                break;
                            }
                            Some(_) => self.pos += 1,
                            None => return Err(self.err("unterminated block comment", start)),
                        }
                    }
                }
                // Attributes (* ... *) are skipped as trivia. `(*)` — the
                // `@(*)` sensitivity form — is not an attribute.
                Some(b'(')
                    if self.peek2() == Some(b'*')
                        && self.bytes.get(self.pos + 2).copied() != Some(b')') =>
                {
                    let start = self.pos as u32;
                    self.pos += 2;
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b')') => {
                                self.pos += 2;
                                break;
                            }
                            Some(_) => self.pos += 1,
                            None => return Err(self.err("unterminated attribute", start)),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn ident(&mut self, start: u32) {
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'$' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = &self.src[start as usize..self.pos];
        match Keyword::from_str(text) {
            Some(kw) => self.push(TokenKind::Keyword(kw), start),
            None => self.push(TokenKind::Ident(text.to_string()), start),
        }
    }

    fn escaped_ident(&mut self, start: u32) -> FrontendResult<()> {
        self.pos += 1; // consume backslash
        let body_start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_whitespace() {
                break;
            }
            self.pos += 1;
        }
        if self.pos == body_start {
            return Err(self.err("empty escaped identifier", start));
        }
        let text = self.src[body_start..self.pos].to_string();
        self.push(TokenKind::Ident(text), start);
        Ok(())
    }

    fn sys_ident(&mut self, start: u32) -> FrontendResult<()> {
        self.pos += 1; // consume $
        let body_start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == body_start {
            return Err(self.err("empty system identifier", start));
        }
        let text = self.src[body_start..self.pos].to_string();
        self.push(TokenKind::SysIdent(text), start);
        Ok(())
    }

    /// Lexes a number: bare decimal, or a based literal like `8'hff`.
    ///
    /// A based literal's optional size prefix was already consumed as a bare
    /// decimal when present; this handles both pieces by lookahead.
    fn number(&mut self, start: u32) -> FrontendResult<()> {
        let mut size: Option<u32> = None;
        if self.peek() != Some(b'\'') {
            // Leading decimal digits: either a bare literal or a size prefix.
            let dec_start = self.pos;
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() || c == b'_' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let text: String = self.src[dec_start..self.pos]
                .chars()
                .filter(|&c| c != '_')
                .collect();
            let value: u64 = text
                .parse()
                .map_err(|_| self.err(format!("bad decimal `{text}`"), start))?;
            // Whitespace may separate the size from the tick.
            let save = self.pos;
            while matches!(self.peek(), Some(b' ' | b'\t')) {
                self.pos += 1;
            }
            if self.peek() == Some(b'\'')
                && matches!(
                    self.peek2().map(|c| c.to_ascii_lowercase()),
                    Some(b'b' | b'o' | b'd' | b'h' | b's')
                )
            {
                size = Some(value as u32);
            } else {
                self.pos = save;
                self.push(TokenKind::Decimal(value), start);
                return Ok(());
            }
        }
        // At a tick.
        self.pos += 1;
        let mut radix_char = self
            .bump()
            .ok_or_else(|| self.err("missing base after `'`", start))?;
        if radix_char == b's' || radix_char == b'S' {
            radix_char = self
                .bump()
                .ok_or_else(|| self.err("missing base after `'s`", start))?;
        }
        let radix = match radix_char.to_ascii_lowercase() {
            b'b' => 2,
            b'o' => 8,
            b'd' => 10,
            b'h' => 16,
            other => {
                return Err(self.err(format!("unknown base `{}`", other as char), start));
            }
        };
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
        let body_start = self.pos;
        while let Some(c) = self.peek() {
            // x/z/? wildcard digits are accepted in non-decimal bases and
            // resolved by the parser (don't-care bits in casez/casex labels,
            // zeros elsewhere under two-state semantics).
            let wild = matches!(c, b'x' | b'X' | b'z' | b'Z' | b'?') && radix != 10;
            let ok = c == b'_'
                || wild
                || match radix {
                    2 => matches!(c, b'0' | b'1'),
                    8 => c.is_ascii_digit() && c < b'8',
                    10 => c.is_ascii_digit(),
                    16 => c.is_ascii_hexdigit(),
                    _ => unreachable!(),
                };
            if ok {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == body_start {
            return Err(self.err("based literal has no digits", start));
        }
        let body: String = self.src[body_start..self.pos]
            .chars()
            .filter(|&c| c != '_')
            .collect();
        self.push(TokenKind::Number { size, radix, body }, start);
        Ok(())
    }

    fn string(&mut self, start: u32) -> FrontendResult<()> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None | Some(b'\n') => return Err(self.err("unterminated string", start)),
                Some(b'"') => break,
                Some(b'\\') => {
                    let esc = self
                        .bump()
                        .ok_or_else(|| self.err("unterminated escape", start))?;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'\\' => '\\',
                        b'"' => '"',
                        other => other as char,
                    });
                }
                Some(c) => out.push(c as char),
            }
        }
        self.push(TokenKind::Str(out), start);
        Ok(())
    }

    fn operator(&mut self, start: u32) -> FrontendResult<()> {
        use TokenKind::*;
        let c = self.bump().expect("operator called at end of input");
        let kind = match c {
            b'(' => LParen,
            b')' => RParen,
            b'[' => LBracket,
            b']' => RBracket,
            b'{' => LBrace,
            b'}' => RBrace,
            b';' => Semi,
            b',' => Comma,
            b'.' => Dot,
            b':' => Colon,
            b'?' => Question,
            b'@' => At,
            b'#' => Hash,
            b'+' => {
                if self.peek() == Some(b':') {
                    self.pos += 1;
                    PlusColon
                } else {
                    Plus
                }
            }
            b'-' => {
                if self.peek() == Some(b':') {
                    self.pos += 1;
                    MinusColon
                } else {
                    Minus
                }
            }
            b'*' => {
                if self.peek() == Some(b'*') {
                    self.pos += 1;
                    StarStar
                } else {
                    Star
                }
            }
            b'/' => Slash,
            b'%' => Percent,
            b'!' => match (self.peek(), self.peek2()) {
                (Some(b'='), Some(b'=')) => {
                    self.pos += 2;
                    BangEqEq
                }
                (Some(b'='), _) => {
                    self.pos += 1;
                    BangEq
                }
                _ => Bang,
            },
            b'~' => match self.peek() {
                Some(b'^') => {
                    self.pos += 1;
                    TildeCaret
                }
                Some(b'&') => {
                    self.pos += 1;
                    // ~& reduction NAND: treated as Tilde + Amp by the parser
                    // is ambiguous, so lex it as a distinct two-token shortcut:
                    // push Tilde now and Amp next round.
                    self.tokens.push(Token {
                        kind: Tilde,
                        span: Span::new(start, start + 1),
                    });
                    Amp
                }
                Some(b'|') => {
                    self.pos += 1;
                    self.tokens.push(Token {
                        kind: Tilde,
                        span: Span::new(start, start + 1),
                    });
                    Pipe
                }
                _ => Tilde,
            },
            b'&' => {
                if self.peek() == Some(b'&') {
                    self.pos += 1;
                    AmpAmp
                } else {
                    Amp
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.pos += 1;
                    PipePipe
                } else {
                    Pipe
                }
            }
            b'^' => {
                if self.peek() == Some(b'~') {
                    self.pos += 1;
                    TildeCaret
                } else {
                    Caret
                }
            }
            b'=' => match (self.peek(), self.peek2()) {
                (Some(b'='), Some(b'=')) => {
                    self.pos += 2;
                    EqEqEq
                }
                (Some(b'='), _) => {
                    self.pos += 1;
                    EqEq
                }
                _ => Eq,
            },
            b'<' => match (self.peek(), self.peek2()) {
                (Some(b'<'), Some(b'<')) => {
                    self.pos += 3 - 1;
                    AShl
                }
                (Some(b'<'), _) => {
                    self.pos += 1;
                    Shl
                }
                (Some(b'='), _) => {
                    self.pos += 1;
                    LtEq
                }
                _ => Lt,
            },
            b'>' => match (self.peek(), self.peek2()) {
                (Some(b'>'), Some(b'>')) => {
                    self.pos += 2;
                    AShr
                }
                (Some(b'>'), _) => {
                    self.pos += 1;
                    Shr
                }
                (Some(b'='), _) => {
                    self.pos += 1;
                    GtEq
                }
                _ => Gt,
            },
            other => {
                return Err(self.err(format!("unexpected character `{}`", other as char), start));
            }
        };
        self.push(kind, start);
        Ok(())
    }
}
