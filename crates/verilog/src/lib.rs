//! Verilog-2005 frontend for Cascade-rs: preprocessor, lexer, parser, type
//! checker, analyses, and pretty-printer.
//!
//! The supported subset is the synthesizable core the Cascade paper targets
//! — modules, ports, parameters, wires/regs/memories, continuous assigns,
//! `always`/`initial` blocks, instantiations — plus the unsynthesizable
//! system tasks (`$display`, `$write`, `$finish`, `$monitor`, `$fatal`) that
//! Cascade's runtime keeps alive even after code moves to hardware.
//!
//! # Examples
//!
//! ```
//! use cascade_verilog::{parse, analysis};
//!
//! let unit = parse(
//!     "module Main(input wire clk, output wire [7:0] led);\n\
//!      reg [7:0] cnt = 1;\n\
//!      always @(posedge clk) cnt <= cnt + 1;\n\
//!      assign led = cnt;\n\
//!      endmodule",
//! )?;
//! let cascade_verilog::ast::Item::Module(m) = &unit.items[0] else { unreachable!() };
//! assert!(analysis::is_synthesizable(m));
//! # Ok::<(), cascade_verilog::Diagnostic>(())
//! ```

pub mod analysis;
pub mod ast;
pub mod corpus;
mod generate;
mod inline_fn;
mod lexer;
mod parser;
pub mod preproc;
pub mod pretty;
mod source;
mod token;
pub mod typecheck;

pub use generate::{expand_generates, has_generates};
pub use inline_fn::{has_functions, inline_functions};
pub use lexer::lex;
pub use parser::{parse, parse_expr, parse_stmt};
pub use source::{line_col, Diagnostic, FrontendResult, LineCol, Phase, Span};
pub use token::{Keyword, Token, TokenKind};

#[cfg(test)]
mod tests;
