//! Recursive-descent parser for the supported Verilog subset.

use crate::ast::*;
use crate::lexer::lex;
use crate::source::{Diagnostic, FrontendResult, Phase, Span};
use crate::token::{Keyword, Token, TokenKind};
use cascade_bits::Bits;

/// Parses a complete source unit (modules plus, in REPL usage, bare root
/// items).
///
/// # Errors
///
/// Returns the first lex or parse [`Diagnostic`] encountered.
///
/// # Examples
///
/// ```
/// let unit = cascade_verilog::parse(
///     "module Rol(input wire [7:0] x, output wire [7:0] y);\n\
///      assign y = (x == 8'h80) ? 1 : (x << 1);\nendmodule",
/// )?;
/// assert_eq!(unit.items.len(), 1);
/// # Ok::<(), cascade_verilog::Diagnostic>(())
/// ```
pub fn parse(src: &str) -> FrontendResult<SourceUnit> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.source_unit()
}

/// Parses a single expression, used by tests and the REPL's probe command.
///
/// # Errors
///
/// Returns a [`Diagnostic`] on malformed input or trailing tokens.
pub fn parse_expr(src: &str) -> FrontendResult<Expr> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Parses a single procedural statement, used by the REPL.
///
/// # Errors
///
/// Returns a [`Diagnostic`] on malformed input or trailing tokens.
pub fn parse_stmt(src: &str) -> FrontendResult<Stmt> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let s = p.stmt()?;
    p.expect_eof()?;
    Ok(s)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1).min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        self.eat(&TokenKind::Keyword(kw))
    }

    fn at_kw(&self, kw: Keyword) -> bool {
        matches!(self.peek(), TokenKind::Keyword(k) if *k == kw)
    }

    fn err(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::new(Phase::Parse, msg, self.span())
    }

    fn expect(&mut self, kind: TokenKind) -> FrontendResult<()> {
        if self.peek() == &kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> FrontendResult<()> {
        self.expect(TokenKind::Keyword(kw))
    }

    fn expect_eof(&mut self) -> FrontendResult<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing {}", self.peek())))
        }
    }

    fn ident(&mut self) -> FrontendResult<String> {
        match self.peek() {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.bump();
                Ok(name)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    // ------------------------------------------------------------------
    // Top level
    // ------------------------------------------------------------------

    fn source_unit(&mut self) -> FrontendResult<SourceUnit> {
        let mut items = Vec::new();
        while !matches!(self.peek(), TokenKind::Eof) {
            if self.at_kw(Keyword::Module) {
                items.push(Item::Module(self.module()?));
            } else {
                items.push(Item::RootItem(self.module_item()?));
            }
        }
        Ok(SourceUnit { items })
    }

    fn module(&mut self) -> FrontendResult<Module> {
        let start = self.span();
        self.expect_kw(Keyword::Module)?;
        let name = self.ident()?;
        let mut params = Vec::new();
        if self.eat(&TokenKind::Hash) {
            self.expect(TokenKind::LParen)?;
            loop {
                self.eat_kw(Keyword::Parameter);
                let pstart = self.span();
                let range = self.opt_range()?;
                let pname = self.ident()?;
                self.expect(TokenKind::Eq)?;
                let value = self.expr()?;
                params.push(ParamDecl {
                    local: false,
                    range,
                    name: pname,
                    value,
                    span: pstart.to(self.prev_span()),
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        let mut ports = Vec::new();
        if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
            loop {
                ports.push(self.port()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        self.expect(TokenKind::Semi)?;
        let mut items = Vec::new();
        while !self.at_kw(Keyword::Endmodule) {
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(self.err("unterminated module; expected `endmodule`"));
            }
            items.push(self.module_item()?);
        }
        self.expect_kw(Keyword::Endmodule)?;
        Ok(Module {
            name,
            params,
            ports,
            items,
            span: start.to(self.prev_span()),
        })
    }

    fn port(&mut self) -> FrontendResult<Port> {
        let start = self.span();
        let dir = match self.bump() {
            TokenKind::Keyword(Keyword::Input) => PortDir::Input,
            TokenKind::Keyword(Keyword::Output) => PortDir::Output,
            TokenKind::Keyword(Keyword::Inout) => PortDir::Inout,
            other => return Err(self.err(format!("expected port direction, found {other}"))),
        };
        let is_reg = if self.eat_kw(Keyword::Wire) {
            false
        } else {
            self.eat_kw(Keyword::Reg)
        };
        let signed = self.eat_kw(Keyword::Signed);
        let range = self.opt_range()?;
        let name = self.ident()?;
        Ok(Port {
            dir,
            is_reg,
            signed,
            range,
            name,
            span: start.to(self.prev_span()),
        })
    }

    fn opt_range(&mut self) -> FrontendResult<Option<Range>> {
        if !self.eat(&TokenKind::LBracket) {
            return Ok(None);
        }
        let msb = self.expr()?;
        self.expect(TokenKind::Colon)?;
        let lsb = self.expr()?;
        self.expect(TokenKind::RBracket)?;
        Ok(Some(Range { msb, lsb }))
    }

    // ------------------------------------------------------------------
    // Module items
    // ------------------------------------------------------------------

    fn module_item(&mut self) -> FrontendResult<ModuleItem> {
        match self.peek() {
            TokenKind::Keyword(Keyword::Wire | Keyword::Reg | Keyword::Integer) => {
                Ok(ModuleItem::Net(self.net_decl()?))
            }
            TokenKind::Keyword(Keyword::Parameter | Keyword::Localparam) => {
                Ok(ModuleItem::Param(self.param_decl()?))
            }
            TokenKind::Keyword(Keyword::Assign) => {
                let start = self.span();
                self.bump();
                let lhs = self.lvalue()?;
                self.expect(TokenKind::Eq)?;
                let rhs = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(ModuleItem::Assign(ContinuousAssign {
                    lhs,
                    rhs,
                    span: start.to(self.prev_span()),
                }))
            }
            TokenKind::Keyword(Keyword::Always) => {
                let start = self.span();
                self.bump();
                self.expect(TokenKind::At)?;
                let sensitivity = self.sensitivity()?;
                let body = self.stmt()?;
                Ok(ModuleItem::Always(AlwaysBlock {
                    sensitivity,
                    body,
                    span: start.to(self.prev_span()),
                }))
            }
            TokenKind::Keyword(Keyword::Initial) => {
                let start = self.span();
                self.bump();
                let body = self.stmt()?;
                Ok(ModuleItem::Initial(InitialBlock {
                    body,
                    span: start.to(self.prev_span()),
                }))
            }
            TokenKind::Keyword(Keyword::Function) => Ok(ModuleItem::Function(self.function()?)),
            TokenKind::Keyword(Keyword::Genvar) => {
                self.bump();
                let mut names = vec![self.ident()?];
                while self.eat(&TokenKind::Comma) {
                    names.push(self.ident()?);
                }
                self.expect(TokenKind::Semi)?;
                Ok(ModuleItem::Genvar(names))
            }
            TokenKind::Keyword(Keyword::Generate) => {
                self.bump();
                let item = self.generate_for()?;
                self.expect_kw(Keyword::Endgenerate)?;
                Ok(item)
            }
            TokenKind::Ident(_) if self.instance_ahead() => {
                Ok(ModuleItem::Instance(self.instance()?))
            }
            _ => Ok(ModuleItem::Statement(self.stmt()?)),
        }
    }

    /// Distinguishes `Rol r(...)` (instantiation) from `x = ...` or
    /// `x[...] <= ...` (REPL statement) at an identifier.
    fn instance_ahead(&self) -> bool {
        matches!(self.peek(), TokenKind::Ident(_))
            && (matches!(self.peek2(), TokenKind::Ident(_))
                || matches!(self.peek2(), TokenKind::Hash))
    }

    fn net_decl(&mut self) -> FrontendResult<NetDecl> {
        let start = self.span();
        let kind = match self.bump() {
            TokenKind::Keyword(Keyword::Wire) => NetKind::Wire,
            TokenKind::Keyword(Keyword::Reg) => NetKind::Reg,
            TokenKind::Keyword(Keyword::Integer) => NetKind::Integer,
            other => return Err(self.err(format!("expected net kind, found {other}"))),
        };
        let signed = self.eat_kw(Keyword::Signed) || kind == NetKind::Integer;
        let range = if kind == NetKind::Integer {
            None
        } else {
            self.opt_range()?
        };
        let mut decls = Vec::new();
        loop {
            let dstart = self.span();
            let name = self.ident()?;
            let array = self.opt_range()?;
            let init = if self.eat(&TokenKind::Eq) {
                Some(self.expr()?)
            } else {
                None
            };
            decls.push(Declarator {
                name,
                array,
                init,
                span: dstart.to(self.prev_span()),
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::Semi)?;
        Ok(NetDecl {
            kind,
            signed,
            range,
            decls,
            span: start.to(self.prev_span()),
        })
    }

    fn param_decl(&mut self) -> FrontendResult<ParamDecl> {
        let start = self.span();
        let local = match self.bump() {
            TokenKind::Keyword(Keyword::Parameter) => false,
            TokenKind::Keyword(Keyword::Localparam) => true,
            other => return Err(self.err(format!("expected parameter keyword, found {other}"))),
        };
        let range = self.opt_range()?;
        let name = self.ident()?;
        self.expect(TokenKind::Eq)?;
        let value = self.expr()?;
        self.expect(TokenKind::Semi)?;
        Ok(ParamDecl {
            local,
            range,
            name,
            value,
            span: start.to(self.prev_span()),
        })
    }

    /// Parses a `for (...) begin : label ... end` generate loop.
    fn generate_for(&mut self) -> FrontendResult<ModuleItem> {
        let start = self.span();
        self.expect_kw(Keyword::For)?;
        self.expect(TokenKind::LParen)?;
        let genvar = self.ident()?;
        self.expect(TokenKind::Eq)?;
        let init = self.expr()?;
        self.expect(TokenKind::Semi)?;
        let cond = self.expr()?;
        self.expect(TokenKind::Semi)?;
        let step_var = self.ident()?;
        if step_var != genvar {
            return Err(self.err(format!(
                "generate step must assign the genvar `{genvar}`, found `{step_var}`"
            )));
        }
        self.expect(TokenKind::Eq)?;
        let step = self.expr()?;
        self.expect(TokenKind::RParen)?;
        self.expect_kw(Keyword::Begin)?;
        let label = if self.eat(&TokenKind::Colon) {
            Some(self.ident()?)
        } else {
            None
        };
        let mut items = Vec::new();
        while !self.at_kw(Keyword::End) {
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(self.err("unterminated generate block; expected `end`"));
            }
            if self.at_kw(Keyword::For) {
                items.push(self.generate_for()?);
            } else {
                items.push(self.module_item()?);
            }
        }
        self.expect_kw(Keyword::End)?;
        Ok(ModuleItem::GenerateFor(GenerateFor {
            genvar,
            init,
            cond,
            step,
            label,
            items,
            span: start.to(self.prev_span()),
        }))
    }

    /// Parses a function declaration (classic or ANSI header style).
    fn function(&mut self) -> FrontendResult<FunctionDecl> {
        let start = self.span();
        self.expect_kw(Keyword::Function)?;
        // Optional `automatic` is accepted as an identifier and ignored.
        if matches!(self.peek(), TokenKind::Ident(n) if n == "automatic") {
            self.bump();
        }
        let signed = self.eat_kw(Keyword::Signed);
        let range = self.opt_range()?;
        let name = self.ident()?;
        let mut inputs = Vec::new();
        // ANSI header: function [r] name(input [r] a, input [r] b);
        if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
            loop {
                self.expect_kw(Keyword::Input)?;
                self.eat_kw(Keyword::Wire);
                self.eat_kw(Keyword::Reg);
                let in_signed = self.eat_kw(Keyword::Signed);
                let in_range = self.opt_range()?;
                let in_name = self.ident()?;
                inputs.push((in_name, in_range, in_signed));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        self.expect(TokenKind::Semi)?;
        // Classic declarations: inputs and locals before the body.
        let mut locals = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Keyword(Keyword::Input) => {
                    self.bump();
                    self.eat_kw(Keyword::Wire);
                    self.eat_kw(Keyword::Reg);
                    let in_signed = self.eat_kw(Keyword::Signed);
                    let in_range = self.opt_range()?;
                    loop {
                        let in_name = self.ident()?;
                        inputs.push((in_name, in_range.clone(), in_signed));
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::Semi)?;
                }
                TokenKind::Keyword(Keyword::Reg | Keyword::Integer) => {
                    locals.push(self.net_decl()?);
                }
                _ => break,
            }
        }
        let body = self.stmt()?;
        self.expect_kw(Keyword::Endfunction)?;
        Ok(FunctionDecl {
            name,
            signed,
            range,
            inputs,
            locals,
            body,
            span: start.to(self.prev_span()),
        })
    }

    fn sensitivity(&mut self) -> FrontendResult<Sensitivity> {
        // `@*` without parens.
        if self.eat(&TokenKind::Star) {
            return Ok(Sensitivity::Star);
        }
        self.expect(TokenKind::LParen)?;
        if self.eat(&TokenKind::Star) {
            self.expect(TokenKind::RParen)?;
            return Ok(Sensitivity::Star);
        }
        let mut items = Vec::new();
        loop {
            let edge = if self.eat_kw(Keyword::Posedge) {
                Some(Edge::Pos)
            } else if self.eat_kw(Keyword::Negedge) {
                Some(Edge::Neg)
            } else {
                None
            };
            let expr = self.expr()?;
            items.push(SensItem { edge, expr });
            if self.eat(&TokenKind::Comma) || self.eat_kw(Keyword::Or) {
                continue;
            }
            break;
        }
        self.expect(TokenKind::RParen)?;
        Ok(Sensitivity::List(items))
    }

    fn instance(&mut self) -> FrontendResult<Instance> {
        let start = self.span();
        let module = self.ident()?;
        let mut params = Vec::new();
        if self.eat(&TokenKind::Hash) {
            self.expect(TokenKind::LParen)?;
            params = self.connections()?;
            self.expect(TokenKind::RParen)?;
        }
        let name = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let ports = if matches!(self.peek(), TokenKind::RParen) {
            Vec::new()
        } else {
            self.connections()?
        };
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::Semi)?;
        Ok(Instance {
            module,
            name,
            params,
            ports,
            span: start.to(self.prev_span()),
        })
    }

    fn connections(&mut self) -> FrontendResult<Vec<Connection>> {
        let mut out = Vec::new();
        loop {
            let start = self.span();
            if self.eat(&TokenKind::Dot) {
                let name = self.ident()?;
                self.expect(TokenKind::LParen)?;
                let expr = if matches!(self.peek(), TokenKind::RParen) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::RParen)?;
                out.push(Connection {
                    name: Some(name),
                    expr,
                    span: start.to(self.prev_span()),
                });
            } else {
                let expr = self.expr()?;
                out.push(Connection {
                    name: None,
                    expr: Some(expr),
                    span: start.to(self.prev_span()),
                });
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn stmt(&mut self) -> FrontendResult<Stmt> {
        let start = self.span();
        match self.peek() {
            TokenKind::Keyword(Keyword::Begin) => {
                self.bump();
                let name = if self.eat(&TokenKind::Colon) {
                    Some(self.ident()?)
                } else {
                    None
                };
                let mut stmts = Vec::new();
                while !self.at_kw(Keyword::End) {
                    if matches!(self.peek(), TokenKind::Eof) {
                        return Err(self.err("unterminated block; expected `end`"));
                    }
                    stmts.push(self.stmt()?);
                }
                self.bump();
                Ok(Stmt::Block { name, stmts })
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let then_branch = Box::new(self.stmt()?);
                let else_branch = if self.eat_kw(Keyword::Else) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Keyword(kw @ (Keyword::Case | Keyword::Casez | Keyword::Casex)) => {
                let kind = match kw {
                    Keyword::Case => CaseKind::Case,
                    Keyword::Casez => CaseKind::Casez,
                    _ => CaseKind::Casex,
                };
                self.bump();
                self.expect(TokenKind::LParen)?;
                let scrutinee = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let mut arms = Vec::new();
                let mut default = None;
                while !self.at_kw(Keyword::Endcase) {
                    if matches!(self.peek(), TokenKind::Eof) {
                        return Err(self.err("unterminated case; expected `endcase`"));
                    }
                    if self.eat_kw(Keyword::Default) {
                        self.eat(&TokenKind::Colon);
                        default = Some(Box::new(self.stmt()?));
                        continue;
                    }
                    let mut labels = vec![self.expr()?];
                    while self.eat(&TokenKind::Comma) {
                        labels.push(self.expr()?);
                    }
                    self.expect(TokenKind::Colon)?;
                    let body = self.stmt()?;
                    arms.push(CaseArm { labels, body });
                }
                self.bump();
                Ok(Stmt::Case {
                    kind,
                    scrutinee,
                    arms,
                    default,
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let init = Box::new(self.assignment_no_semi()?);
                self.expect(TokenKind::Semi)?;
                let cond = self.expr()?;
                self.expect(TokenKind::Semi)?;
                let step = Box::new(self.assignment_no_semi()?);
                self.expect(TokenKind::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::While {
                    cond,
                    body,
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Keyword(Keyword::Repeat) => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let count = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::Repeat {
                    count,
                    body,
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Keyword(Keyword::Forever) => {
                self.bump();
                let body = Box::new(self.stmt()?);
                Ok(Stmt::Forever {
                    body,
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::SysIdent(name) => {
                let name = name.clone();
                let Some(task) = SystemTask::from_name(&name) else {
                    return Err(self.err(format!("unsupported system task `${name}`")));
                };
                self.bump();
                let mut args = Vec::new();
                if self.eat(&TokenKind::LParen) {
                    if !matches!(self.peek(), TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                }
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::SystemTask {
                    task,
                    args,
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Semi => {
                self.bump();
                Ok(Stmt::Null)
            }
            _ => {
                let s = self.assignment_no_semi()?;
                self.expect(TokenKind::Semi)?;
                Ok(s)
            }
        }
    }

    /// Parses `lvalue = expr` or `lvalue <= expr` without the trailing
    /// semicolon (shared by statement position and `for` headers).
    fn assignment_no_semi(&mut self) -> FrontendResult<Stmt> {
        let start = self.span();
        let lhs = self.lvalue()?;
        if self.eat(&TokenKind::Eq) {
            let rhs = self.expr()?;
            Ok(Stmt::Blocking {
                lhs,
                rhs,
                span: start.to(self.prev_span()),
            })
        } else if self.eat(&TokenKind::LtEq) {
            let rhs = self.expr()?;
            Ok(Stmt::NonBlocking {
                lhs,
                rhs,
                span: start.to(self.prev_span()),
            })
        } else {
            Err(self.err(format!("expected `=` or `<=`, found {}", self.peek())))
        }
    }

    fn lvalue(&mut self) -> FrontendResult<LValue> {
        if self.eat(&TokenKind::LBrace) {
            let mut parts = vec![self.lvalue()?];
            while self.eat(&TokenKind::Comma) {
                parts.push(self.lvalue()?);
            }
            self.expect(TokenKind::RBrace)?;
            return Ok(LValue::Concat(parts));
        }
        let base = self.ident()?;
        if matches!(self.peek(), TokenKind::Dot) {
            let mut path = vec![base];
            while self.eat(&TokenKind::Dot) {
                path.push(self.ident()?);
            }
            return Ok(LValue::Hier(path));
        }
        if !self.eat(&TokenKind::LBracket) {
            return Ok(LValue::Ident(base));
        }
        let first = self.expr()?;
        match self.bump() {
            TokenKind::RBracket => {
                // Either a plain index, or a memory word followed by a range.
                if self.eat(&TokenKind::LBracket) {
                    let msb = self.expr()?;
                    self.expect(TokenKind::Colon)?;
                    let lsb = self.expr()?;
                    self.expect(TokenKind::RBracket)?;
                    Ok(LValue::IndexThenPart {
                        base,
                        index: first,
                        msb,
                        lsb,
                    })
                } else {
                    Ok(LValue::Index { base, index: first })
                }
            }
            TokenKind::Colon => {
                let lsb = self.expr()?;
                self.expect(TokenKind::RBracket)?;
                Ok(LValue::Part {
                    base,
                    msb: first,
                    lsb,
                })
            }
            TokenKind::PlusColon => {
                let width = self.expr()?;
                self.expect(TokenKind::RBracket)?;
                Ok(LValue::IndexedPart {
                    base,
                    offset: first,
                    width,
                    ascending: true,
                })
            }
            TokenKind::MinusColon => {
                let width = self.expr()?;
                self.expect(TokenKind::RBracket)?;
                Ok(LValue::IndexedPart {
                    base,
                    offset: first,
                    width,
                    ascending: false,
                })
            }
            other => Err(self.err(format!("expected `]`, `:`, `+:` or `-:`, found {other}"))),
        }
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    /// Parses an expression.
    pub(crate) fn expr(&mut self) -> FrontendResult<Expr> {
        self.ternary()
    }

    fn ternary(&mut self) -> FrontendResult<Expr> {
        let cond = self.binary(0)?;
        if self.eat(&TokenKind::Question) {
            let then_expr = Box::new(self.expr()?);
            self.expect(TokenKind::Colon)?;
            let else_expr = Box::new(self.ternary()?);
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_expr,
                else_expr,
            })
        } else {
            Ok(cond)
        }
    }

    fn binary_op(&self, min_prec: u8) -> Option<(BinaryOp, u8)> {
        use BinaryOp::*;
        use TokenKind as T;
        let (op, prec) = match self.peek() {
            T::PipePipe => (LogicalOr, 1),
            T::AmpAmp => (LogicalAnd, 2),
            T::Pipe => (Or, 3),
            T::Caret => (Xor, 4),
            T::TildeCaret => (Xnor, 4),
            T::Amp => (And, 5),
            T::EqEq => (Eq, 6),
            T::BangEq => (Ne, 6),
            T::EqEqEq => (CaseEq, 6),
            T::BangEqEq => (CaseNe, 6),
            T::Lt => (Lt, 7),
            T::LtEq => (Le, 7),
            T::Gt => (Gt, 7),
            T::GtEq => (Ge, 7),
            T::Shl => (Shl, 8),
            T::Shr => (Shr, 8),
            T::AShl => (AShl, 8),
            T::AShr => (AShr, 8),
            T::Plus => (Add, 9),
            T::Minus => (Sub, 9),
            T::Star => (Mul, 10),
            T::Slash => (Div, 10),
            T::Percent => (Rem, 10),
            T::StarStar => (Pow, 11),
            _ => return None,
        };
        (prec >= min_prec).then_some((op, prec))
    }

    fn binary(&mut self, min_prec: u8) -> FrontendResult<Expr> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = self.binary_op(min_prec) {
            self.bump();
            // `**` is right-associative; everything else left.
            let next_min = if op == BinaryOp::Pow { prec } else { prec + 1 };
            let rhs = self.binary(next_min)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> FrontendResult<Expr> {
        use TokenKind as T;
        let op = match self.peek() {
            T::Plus => Some(UnaryOp::Plus),
            T::Minus => Some(UnaryOp::Neg),
            T::Bang => Some(UnaryOp::LogicalNot),
            T::Tilde => Some(UnaryOp::BitNot),
            T::Amp => Some(UnaryOp::ReduceAnd),
            T::Pipe => Some(UnaryOp::ReduceOr),
            T::Caret => Some(UnaryOp::ReduceXor),
            T::TildeCaret => Some(UnaryOp::ReduceXnor),
            _ => None,
        };
        if let Some(mut op) = op {
            self.bump();
            // `~&` / `~|` were lexed as Tilde followed by Amp/Pipe; fold the
            // NAND/NOR reductions here so `~&x` is one operation.
            if op == UnaryOp::BitNot {
                if matches!(self.peek(), T::Amp) {
                    self.bump();
                    op = UnaryOp::ReduceNand;
                } else if matches!(self.peek(), T::Pipe) {
                    self.bump();
                    op = UnaryOp::ReduceNor;
                }
            }
            let operand = Box::new(self.unary()?);
            return Ok(Expr::Unary { op, operand });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> FrontendResult<Expr> {
        let mut base = self.primary()?;
        loop {
            if self.eat(&TokenKind::LBracket) {
                let first = self.expr()?;
                match self.bump() {
                    TokenKind::RBracket => {
                        base = Expr::Index {
                            base: Box::new(base),
                            index: Box::new(first),
                        };
                    }
                    TokenKind::Colon => {
                        let lsb = self.expr()?;
                        self.expect(TokenKind::RBracket)?;
                        base = Expr::Part {
                            base: Box::new(base),
                            msb: Box::new(first),
                            lsb: Box::new(lsb),
                        };
                    }
                    TokenKind::PlusColon => {
                        let width = self.expr()?;
                        self.expect(TokenKind::RBracket)?;
                        base = Expr::IndexedPart {
                            base: Box::new(base),
                            offset: Box::new(first),
                            width: Box::new(width),
                            ascending: true,
                        };
                    }
                    TokenKind::MinusColon => {
                        let width = self.expr()?;
                        self.expect(TokenKind::RBracket)?;
                        base = Expr::IndexedPart {
                            base: Box::new(base),
                            offset: Box::new(first),
                            width: Box::new(width),
                            ascending: false,
                        };
                    }
                    other => {
                        return Err(
                            self.err(format!("expected `]`, `:`, `+:` or `-:`, found {other}"))
                        );
                    }
                }
            } else {
                return Ok(base);
            }
        }
    }

    fn primary(&mut self) -> FrontendResult<Expr> {
        match self.peek().clone() {
            TokenKind::Decimal(v) => {
                self.bump();
                Ok(Expr::Literal {
                    value: Bits::from_u64(32, v),
                    sized: false,
                })
            }
            TokenKind::Number { size, radix, body } => {
                self.bump();
                self.based_literal(size, radix, &body)
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            TokenKind::Ident(name) => {
                self.bump();
                // A user function call: `name(arg, ...)`.
                if matches!(self.peek(), TokenKind::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !matches!(self.peek(), TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    return Ok(Expr::FnCall { name, args });
                }
                let mut path = vec![name];
                while matches!(self.peek(), TokenKind::Dot) {
                    self.bump();
                    path.push(self.ident()?);
                }
                if path.len() == 1 {
                    Ok(Expr::Ident(path.pop().expect("non-empty path")))
                } else {
                    Ok(Expr::Hier(path))
                }
            }
            TokenKind::SysIdent(name) => {
                let Some(func) = SystemFunction::from_name(&name) else {
                    return Err(self.err(format!("unsupported system function `${name}`")));
                };
                self.bump();
                let mut args = Vec::new();
                if self.eat(&TokenKind::LParen) {
                    if !matches!(self.peek(), TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                }
                Ok(Expr::SystemCall { func, args })
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::LBrace => {
                self.bump();
                let first = self.expr()?;
                // `{n{expr}}` replication vs `{a, b}` concatenation.
                if matches!(self.peek(), TokenKind::LBrace) {
                    self.bump();
                    let mut inner = vec![self.expr()?];
                    while self.eat(&TokenKind::Comma) {
                        inner.push(self.expr()?);
                    }
                    self.expect(TokenKind::RBrace)?;
                    self.expect(TokenKind::RBrace)?;
                    let inner_expr = if inner.len() == 1 {
                        inner.pop().expect("one")
                    } else {
                        Expr::Concat(inner)
                    };
                    Ok(Expr::Replicate {
                        count: Box::new(first),
                        inner: Box::new(inner_expr),
                    })
                } else {
                    let mut parts = vec![first];
                    while self.eat(&TokenKind::Comma) {
                        parts.push(self.expr()?);
                    }
                    self.expect(TokenKind::RBrace)?;
                    Ok(Expr::Concat(parts))
                }
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }

    /// Resolves a based literal token to a [`Expr::Literal`] or, when it
    /// contains wildcard digits, a [`Expr::MaskedLiteral`].
    fn based_literal(&mut self, size: Option<u32>, radix: u32, body: &str) -> FrontendResult<Expr> {
        let width = size.unwrap_or(32);
        if width == 0 {
            return Err(Diagnostic::new(
                Phase::Parse,
                "zero-width literal",
                self.prev_span(),
            ));
        }
        let has_wild = body
            .chars()
            .any(|c| matches!(c, 'x' | 'X' | 'z' | 'Z' | '?'));
        if !has_wild {
            let value = Bits::from_str_radix(width, radix, body)
                .map_err(|e| Diagnostic::new(Phase::Parse, e.to_string(), self.prev_span()))?;
            return Ok(Expr::Literal {
                value,
                sized: size.is_some(),
            });
        }
        if radix == 10 {
            return Err(Diagnostic::new(
                Phase::Parse,
                "wildcard digits are not allowed in decimal literals",
                self.prev_span(),
            ));
        }
        let bits_per_digit = match radix {
            2 => 1,
            8 => 3,
            16 => 4,
            _ => unreachable!(),
        };
        let mut value = Bits::zero(width);
        let mut care = Bits::zero(width);
        for c in body.chars() {
            if c == '_' {
                continue;
            }
            value = value.shl(bits_per_digit);
            care = care.shl(bits_per_digit);
            if matches!(c, 'x' | 'X' | 'z' | 'Z' | '?') {
                continue; // wildcard: value 0, care 0
            }
            let d = c.to_digit(radix).ok_or_else(|| {
                Diagnostic::new(
                    Phase::Parse,
                    format!("digit {c:?} invalid for base {radix}"),
                    self.prev_span(),
                )
            })?;
            value = value.or(&Bits::from_u64(width, d as u64));
            care = care.or(&Bits::from_u64(width, (1u64 << bits_per_digit) - 1));
        }
        // Digits above the literal's width were shifted out of `care`; the
        // remaining high bits were never written and are don't-care only if
        // the leading digit was a wildcard. Verilog extends with the leading
        // digit; approximate by marking unwritten high bits as care-zero.
        let digits_width = body.chars().filter(|&c| c != '_').count() as u32 * bits_per_digit;
        if digits_width < width {
            let lead_wild = body
                .chars()
                .find(|&c| c != '_')
                .is_some_and(|c| matches!(c, 'x' | 'X' | 'z' | 'Z' | '?'));
            if !lead_wild {
                for i in digits_width..width {
                    care.set_bit(i, true);
                }
            }
        } else {
            // Literal exactly fills or overfills the width; nothing to extend.
        }
        Ok(Expr::MaskedLiteral { value, care })
    }
}
