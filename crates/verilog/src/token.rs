//! Token kinds produced by the lexer.

use crate::source::Span;
use std::fmt;

/// A lexed token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

/// Verilog keywords in the supported subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Keyword {
    Module,
    Endmodule,
    Input,
    Output,
    Inout,
    Wire,
    Reg,
    Integer,
    Signed,
    Parameter,
    Localparam,
    Assign,
    Always,
    Initial,
    Begin,
    End,
    If,
    Else,
    Case,
    Casez,
    Casex,
    Endcase,
    Default,
    For,
    While,
    Repeat,
    Forever,
    Posedge,
    Negedge,
    Or,
    Genvar,
    Generate,
    Endgenerate,
    Function,
    Endfunction,
}

impl Keyword {
    /// The keyword's source spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Module => "module",
            Keyword::Endmodule => "endmodule",
            Keyword::Input => "input",
            Keyword::Output => "output",
            Keyword::Inout => "inout",
            Keyword::Wire => "wire",
            Keyword::Reg => "reg",
            Keyword::Integer => "integer",
            Keyword::Signed => "signed",
            Keyword::Parameter => "parameter",
            Keyword::Localparam => "localparam",
            Keyword::Assign => "assign",
            Keyword::Always => "always",
            Keyword::Initial => "initial",
            Keyword::Begin => "begin",
            Keyword::End => "end",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::Case => "case",
            Keyword::Casez => "casez",
            Keyword::Casex => "casex",
            Keyword::Endcase => "endcase",
            Keyword::Default => "default",
            Keyword::For => "for",
            Keyword::While => "while",
            Keyword::Repeat => "repeat",
            Keyword::Forever => "forever",
            Keyword::Posedge => "posedge",
            Keyword::Negedge => "negedge",
            Keyword::Or => "or",
            Keyword::Genvar => "genvar",
            Keyword::Generate => "generate",
            Keyword::Endgenerate => "endgenerate",
            Keyword::Function => "function",
            Keyword::Endfunction => "endfunction",
        }
    }

    /// Looks up an identifier as a keyword.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "module" => Keyword::Module,
            "endmodule" => Keyword::Endmodule,
            "input" => Keyword::Input,
            "output" => Keyword::Output,
            "inout" => Keyword::Inout,
            "wire" => Keyword::Wire,
            "reg" => Keyword::Reg,
            "integer" => Keyword::Integer,
            "signed" => Keyword::Signed,
            "parameter" => Keyword::Parameter,
            "localparam" => Keyword::Localparam,
            "assign" => Keyword::Assign,
            "always" => Keyword::Always,
            "initial" => Keyword::Initial,
            "begin" => Keyword::Begin,
            "end" => Keyword::End,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "case" => Keyword::Case,
            "casez" => Keyword::Casez,
            "casex" => Keyword::Casex,
            "endcase" => Keyword::Endcase,
            "default" => Keyword::Default,
            "for" => Keyword::For,
            "while" => Keyword::While,
            "repeat" => Keyword::Repeat,
            "forever" => Keyword::Forever,
            "posedge" => Keyword::Posedge,
            "negedge" => Keyword::Negedge,
            "or" => Keyword::Or,
            "genvar" => Keyword::Genvar,
            "generate" => Keyword::Generate,
            "endgenerate" => Keyword::Endgenerate,
            "function" => Keyword::Function,
            "endfunction" => Keyword::Endfunction,
            _ => return None,
        })
    }
}

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier such as `cnt` or an escaped identifier.
    Ident(String),
    /// A system identifier such as `$display`.
    SysIdent(String),
    /// A reserved word.
    Keyword(Keyword),
    /// An integer literal, kept textual until the parser sizes it:
    /// `(size, radix, digits)`; `size` is `None` for unsized literals.
    Number {
        size: Option<u32>,
        radix: u32,
        body: String,
    },
    /// A bare decimal literal such as `42`.
    Decimal(u64),
    /// A string literal (contents, unescaped).
    Str(String),
    // Punctuation and operators.
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Semi,
    Comma,
    Dot,
    Colon,
    Question,
    At,
    Hash,
    Eq,         // =
    PlusColon,  // +:
    MinusColon, // -:
    Plus,
    Minus,
    Star,
    StarStar,
    Slash,
    Percent,
    Bang,
    Tilde,
    Amp,
    AmpAmp,
    Pipe,
    PipePipe,
    Caret,
    TildeCaret, // ~^ or ^~
    EqEq,
    BangEq,
    EqEqEq,
    BangEqEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Shl,      // <<
    Shr,      // >>
    AShl,     // <<<
    AShr,     // >>>
    LtAssign, // <= in statement position is nonblocking assign; lexed as LtEq and disambiguated by the parser
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::SysIdent(s) => write!(f, "`${s}`"),
            TokenKind::Keyword(k) => write!(f, "`{}`", k.as_str()),
            TokenKind::Number { .. } => write!(f, "number"),
            TokenKind::Decimal(v) => write!(f, "number `{v}`"),
            TokenKind::Str(_) => write!(f, "string"),
            TokenKind::Eof => write!(f, "end of input"),
            other => {
                let s = match other {
                    TokenKind::LParen => "(",
                    TokenKind::RParen => ")",
                    TokenKind::LBracket => "[",
                    TokenKind::RBracket => "]",
                    TokenKind::LBrace => "{",
                    TokenKind::RBrace => "}",
                    TokenKind::Semi => ";",
                    TokenKind::Comma => ",",
                    TokenKind::Dot => ".",
                    TokenKind::Colon => ":",
                    TokenKind::Question => "?",
                    TokenKind::At => "@",
                    TokenKind::Hash => "#",
                    TokenKind::Eq => "=",
                    TokenKind::PlusColon => "+:",
                    TokenKind::MinusColon => "-:",
                    TokenKind::Plus => "+",
                    TokenKind::Minus => "-",
                    TokenKind::Star => "*",
                    TokenKind::StarStar => "**",
                    TokenKind::Slash => "/",
                    TokenKind::Percent => "%",
                    TokenKind::Bang => "!",
                    TokenKind::Tilde => "~",
                    TokenKind::Amp => "&",
                    TokenKind::AmpAmp => "&&",
                    TokenKind::Pipe => "|",
                    TokenKind::PipePipe => "||",
                    TokenKind::Caret => "^",
                    TokenKind::TildeCaret => "~^",
                    TokenKind::EqEq => "==",
                    TokenKind::BangEq => "!=",
                    TokenKind::EqEqEq => "===",
                    TokenKind::BangEqEq => "!==",
                    TokenKind::Lt => "<",
                    TokenKind::LtEq => "<=",
                    TokenKind::Gt => ">",
                    TokenKind::GtEq => ">=",
                    TokenKind::Shl => "<<",
                    TokenKind::Shr => ">>",
                    TokenKind::AShl => "<<<",
                    TokenKind::AShr => ">>>",
                    TokenKind::LtAssign => "<=",
                    _ => unreachable!(),
                };
                write!(f, "`{s}`")
            }
        }
    }
}
