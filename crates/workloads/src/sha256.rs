//! The SHA-256 proof-of-work miner (paper Sec. 6.1).
//!
//! The paper runs "a standard Verilog implementation of the SHA-256 proof
//! of work consensus algorithm used in bitcoin mining": combine a data
//! block with a nonce, hash, repeat until the hash is below a target. We
//! generate that Verilog here — an iterative one-round-per-cycle SHA-256
//! core wrapped in a nonce-search state machine — plus a bit-exact Rust
//! reference used by the tests to validate the hardware against.
//!
//! Substitution note (DESIGN.md): the miner hashes a single 512-bit block
//! containing the nonce rather than a full 80-byte double-SHA bitcoin
//! header; the compute structure per attempt (64 schedule+compression
//! rounds) is identical in kind, only the attempt count per block differs.

use std::fmt::Write as _;

/// SHA-256 round constants.
pub const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256 initial hash values.
pub const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Reference SHA-256 over exactly one padded 512-bit block whose first word
/// is `data` and second word is `nonce` (remaining words are the padding of
/// an 8-byte message). Returns the 8-word digest.
pub fn sha256_block(data: u32, nonce: u32) -> [u32; 8] {
    let mut w = [0u32; 64];
    w[0] = data;
    w[1] = nonce;
    w[2] = 0x8000_0000; // padding: leading 1 bit
    w[15] = 64; // message length in bits
    for t in 16..64 {
        let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
        let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
        w[t] = w[t - 16]
            .wrapping_add(s0)
            .wrapping_add(w[t - 7])
            .wrapping_add(s1);
    }
    let mut h = H0;
    let (mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh) =
        (h[0], h[1], h[2], h[3], h[4], h[5], h[6], h[7]);
    for t in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = hh
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[t])
            .wrapping_add(w[t]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        hh = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    h[0] = h[0].wrapping_add(a);
    h[1] = h[1].wrapping_add(b);
    h[2] = h[2].wrapping_add(c);
    h[3] = h[3].wrapping_add(d);
    h[4] = h[4].wrapping_add(e);
    h[5] = h[5].wrapping_add(f);
    h[6] = h[6].wrapping_add(g);
    h[7] = h[7].wrapping_add(hh);
    h
}

/// The first nonce at or above `start` whose digest's leading word is below
/// `target` (the reference answer the Verilog miner must reproduce).
pub fn find_nonce(data: u32, target: u32, start: u32) -> (u32, [u32; 8]) {
    let mut nonce = start;
    loop {
        let h = sha256_block(data, nonce);
        if h[0] < target {
            return (nonce, h);
        }
        nonce = nonce.wrapping_add(1);
    }
}

/// How the generated miner is packaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// A standalone module with a `clk` input port (for the iVerilog and
    /// Quartus baselines).
    Ported,
    /// Root items referencing the Cascade standard library (`clk.val`,
    /// `led.val`), with a `$display` on success — the debugging-session
    /// form the paper measures.
    Cascade,
}

/// Miner configuration.
#[derive(Debug, Clone)]
pub struct MinerConfig {
    /// The fixed data word hashed with each nonce.
    pub data: u32,
    /// Accept a nonce when the digest's leading word is below this.
    pub target: u32,
    /// First nonce attempted.
    pub start_nonce: u32,
    /// Emit a `$display` + `$finish` when found (Cascade flavor only).
    pub announce: bool,
    /// Express the SHA round primitives as Verilog `function`s (the style
    /// open-source miners actually use) instead of inline wires.
    pub use_functions: bool,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig {
            data: 0x5eed_b10c,
            target: 0x0200_0000,
            start_nonce: 0,
            announce: true,
            use_functions: false,
        }
    }
}

/// Generates the miner Verilog.
pub fn miner_verilog(cfg: &MinerConfig, flavor: Flavor) -> String {
    let mut src = String::with_capacity(16_384);
    let body = miner_body(cfg, flavor);
    match flavor {
        Flavor::Ported => {
            src.push_str("module Miner(\n  input wire clk,\n  output wire found,\n  output wire [31:0] nonce_out,\n  output wire [31:0] hash_hi\n);\n");
            src.push_str(&body);
            src.push_str("assign found = state == 2'd2;\nassign nonce_out = nonce;\nassign hash_hi = digest0;\n");
            src.push_str("endmodule\n");
        }
        Flavor::Cascade => {
            src.push_str(&body);
            src.push_str("assign led.val = state == 2'd2 ? 8'hff : nonce[7:0];\n");
            if cfg.announce {
                src.push_str(
                    "always @(posedge clk.val)\n  if (state == 2'd2 && !announced) begin\n    announced <= 1'b1;\n    $display(\"FOUND nonce=%h hash=%h\", nonce, digest0);\n    $finish;\n  end\n",
                );
            }
        }
    }
    src
}

fn clk_expr(flavor: Flavor) -> &'static str {
    match flavor {
        Flavor::Ported => "clk",
        Flavor::Cascade => "clk.val",
    }
}

fn miner_body(cfg: &MinerConfig, flavor: Flavor) -> String {
    let clk = clk_expr(flavor);
    let mut s = String::new();
    // State.
    s.push_str("reg [1:0] state = 0;\nreg [6:0] round = 0;\nreg announced = 0;\n");
    let _ = writeln!(s, "reg [31:0] nonce = 32'h{:08x};", cfg.start_nonce);
    for i in 0..16 {
        let _ = writeln!(s, "reg [31:0] w{i} = 0;");
    }
    for r in ["a", "b", "c", "d", "e", "f", "g", "h2"] {
        let _ = writeln!(s, "reg [31:0] {r} = 0;");
    }
    for i in 0..8 {
        let _ = writeln!(s, "reg [31:0] digest{i} = 0;");
    }
    // Round constant ROM.
    s.push_str("reg [31:0] kr;\nalways @(*) case (round)\n");
    for (i, k) in K.iter().enumerate() {
        let _ = writeln!(s, "  7'd{i}: kr = 32'h{k:08x};");
    }
    s.push_str("  default: kr = 32'h0;\nendcase\n");
    // Combinational round logic: either inline wires or the function style
    // real open-source miners use.
    if cfg.use_functions {
        s.push_str(
            "function [31:0] bsig1; input [31:0] x;\n\
               bsig1 = {x[5:0], x[31:6]} ^ {x[10:0], x[31:11]} ^ {x[24:0], x[31:25]};\n\
             endfunction\n\
             function [31:0] bsig0; input [31:0] x;\n\
               bsig0 = {x[1:0], x[31:2]} ^ {x[12:0], x[31:13]} ^ {x[21:0], x[31:22]};\n\
             endfunction\n\
             function [31:0] ssig0; input [31:0] x;\n\
               ssig0 = {x[6:0], x[31:7]} ^ {x[17:0], x[31:18]} ^ (x >> 3);\n\
             endfunction\n\
             function [31:0] ssig1; input [31:0] x;\n\
               ssig1 = {x[16:0], x[31:17]} ^ {x[18:0], x[31:19]} ^ (x >> 10);\n\
             endfunction\n\
             function [31:0] choose; input [31:0] x; input [31:0] y; input [31:0] z;\n\
               choose = (x & y) ^ (~x & z);\n\
             endfunction\n\
             function [31:0] majority; input [31:0] x; input [31:0] y; input [31:0] z;\n\
               majority = (x & y) ^ (x & z) ^ (y & z);\n\
             endfunction\n\
             wire [31:0] t1 = h2 + bsig1(e) + choose(e, f, g) + kr + w0;\n\
             wire [31:0] t2 = bsig0(a) + majority(a, b, c);\n\
             wire [31:0] wnext = w0 + ssig0(w1) + w9 + ssig1(w14);\n",
        );
    } else {
        s.push_str(
            "wire [31:0] s1 = {e[5:0], e[31:6]} ^ {e[10:0], e[31:11]} ^ {e[24:0], e[31:25]};\n\
             wire [31:0] ch = (e & f) ^ (~e & g);\n\
             wire [31:0] t1 = h2 + s1 + ch + kr + w0;\n\
             wire [31:0] s0 = {a[1:0], a[31:2]} ^ {a[12:0], a[31:13]} ^ {a[21:0], a[31:22]};\n\
             wire [31:0] maj = (a & b) ^ (a & c) ^ (b & c);\n\
             wire [31:0] t2 = s0 + maj;\n\
             wire [31:0] sch0 = {w1[6:0], w1[31:7]} ^ {w1[17:0], w1[31:18]} ^ (w1 >> 3);\n\
             wire [31:0] sch1 = {w14[16:0], w14[31:17]} ^ {w14[18:0], w14[31:19]} ^ (w14 >> 10);\n\
             wire [31:0] wnext = w0 + sch0 + w9 + sch1;\n",
        );
    }
    // FSM.
    let _ = writeln!(s, "always @(posedge {clk}) begin");
    s.push_str("  if (state == 2'd0) begin\n");
    let _ = writeln!(s, "    w0 <= 32'h{:08x};", cfg.data);
    s.push_str("    w1 <= nonce;\n    w2 <= 32'h80000000;\n");
    for i in 3..15 {
        let _ = writeln!(s, "    w{i} <= 32'h0;");
    }
    s.push_str("    w15 <= 32'd64;\n");
    let h = H0;
    let names = ["a", "b", "c", "d", "e", "f", "g", "h2"];
    for (n, v) in names.iter().zip(h.iter()) {
        let _ = writeln!(s, "    {n} <= 32'h{v:08x};");
    }
    s.push_str("    round <= 0;\n    state <= 2'd1;\n  end\n");
    // Round state.
    s.push_str("  else if (state == 2'd1) begin\n");
    for i in 0..15 {
        let _ = writeln!(s, "    w{i} <= w{};", i + 1);
    }
    s.push_str("    w15 <= wnext;\n");
    s.push_str(
        "    h2 <= g;\n    g <= f;\n    f <= e;\n    e <= d + t1;\n    d <= c;\n    c <= b;\n    b <= a;\n    a <= t1 + t2;\n",
    );
    s.push_str("    if (round == 7'd63) begin\n");
    let h0n = [
        ("digest0", "a"),
        ("digest1", "b"),
        ("digest2", "c"),
        ("digest3", "d"),
        ("digest4", "e"),
        ("digest5", "f"),
        ("digest6", "g"),
        ("digest7", "h2"),
    ];
    for (i, (dn, wn)) in h0n.iter().enumerate() {
        // digest_i = H0[i] + final working var... but the final values are
        // the post-round-63 ones, which land in the regs on this same edge.
        // Compute them from the nonblocking RHS expressions instead.
        let base = H0[i];
        let rhs = match *wn {
            "a" => "(t1 + t2)".to_string(),
            "b" => "a".to_string(),
            "c" => "b".to_string(),
            "d" => "c".to_string(),
            "e" => "(d + t1)".to_string(),
            "f" => "e".to_string(),
            "g" => "f".to_string(),
            "h2" => "g".to_string(),
            _ => unreachable!(),
        };
        let _ = writeln!(s, "      {dn} <= 32'h{base:08x} + {rhs};");
    }
    s.push_str("      state <= 2'd3;\n    end\n    else round <= round + 1;\n  end\n");
    // Check state.
    s.push_str("  else if (state == 2'd3) begin\n");
    let _ = writeln!(s, "    if (digest0 < 32'h{:08x})", cfg.target);
    s.push_str("      state <= 2'd2;\n    else begin\n      nonce <= nonce + 1;\n      state <= 2'd0;\n    end\n  end\nend\n");
    s
}

/// Cycles per nonce attempt (init + 64 rounds + check).
pub const CYCLES_PER_ATTEMPT: u64 = 66;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_digest_known_vector() {
        // SHA-256 of the 8-byte message 5eedb10c_00000000 (big-endian words)
        // must match a truth value computed independently; spot-check the
        // algebraic structure instead: digests differ across nonces and are
        // deterministic.
        let a = sha256_block(0x5eed_b10c, 0);
        let b = sha256_block(0x5eed_b10c, 0);
        let c = sha256_block(0x5eed_b10c, 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sha256_matches_known_test_vector() {
        // "abcdefgh" as two big-endian words = 0x61626364, 0x65666768.
        // sha256("abcdefgh") = 9c56cc51... (public test vector).
        let h = sha256_block(0x6162_6364, 0x6566_6768);
        assert_eq!(h[0], 0x9c56cc51);
        assert_eq!(h[1], 0xb374c3ba);
    }

    #[test]
    fn find_nonce_terminates() {
        let (nonce, h) = find_nonce(0x5eed_b10c, 0x0800_0000, 0);
        assert!(h[0] < 0x0800_0000);
        assert!(nonce < 1000, "easy target found quickly, got {nonce}");
    }

    #[test]
    fn generated_verilog_parses() {
        let cfg = MinerConfig::default();
        for flavor in [Flavor::Ported, Flavor::Cascade] {
            let src = miner_verilog(&cfg, flavor);
            let wrapped = if flavor == Flavor::Cascade {
                // Root items parse as a unit.
                src
            } else {
                src
            };
            cascade_verilog::parse(&wrapped).unwrap_or_else(|e| panic!("{flavor:?}: {e}"));
        }
    }
}
