//! The user-study model (paper Sec. 6.3, Fig. 13).
//!
//! The paper measured 20 humans fixing a seeded bug with either the Quartus
//! IDE or Cascade, recording build counts, compile time, and test/debug
//! time. We cannot re-run humans, so this module is a *stochastic developer
//! model* (documented substitution, DESIGN.md): a developer iterates
//! edit → compile → test; each test narrows the bug with some probability;
//! compile latency is the tool's; and — the behavioural effect the paper's
//! free responses describe — long compiles make developers batch more
//! changes per build (fewer, bigger iterations) while instant feedback
//! encourages small steps with a higher per-step success rate.

/// Per-tool latency behaviour.
#[derive(Debug, Clone)]
pub struct ToolModel {
    pub name: &'static str,
    /// Mean compile latency in minutes.
    pub compile_mean_min: f64,
    /// Multiplicative jitter (log-uniform in `[1/j, j]`).
    pub compile_jitter: f64,
}

impl ToolModel {
    /// The Quartus IDE flow: ~1.2 min compiles for the study's 50-line
    /// program (Fig. 13's x-axis tops out around 1.5 min average).
    pub fn quartus() -> ToolModel {
        ToolModel {
            name: "quartus",
            compile_mean_min: 1.2,
            compile_jitter: 1.4,
        }
    }

    /// Cascade: sub-second compiles (the JIT hides the real one).
    pub fn cascade() -> ToolModel {
        ToolModel {
            name: "cascade",
            compile_mean_min: 0.017,
            compile_jitter: 1.3,
        }
    }
}

/// One simulated participant's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ParticipantResult {
    pub builds: u32,
    pub total_min: f64,
    pub compile_min: f64,
    pub debug_min: f64,
}

/// Aggregate over a cohort.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortResult {
    pub tool: &'static str,
    pub participants: Vec<ParticipantResult>,
}

impl CohortResult {
    /// Mean builds per participant.
    pub fn mean_builds(&self) -> f64 {
        self.participants
            .iter()
            .map(|p| p.builds as f64)
            .sum::<f64>()
            / self.participants.len() as f64
    }

    /// Mean time to a working design, minutes.
    pub fn mean_total_min(&self) -> f64 {
        self.participants.iter().map(|p| p.total_min).sum::<f64>() / self.participants.len() as f64
    }

    /// Mean time spent compiling, minutes.
    pub fn mean_compile_min(&self) -> f64 {
        self.participants.iter().map(|p| p.compile_min).sum::<f64>()
            / self.participants.len() as f64
    }

    /// Mean time spent testing/debugging between compiles, minutes.
    pub fn mean_debug_min(&self) -> f64 {
        self.participants.iter().map(|p| p.debug_min).sum::<f64>() / self.participants.len() as f64
    }
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Exponential with the given mean.
    fn exp(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.unit()).ln()
    }

    /// Log-uniform jitter factor in `[1/j, j]`.
    fn jitter(&mut self, j: f64) -> f64 {
        let u = self.unit() * 2.0 - 1.0;
        j.powf(u)
    }
}

/// Simulates one participant fixing a multi-bug program with `tool`.
pub fn simulate_participant(tool: &ToolModel, skill: f64, seed: u64) -> ParticipantResult {
    let mut rng = Rng(seed.wrapping_mul(0xD1B54A32D192ED03) | 1);
    // The study's program contains "one or more bugs".
    let bugs = 1 + (rng.next() % 3) as u32;
    let mut remaining = bugs as f64;
    let mut builds = 0u32;
    let mut total = 0.0;
    let mut compile = 0.0;
    let mut debug = 0.0;
    // Behavioural adaptation: expensive compiles push developers to batch
    // edits. Batch size grows with compile latency (capped); bigger batches
    // raise the chance of introducing a confusion penalty.
    let batch = 1.0 + (tool.compile_mean_min * 2.4).min(3.5);
    let max_minutes = 90.0;
    while remaining > 0.05 && total < max_minutes {
        // Edit phase: scaled by batch size and skill.
        let edit = rng.exp(1.1) * batch.powf(0.6) / skill;
        // Compile.
        let c = tool.compile_mean_min * rng.jitter(tool.compile_jitter);
        // Test/debug phase: observe behaviour, reason about the bug. With
        // printf available in the run environment (Cascade), localization
        // is a bit faster; with a waveform/proxy detour it is slower.
        let observe = rng.exp(if tool.compile_mean_min < 0.1 {
            1.75
        } else {
            1.9
        }) / skill;
        builds += 1;
        total += edit + c + observe;
        compile += c;
        debug += observe;
        // Progress: each build fixes part of a bug; small batches are more
        // reliable per attempt, large batches attempt more per build.
        let per_build_progress = 0.35 * skill * batch.powf(0.5);
        let success = rng.unit() < 0.8;
        if success {
            remaining -= per_build_progress;
        } else if rng.unit() < 0.3 {
            // A bad batch sets the participant back.
            remaining += 0.12 * (batch - 1.0);
        }
    }
    ParticipantResult {
        builds,
        total_min: total.min(max_minutes),
        compile_min: compile,
        debug_min: debug,
    }
}

/// Simulates a cohort of `n` participants with mixed experience (the
/// study's "familiarity ranged from none to strong").
pub fn simulate_cohort(tool: &ToolModel, n: usize, seed: u64) -> CohortResult {
    let mut rng = Rng(seed | 1);
    let participants = (0..n)
        .map(|i| {
            let skill = 0.6 + rng.unit() * 0.9; // 0.6 (novice) .. 1.5 (strong)
            simulate_participant(tool, skill, seed.wrapping_add(i as u64 * 7919))
        })
        .collect();
    CohortResult {
        tool: tool.name,
        participants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = simulate_cohort(&ToolModel::cascade(), 10, 42);
        let b = simulate_cohort(&ToolModel::cascade(), 10, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn cascade_cohort_builds_more_and_finishes_faster() {
        let q = simulate_cohort(&ToolModel::quartus(), 10, 1);
        let c = simulate_cohort(&ToolModel::cascade(), 10, 1);
        assert!(
            c.mean_builds() > q.mean_builds() * 1.15,
            "cascade {:.1} builds vs quartus {:.1}",
            c.mean_builds(),
            q.mean_builds()
        );
        assert!(
            c.mean_total_min() < q.mean_total_min() * 0.95,
            "cascade {:.1} min vs quartus {:.1}",
            c.mean_total_min(),
            q.mean_total_min()
        );
        assert!(
            q.mean_compile_min() / c.mean_compile_min() > 20.0,
            "compile time ratio {:.0}",
            q.mean_compile_min() / c.mean_compile_min()
        );
        // "Faster compilation did not encourage sloppy thought": debug time
        // is only slightly lower.
        assert!(c.mean_debug_min() > q.mean_debug_min() * 0.5);
    }

    #[test]
    fn participants_terminate() {
        for seed in 0..50 {
            let p = simulate_participant(&ToolModel::quartus(), 1.0, seed);
            assert!(p.total_min <= 90.0);
            assert!(p.builds >= 1);
        }
    }
}
