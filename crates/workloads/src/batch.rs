//! Batched workload drivers: embarrassingly parallel corpora on one
//! synthesized netlist.
//!
//! The Needleman-Wunsch grading corpus and the regex matcher both run
//! *many independent stimuli through the same design* — exactly the shape
//! the bit-parallel [`BatchHarness`] accelerates. These drivers synthesize
//! the design once, load one corpus entry per lane, and step every lane in
//! lock-step, so a width-64 batch grades 64 sequence pairs (or scans 64
//! packet streams) for roughly the cost of one.

use cascade_bits::Bits;
use cascade_netlist::{synthesize, BatchHarness};
use cascade_sim::{elaborate, library_from_source};

use crate::needleman::{grader_module, pack_sequence};
use crate::regex::{matcher_verilog, Dfa, Flavor};

/// Builds a batch harness for a standalone ported module.
fn harness_for(
    src: &str,
    top: &str,
    lanes: u32,
    eval_threads: u32,
) -> Result<BatchHarness, String> {
    let lib = library_from_source(src).map_err(|e| e.to_string())?;
    let design = elaborate(top, &lib, &Default::default()).map_err(|e| e.to_string())?;
    let netlist = synthesize(&design).map_err(|e| e.to_string())?;
    let mut h = BatchHarness::new(netlist.into(), lanes).map_err(|e| e.to_string())?;
    if eval_threads > 1 {
        h.set_eval_threads(eval_threads);
    }
    Ok(h)
}

/// Sign-extends a `width`-bit two's-complement value.
fn sign_extend(raw: u64, width: u32) -> i64 {
    if width >= 64 || raw & (1 << (width - 1)) == 0 {
        raw as i64
    } else {
        (raw | !((1u64 << width) - 1)) as i64
    }
}

/// Scores a corpus of equal-length sequence pairs on the hardware grader,
/// `lanes` pairs at a time. Every pair must be exactly `seq_len` symbols
/// (1..=32); scores come back in corpus order. `eval_threads > 1`
/// additionally splits wide combinational levels across a worker pool.
///
/// The result is bit-identical to running [`grader_module`] once per pair
/// — and to the [`nw_score`](crate::needleman::nw_score) software oracle.
///
/// # Errors
///
/// Returns a message for malformed pairs or a design that fails to
/// parse/elaborate/synthesize (which would indicate a generator bug).
pub fn grade_corpus_batched(
    pairs: &[(Vec<u8>, Vec<u8>)],
    seq_len: usize,
    cell_width: u32,
    lanes: u32,
    eval_threads: u32,
) -> Result<Vec<i64>, String> {
    for (i, (a, b)) in pairs.iter().enumerate() {
        if a.len() != seq_len || b.len() != seq_len {
            return Err(format!("pair {i} is not {seq_len} symbols"));
        }
    }
    let src = grader_module(seq_len, cell_width);
    let mut h = harness_for(&src, "NwGrader", lanes, eval_threads)?;
    let lanes = h.lanes();
    let nl = h.netlist();
    let seq_a = nl.net_by_name("seq_a").ok_or("no seq_a port")?;
    let seq_b = nl.net_by_name("seq_b").ok_or("no seq_b port")?;
    let score = nl.net_by_name("score").ok_or("no score port")?;
    let done = nl.net_by_name("done").ok_or("no done port")?;
    let seq_bits = seq_len as u32 * 2;
    let mut out = Vec::with_capacity(pairs.len());
    for chunk in pairs.chunks(lanes as usize) {
        h.reset();
        for (lane, (a, b)) in chunk.iter().enumerate() {
            h.set_lane(
                seq_a,
                lane as u32,
                Bits::from_u64(seq_bits, pack_sequence(a)),
            );
            h.set_lane(
                seq_b,
                lane as u32,
                Bits::from_u64(seq_bits, pack_sequence(b)),
            );
        }
        h.run_cycles(2 * seq_len as u64 + 2);
        for lane in 0..chunk.len() as u32 {
            if h.get_lane(done, lane).to_u64() != 1 {
                return Err(format!("lane {lane} did not finish"));
            }
            out.push(sign_extend(h.get_lane(score, lane).to_u64(), cell_width));
        }
    }
    Ok(out)
}

/// Counts pattern matches in each input stream on the hardware matcher,
/// `lanes` streams at a time. Streams may have different lengths — a lane
/// whose stream is exhausted idles with `valid` low while the rest of its
/// batch drains. Counts come back in corpus order and are bit-identical
/// to [`Dfa::count_matches`].
///
/// # Errors
///
/// Returns a message if the emitted matcher fails to
/// parse/elaborate/synthesize (which would indicate a generator bug).
pub fn match_corpus_batched(
    dfa: &Dfa,
    inputs: &[Vec<u8>],
    lanes: u32,
    eval_threads: u32,
) -> Result<Vec<u64>, String> {
    let src = matcher_verilog(dfa, Flavor::Ported);
    let mut h = harness_for(&src, "Matcher", lanes, eval_threads)?;
    let lanes = h.lanes();
    let nl = h.netlist();
    let byte_in = nl.net_by_name("byte_in").ok_or("no byte_in port")?;
    let valid = nl.net_by_name("valid").ok_or("no valid port")?;
    let matches = nl.net_by_name("matches").ok_or("no matches port")?;
    let mut out = Vec::with_capacity(inputs.len());
    for chunk in inputs.chunks(lanes as usize) {
        h.reset();
        let max_len = chunk.iter().map(|s| s.len()).max().unwrap_or(0);
        for cycle in 0..max_len {
            for (lane, stream) in chunk.iter().enumerate() {
                match stream.get(cycle) {
                    Some(&b) => {
                        h.set_lane(byte_in, lane as u32, Bits::from_u64(8, b as u64));
                        h.set_lane(valid, lane as u32, Bits::from_u64(1, 1));
                    }
                    None => h.set_lane(valid, lane as u32, Bits::from_u64(1, 0)),
                }
            }
            h.step_clock(0);
        }
        for lane in 0..chunk.len() as u32 {
            out.push(h.get_lane(matches, lane).to_u64());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::needleman::{nw_score, random_sequence};
    use crate::regex::compile;

    #[test]
    fn grader_module_parses() {
        let src = grader_module(7, 16);
        cascade_verilog::parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    }

    #[test]
    fn batched_grading_matches_oracle() {
        let n = 8;
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..10)
            .map(|i| (random_sequence(n, 100 + i), random_sequence(n, 200 + i)))
            .collect();
        let want: Vec<i64> = pairs.iter().map(|(a, b)| nw_score(a, b)).collect();
        // Lanes that don't divide the corpus exercise the partial tail.
        let got = grade_corpus_batched(&pairs, n, 16, 4, 1).unwrap();
        assert_eq!(got, want);
        let wide = grade_corpus_batched(&pairs, n, 16, 16, 1).unwrap();
        assert_eq!(wide, want);
    }

    #[test]
    fn batched_grading_is_thread_invariant() {
        let n = 6;
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..5)
            .map(|i| (random_sequence(n, 300 + i), random_sequence(n, 400 + i)))
            .collect();
        let serial = grade_corpus_batched(&pairs, n, 16, 8, 1).unwrap();
        let pooled = grade_corpus_batched(&pairs, n, 16, 8, 4).unwrap();
        assert_eq!(serial, pooled);
        assert_eq!(
            serial,
            pairs
                .iter()
                .map(|(a, b)| nw_score(a, b))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn batched_matching_matches_oracle() {
        let dfa = compile("GET |POST ").unwrap();
        let inputs: Vec<Vec<u8>> = [
            &b"GET /index.html POST /a GET /b"[..],
            &b"no verbs here"[..],
            &b"POST POST POST "[..],
            &b""[..],
            &b"GET GET "[..],
        ]
        .iter()
        .map(|s| s.to_vec())
        .collect();
        let want: Vec<u64> = inputs.iter().map(|s| dfa.count_matches(s)).collect();
        let got = match_corpus_batched(&dfa, &inputs, 4, 1).unwrap();
        assert_eq!(got, want);
        let pooled = match_corpus_batched(&dfa, &inputs, 4, 2).unwrap();
        assert_eq!(pooled, want);
    }
}
