//! Benchmark workload generators for the Cascade paper's evaluation
//! (Sec. 6): the SHA-256 proof-of-work miner (Fig. 11), the streaming
//! regular-expression matcher (Fig. 12), the synthetic user-study cohorts
//! (Fig. 13), and the Needleman-Wunsch class corpus (Table 1).
//!
//! Every generator emits real Verilog that the rest of the workspace
//! parses, simulates, synthesizes, and JIT-compiles; the Rust reference
//! implementations in each module pin down the expected answers.

pub mod batch;
pub mod needleman;
pub mod regex;
pub mod sha256;
pub mod study;
