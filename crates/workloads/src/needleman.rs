//! Needleman-Wunsch sequence alignment (paper Sec. 6.4, Table 1).
//!
//! The UT Austin concurrency class had students implement Needleman-Wunsch
//! in Verilog on Cascade; Table 1 aggregates syntax statistics over their
//! submissions. We cannot obtain the submissions, so this module generates
//! a corpus of *student-like* solutions with controlled stylistic variation
//! (solution shape, assignment-style habits, debugging printf density) and
//! provides the Rust reference implementation the solutions are checked
//! against. The Table 1 harness measures the generated corpus with the real
//! parser — the same pipeline grading real submissions would use.

use std::fmt::Write as _;

/// Reference Needleman-Wunsch score for two sequences with the class's
/// scoring scheme (match +1, mismatch -1, gap -1), as a signed value.
pub fn nw_score(a: &[u8], b: &[u8]) -> i64 {
    let n = a.len();
    let m = b.len();
    let mut prev: Vec<i64> = (0..=m as i64).map(|j| -j).collect();
    let mut cur = vec![0i64; m + 1];
    for i in 1..=n {
        cur[0] = -(i as i64);
        for j in 1..=m {
            let diag = prev[j - 1] + if a[i - 1] == b[j - 1] { 1 } else { -1 };
            let up = prev[j] - 1;
            let left = cur[j - 1] - 1;
            cur[j] = diag.max(up).max(left);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Stylistic knobs for one synthetic "student" solution.
#[derive(Debug, Clone)]
pub struct StudentStyle {
    /// Sequence length (cells = n^2).
    pub seq_len: usize,
    /// Score cell width in bits.
    pub cell_width: u32,
    /// Whether the student wrote a row-pipelined design (the 29% in the
    /// paper) or a fully combinational-in-one-block design.
    pub pipelined: bool,
    /// Number of `$display` statements sprinkled for debugging.
    pub display_count: usize,
    /// Habitual use of blocking assignments where nonblocking belongs
    /// (the paper: blocking over-used 8× relative to nonblocking).
    pub blocking_heavy: bool,
    /// Extra scratch registers (verbosity).
    pub scratch_regs: usize,
    /// Number of build cycles this student logged.
    pub builds: u32,
}

/// Deterministic per-student style drawn from a seed (log-normal-ish spread
/// matching Table 1's min/max ranges).
pub fn student_style(seed: u64) -> StudentStyle {
    let mut rng = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let u = |x: u64, lo: u64, hi: u64| lo + x % (hi - lo + 1);
    StudentStyle {
        seq_len: u(next(), 5, 14) as usize,
        cell_width: u(next(), 8, 16) as u32,
        pipelined: next() % 100 < 29,
        display_count: u(next(), 1, 24) as usize,
        blocking_heavy: next() % 100 < 70,
        scratch_regs: u(next(), 0, 6) as usize,
        builds: {
            // Log-normal-ish: most students build tens of times, a few over
            // a hundred (paper: mean 27, min 1, max 123).
            let base = u(next(), 1, 40);
            let burst = if next() % 100 < 12 {
                u(next(), 40, 100)
            } else {
                0
            };
            (base + burst) as u32
        },
    }
}

/// Generates one student-like Needleman-Wunsch solution as a standalone
/// module `Nw` with a `clk` port.
///
/// Sequences are provided as parameters packed into vectors; the module
/// computes the alignment score into `score` and asserts `done`.
pub fn student_solution(style: &StudentStyle) -> String {
    let n = style.seq_len;
    let w = style.cell_width;
    let mut s = String::with_capacity(8192);
    let _ = writeln!(
        s,
        "module Nw #(parameter [{}:0] SEQ_A = 0, parameter [{}:0] SEQ_B = 0)(",
        n * 2 - 1,
        n * 2 - 1
    );
    let _ = writeln!(s, "  input wire clk,");
    let _ = writeln!(s, "  output wire signed [{}:0] score,", w - 1);
    s.push_str("  output wire done\n);\n");
    // DP matrix as registers (students rarely used memories).
    for i in 0..=n {
        for j in 0..=n {
            let _ = writeln!(s, "reg signed [{}:0] cell_{i}_{j} = 0;", w - 1);
        }
    }
    for k in 0..style.scratch_regs {
        let _ = writeln!(s, "reg [{}:0] scratch{k} = 0;", w - 1);
    }
    s.push_str("reg [7:0] step = 0;\nreg finished = 0;\n");
    // Sequential fill: one anti-diagonal batch per clock for pipelined
    // solutions, whole matrix in one shot otherwise.
    let asn = if style.blocking_heavy { "=" } else { "<=" };
    s.push_str("always @(posedge clk) begin\n");
    s.push_str("  if (step == 0) begin\n");
    for i in 0..=n {
        let _ = writeln!(s, "    cell_{i}_0 {asn} -$signed({i});");
    }
    for j in 1..=n {
        let _ = writeln!(s, "    cell_0_{j} {asn} -$signed({j});");
    }
    s.push_str("    step <= 1;\n  end\n");
    let emit_cell = |s: &mut String, i: usize, j: usize, asn: &str| {
        let _ = writeln!(
            s,
            "    cell_{i}_{j} {asn} nw_max(cell_{im}_{jm} + (SEQ_A[{ai} +: 2] == SEQ_B[{bi} +: 2] ? $signed({w}'d1) : -$signed({w}'d1)), cell_{im}_{j} - $signed({w}'d1), cell_{i}_{jm} - $signed({w}'d1));",
            im = i - 1,
            jm = j - 1,
            ai = (i - 1) * 2,
            bi = (j - 1) * 2,
        );
    };
    if style.pipelined {
        // One anti-diagonal per step. Small matrices use nonblocking cell
        // updates (textbook style); larger ones fall back to blocking,
        // which is safe because diagonals never read their own cells.
        let cell_asn = if n <= 5 { "<=" } else { "=" };
        let asn = cell_asn;
        for d in 2..=(2 * n) {
            let _ = writeln!(s, "  else if (step == {}) begin", d - 1);
            for i in 1..=n {
                let j = d as i64 - i as i64;
                if j >= 1 && j <= n as i64 {
                    emit_cell(&mut s, i, j as usize, asn);
                }
            }
            let _ = writeln!(s, "    step <= {};", d);
            s.push_str("  end\n");
        }
        let _ = writeln!(s, "  else if (step == {}) begin", 2 * n);
        s.push_str("    finished <= 1;\n");
    } else {
        // Whole matrix in one step: only valid with blocking assignments,
        // which is exactly what the blocking-heavy students did.
        s.push_str("  else if (step == 1) begin\n");
        for i in 1..=n {
            for j in 1..=n {
                emit_cell(&mut s, i, j, "=");
            }
        }
        s.push_str("    finished <= 1;\n    step <= 2;\n");
    }
    // Debug prints (the first few inline; the rest in a dedicated block).
    for k in 0..style.display_count.min(4) {
        let i = 1 + k % n;
        let _ = writeln!(s, "    $display(\"row {i} cell=%d\", cell_{i}_{i});");
    }
    s.push_str("  end\nend\n");
    // Students scatter auxiliary always blocks: scratch-register updates
    // and debug-print blocks (Table 1: 2-12 always blocks per solution).
    for k in 0..style.scratch_regs.min(4) {
        let _ = writeln!(
            s,
            "always @(posedge clk) scratch{k} <= scratch{k} + {};",
            k + 1
        );
    }
    if style.display_count > 4 {
        s.push_str("always @(posedge clk) if (finished && step < 200) begin\n");
        for k in 4..style.display_count {
            let i = 1 + k % n;
            let j = 1 + (k / 2) % n;
            let _ = writeln!(s, "  $display(\"cell[{i}][{j}]=%d\", cell_{i}_{j});");
        }
        s.push_str("  step <= 200;\nend\n");
    }
    // A max3 helper written the way students write it: a combinational
    // block (functions are beyond the class subset).
    // nw_max is inlined as a ternary chain via a macro-ish wire per use —
    // emitted here as a Verilog function-free idiom:
    let _ = writeln!(s, "assign score = cell_{n}_{n};");
    s.push_str("assign done = finished;\nendmodule\n");
    // Replace the pseudo-call `nw_max(a, b, c)` with a ternary chain.
    expand_nw_max(&s)
}

/// Generates a gradeable Needleman-Wunsch module `NwGrader` whose
/// sequences arrive as *input ports* rather than parameters, so one
/// synthesized netlist can score any pair of length-`n` sequences — and,
/// through [`cascade_netlist::BatchHarness`], many pairs at once, one per
/// lane. The schedule is fixed (anti-diagonal fill, one diagonal per
/// clock): `done` rises after `2n + 1` edges regardless of the data, which
/// keeps every lane of a batch on the same step counter.
pub fn grader_module(seq_len: usize, cell_width: u32) -> String {
    let n = seq_len;
    let w = cell_width;
    assert!((1..=32).contains(&n), "grader supports 1..=32 symbols");
    let mut s = String::with_capacity(16384);
    let _ = writeln!(s, "module NwGrader(");
    let _ = writeln!(s, "  input wire clk,");
    let _ = writeln!(s, "  input wire [{}:0] seq_a,", n * 2 - 1);
    let _ = writeln!(s, "  input wire [{}:0] seq_b,", n * 2 - 1);
    let _ = writeln!(s, "  output wire signed [{}:0] score,", w - 1);
    s.push_str("  output wire done\n);\n");
    for i in 0..=n {
        for j in 0..=n {
            let _ = writeln!(s, "reg signed [{}:0] cell_{i}_{j} = 0;", w - 1);
        }
    }
    s.push_str("reg [7:0] step = 0;\nreg finished = 0;\n");
    s.push_str("always @(posedge clk) begin\n");
    s.push_str("  if (step == 0) begin\n");
    for i in 1..=n {
        let _ = writeln!(s, "    cell_{i}_0 <= -$signed({i});");
    }
    for j in 1..=n {
        let _ = writeln!(s, "    cell_0_{j} <= -$signed({j});");
    }
    s.push_str("    step <= 1;\n  end\n");
    // Anti-diagonal d touches cells with i + j == d; those read only
    // diagonals d-1 and d-2, so nonblocking updates are race-free.
    for d in 2..=(2 * n) {
        let _ = writeln!(s, "  else if (step == {}) begin", d - 1);
        for i in 1..=n {
            let j = d as i64 - i as i64;
            if j >= 1 && j <= n as i64 {
                let _ = writeln!(
                    s,
                    "    cell_{i}_{j} <= nw_max(cell_{im}_{jm} + (seq_a[{ai} +: 2] == seq_b[{bi} +: 2] ? $signed({w}'d1) : -$signed({w}'d1)), cell_{im}_{j} - $signed({w}'d1), cell_{i}_{jm} - $signed({w}'d1));",
                    im = i - 1,
                    jm = j as usize - 1,
                    j = j as usize,
                    ai = (i - 1) * 2,
                    bi = (j as usize - 1) * 2,
                );
            }
        }
        let _ = writeln!(s, "    step <= {};", d);
        s.push_str("  end\n");
    }
    let _ = writeln!(s, "  else if (step == {}) begin", 2 * n);
    s.push_str("    finished <= 1;\n  end\nend\n");
    let _ = writeln!(s, "assign score = cell_{n}_{n};");
    s.push_str("assign done = finished;\nendmodule\n");
    expand_nw_max(&s)
}

/// Expands `nw_max(a, b, c)` pseudo-calls into ternary max chains (keeps
/// the generator readable while staying inside the language subset).
fn expand_nw_max(src: &str) -> String {
    let mut out = String::with_capacity(src.len() * 2);
    let mut rest = src;
    while let Some(pos) = rest.find("nw_max(") {
        out.push_str(&rest[..pos]);
        let after = &rest[pos + "nw_max(".len()..];
        // Split the three arguments at top-level commas.
        let mut depth = 0;
        let mut args: Vec<String> = Vec::new();
        let mut cur = String::new();
        let mut consumed = 0;
        for (i, c) in after.char_indices() {
            match c {
                '(' | '[' | '{' => {
                    depth += 1;
                    cur.push(c);
                }
                ')' | ']' | '}' if depth > 0 => {
                    depth -= 1;
                    cur.push(c);
                }
                ')' => {
                    args.push(cur.trim().to_string());
                    consumed = i + 1;
                    break;
                }
                ',' if depth == 0 => {
                    args.push(cur.trim().to_string());
                    cur = String::new();
                }
                other => cur.push(other),
            }
        }
        assert_eq!(args.len(), 3, "nw_max takes three arguments");
        let (a, b, c) = (&args[0], &args[1], &args[2]);
        let _ = write!(
            out,
            "((({a}) >= ({b}) && ({a}) >= ({c})) ? ({a}) : (({b}) >= ({c})) ? ({b}) : ({c}))"
        );
        rest = &after[consumed..];
    }
    out.push_str(rest);
    out
}

/// Packs a 2-bit-per-symbol DNA sequence for the module parameters.
pub fn pack_sequence(seq: &[u8]) -> u64 {
    let mut out = 0u64;
    for (i, &c) in seq.iter().enumerate() {
        let code = match c {
            b'A' | b'a' => 0u64,
            b'C' | b'c' => 1,
            b'G' | b'g' => 2,
            _ => 3,
        };
        out |= code << (i * 2);
    }
    out
}

/// Generates a random DNA sequence of length `n` from a seed.
pub fn random_sequence(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = seed | 1;
    (0..n)
        .map(|_| {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            b"ACGT"[(rng % 4) as usize]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_scores() {
        assert_eq!(nw_score(b"GATTACA", b"GATTACA"), 7);
        assert_eq!(nw_score(b"GATTACA", b"GCATGCU"), 0);
        assert_eq!(nw_score(b"", b"AAA"), -3);
        assert_eq!(nw_score(b"A", b"T"), -1);
    }

    #[test]
    fn styles_vary_but_are_deterministic() {
        let a = student_style(7);
        let b = student_style(7);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = student_style(8);
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn generated_solutions_parse() {
        for seed in 0..12 {
            let style = student_style(seed);
            let src = student_solution(&style);
            cascade_verilog::parse(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn pack_sequence_codes() {
        assert_eq!(pack_sequence(b"ACGT"), 0b11_10_01_00);
    }
}
