//! Virtual FPGA device descriptions.

/// Capacity and clocking of a virtual FPGA, standing in for the paper's
/// Intel Cyclone V SoC testbed.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    pub name: String,
    /// Logic elements (LUT+FF pairs).
    pub logic_elements: u64,
    /// Block RAM capacity in bits.
    pub bram_bits: u64,
    /// Hardened multiplier blocks.
    pub dsp_blocks: u64,
    /// The fabric clock in MHz.
    pub clock_mhz: f64,
}

impl Device {
    /// The paper's experimental platform: a Cyclone V SoC with 110K logic
    /// elements and a 50 MHz fabric clock (Sec. 6).
    pub fn cyclone_v() -> Device {
        Device {
            name: "virtual-cyclone-v".to_string(),
            logic_elements: 110_000,
            bram_bits: 5_570_000,
            dsp_blocks: 112,
            clock_mhz: 50.0,
        }
    }

    /// A tiny device for tests that exercise capacity failures.
    pub fn tiny(logic_elements: u64) -> Device {
        Device {
            name: format!("virtual-tiny-{logic_elements}"),
            logic_elements,
            bram_bits: 4096,
            dsp_blocks: 2,
            clock_mhz: 50.0,
        }
    }

    /// The fabric clock period in nanoseconds.
    pub fn clock_period_ns(&self) -> f64 {
        1000.0 / self.clock_mhz
    }

    /// How many fabric cycles fit in one open-loop control-return period of
    /// `target_s` seconds — the natural seed for the runtime's adaptive
    /// batch budget (the controller then rescales from measured cost).
    pub fn open_loop_batch_hint(&self, target_s: f64) -> u64 {
        ((target_s.max(0.0) * self.clock_mhz * 1e6) as u64).max(16)
    }
}

impl Default for Device {
    fn default() -> Self {
        Device::cyclone_v()
    }
}
