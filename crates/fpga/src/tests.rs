use crate::{
    place, wrapper_overhead_les, Board, CompileError, CostModel, Ctrl, Device, MmioCore, Toolchain,
    VirtualWall,
};
use cascade_bits::Bits;
use cascade_netlist::synthesize;
use cascade_sim::{elaborate, library_from_source, Design};
use cascade_verilog::typecheck::ParamEnv;
use std::sync::Arc;
use std::time::Duration;

fn design_of(src: &str, top: &str) -> Design {
    let lib = library_from_source(src).expect("parse");
    elaborate(top, &lib, &ParamEnv::new()).expect("elaborate")
}

const COUNTER: &str = "module Count(input wire clk, output wire [7:0] o);\n\
    reg [7:0] c = 0;\n\
    always @(posedge clk) c <= c + 1;\n\
    assign o = c;\nendmodule";

#[test]
fn device_defaults_match_paper_platform() {
    let d = Device::cyclone_v();
    assert_eq!(d.logic_elements, 110_000);
    assert_eq!(d.clock_mhz, 50.0);
    assert_eq!(d.clock_period_ns(), 20.0);
}

#[test]
fn compile_small_design() {
    let design = design_of(COUNTER, "Count");
    let bs = Toolchain::default().compile(&design).expect("compile");
    assert!(bs.fmax_mhz >= 50.0);
    assert!(bs.area.registers >= 8);
    // Paper Sec. 2: "trivial programs can take several minutes".
    assert!(bs.modeled_duration >= Duration::from_secs(60));
    assert!(bs.modeled_duration <= Duration::from_secs(600));
}

#[test]
fn compile_time_grows_with_design_size() {
    let small = Toolchain::default()
        .compile(&design_of(COUNTER, "Count"))
        .unwrap();
    let big_src = "module Big(input wire clk, input wire [63:0] x, output wire [63:0] o);\n\
        reg [63:0] a0 = 0; reg [63:0] a1 = 0; reg [63:0] a2 = 0; reg [63:0] a3 = 0;\n\
        always @(posedge clk) begin\n\
          a0 <= x * 64'd2654435761 + a3;\n\
          a1 <= (a0 ^ (a0 >> 13)) * 64'd40503;\n\
          a2 <= a1 + (a1 << 7) + x;\n\
          a3 <= a2 ^ (a2 >> 17);\n\
        end\n\
        assign o = a3;\nendmodule";
    let big = Toolchain::default()
        .compile(&design_of(big_src, "Big"))
        .unwrap();
    assert!(
        big.modeled_duration > small.modeled_duration,
        "bigger design must compile slower: {:?} vs {:?}",
        big.modeled_duration,
        small.modeled_duration
    );
}

#[test]
fn capacity_failure() {
    let design = design_of(
        "module W(input wire clk, input wire [63:0] x, output wire [63:0] o);\n\
         reg [63:0] r = 0;\n\
         always @(posedge clk) r <= r * x + (r / (x | 64'h1));\n\
         assign o = r;\nendmodule",
        "W",
    );
    let tc = Toolchain::new(Device::tiny(50));
    match tc.compile(&design) {
        Err(CompileError::DoesNotFit { .. }) => {}
        other => panic!("expected capacity failure, got {other:?}"),
    }
}

#[test]
fn timing_closure_failure_on_deep_logic() {
    // A 128-bit divider chain has enormous logic depth.
    let design = design_of(
        "module Deep(input wire clk, input wire [127:0] x, output wire [127:0] o);\n\
         reg [127:0] r = 1;\n\
         always @(posedge clk) r <= ((x / (r | 128'h1)) / ((x >> 1) | 128'h1)) + r;\n\
         assign o = r;\nendmodule",
        "Deep",
    );
    match Toolchain::default().compile(&design) {
        Err(CompileError::TimingClosure {
            fmax_mhz,
            required_mhz,
        }) => {
            assert!(fmax_mhz < required_mhz);
        }
        Ok(bs) => panic!("expected timing failure, got fmax {}", bs.fmax_mhz),
        Err(other) => panic!("expected timing failure, got {other}"),
    }
}

#[test]
fn unsynthesizable_reported() {
    let design = design_of(
        "module R(input wire clk, output wire [31:0] o);\n\
         reg [31:0] r;\n\
         always @(posedge clk) r <= $random;\n\
         assign o = r;\nendmodule",
        "R",
    );
    assert!(matches!(
        Toolchain::default().compile(&design),
        Err(CompileError::Synth(_))
    ));
}

#[test]
fn placement_is_deterministic_per_seed() {
    let design = design_of(COUNTER, "Count");
    let nl = Arc::new(synthesize(&design).unwrap());
    let a = place(&nl, 7, 1.0);
    let b = place(&nl, 7, 1.0);
    assert_eq!(a, b);
    let c = place(&nl, 8, 1.0);
    assert_eq!(a.cells, c.cells);
}

#[test]
fn placement_effort_reduces_wirelength() {
    let design = design_of(
        "module X(input wire clk, input wire [31:0] a, output wire [31:0] o);\n\
         reg [31:0] r0 = 0; reg [31:0] r1 = 0; reg [31:0] r2 = 0;\n\
         always @(posedge clk) begin\n\
           r0 <= a ^ (a << 3) ^ (a >> 5);\n\
           r1 <= r0 + (r0 << 1) + (r0 >> 2);\n\
           r2 <= r1 ^ r0 ^ a;\n\
         end\n\
         assign o = r2;\nendmodule",
        "X",
    );
    let nl = Arc::new(synthesize(&design).unwrap());
    let low = place(&nl, 3, 0.1);
    let high = place(&nl, 3, 4.0);
    assert!(
        high.avg_wirelength <= low.avg_wirelength * 1.05,
        "more effort should not be much worse: {} vs {}",
        high.avg_wirelength,
        low.avg_wirelength
    );
}

#[test]
fn board_buttons_and_leds() {
    let board = Board::new();
    assert_eq!(board.buttons().to_u64(), 0);
    board.set_button(2, true);
    assert_eq!(board.buttons().to_u64(), 0b0100);
    board.set_button(2, false);
    assert_eq!(board.buttons().to_u64(), 0);
    board.write_leds(Bits::from_u64(8, 0xa5));
    assert_eq!(board.leds().to_u64(), 0xa5);
    assert_eq!(board.led_writes(), 1);
    board.write_leds(Bits::from_u64(8, 0xa5));
    assert_eq!(board.led_writes(), 1, "no change, no write counted");
}

#[test]
fn board_fifo_backpressure() {
    let board = Board::new();
    board.set_fifo_capacity(2);
    assert!(board.fifo_push(Bits::from_u64(8, 1)));
    assert!(board.fifo_push(Bits::from_u64(8, 2)));
    assert!(!board.fifo_push(Bits::from_u64(8, 3)), "full");
    assert!(board.fifo_full());
    assert_eq!(board.fifo_pop().unwrap().to_u64(), 1);
    assert_eq!(board.fifo_pops(), 1);
    assert!(board.fifo_push(Bits::from_u64(8, 3)));
    assert_eq!(board.fifo_pop().unwrap().to_u64(), 2);
    assert_eq!(board.fifo_pop().unwrap().to_u64(), 3);
    assert!(board.fifo_pop().is_none());
    assert_eq!(board.fifo_pops(), 3);
}

#[test]
fn board_gpio_and_reset() {
    let board = Board::new();
    board.set_gpio(Bits::from_u64(32, 0xdead));
    assert_eq!(board.gpio_in().to_u64(), 0xdead);
    board.write_gpio(Bits::from_u64(32, 0xbeef));
    assert_eq!(board.gpio_out().to_u64(), 0xbeef);
    assert!(!board.reset());
    board.set_reset(true);
    assert!(board.reset());
}

#[test]
fn board_is_shared_across_clones() {
    let a = Board::new();
    let b = a.clone();
    a.set_button(0, true);
    assert!(b.buttons().bit(0), "clones share state");
}

#[test]
fn mmio_core_protocol() {
    let design = design_of(COUNTER, "Count");
    let nl = Arc::new(synthesize(&design).unwrap());
    let mut core = MmioCore::new(nl).unwrap();
    let o_addr = core.map().addr("o").expect("output mapped");
    let c_addr = core.map().addr("c").expect("state mapped");
    assert_eq!(core.read(o_addr).to_u64(), 0);
    // d = c + 1 != c, so updates are pending.
    assert!(core.ctrl_read(Ctrl::ThereAreUpdates).to_bool());
    core.ctrl_write(Ctrl::Latch, Bits::from_u64(1, 1));
    assert_eq!(core.read(o_addr).to_u64(), 1);
    // set_state: overwrite the counter.
    core.write(c_addr, Bits::from_u64(8, 100));
    assert_eq!(core.read(o_addr).to_u64(), 100);
    assert!(core.transactions() > 0);
}

#[test]
fn mmio_open_loop_runs_until_limit() {
    let design = design_of(COUNTER, "Count");
    let nl = Arc::new(synthesize(&design).unwrap());
    let mut core = MmioCore::new(nl).unwrap();
    let done = core.open_loop(1000);
    assert_eq!(done, 1000);
    let o = core.map().addr("o").unwrap();
    assert_eq!(core.read(o).to_u64(), 1000 % 256);
}

#[test]
fn mmio_open_loop_stops_on_task() {
    let design = design_of(
        "module T(input wire clk, output wire [7:0] o);\n\
         reg [7:0] c = 0;\n\
         always @(posedge clk) begin\n\
           c <= c + 1;\n\
           if (c == 9) $display(\"hit %d\", c);\n\
         end\n\
         assign o = c;\nendmodule",
        "T",
    );
    let nl = Arc::new(synthesize(&design).unwrap());
    let mut core = MmioCore::new(nl).unwrap();
    let done = core.open_loop(1000);
    assert_eq!(done, 10, "stops at the task edge");
    let fires = core.drain_tasks();
    assert_eq!(fires.len(), 1);
    assert_eq!(fires[0].text, "hit 9");
    assert_eq!(core.ctrl_read(Ctrl::Iterations).to_u64(), 10);
}

#[test]
fn wrapper_overhead_scales_with_state() {
    let small = design_of(COUNTER, "Count");
    let small_nl = synthesize(&small).unwrap();
    let big = design_of(
        "module BigState(input wire clk, output wire [7:0] o);\n\
         reg [255:0] s0 = 0; reg [255:0] s1 = 0;\n\
         always @(posedge clk) begin s0 <= s0 + 1; s1 <= s1 ^ s0; end\n\
         assign o = s1[7:0];\nendmodule",
        "BigState",
    );
    let big_nl = synthesize(&big).unwrap();
    assert!(wrapper_overhead_les(&big_nl) > wrapper_overhead_les(&small_nl));
    // The wrapper dominates small designs — the root of the paper's
    // "small but noticeable" spatial overhead.
    let user = cascade_netlist::estimate_area(&small_nl)
        .logic_elements
        .max(1);
    assert!(wrapper_overhead_les(&small_nl) > user);
}

#[test]
fn virtual_wall_accumulates() {
    let mut wall = VirtualWall::new();
    let costs = CostModel::default();
    wall.advance_ns(costs.hw_cycle_ns * 50_000_000.0);
    assert!(
        (wall.seconds() - 1.0).abs() < 1e-9,
        "50M cycles at 50 MHz is one second"
    );
    wall.advance(Duration::from_secs(2));
    assert!((wall.seconds() - 3.0).abs() < 1e-9);
}

#[test]
fn cost_model_defaults_are_sane() {
    let c = CostModel::default();
    assert!(
        c.sw_activation_ns > c.hw_cycle_ns,
        "software is slower than fabric"
    );
    assert!(
        c.abi_message_ns > c.hw_cycle_ns,
        "bus round trips dominate cycles"
    );
    assert!(
        c.reprogram_ns < 1e6,
        "reprogramming takes less than a millisecond"
    );
}
