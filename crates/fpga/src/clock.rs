//! The deterministic virtual wall clock and operation cost model.
//!
//! The paper's figures plot performance against wall-clock time on the
//! authors' testbed. We have no testbed, so experiments advance a modeled
//! wall clock charged with calibrated per-operation costs: interpreter
//! activations, data/control-plane messages, FPGA cycles, and background
//! compile latency. This makes every curve deterministic and
//! machine-independent; Criterion benches separately measure *real*
//! throughput of each substrate.

use std::time::Duration;

/// Calibrated per-operation costs.
///
/// Defaults approximate the paper's platform: an 800 MHz ARM host running
/// the runtime and software engines, a 50 MHz fabric, and a memory-mapped
/// IO bridge between them.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Cost of one interpreter process activation (software engine work).
    pub sw_activation_ns: f64,
    /// Cost of one interpreted statement (AST dispatch plus arbitrary-width
    /// arithmetic on the modeled 800 MHz ARM host).
    pub sw_statement_ns: f64,
    /// Fixed per-scheduler-iteration runtime overhead.
    pub runtime_iteration_ns: f64,
    /// One message across the data/control plane (MMIO round trip).
    pub abi_message_ns: f64,
    /// One FPGA fabric clock cycle.
    pub hw_cycle_ns: f64,
    /// Reconfiguring the FPGA with a finished bitstream ("less than a
    /// millisecond", paper Sec. 2.4).
    pub reprogram_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            sw_activation_ns: 550.0,
            sw_statement_ns: 7_500.0,
            runtime_iteration_ns: 120.0,
            abi_message_ns: 1_800.0,
            hw_cycle_ns: 20.0,
            reprogram_ns: 800_000.0,
        }
    }
}

/// A monotonically increasing modeled wall clock.
#[derive(Debug, Clone, Default)]
pub struct VirtualWall {
    elapsed_ns: f64,
}

impl VirtualWall {
    /// A clock at time zero.
    pub fn new() -> Self {
        VirtualWall::default()
    }

    /// Advances by a raw nanosecond amount.
    pub fn advance_ns(&mut self, ns: f64) {
        debug_assert!(ns >= 0.0, "time cannot go backwards");
        self.elapsed_ns += ns;
    }

    /// Advances by a duration.
    pub fn advance(&mut self, d: Duration) {
        self.elapsed_ns += d.as_secs_f64() * 1e9;
    }

    /// Elapsed modeled time.
    pub fn elapsed(&self) -> Duration {
        Duration::from_secs_f64(self.elapsed_ns / 1e9)
    }

    /// Elapsed modeled seconds.
    pub fn seconds(&self) -> f64 {
        self.elapsed_ns / 1e9
    }
}
