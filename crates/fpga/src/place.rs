//! A simulated-annealing placer over the virtual fabric.
//!
//! Place-and-route is the NP-hard step that makes real FPGA compilation
//! slow (paper Sec. 1). This placer does genuine combinatorial work — its
//! cost scales superlinearly with design size — so the latency the Cascade
//! runtime hides in the background is real computation, not a `sleep`.

use cascade_netlist::{Def, Netlist};

/// The outcome of placement: final wirelength statistics feeding the
/// timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Number of placeable cells.
    pub cells: usize,
    /// Grid side length.
    pub grid: u32,
    /// Average half-perimeter wirelength per net, in grid units.
    pub avg_wirelength: f64,
    /// Annealing moves attempted.
    pub moves: u64,
}

/// Deterministic xorshift PRNG (keeps placement reproducible per seed).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Places a netlist's cells on a square grid, minimizing total wirelength
/// by simulated annealing. `effort` scales the number of moves (1.0 is the
/// default Quartus-like effort).
pub fn place(nl: &Netlist, seed: u64, effort: f64) -> Placement {
    // Placeable objects: every cell/register/memread net.
    let placeable: Vec<u32> = nl
        .nets
        .iter()
        .enumerate()
        .filter(|(_, n)| matches!(n.def, Def::Cell(_) | Def::MemRead { .. } | Def::Reg(_)))
        .map(|(i, _)| i as u32)
        .collect();
    let n = placeable.len();
    if n == 0 {
        return Placement {
            cells: 0,
            grid: 1,
            avg_wirelength: 0.0,
            moves: 0,
        };
    }
    // Two-pin nets: cell -> each input.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut index_of = vec![u32::MAX; nl.nets.len()];
    for (slot, &net) in placeable.iter().enumerate() {
        index_of[net as usize] = slot as u32;
    }
    for &net in &placeable {
        if let Def::Cell(cell) = &nl.nets[net as usize].def {
            for inp in &cell.inputs {
                let src = index_of[inp.0 as usize];
                if src != u32::MAX {
                    edges.push((src, index_of[net as usize]));
                }
            }
        }
        if let Def::MemRead { addr, .. } = &nl.nets[net as usize].def {
            let src = index_of[addr.0 as usize];
            if src != u32::MAX {
                edges.push((src, index_of[net as usize]));
            }
        }
    }
    for reg in &nl.regs {
        let (s, d) = (index_of[reg.d.0 as usize], index_of[reg.q.0 as usize]);
        if s != u32::MAX && d != u32::MAX {
            edges.push((s, d));
        }
    }

    let grid = (n as f64).sqrt().ceil() as u32 + 1;
    let mut rng = Rng(seed | 1);
    // Initial placement: sequential with some shuffle.
    let mut pos: Vec<(u32, u32)> = (0..n as u32).map(|i| (i % grid, i / grid)).collect();
    for i in (1..n).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        pos.swap(i, j);
    }
    // Adjacency for incremental cost.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(a, b) in &edges {
        adj[a as usize].push(b);
        adj[b as usize].push(a);
    }
    let dist = |a: (u32, u32), b: (u32, u32)| -> i64 {
        (a.0 as i64 - b.0 as i64).abs() + (a.1 as i64 - b.1 as i64).abs()
    };
    let node_cost = |pos: &[(u32, u32)], i: usize| -> i64 {
        adj[i].iter().map(|&o| dist(pos[i], pos[o as usize])).sum()
    };

    let moves = ((n as u64).saturating_mul(192).max(8_192) as f64 * effort) as u64;
    let mut temperature = grid as f64;
    let cooling = 0.999_f64.powf(1.0 / effort.max(0.01));
    let mut attempted = 0u64;
    for _ in 0..moves {
        attempted += 1;
        let i = rng.below(n as u64) as usize;
        let j = rng.below(n as u64) as usize;
        if i == j {
            continue;
        }
        let before = node_cost(&pos, i) + node_cost(&pos, j);
        pos.swap(i, j);
        let after = node_cost(&pos, i) + node_cost(&pos, j);
        let delta = (after - before) as f64;
        if delta > 0.0 && rng.unit() >= (-delta / temperature.max(0.01)).exp() {
            pos.swap(i, j); // reject
        }
        temperature *= cooling;
    }

    let total: i64 = edges
        .iter()
        .map(|&(a, b)| dist(pos[a as usize], pos[b as usize]))
        .sum();
    let avg = if edges.is_empty() {
        0.0
    } else {
        total as f64 / edges.len() as f64
    };
    Placement {
        cells: n,
        grid,
        avg_wirelength: avg,
        moves: attempted,
    }
}
