//! A shared fleet of virtual FPGA fabrics with lease-based arbitration.
//!
//! Cascade's engine ABI makes a program's location transparent: any engine
//! can be `get_state`-ed out of hardware and resume in software with no
//! observable difference. SYNERGY (Landgraf et al.) turns that mechanism
//! into virtualization — many tenant programs share a small pool of
//! physical fabrics, with the coldest tenant demoted back to its software
//! engine when a hotter one needs the fabric. This module is the
//! arbitration half of that design: [`Fleet`] tracks who holds which
//! fabric, who is waiting, and who should be revoked.
//!
//! The protocol is cooperative. A tenant *requests* a fabric with its
//! current heat (a monotonically increasing activity stamp assigned by the
//! server — higher means more recently active). If a fabric is free the
//! lease is granted immediately; otherwise the request is recorded as
//! pending. Revocation of a current holder is deliberately sticky
//! ([`ArbiterConfig`]): the requester must beat the coldest holder's
//! *decayed* heat by a margin plus the modeled cost of the migration and
//! reprogram it would force, must sustain that advantage for a dwell
//! window, and the holder is immune during a minimum tenure after its
//! grant. Holders observe the revoke flag at their next scheduler
//! boundary, migrate their state back to software, and drop the
//! [`Lease`]; the freed fabric is reserved for the hottest pending tenant
//! so a colder latecomer cannot snipe it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Tuning for lease arbitration. All heats are in server activity stamps
/// (one stamp per served command); times are host seconds.
///
/// The defaults are deliberately sticky: under uniform load the gap
/// between the hottest and coldest tenant stays near the session count,
/// far below `hysteresis_margin`, so fabrics stop ping-ponging — while a
/// genuinely hot tenant facing an idle holder clears the bar within a few
/// hundred commands.
#[derive(Debug, Clone, PartialEq)]
pub struct ArbiterConfig {
    /// Minimum heat advantage (in stamps) a requester needs over the
    /// coldest holder's decayed heat before a revocation is considered.
    pub hysteresis_margin: f64,
    /// Modeled cost of a revocation — state migration off the fabric plus
    /// the reprogram for the incoming tenant — charged against the
    /// requester's advantage. Admission is cost-aware: an eviction only
    /// happens when the expected heat gain pays for the move.
    pub revoke_cost: f64,
    /// A fresh holder is immune from revocation for this long after its
    /// grant, so a lease is always held long enough to amortize the
    /// reprogram it cost.
    pub min_tenure_s: f64,
    /// The requester's advantage must persist for this long (observed
    /// across its polls) before the revocation fires. A single spiky poll
    /// cannot evict anyone.
    pub dwell_s: f64,
    /// Half-life of holder/pending heat when idle. Effective heat is
    /// `heat * 2^(-idle/half_life)`, so a stale tenant cannot camp a
    /// fabric on an old stamp. `0` disables decay.
    pub heat_half_life_s: f64,
}

impl Default for ArbiterConfig {
    fn default() -> ArbiterConfig {
        ArbiterConfig {
            hysteresis_margin: 32.0,
            revoke_cost: 16.0,
            min_tenure_s: 0.05,
            dwell_s: 0.02,
            heat_half_life_s: 5.0,
        }
    }
}

impl ArbiterConfig {
    /// The pre-hysteresis arbiter: any strictly hotter requester evicts
    /// the coldest holder immediately. Used by tests that need a
    /// deterministic single-poll revocation.
    pub fn eager() -> ArbiterConfig {
        ArbiterConfig {
            hysteresis_margin: 0.0,
            revoke_cost: 0.0,
            min_tenure_s: 0.0,
            dwell_s: 0.0,
            heat_half_life_s: 0.0,
        }
    }
}

/// A shareable handle to a fleet of `capacity` virtual fabrics.
#[derive(Clone)]
pub struct Fleet {
    inner: Arc<FleetShared>,
}

struct FleetShared {
    state: Mutex<FleetState>,
    granted: AtomicU64,
    revocations: AtomicU64,
    /// Revocations the old strictly-hotter policy would have issued but
    /// hysteresis (margin/cost/tenure/dwell) suppressed.
    suppressed: AtomicU64,
    fabric_failures: AtomicU64,
}

struct FleetState {
    capacity: usize,
    config: ArbiterConfig,
    /// Fabrics currently offline (failed hardware). They stay out of the
    /// allocatable pool until [`Fleet::restore_fabric`].
    lost: usize,
    /// Tenants currently holding a fabric.
    holders: BTreeMap<u64, Holder>,
    /// Tenants waiting for a fabric, by latest reported heat.
    pending: BTreeMap<u64, PendingReq>,
    /// Freed fabrics earmarked for specific pending tenants.
    reserved: Vec<u64>,
    /// The victim a sustained-advantage window is currently open against.
    candidate: Option<Candidate>,
    /// Cumulative fabric-hold time per tenant, accumulated when a lease is
    /// released. Live holds are added on read so the meter is monotone.
    lease_seconds: BTreeMap<u64, f64>,
}

struct Holder {
    heat: f64,
    /// When the heat was last reported — idle time decays it.
    last_touch: Instant,
    granted_at: Instant,
    revoke: Arc<AtomicBool>,
    lost: Arc<AtomicBool>,
}

struct PendingReq {
    heat: f64,
    last_touch: Instant,
}

struct Candidate {
    victim: u64,
    since: Instant,
}

/// `heat` decayed by the idle time since `last_touch`.
fn effective_heat(heat: f64, last_touch: Instant, now: Instant, half_life_s: f64) -> f64 {
    if half_life_s <= 0.0 {
        return heat;
    }
    let idle = now.saturating_duration_since(last_touch).as_secs_f64();
    heat * (-idle * std::f64::consts::LN_2 / half_life_s).exp()
}

/// Point-in-time fleet statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    pub capacity: usize,
    /// Fabrics currently held by tenants.
    pub in_use: usize,
    /// Fabrics freed and reserved for a pending tenant.
    pub reserved: usize,
    /// Tenants waiting for a fabric.
    pub pending: usize,
    /// Leases granted since the fleet was created.
    pub granted: u64,
    /// Revocations issued since the fleet was created.
    pub revocations: u64,
    /// Revocations suppressed by hysteresis (margin, cost, tenure, or
    /// dwell) that the old strictly-hotter policy would have issued.
    pub revocations_suppressed: u64,
    /// Fabrics currently offline after hardware failure.
    pub lost: usize,
    /// Fabric failures since the fleet was created.
    pub fabric_failures: u64,
}

/// Possession of one virtual fabric. Dropping the lease returns the fabric
/// to the fleet (and hands it to the hottest pending tenant, if any).
pub struct Lease {
    fleet: Fleet,
    tenant: u64,
    revoke: Arc<AtomicBool>,
    lost: Arc<AtomicBool>,
}

impl Lease {
    /// Whether the arbiter has asked this tenant to vacate the fabric.
    pub fn revoked(&self) -> bool {
        self.revoke.load(Ordering::Acquire)
    }

    /// Whether the fabric under this lease failed outright. Unlike a
    /// revocation, the state programmed on it is unrecoverable — the
    /// tenant must resume from its last software checkpoint.
    pub fn lost(&self) -> bool {
        self.lost.load(Ordering::Acquire)
    }

    /// The tenant id this lease was granted to.
    pub fn tenant(&self) -> u64 {
        self.tenant
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        self.fleet.release(self.tenant);
    }
}

impl std::fmt::Debug for Lease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Lease(tenant={}, revoked={})",
            self.tenant,
            self.revoked()
        )
    }
}

impl Fleet {
    /// A fleet of `capacity` fabrics with the default sticky arbiter.
    /// Zero is legal: every tenant stays in software forever (a
    /// pure-interpreter server).
    pub fn new(capacity: usize) -> Fleet {
        Fleet::with_config(capacity, ArbiterConfig::default())
    }

    /// A fleet with explicit arbitration tuning.
    pub fn with_config(capacity: usize, config: ArbiterConfig) -> Fleet {
        Fleet {
            inner: Arc::new(FleetShared {
                state: Mutex::new(FleetState {
                    capacity,
                    config,
                    lost: 0,
                    holders: BTreeMap::new(),
                    pending: BTreeMap::new(),
                    reserved: Vec::new(),
                    candidate: None,
                    lease_seconds: BTreeMap::new(),
                }),
                granted: AtomicU64::new(0),
                revocations: AtomicU64::new(0),
                suppressed: AtomicU64::new(0),
                fabric_failures: AtomicU64::new(0),
            }),
        }
    }

    /// Requests a fabric for `tenant` at activity level `heat`. Returns a
    /// lease when a fabric is free (or reserved for this tenant);
    /// otherwise records the request as pending and opens (or advances) a
    /// revocation window against the coldest holder when the requester's
    /// advantage clears the configured hysteresis bar.
    ///
    /// Poll-style: tenants re-issue the request at scheduler boundaries
    /// until granted (or until they stop wanting hardware). With a
    /// non-zero dwell a revocation needs at least two polls: one to open
    /// the window, one after `dwell_s` to confirm the advantage held.
    pub fn request(&self, tenant: u64, heat: f64) -> Option<Lease> {
        let now = Instant::now();
        let mut st = self.inner.state.lock().expect("fleet mutex");
        if st.holders.contains_key(&tenant) {
            return None; // already holds a fabric
        }
        let reserved_for_us = st.reserved.iter().position(|&t| t == tenant);
        let free = st.capacity.saturating_sub(st.lost) > st.holders.len() + st.reserved.len();
        if reserved_for_us.is_some() || free {
            if let Some(i) = reserved_for_us {
                st.reserved.remove(i);
            }
            st.pending.remove(&tenant);
            let revoke = Arc::new(AtomicBool::new(false));
            let lost = Arc::new(AtomicBool::new(false));
            st.holders.insert(
                tenant,
                Holder {
                    heat,
                    last_touch: now,
                    granted_at: now,
                    revoke: Arc::clone(&revoke),
                    lost: Arc::clone(&lost),
                },
            );
            self.inner.granted.fetch_add(1, Ordering::Relaxed);
            return Some(Lease {
                fleet: self.clone(),
                tenant,
                revoke,
                lost,
            });
        }
        st.pending.insert(
            tenant,
            PendingReq {
                heat,
                last_touch: now,
            },
        );
        self.arbitrate(&mut st, heat, now);
        None
    }

    /// The sticky revocation decision: the coldest live holder loses its
    /// fabric only when the requester's heat beats the holder's decayed
    /// heat by margin + modeled revocation cost, the holder is past its
    /// minimum tenure, and the advantage has persisted for the dwell
    /// window.
    fn arbitrate(&self, st: &mut FleetState, requester_heat: f64, now: Instant) {
        let half_life = st.config.heat_half_life_s;
        let coldest =
            st.holders
                .iter()
                .filter(|(_, h)| {
                    !h.revoke.load(Ordering::Relaxed) && !h.lost.load(Ordering::Relaxed)
                })
                .min_by(|a, b| {
                    effective_heat(a.1.heat, a.1.last_touch, now, half_life)
                        .total_cmp(&effective_heat(b.1.heat, b.1.last_touch, now, half_life))
                })
                .map(|(t, h)| {
                    (
                        *t,
                        effective_heat(h.heat, h.last_touch, now, half_life),
                        h.granted_at,
                    )
                });
        let Some((victim, eff_holder, granted_at)) = coldest else {
            return;
        };
        // The requester reported `heat` this very call — no decay on it.
        let bar = eff_holder + st.config.hysteresis_margin + st.config.revoke_cost;
        let clears_bar = requester_heat > bar;
        let tenured =
            now.saturating_duration_since(granted_at).as_secs_f64() >= st.config.min_tenure_s;
        if clears_bar && tenured {
            let dwelt = match &st.candidate {
                Some(c) if c.victim == victim => {
                    now.saturating_duration_since(c.since).as_secs_f64() >= st.config.dwell_s
                }
                _ => {
                    st.candidate = Some(Candidate { victim, since: now });
                    st.config.dwell_s <= 0.0
                }
            };
            if dwelt {
                if let Some(h) = st.holders.get(&victim) {
                    h.revoke.store(true, Ordering::Release);
                }
                self.inner.revocations.fetch_add(1, Ordering::Relaxed);
                st.candidate = None;
            } else {
                self.inner.suppressed.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            // Advantage evaporated (or never cleared the bar): close any
            // window that was open against this victim.
            if matches!(&st.candidate, Some(c) if c.victim == victim) {
                st.candidate = None;
            }
            if requester_heat > eff_holder {
                // The old strictly-hotter policy would have evicted here.
                self.inner.suppressed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Updates a tenant's heat (holders defend their lease by staying hot;
    /// pending tenants improve their claim). Touching also resets the
    /// idle-decay clock.
    pub fn touch(&self, tenant: u64, heat: f64) {
        let now = Instant::now();
        let mut st = self.inner.state.lock().expect("fleet mutex");
        if let Some(h) = st.holders.get_mut(&tenant) {
            h.heat = h.heat.max(heat);
            h.last_touch = now;
        } else if let Some(p) = st.pending.get_mut(&tenant) {
            p.heat = p.heat.max(heat);
            p.last_touch = now;
        }
    }

    /// Withdraws a tenant entirely (session closed): clears any pending
    /// request and releases any reservation.
    pub fn cancel(&self, tenant: u64) {
        let mut st = self.inner.state.lock().expect("fleet mutex");
        st.pending.remove(&tenant);
        if let Some(i) = st.reserved.iter().position(|&t| t == tenant) {
            st.reserved.remove(i);
            Self::reserve_next(&mut st);
        }
    }

    /// Tenants whose leases are flagged for revocation — the server nudges
    /// these sessions so idle holders vacate promptly.
    pub fn revoking(&self) -> Vec<u64> {
        let st = self.inner.state.lock().expect("fleet mutex");
        st.holders
            .iter()
            .filter(|(_, h)| h.revoke.load(Ordering::Relaxed))
            .map(|(t, _)| *t)
            .collect()
    }

    /// Tenants holding a reservation for a freed fabric — the server
    /// nudges these sessions so the fabric does not sit idle.
    pub fn reserved(&self) -> Vec<u64> {
        self.inner
            .state
            .lock()
            .expect("fleet mutex")
            .reserved
            .clone()
    }

    /// Whether the arbiter has anything in flight a session should react
    /// to promptly (a revocation to honor or a reservation to claim).
    /// Cheap enough for workers to poll after each command batch.
    pub fn needs_service(&self) -> bool {
        let st = self.inner.state.lock().expect("fleet mutex");
        !st.reserved.is_empty()
            || st
                .holders
                .values()
                .any(|h| h.revoke.load(Ordering::Relaxed))
    }

    /// Flags a specific tenant's lease for revocation, as the arbiter
    /// would for a hotter pending requester. Returns whether the tenant
    /// held a fabric. Used by the fault injector to model mid-migration
    /// revocation races.
    pub fn revoke(&self, tenant: u64) -> bool {
        let st = self.inner.state.lock().expect("fleet mutex");
        match st.holders.get(&tenant) {
            Some(h) => {
                if !h.revoke.swap(true, Ordering::Release) {
                    self.inner.revocations.fetch_add(1, Ordering::Relaxed);
                }
                true
            }
            None => false,
        }
    }

    /// Takes the fabric held by `tenant` offline: the holder's lease is
    /// flagged lost (its programmed state is unrecoverable) and the
    /// fabric leaves the allocatable pool until [`Fleet::restore_fabric`].
    /// Returns whether the tenant held a fabric.
    pub fn fail_fabric_of(&self, tenant: u64) -> bool {
        let mut st = self.inner.state.lock().expect("fleet mutex");
        match st.holders.get(&tenant) {
            Some(h) if !h.lost.load(Ordering::Relaxed) => {
                h.lost.store(true, Ordering::Release);
                st.lost += 1;
                self.inner.fabric_failures.fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Takes one fabric offline, preferring a held one (returning the
    /// affected tenant). With no holders, an idle fabric is lost instead
    /// (`None`); with nothing left to lose, also `None`.
    pub fn fail_any_fabric(&self) -> Option<u64> {
        let victim = {
            let st = self.inner.state.lock().expect("fleet mutex");
            st.holders
                .iter()
                .find(|(_, h)| !h.lost.load(Ordering::Relaxed))
                .map(|(t, _)| *t)
        };
        match victim {
            Some(t) => {
                self.fail_fabric_of(t);
                Some(t)
            }
            None => {
                let mut st = self.inner.state.lock().expect("fleet mutex");
                if st.capacity > st.lost {
                    st.lost += 1;
                    self.inner.fabric_failures.fetch_add(1, Ordering::Relaxed);
                }
                None
            }
        }
    }

    /// Brings one lost fabric back online (repair / replacement) and
    /// hands it to the hottest pending tenant, if any.
    pub fn restore_fabric(&self) {
        let mut st = self.inner.state.lock().expect("fleet mutex");
        if st.lost > 0 {
            st.lost -= 1;
            Self::reserve_next(&mut st);
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> FleetStats {
        let st = self.inner.state.lock().expect("fleet mutex");
        FleetStats {
            capacity: st.capacity,
            in_use: st.holders.len(),
            reserved: st.reserved.len(),
            pending: st.pending.len(),
            granted: self.inner.granted.load(Ordering::Relaxed),
            revocations: self.inner.revocations.load(Ordering::Relaxed),
            revocations_suppressed: self.inner.suppressed.load(Ordering::Relaxed),
            lost: st.lost,
            fabric_failures: self.inner.fabric_failures.load(Ordering::Relaxed),
        }
    }

    /// Cumulative seconds `tenant` has held a fabric, including the live
    /// hold if it currently has one. Monotone non-decreasing across reads —
    /// the per-tenant metering plane charges fabric time from this.
    pub fn tenant_lease_seconds(&self, tenant: u64) -> f64 {
        let st = self.inner.state.lock().expect("fleet mutex");
        let settled = st.lease_seconds.get(&tenant).copied().unwrap_or(0.0);
        let live = st
            .holders
            .get(&tenant)
            .map(|h| {
                Instant::now()
                    .saturating_duration_since(h.granted_at)
                    .as_secs_f64()
            })
            .unwrap_or(0.0);
        settled + live
    }

    fn release(&self, tenant: u64) {
        let mut st = self.inner.state.lock().expect("fleet mutex");
        let Some(h) = st.holders.remove(&tenant) else {
            return;
        };
        let held = Instant::now()
            .saturating_duration_since(h.granted_at)
            .as_secs_f64();
        *st.lease_seconds.entry(tenant).or_insert(0.0) += held;
        if matches!(&st.candidate, Some(c) if c.victim == tenant) {
            st.candidate = None;
        }
        Self::reserve_next(&mut st);
    }

    /// Earmarks a freed fabric for the hottest pending tenant (by decayed
    /// heat, so a stale pending claim cannot outrank a live one).
    fn reserve_next(st: &mut FleetState) {
        if st.capacity.saturating_sub(st.lost) <= st.holders.len() + st.reserved.len() {
            return;
        }
        let now = Instant::now();
        let half_life = st.config.heat_half_life_s;
        let hottest =
            st.pending
                .iter()
                .max_by(|a, b| {
                    effective_heat(a.1.heat, a.1.last_touch, now, half_life)
                        .total_cmp(&effective_heat(b.1.heat, b.1.last_touch, now, half_life))
                })
                .map(|(t, _)| *t);
        if let Some(t) = hottest {
            st.pending.remove(&t);
            st.reserved.push(t);
        }
    }
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        write!(
            f,
            "Fleet(capacity={}, in_use={}, pending={})",
            s.capacity, s.in_use, s.pending
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread::sleep;
    use std::time::Duration;

    fn sticky(margin: f64, cost: f64, tenure_s: f64, dwell_s: f64, half_life_s: f64) -> Fleet {
        Fleet::with_config(
            1,
            ArbiterConfig {
                hysteresis_margin: margin,
                revoke_cost: cost,
                min_tenure_s: tenure_s,
                dwell_s,
                heat_half_life_s: half_life_s,
            },
        )
    }

    #[test]
    fn margin_blocks_marginally_hotter_requester() {
        let fleet = sticky(32.0, 16.0, 0.0, 0.0, 0.0);
        let lease = fleet.request(1, 100.0).expect("grant");
        // Hotter, but inside margin + cost: no revocation, suppression counted.
        assert!(fleet.request(2, 120.0).is_none());
        assert!(!lease.revoked());
        let s = fleet.stats();
        assert_eq!(s.revocations, 0);
        assert_eq!(s.revocations_suppressed, 1);
        // Clears margin + cost (bar = 100+32+16): revoked in one poll (no dwell).
        assert!(fleet.request(2, 149.0).is_none());
        assert!(lease.revoked());
    }

    #[test]
    fn margin_plus_cost_is_the_bar() {
        let fleet = sticky(32.0, 16.0, 0.0, 0.0, 0.0);
        let lease = fleet.request(1, 100.0).expect("grant");
        assert!(fleet.request(2, 148.0).is_none()); // == bar, not strictly above
        assert!(!lease.revoked());
        assert!(fleet.request(2, 148.5).is_none()); // above the bar
        assert!(lease.revoked());
        assert_eq!(fleet.stats().revocations, 1);
    }

    #[test]
    fn dwell_requires_sustained_advantage() {
        let fleet = sticky(0.0, 0.0, 0.0, 0.01, 0.0);
        let lease = fleet.request(1, 100.0).expect("grant");
        // First poll opens the window, does not revoke.
        assert!(fleet.request(2, 200.0).is_none());
        assert!(!lease.revoked());
        // Immediate re-poll: dwell not yet elapsed.
        assert!(fleet.request(2, 200.0).is_none());
        assert!(!lease.revoked());
        sleep(Duration::from_millis(15));
        assert!(fleet.request(2, 200.0).is_none());
        assert!(lease.revoked());
    }

    #[test]
    fn min_tenure_protects_fresh_holder() {
        let fleet = sticky(0.0, 0.0, 10.0, 0.0, 0.0);
        let lease = fleet.request(1, 100.0).expect("grant");
        assert!(fleet.request(2, 1e6).is_none());
        assert!(!lease.revoked(), "holder is inside its minimum tenure");
        assert_eq!(fleet.stats().revocations, 0);
    }

    #[test]
    fn heat_decay_lets_live_tenant_evict_stale_camper() {
        // Aggressive half-life so the test runs fast: after ~30ms the
        // camper's stamp has halved three times.
        let fleet = sticky(10.0, 0.0, 0.0, 0.0, 0.01);
        let lease = fleet.request(1, 1000.0).expect("grant");
        // A requester at stamp 500 can't beat 1000 fresh...
        assert!(fleet.request(2, 500.0).is_none());
        assert!(!lease.revoked());
        sleep(Duration::from_millis(40));
        // ...but after the camper idles, its effective heat collapses.
        assert!(fleet.request(2, 500.0).is_none());
        assert!(lease.revoked());
    }

    #[test]
    fn touch_defends_against_decay() {
        let fleet = sticky(10.0, 0.0, 0.0, 0.0, 0.01);
        let lease = fleet.request(1, 1000.0).expect("grant");
        sleep(Duration::from_millis(25));
        fleet.touch(1, 1000.0); // holder is still alive
        assert!(fleet.request(2, 500.0).is_none());
        assert!(!lease.revoked());
    }

    #[test]
    fn eager_config_matches_old_strict_policy() {
        let fleet = Fleet::with_config(1, ArbiterConfig::eager());
        let lease = fleet.request(1, 5.0).expect("grant");
        assert!(fleet.request(2, 5.0).is_none());
        assert!(!lease.revoked(), "equal heat must not evict");
        assert!(fleet.request(2, 6.0).is_none());
        assert!(lease.revoked(), "strictly hotter evicts immediately");
    }

    #[test]
    fn lease_seconds_accumulate_and_stay_monotone() {
        let fleet = Fleet::new(1);
        assert_eq!(fleet.tenant_lease_seconds(1), 0.0);
        let lease = fleet.request(1, 10.0).expect("grant");
        sleep(Duration::from_millis(5));
        let live = fleet.tenant_lease_seconds(1);
        assert!(live > 0.0, "live hold is charged");
        drop(lease);
        let settled = fleet.tenant_lease_seconds(1);
        assert!(settled >= live, "release must not lose charged time");
        // A second lease keeps accumulating on top of the settled total.
        let lease = fleet.request(1, 10.0).expect("re-grant");
        sleep(Duration::from_millis(5));
        assert!(fleet.tenant_lease_seconds(1) > settled);
        drop(lease);
        assert!(fleet.tenant_lease_seconds(1) > settled);
    }

    #[test]
    fn freed_fabric_reserved_for_hottest_pending() {
        let fleet = Fleet::with_config(1, ArbiterConfig::eager());
        let lease = fleet.request(1, 10.0).expect("grant");
        assert!(fleet.request(2, 20.0).is_none());
        assert!(fleet.request(3, 15.0).is_none());
        drop(lease); // release → earmarked for tenant 2 (hottest pending)
        assert_eq!(fleet.reserved(), vec![2]);
        assert!(fleet.request(3, 16.0).is_none(), "reservation is sticky");
        assert!(fleet.request(2, 20.0).is_some());
    }
}
