//! A shared fleet of virtual FPGA fabrics with lease-based arbitration.
//!
//! Cascade's engine ABI makes a program's location transparent: any engine
//! can be `get_state`-ed out of hardware and resume in software with no
//! observable difference. SYNERGY (Landgraf et al.) turns that mechanism
//! into virtualization — many tenant programs share a small pool of
//! physical fabrics, with the coldest tenant demoted back to its software
//! engine when a hotter one needs the fabric. This module is the
//! arbitration half of that design: [`Fleet`] tracks who holds which
//! fabric, who is waiting, and who should be revoked.
//!
//! The protocol is cooperative. A tenant *requests* a fabric with its
//! current heat (a monotonically increasing activity stamp assigned by the
//! server — higher means more recently active). If a fabric is free the
//! lease is granted immediately; otherwise the request is recorded as
//! pending and, when the requester is strictly hotter than the coldest
//! current holder, that holder's lease is flagged for revocation. Holders
//! observe the flag at their next scheduler boundary, migrate their state
//! back to software, and drop the [`Lease`]; the freed fabric is reserved
//! for the hottest pending tenant so a colder latecomer cannot snipe it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A shareable handle to a fleet of `capacity` virtual fabrics.
#[derive(Clone)]
pub struct Fleet {
    inner: Arc<FleetShared>,
}

struct FleetShared {
    state: Mutex<FleetState>,
    granted: AtomicU64,
    revocations: AtomicU64,
    fabric_failures: AtomicU64,
}

struct FleetState {
    capacity: usize,
    /// Fabrics currently offline (failed hardware). They stay out of the
    /// allocatable pool until [`Fleet::restore_fabric`].
    lost: usize,
    /// Tenants currently holding a fabric.
    holders: BTreeMap<u64, Holder>,
    /// Tenants waiting for a fabric, by latest reported heat.
    pending: BTreeMap<u64, f64>,
    /// Freed fabrics earmarked for specific pending tenants.
    reserved: Vec<u64>,
}

struct Holder {
    heat: f64,
    revoke: Arc<AtomicBool>,
    lost: Arc<AtomicBool>,
}

/// Point-in-time fleet statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    pub capacity: usize,
    /// Fabrics currently held by tenants.
    pub in_use: usize,
    /// Fabrics freed and reserved for a pending tenant.
    pub reserved: usize,
    /// Tenants waiting for a fabric.
    pub pending: usize,
    /// Leases granted since the fleet was created.
    pub granted: u64,
    /// Revocations issued since the fleet was created.
    pub revocations: u64,
    /// Fabrics currently offline after hardware failure.
    pub lost: usize,
    /// Fabric failures since the fleet was created.
    pub fabric_failures: u64,
}

/// Possession of one virtual fabric. Dropping the lease returns the fabric
/// to the fleet (and hands it to the hottest pending tenant, if any).
pub struct Lease {
    fleet: Fleet,
    tenant: u64,
    revoke: Arc<AtomicBool>,
    lost: Arc<AtomicBool>,
}

impl Lease {
    /// Whether the arbiter has asked this tenant to vacate the fabric.
    pub fn revoked(&self) -> bool {
        self.revoke.load(Ordering::Acquire)
    }

    /// Whether the fabric under this lease failed outright. Unlike a
    /// revocation, the state programmed on it is unrecoverable — the
    /// tenant must resume from its last software checkpoint.
    pub fn lost(&self) -> bool {
        self.lost.load(Ordering::Acquire)
    }

    /// The tenant id this lease was granted to.
    pub fn tenant(&self) -> u64 {
        self.tenant
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        self.fleet.release(self.tenant);
    }
}

impl std::fmt::Debug for Lease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Lease(tenant={}, revoked={})",
            self.tenant,
            self.revoked()
        )
    }
}

impl Fleet {
    /// A fleet of `capacity` fabrics. Zero is legal: every tenant stays in
    /// software forever (a pure-interpreter server).
    pub fn new(capacity: usize) -> Fleet {
        Fleet {
            inner: Arc::new(FleetShared {
                state: Mutex::new(FleetState {
                    capacity,
                    lost: 0,
                    holders: BTreeMap::new(),
                    pending: BTreeMap::new(),
                    reserved: Vec::new(),
                }),
                granted: AtomicU64::new(0),
                revocations: AtomicU64::new(0),
                fabric_failures: AtomicU64::new(0),
            }),
        }
    }

    /// Requests a fabric for `tenant` at activity level `heat`. Returns a
    /// lease when a fabric is free (or reserved for this tenant); otherwise
    /// records the request as pending and, if the requester is strictly
    /// hotter than the coldest holder, flags that holder for revocation.
    ///
    /// Poll-style: tenants re-issue the request at scheduler boundaries
    /// until granted (or until they stop wanting hardware).
    pub fn request(&self, tenant: u64, heat: f64) -> Option<Lease> {
        let mut st = self.inner.state.lock().expect("fleet mutex");
        if st.holders.contains_key(&tenant) {
            return None; // already holds a fabric
        }
        let reserved_for_us = st.reserved.iter().position(|&t| t == tenant);
        let free = st.capacity.saturating_sub(st.lost) > st.holders.len() + st.reserved.len();
        if reserved_for_us.is_some() || free {
            if let Some(i) = reserved_for_us {
                st.reserved.remove(i);
            }
            st.pending.remove(&tenant);
            let revoke = Arc::new(AtomicBool::new(false));
            let lost = Arc::new(AtomicBool::new(false));
            st.holders.insert(
                tenant,
                Holder {
                    heat,
                    revoke: Arc::clone(&revoke),
                    lost: Arc::clone(&lost),
                },
            );
            self.inner.granted.fetch_add(1, Ordering::Relaxed);
            return Some(Lease {
                fleet: self.clone(),
                tenant,
                revoke,
                lost,
            });
        }
        st.pending.insert(tenant, heat);
        // Revoke the coldest holder, but only for a strictly hotter
        // requester — a cold tenant polling for hardware must not evict
        // anyone (hysteresis against lease thrash).
        let coldest = st
            .holders
            .iter()
            .filter(|(_, h)| !h.revoke.load(Ordering::Relaxed))
            .min_by(|a, b| a.1.heat.total_cmp(&b.1.heat))
            .map(|(t, h)| (*t, h.heat));
        if let Some((t, holder_heat)) = coldest {
            if holder_heat < heat {
                st.holders[&t].revoke.store(true, Ordering::Release);
                self.inner.revocations.fetch_add(1, Ordering::Relaxed);
            }
        }
        None
    }

    /// Updates a tenant's heat (holders defend their lease by staying hot;
    /// pending tenants improve their claim).
    pub fn touch(&self, tenant: u64, heat: f64) {
        let mut st = self.inner.state.lock().expect("fleet mutex");
        if let Some(h) = st.holders.get_mut(&tenant) {
            h.heat = h.heat.max(heat);
        } else if let Some(h) = st.pending.get_mut(&tenant) {
            *h = h.max(heat);
        }
    }

    /// Withdraws a tenant entirely (session closed): clears any pending
    /// request and releases any reservation.
    pub fn cancel(&self, tenant: u64) {
        let mut st = self.inner.state.lock().expect("fleet mutex");
        st.pending.remove(&tenant);
        if let Some(i) = st.reserved.iter().position(|&t| t == tenant) {
            st.reserved.remove(i);
            Self::reserve_next(&mut st);
        }
    }

    /// Tenants whose leases are flagged for revocation — the server nudges
    /// these sessions so idle holders vacate promptly.
    pub fn revoking(&self) -> Vec<u64> {
        let st = self.inner.state.lock().expect("fleet mutex");
        st.holders
            .iter()
            .filter(|(_, h)| h.revoke.load(Ordering::Relaxed))
            .map(|(t, _)| *t)
            .collect()
    }

    /// Tenants holding a reservation for a freed fabric — the server
    /// nudges these sessions so the fabric does not sit idle.
    pub fn reserved(&self) -> Vec<u64> {
        self.inner
            .state
            .lock()
            .expect("fleet mutex")
            .reserved
            .clone()
    }

    /// Flags a specific tenant's lease for revocation, as the arbiter
    /// would for a hotter pending requester. Returns whether the tenant
    /// held a fabric. Used by the fault injector to model mid-migration
    /// revocation races.
    pub fn revoke(&self, tenant: u64) -> bool {
        let st = self.inner.state.lock().expect("fleet mutex");
        match st.holders.get(&tenant) {
            Some(h) => {
                if !h.revoke.swap(true, Ordering::Release) {
                    self.inner.revocations.fetch_add(1, Ordering::Relaxed);
                }
                true
            }
            None => false,
        }
    }

    /// Takes the fabric held by `tenant` offline: the holder's lease is
    /// flagged lost (its programmed state is unrecoverable) and the
    /// fabric leaves the allocatable pool until [`Fleet::restore_fabric`].
    /// Returns whether the tenant held a fabric.
    pub fn fail_fabric_of(&self, tenant: u64) -> bool {
        let mut st = self.inner.state.lock().expect("fleet mutex");
        match st.holders.get(&tenant) {
            Some(h) if !h.lost.load(Ordering::Relaxed) => {
                h.lost.store(true, Ordering::Release);
                st.lost += 1;
                self.inner.fabric_failures.fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Takes one fabric offline, preferring a held one (returning the
    /// affected tenant). With no holders, an idle fabric is lost instead
    /// (`None`); with nothing left to lose, also `None`.
    pub fn fail_any_fabric(&self) -> Option<u64> {
        let victim = {
            let st = self.inner.state.lock().expect("fleet mutex");
            st.holders
                .iter()
                .find(|(_, h)| !h.lost.load(Ordering::Relaxed))
                .map(|(t, _)| *t)
        };
        match victim {
            Some(t) => {
                self.fail_fabric_of(t);
                Some(t)
            }
            None => {
                let mut st = self.inner.state.lock().expect("fleet mutex");
                if st.capacity > st.lost {
                    st.lost += 1;
                    self.inner.fabric_failures.fetch_add(1, Ordering::Relaxed);
                }
                None
            }
        }
    }

    /// Brings one lost fabric back online (repair / replacement) and
    /// hands it to the hottest pending tenant, if any.
    pub fn restore_fabric(&self) {
        let mut st = self.inner.state.lock().expect("fleet mutex");
        if st.lost > 0 {
            st.lost -= 1;
            Self::reserve_next(&mut st);
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> FleetStats {
        let st = self.inner.state.lock().expect("fleet mutex");
        FleetStats {
            capacity: st.capacity,
            in_use: st.holders.len(),
            reserved: st.reserved.len(),
            pending: st.pending.len(),
            granted: self.inner.granted.load(Ordering::Relaxed),
            revocations: self.inner.revocations.load(Ordering::Relaxed),
            lost: st.lost,
            fabric_failures: self.inner.fabric_failures.load(Ordering::Relaxed),
        }
    }

    fn release(&self, tenant: u64) {
        let mut st = self.inner.state.lock().expect("fleet mutex");
        if st.holders.remove(&tenant).is_none() {
            return;
        }
        Self::reserve_next(&mut st);
    }

    /// Earmarks a freed fabric for the hottest pending tenant.
    fn reserve_next(st: &mut FleetState) {
        if st.capacity.saturating_sub(st.lost) <= st.holders.len() + st.reserved.len() {
            return;
        }
        let hottest = st
            .pending
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(t, _)| *t);
        if let Some(t) = hottest {
            st.pending.remove(&t);
            st.reserved.push(t);
        }
    }
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        write!(
            f,
            "Fleet(capacity={}, in_use={}, pending={})",
            s.capacity, s.in_use, s.pending
        )
    }
}
