//! The virtual FPGA substrate for Cascade-rs.
//!
//! The paper evaluates on an Intel Cyclone V SoC programmed with Quartus;
//! neither is available here, so this crate simulates the parts of that
//! stack whose *behaviour* Cascade depends on (see DESIGN.md for the full
//! substitution argument):
//!
//! - [`Device`]: fabric capacity and the 50 MHz clock;
//! - [`Toolchain`]: real synthesis + simulated-annealing placement with a
//!   calibrated compile-latency model, timing closure included;
//! - [`Board`]: buttons, LEDs, GPIO, and a host-coupled FIFO shared by
//!   software and hardware engines;
//! - [`MmioCore`]: the Fig. 10 register-file protocol wrapping a compiled
//!   netlist, including open-loop execution and the modeled wrapper area
//!   overhead;
//! - [`VirtualWall`]/[`CostModel`]: the deterministic wall clock the
//!   experiments plot against.
//!
//! # Examples
//!
//! ```
//! use cascade_fpga::{Toolchain, Device};
//! use cascade_sim::{elaborate, library_from_source};
//!
//! let lib = library_from_source(
//!     "module Count(input wire clk, output wire [7:0] o);\n\
//!      reg [7:0] c = 0;\n\
//!      always @(posedge clk) c <= c + 1;\n\
//!      assign o = c;\nendmodule",
//! )?;
//! let design = elaborate("Count", &lib, &Default::default())?;
//! let bitstream = Toolchain::new(Device::cyclone_v()).compile(&design)?;
//! assert!(bitstream.fmax_mhz >= 50.0);
//! assert!(bitstream.modeled_duration.as_secs() > 60, "compilation is slow");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod board;
mod clock;
mod device;
mod fault;
mod fleet;
mod mmio;
mod place;
mod toolchain;

pub use board::Board;
pub use clock::{CostModel, VirtualWall};
pub use device::Device;
pub use fault::{DurableFault, FabricFault, FaultPlan, FaultPlanBuilder, ToolchainFault};
pub use fleet::{ArbiterConfig, Fleet, FleetStats, Lease};
pub use mmio::{describe_task, wrapper_overhead_les, AddressMap, Ctrl, MmioCore, Slot};
pub use place::{place, Placement};
pub use toolchain::{Bitstream, CompileError, Toolchain};

#[cfg(test)]
mod tests;
