//! The AXI-style memory-mapped protocol between the runtime's software stub
//! and an FPGA-resident engine (paper Fig. 10).
//!
//! A compiled subprogram is wrapped in a register file: its inputs, state,
//! and `$display` arguments live at addresses; distinguished addresses form
//! the RPC surface (`<LATCH>`, `<CLEAR>`, `<OLOOP>`, ...). Here the wrapped
//! netlist executes in [`NetlistSim`]; the wrapper's logic-element cost is
//! modeled explicitly because it is the source of the paper's reported
//! spatial overhead (2.9× for proof-of-work, Sec. 6.1).

use cascade_bits::Bits;
use cascade_netlist::{Netlist, NetlistSim, RegId, TaskFire, TaskKind};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Distinguished control addresses (Fig. 10's `<LATCH>`, `<OLOOP>`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ctrl {
    /// Commit pending register updates (one clock edge).
    Latch,
    /// Clear the task mask.
    Clear,
    /// Enter open-loop mode for N iterations.
    OpenLoop,
    /// Iterations completed in the last open-loop run.
    Iterations,
    /// Whether any register would change on the next edge.
    ThereAreUpdates,
    /// Task mask: nonzero when tasks fired.
    Tasks,
}

/// What a data address refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Slot {
    /// A top-level input net (writable).
    Input(String),
    /// A readable net (outputs, display arguments).
    Output(String),
    /// A register (readable and writable — `get_state`/`set_state`).
    State(RegId, String),
}

/// The memory map of a wrapped subprogram.
#[derive(Debug, Clone, Default)]
pub struct AddressMap {
    slots: Vec<Slot>,
    by_name: BTreeMap<String, u32>,
}

impl AddressMap {
    /// Builds the canonical map for a netlist: inputs, then state, then
    /// outputs.
    pub fn for_netlist(nl: &Netlist) -> AddressMap {
        let mut map = AddressMap::default();
        for &input in &nl.inputs {
            let name = nl.nets[input.0 as usize]
                .name
                .clone()
                .unwrap_or_else(|| format!("in{}", input.0));
            map.push(Slot::Input(name));
        }
        for (i, reg) in nl.regs.iter().enumerate() {
            let name = reg.name.clone().unwrap_or_else(|| format!("reg{i}"));
            map.push(Slot::State(RegId(i as u32), name));
        }
        for (name, _) in &nl.outputs {
            map.push(Slot::Output(name.clone()));
        }
        map
    }

    fn push(&mut self, slot: Slot) {
        let name = match &slot {
            Slot::Input(n) | Slot::Output(n) => n.clone(),
            Slot::State(_, n) => n.clone(),
        };
        self.by_name.entry(name).or_insert(self.slots.len() as u32);
        self.slots.push(slot);
    }

    /// The address of a named signal.
    pub fn addr(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// The slot at an address.
    pub fn slot(&self, addr: u32) -> Option<&Slot> {
        self.slots.get(addr as usize)
    }

    /// Number of mapped addresses.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates over all state slots.
    pub fn state_slots(&self) -> impl Iterator<Item = (u32, RegId, &str)> {
        self.slots.iter().enumerate().filter_map(|(a, s)| match s {
            Slot::State(r, n) => Some((a as u32, *r, n.as_str())),
            _ => None,
        })
    }
}

/// The logic-element cost of the Fig. 10 wrapper around a netlist: address
/// decode, `get_state`/`set_state` muxing over every state bit, update and
/// task masks, and the open-loop counter. This is the spatial overhead the
/// paper attributes to Cascade (Sec. 6.1: 2.9×; Sec. 6.2: 6.5× for a
/// FIFO-coupled design with little user logic).
pub fn wrapper_overhead_les(nl: &Netlist) -> u64 {
    let state_bits = nl.state_bits();
    let io_bits: u64 = nl
        .inputs
        .iter()
        .map(|&i| nl.width(i) as u64)
        .chain(nl.outputs.iter().map(|(_, n)| nl.width(*n) as u64))
        .sum();
    let task_args: u64 = nl.tasks.iter().map(|t| t.args.len() as u64 * 32).sum();
    // Fixed bus interface + open-loop FSM + masks (~2.5K LEs), get/set_state
    // muxing and shadow registers per state bit, address decode per IO bit,
    // and task-argument capture. Constants calibrated against the paper's
    // two reported overheads (PoW 2.9x, Sec 6.1; FIFO/regex 6.5x, Sec 6.2).
    2_500 + 12 * state_bits + 2 * io_bits + 2 * task_args
}

/// A wrapped hardware engine core: [`NetlistSim`] behind the Fig. 10
/// register-file protocol. Every `read`/`write` counts as one bus
/// transaction (the runtime charges modeled time per transaction).
#[derive(Debug)]
pub struct MmioCore {
    sim: NetlistSim,
    map: AddressMap,
    transactions: u64,
    iterations: u32,
}

impl MmioCore {
    /// Wraps a compiled netlist.
    ///
    /// # Errors
    ///
    /// Returns the levelization error if the netlist is combinationally
    /// cyclic.
    pub fn new(netlist: Arc<Netlist>) -> Result<Self, cascade_netlist::LevelError> {
        let map = AddressMap::for_netlist(&netlist);
        let sim = NetlistSim::new(netlist)?;
        Ok(MmioCore {
            sim,
            map,
            transactions: 0,
            iterations: 0,
        })
    }

    /// The address map.
    pub fn map(&self) -> &AddressMap {
        &self.map
    }

    /// The wrapped evaluator (direct access for state transfer).
    pub fn sim(&mut self) -> &mut NetlistSim {
        &mut self.sim
    }

    /// The wrapped evaluator, immutably.
    pub fn sim_ref(&self) -> &NetlistSim {
        &self.sim
    }

    /// Bus transactions performed so far.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Reads a data address.
    pub fn read(&mut self, addr: u32) -> Bits {
        self.transactions += 1;
        match self.map.slot(addr) {
            Some(Slot::Input(name)) | Some(Slot::Output(name)) => {
                let name = name.clone();
                self.sim.get_by_name(&name).unwrap_or_default()
            }
            Some(Slot::State(reg, _)) => self.sim.read_reg(*reg),
            None => Bits::zero(32),
        }
    }

    /// Writes a data address.
    pub fn write(&mut self, addr: u32, value: Bits) {
        self.transactions += 1;
        match self.map.slot(addr).cloned() {
            Some(Slot::Input(name)) => self.sim.set_by_name(&name, value),
            Some(Slot::State(reg, _)) => {
                self.sim.write_reg(reg, value);
                self.sim.settle();
            }
            Some(Slot::Output(_)) | None => {}
        }
    }

    /// Reads a control address.
    pub fn ctrl_read(&mut self, ctrl: Ctrl) -> Bits {
        self.transactions += 1;
        match ctrl {
            Ctrl::ThereAreUpdates => Bits::from_bool(self.updates_pending()),
            Ctrl::Tasks => Bits::from_bool(self.sim.has_tasks()),
            Ctrl::Iterations => Bits::from_u64(32, self.iterations as u64),
            _ => Bits::zero(1),
        }
    }

    /// Writes a control address.
    pub fn ctrl_write(&mut self, ctrl: Ctrl, value: Bits) {
        self.transactions += 1;
        match ctrl {
            Ctrl::Latch => self.sim.step_clock(0),
            Ctrl::Clear => {
                // Task mask clearing is implicit in drain; nothing to do.
            }
            Ctrl::OpenLoop => {
                self.iterations = self.open_loop(value.to_u64() as u32);
            }
            Ctrl::Iterations | Ctrl::ThereAreUpdates | Ctrl::Tasks => {}
        }
    }

    /// Whether any register (or memory) would change at the next edge, in
    /// any clock domain. Delegates to the evaluator's word-level compare —
    /// no `Bits` are materialized.
    pub fn updates_pending(&self) -> bool {
        let domains = self.sim.netlist().clocks.len().max(1) as u32;
        (0..domains).any(|c| self.sim.updates_pending(c))
    }

    /// Runs up to `limit` clock cycles entirely inside the engine, stopping
    /// early when a system task fires (Fig. 10's `_oloop` / `_tasks`
    /// interlock). Returns the number of cycles executed.
    ///
    /// The batch executes inside [`NetlistSim::run_cycles`]: one call, no
    /// per-cycle host round trip.
    pub fn open_loop(&mut self, limit: u32) -> u32 {
        self.open_loop_batch(limit as u64) as u32
    }

    /// [`MmioCore::open_loop`] without the `u32` bus-register limit, for
    /// hosts that schedule multi-million-cycle batches.
    pub fn open_loop_batch(&mut self, limit: u64) -> u64 {
        self.transactions += 1;
        let done = self.sim.run_cycles(limit, 1);
        self.iterations = done.min(u32::MAX as u64) as u32;
        done
    }

    /// Drains task firings (forwarded to the runtime's interrupt queue).
    pub fn drain_tasks(&mut self) -> Vec<TaskFire> {
        self.sim.drain_tasks()
    }

    /// Whether a `$finish`/`$fatal` has executed.
    pub fn is_finished(&self) -> bool {
        self.sim.is_finished()
    }
}

/// Renders a task fire like the runtime's view would.
pub fn describe_task(fire: &TaskFire) -> String {
    match fire.kind {
        TaskKind::Display => fire.text.clone(),
        TaskKind::Write => fire.text.clone(),
        TaskKind::Finish => "$finish".to_string(),
        TaskKind::Fatal => format!("$fatal: {}", fire.text),
    }
}
