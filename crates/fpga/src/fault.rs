//! Deterministic, seedable fault injection for the JIT pipeline.
//!
//! Real deployments of Cascade-style JIT-for-FPGA systems fail in a
//! handful of characteristic ways: the blackbox vendor toolchain fails
//! transiently (license hiccups, evicted build nodes) or simply hangs
//! mid-place-and-route; the fabric itself takes configuration/state upsets
//! (SEUs) that silently corrupt a running design; a fleet member goes
//! offline with tenants still programmed on it; and, in a multi-tenant
//! server, a compile worker or session worker panics. Rodrigues & Cardoso
//! argue for *injecting* these faults systematically at the
//! compiler/fabric boundary rather than waiting for them; this module is
//! that injector.
//!
//! A [`FaultPlan`] is a deterministic schedule: each injection *site*
//! (toolchain runs, compile-worker executions, scrub boundaries, lease
//! migrations, session commands) keeps a monotonically increasing
//! occurrence counter, and the plan maps occurrence indices (1-based) to
//! faults. The same plan against the same command sequence injects the
//! same faults — which is what lets the chaos suite compare a faulted run
//! against a fault-free oracle, byte for byte. Plans are cheap to clone
//! and share one set of counters (an `Arc`), so every consumer of a
//! `JitConfig` — runtime, background compiler, pool workers, server — sees
//! one consistent schedule.

use cascade_bits::Prng;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A fault injected into one toolchain run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToolchainFault {
    /// The run fails partway with a retryable error (modeled license
    /// failure / build-node eviction).
    Transient,
    /// The run never surfaces an outcome; only a watchdog recovers it.
    Hang,
}

/// A fault injected into the fabric at a scrub boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricFault {
    /// A single-event upset: one live register bit flips and the
    /// configuration image is disturbed, so the next readback CRC
    /// mismatches the golden programming-time image.
    SoftError {
        /// Deterministically selects which register/bit is hit.
        salt: u64,
    },
    /// The fabric goes offline entirely; state on it is unrecoverable.
    Loss,
}

/// A fault injected into one durable write (journal append, atomic
/// replace, hibernation spill). Every durable fault models the process
/// dying at that write: the operation reports failure, the on-disk state
/// is left in the corresponding partial condition, and the store refuses
/// further writes until the server is restarted and recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurableFault {
    /// The write is cut off mid-frame: a prefix of the framed record
    /// reaches disk, so recovery sees a torn tail that fails its CRC.
    TornWrite,
    /// The frame header lands but the payload is short — the classic
    /// "rename survived, data blocks didn't" anomaly an fsync-before-
    /// rename discipline exists to prevent.
    PartialWrite,
    /// The data was written but fsync fails; the crash then drops the
    /// cached bytes, so nothing of this write survives.
    LostFsync,
    /// The process dies just before the write starts; disk is untouched.
    Crash,
}

#[derive(Debug, Default)]
struct Schedule {
    /// Toolchain run index → fault.
    toolchain: BTreeMap<u64, ToolchainFault>,
    /// Compile-worker execution indices that panic.
    worker_panics: BTreeMap<u64, ()>,
    /// Scrub boundary index → fabric fault injected into the next window.
    scrub: BTreeMap<u64, FabricFault>,
    /// Promotion indices whose lease is revoked mid-migration.
    migration_revokes: BTreeMap<u64, ()>,
    /// Session `run` command indices whose worker panics.
    session_panics: BTreeMap<u64, ()>,
    /// Durable write index → crash-point fault.
    durable: BTreeMap<u64, DurableFault>,
}

#[derive(Debug, Default)]
struct Counters {
    toolchain: AtomicU64,
    worker: AtomicU64,
    scrub: AtomicU64,
    migration: AtomicU64,
    session: AtomicU64,
    durable: AtomicU64,
    injected: AtomicU64,
}

#[derive(Debug, Default)]
struct Inner {
    schedule: Schedule,
    counters: Counters,
}

/// A shared, deterministic fault schedule. The default plan injects
/// nothing (and is free to consult).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Option<Arc<Inner>>,
}

impl FaultPlan {
    /// The empty plan: no faults, zero overhead.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A builder for hand-written schedules (acceptance tests).
    pub fn builder() -> FaultPlanBuilder {
        FaultPlanBuilder {
            schedule: Schedule::default(),
        }
    }

    /// A randomized schedule derived deterministically from `seed` — the
    /// chaos suite's generator. Rates are tuned so runs recover: transient
    /// bursts stay within the retry budget often enough for progress, and
    /// fabric loss is rare.
    pub fn random(seed: u64) -> FaultPlan {
        let mut rng = Prng::new(seed);
        let mut b = FaultPlan::builder();
        for occ in 1..=8u64 {
            if rng.chance(1, 4) {
                if rng.chance(1, 3) {
                    b = b.toolchain_hang(occ);
                } else {
                    b = b.toolchain_transient(occ);
                }
            }
        }
        for occ in 1..=8u64 {
            if rng.chance(1, 6) {
                b = b.worker_panic(occ);
            }
        }
        for occ in 1..=16u64 {
            if rng.chance(1, 5) {
                b = b.scrub_soft_error(occ, rng.next_u64());
            } else if rng.chance(1, 12) {
                b = b.fabric_loss(occ);
            }
        }
        for occ in 1..=4u64 {
            if rng.chance(1, 8) {
                b = b.migration_revoke(occ);
            }
        }
        b.build()
    }

    /// Whether this plan can inject anything.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Faults actually injected so far (for tests and benches).
    pub fn injected(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.counters.injected.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    fn consult<T: Copy>(
        &self,
        counter: impl Fn(&Counters) -> &AtomicU64,
        lookup: impl Fn(&Schedule, u64) -> Option<T>,
    ) -> Option<T> {
        let inner = self.inner.as_ref()?;
        let occ = counter(&inner.counters).fetch_add(1, Ordering::Relaxed) + 1;
        let hit = lookup(&inner.schedule, occ);
        if hit.is_some() {
            inner.counters.injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Consults the toolchain site: one call per actual toolchain run
    /// (cache hits do not count).
    pub fn next_toolchain_fault(&self) -> Option<ToolchainFault> {
        self.consult(|c| &c.toolchain, |s, occ| s.toolchain.get(&occ).copied())
    }

    /// Consults the compile-worker site: one call per compile execution.
    pub fn next_worker_panic(&self) -> bool {
        self.consult(|c| &c.worker, |s, occ| s.worker_panics.get(&occ).copied())
            .is_some()
    }

    /// Consults the fabric site: one call per scrub boundary.
    pub fn next_scrub_fault(&self) -> Option<FabricFault> {
        self.consult(|c| &c.scrub, |s, occ| s.scrub.get(&occ).copied())
    }

    /// Consults the migration site: one call per hardware promotion.
    pub fn next_migration_revoke(&self) -> bool {
        self.consult(
            |c| &c.migration,
            |s, occ| s.migration_revokes.get(&occ).copied(),
        )
        .is_some()
    }

    /// Consults the session site: one call per session `run` command.
    pub fn next_session_panic(&self) -> bool {
        self.consult(|c| &c.session, |s, occ| s.session_panics.get(&occ).copied())
            .is_some()
    }

    /// Consults the durable-write site: one call per foreground durable
    /// write (journal append, atomic replace, hibernation spill).
    pub fn next_durable_fault(&self) -> Option<DurableFault> {
        self.consult(|c| &c.durable, |s, occ| s.durable.get(&occ).copied())
    }

    /// How many durable write points have been consulted so far. The
    /// crash-point fuzzer runs a clean pass with an armed-but-never-firing
    /// plan to count the write points it must sweep.
    pub fn durable_consults(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.counters.durable.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// Builds a [`FaultPlan`] one scheduled fault at a time. All occurrence
/// indices are 1-based.
pub struct FaultPlanBuilder {
    schedule: Schedule,
}

impl FaultPlanBuilder {
    /// The `occ`-th toolchain run fails transiently (retryable).
    pub fn toolchain_transient(mut self, occ: u64) -> Self {
        self.schedule
            .toolchain
            .insert(occ, ToolchainFault::Transient);
        self
    }

    /// The `occ`-th toolchain run hangs (watchdog territory).
    pub fn toolchain_hang(mut self, occ: u64) -> Self {
        self.schedule.toolchain.insert(occ, ToolchainFault::Hang);
        self
    }

    /// The `occ`-th compile-worker execution panics.
    pub fn worker_panic(mut self, occ: u64) -> Self {
        self.schedule.worker_panics.insert(occ, ());
        self
    }

    /// The `occ`-th scrub boundary injects a soft error into the next
    /// window.
    pub fn scrub_soft_error(mut self, occ: u64, salt: u64) -> Self {
        self.schedule
            .scrub
            .insert(occ, FabricFault::SoftError { salt });
        self
    }

    /// The `occ`-th scrub boundary loses the fabric outright.
    pub fn fabric_loss(mut self, occ: u64) -> Self {
        self.schedule.scrub.insert(occ, FabricFault::Loss);
        self
    }

    /// The `occ`-th hardware promotion has its lease revoked mid-migration.
    pub fn migration_revoke(mut self, occ: u64) -> Self {
        self.schedule.migration_revokes.insert(occ, ());
        self
    }

    /// The `occ`-th session `run` command panics its worker.
    pub fn session_panic(mut self, occ: u64) -> Self {
        self.schedule.session_panics.insert(occ, ());
        self
    }

    /// The `occ`-th durable write takes `fault`.
    pub fn durable_fault(mut self, occ: u64, fault: DurableFault) -> Self {
        self.schedule.durable.insert(occ, fault);
        self
    }

    /// Finalizes the plan. An empty schedule yields the inactive plan.
    pub fn build(self) -> FaultPlan {
        let s = &self.schedule;
        if s.toolchain.is_empty()
            && s.worker_panics.is_empty()
            && s.scrub.is_empty()
            && s.migration_revokes.is_empty()
            && s.session_panics.is_empty()
            && s.durable.is_empty()
        {
            return FaultPlan::none();
        }
        FaultPlan {
            inner: Some(Arc::new(Inner {
                schedule: self.schedule,
                counters: Counters::default(),
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert_eq!(p.next_toolchain_fault(), None);
        assert!(!p.next_worker_panic());
        assert_eq!(p.next_scrub_fault(), None);
        assert_eq!(p.injected(), 0);
    }

    #[test]
    fn occurrence_indexing_is_one_based_and_ordered() {
        let p = FaultPlan::builder()
            .toolchain_transient(2)
            .toolchain_hang(3)
            .build();
        assert_eq!(p.next_toolchain_fault(), None);
        assert_eq!(p.next_toolchain_fault(), Some(ToolchainFault::Transient));
        assert_eq!(p.next_toolchain_fault(), Some(ToolchainFault::Hang));
        assert_eq!(p.next_toolchain_fault(), None);
        assert_eq!(p.injected(), 2);
    }

    #[test]
    fn clones_share_counters() {
        let p = FaultPlan::builder().worker_panic(2).build();
        let q = p.clone();
        assert!(!p.next_worker_panic());
        assert!(q.next_worker_panic());
        assert_eq!(p.injected(), 1);
    }

    #[test]
    fn durable_site_counts_and_fires_by_occurrence() {
        let p = FaultPlan::builder()
            .durable_fault(2, DurableFault::TornWrite)
            .durable_fault(3, DurableFault::Crash)
            .build();
        assert_eq!(p.next_durable_fault(), None);
        assert_eq!(p.next_durable_fault(), Some(DurableFault::TornWrite));
        assert_eq!(p.next_durable_fault(), Some(DurableFault::Crash));
        assert_eq!(p.next_durable_fault(), None);
        assert_eq!(p.durable_consults(), 4);
        assert_eq!(p.injected(), 2);
        // An armed-but-never-firing plan still counts write points.
        let counting = FaultPlan::builder()
            .durable_fault(u64::MAX, DurableFault::Crash)
            .build();
        assert!(counting.is_active());
        assert_eq!(counting.next_durable_fault(), None);
        assert_eq!(counting.durable_consults(), 1);
    }

    #[test]
    fn random_plans_are_deterministic_per_seed() {
        let a = FaultPlan::random(7);
        let b = FaultPlan::random(7);
        let drain = |p: &FaultPlan| {
            let mut log = Vec::new();
            for _ in 0..12 {
                log.push(format!("{:?}", p.next_toolchain_fault()));
                log.push(format!("{:?}", p.next_scrub_fault()));
                log.push(format!("{}", p.next_worker_panic()));
            }
            log
        };
        assert_eq!(drain(&a), drain(&b));
    }
}
