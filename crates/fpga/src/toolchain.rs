//! The virtual FPGA toolchain: synthesis + placement + timing closure,
//! with a calibrated compile-latency model.
//!
//! This is the stand-in for Intel Quartus: the blackbox compiler whose
//! minutes-to-hours latency Cascade hides behind simulation. `compile`
//! performs real synthesis and real simulated-annealing placement, and
//! additionally reports a *modeled* wall-clock duration calibrated so the
//! paper's headline latencies reproduce (a SHA-256 proof-of-work miner
//! takes about ten modeled minutes, Sec. 6.1).

use crate::device::Device;
use crate::place::{place, Placement};
use cascade_netlist::{
    critical_path_ns, estimate_area, levelize, logic_depth, synthesize, AreaEstimate, Netlist,
    SynthError,
};
use cascade_sim::Design;
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Why a compilation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The design is not synthesizable.
    Synth(SynthError),
    /// A combinational cycle survived synthesis.
    CombLoop(String),
    /// The design does not fit the device.
    DoesNotFit {
        needed: AreaEstimate,
        device: Device,
    },
    /// The routed design cannot meet the fabric clock (paper Sec. 6.4:
    /// "many submissions which ran correctly in simulation did not pass
    /// timing closure").
    TimingClosure { fmax_mhz: f64, required_mhz: f64 },
    /// The toolchain failed for a reason unrelated to the design (modeled
    /// license hiccup, evicted build node). Worth retrying.
    TransientFault(String),
    /// The toolchain stopped making progress mid-place-and-route and was
    /// cancelled by the compile watchdog. Worth retrying.
    ToolchainHang,
    /// The compile worker executing the job panicked. Worth retrying.
    WorkerPanic,
}

impl CompileError {
    /// Whether retrying the same compilation could plausibly succeed.
    /// Design errors (synthesis, fit, timing) are deterministic and
    /// terminal; infrastructure errors are not.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            CompileError::TransientFault(_)
                | CompileError::ToolchainHang
                | CompileError::WorkerPanic
        )
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Synth(e) => write!(f, "{e}"),
            CompileError::CombLoop(nets) => write!(f, "combinational loop: {nets}"),
            CompileError::DoesNotFit { needed, device } => write!(
                f,
                "design needs {} LEs / {} BRAM bits; device {} has {} / {}",
                needed.logic_elements,
                needed.bram_bits,
                device.name,
                device.logic_elements,
                device.bram_bits
            ),
            CompileError::TimingClosure {
                fmax_mhz,
                required_mhz,
            } => write!(
                f,
                "timing closure failed: fmax {fmax_mhz:.1} MHz < required {required_mhz:.1} MHz"
            ),
            CompileError::TransientFault(why) => write!(f, "transient toolchain fault: {why}"),
            CompileError::ToolchainHang => {
                write!(f, "toolchain hang: cancelled by compile watchdog")
            }
            CompileError::WorkerPanic => write!(f, "compile worker panicked"),
        }
    }
}

impl Error for CompileError {}

impl From<SynthError> for CompileError {
    fn from(e: SynthError) -> Self {
        CompileError::Synth(e)
    }
}

/// A successful compilation: the "bitstream".
#[derive(Debug, Clone)]
pub struct Bitstream {
    pub netlist: Arc<Netlist>,
    pub area: AreaEstimate,
    pub placement: Placement,
    /// Post-route maximum frequency.
    pub fmax_mhz: f64,
    /// Longest combinational path in cell levels.
    pub logic_depth: u32,
    /// Modeled wall-clock compile duration (what a developer would wait).
    pub modeled_duration: Duration,
}

/// Compiler options.
#[derive(Debug, Clone)]
pub struct Toolchain {
    pub device: Device,
    /// Placement effort multiplier (1.0 ≈ default Quartus effort).
    pub effort: f64,
    pub seed: u64,
    /// Extra logic appended by the caller (e.g. Cascade's MMIO wrapper);
    /// charged to area and compile time.
    pub overhead_les: u64,
    /// Scales the *modeled* compile latency without affecting placement
    /// quality — the benches' time-compression knob.
    pub time_scale: f64,
}

impl Default for Toolchain {
    fn default() -> Self {
        Toolchain {
            device: Device::cyclone_v(),
            effort: 1.0,
            seed: 1,
            overhead_les: 0,
            time_scale: 1.0,
        }
    }
}

impl Toolchain {
    /// Creates a toolchain for a device with default effort.
    pub fn new(device: Device) -> Self {
        Toolchain {
            device,
            ..Toolchain::default()
        }
    }

    /// Full compilation: synthesis, fit check, placement, timing analysis.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] for unsynthesizable input, capacity
    /// overflow, combinational loops, or timing-closure failure.
    pub fn compile(&self, design: &Design) -> Result<Bitstream, CompileError> {
        let netlist = synthesize(design)?;
        self.compile_netlist(Arc::new(netlist))
    }

    /// Compilation from an already-synthesized netlist.
    ///
    /// # Errors
    ///
    /// See [`Toolchain::compile`].
    pub fn compile_netlist(&self, netlist: Arc<Netlist>) -> Result<Bitstream, CompileError> {
        let order = levelize(&netlist).map_err(|e| CompileError::CombLoop(e.nets.join(" -> ")))?;
        let depth = logic_depth(&netlist, &order);
        let mut area = estimate_area(&netlist);
        area.logic_elements += self.overhead_les;
        if area.cells() > self.device.logic_elements || area.bram_bits > self.device.bram_bits {
            return Err(CompileError::DoesNotFit {
                needed: area,
                device: self.device.clone(),
            });
        }
        let placement = place(&netlist, self.seed, self.effort);
        // Timing model: the delay-weighted critical path plus routed wire
        // delay that grows with average wirelength and device utilization.
        let path_ns = critical_path_ns(&netlist, &order);
        let utilization = area.cells() as f64 / self.device.logic_elements as f64;
        // Routing stretches every logic level; congested or poorly-placed
        // designs stretch more.
        let wire_factor = (0.03 * placement.avg_wirelength * (1.0 + 2.0 * utilization)).min(1.5);
        let ns = 1.5 + path_ns * (1.0 + wire_factor);
        let fmax = 1000.0 / ns;
        if fmax < self.device.clock_mhz {
            return Err(CompileError::TimingClosure {
                fmax_mhz: fmax,
                required_mhz: self.device.clock_mhz,
            });
        }
        let modeled_duration = self.modeled_duration(&area, placement.cells);
        Ok(Bitstream {
            netlist,
            area,
            placement,
            fmax_mhz: fmax,
            logic_depth: depth,
            modeled_duration,
        })
    }

    /// The bitstream-cache key for compiling a given netlist with this
    /// toolchain: the netlist's structural fingerprint (see
    /// [`cascade_netlist::fingerprint`]) folded with every knob that
    /// changes the produced bitstream or its modeled latency — target
    /// device, placement effort and seed, and the wrapper overhead charged
    /// to area.
    pub fn cache_key(&self, netlist_fp: u64) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = netlist_fp;
        let mix = |h: &mut u64, v: u64| *h = (*h ^ v).wrapping_mul(PRIME);
        for b in self.device.name.as_bytes() {
            mix(&mut h, *b as u64);
        }
        mix(&mut h, self.device.logic_elements);
        mix(&mut h, self.device.bram_bits);
        mix(&mut h, self.device.dsp_blocks);
        mix(&mut h, self.device.clock_mhz.to_bits());
        mix(&mut h, self.effort.to_bits());
        mix(&mut h, self.seed);
        mix(&mut h, self.overhead_les);
        h
    }

    /// The modeled wall-clock compile latency. Calibrated against the
    /// paper's observations: trivial designs take a couple of minutes and
    /// the SHA-256 proof-of-work miner takes roughly ten (Sec. 2, 6.1).
    pub fn modeled_duration(&self, area: &AreaEstimate, cells: usize) -> Duration {
        let le = area.logic_elements as f64;
        // Base toolchain spin-up + synthesis/optimization (∝ netlist cells,
        // the dominant term) + place&route (∝ sqrt of placed logic).
        // Calibrated so the paper's miner takes roughly ten minutes
        // (Sec. 6.1) and trivial programs a couple of minutes (Sec. 2).
        let secs = (90.0 + 1.1 * cells as f64 + 0.9 * le.sqrt()) * self.effort * self.time_scale;
        Duration::from_secs_f64(secs)
    }
}
