//! The virtual development board: buttons, LEDs, GPIO, reset, and a
//! host-coupled FIFO.
//!
//! Peripherals are *externally visible shared state* — exactly the property
//! that forces Cascade to place standard-library components in hardware
//! from the first eval (paper Sec. 4.3). Both software and hardware engines
//! observe the same [`Board`], so a program's IO side effects are identical
//! in every compilation state.

use cascade_bits::Bits;
use std::collections::VecDeque;
use std::sync::Arc;
use std::sync::Mutex;

/// Shared handle to the board (cheaply cloneable).
#[derive(Debug, Clone, Default)]
pub struct Board {
    inner: Arc<Mutex<BoardState>>,
}

#[derive(Debug)]
struct BoardState {
    buttons: Bits,
    leds: Bits,
    gpio_out: Bits,
    gpio_in: Bits,
    reset: bool,
    fifo_in: VecDeque<Bits>,
    fifo_out: VecDeque<Bits>,
    fifo_capacity: usize,
    /// Cumulative LED writes (used by examples/tests to observe activity).
    led_writes: u64,
    /// Tokens consumed from the host->FPGA FIFO (Fig. 12's IO/s metric).
    fifo_pops: u64,
    /// While marking: tokens popped from `fifo_in` since the mark, oldest
    /// first, so a scrub rollback can push them back (see `fifo_rewind`).
    popped_log: Vec<Bits>,
    /// While marking: tokens pushed to `fifo_out` since the mark.
    out_since_mark: usize,
    /// Whether a speculation window is open (checkpoint taken but not yet
    /// verified by a readback scrub).
    marking: bool,
}

impl Default for BoardState {
    fn default() -> Self {
        BoardState {
            buttons: Bits::zero(4),
            leds: Bits::zero(8),
            gpio_out: Bits::zero(32),
            gpio_in: Bits::zero(32),
            reset: false,
            fifo_in: VecDeque::new(),
            fifo_out: VecDeque::new(),
            fifo_capacity: 64,
            led_writes: 0,
            fifo_pops: 0,
            popped_log: Vec::new(),
            out_since_mark: 0,
            marking: false,
        }
    }
}

impl Board {
    /// A board with the paper's IO complement: four buttons and a bank of
    /// LEDs.
    pub fn new() -> Board {
        Board::default()
    }

    /// Presses (or releases) one button.
    pub fn set_button(&self, index: u32, down: bool) {
        let mut st = self.inner.lock().expect("board mutex");
        st.buttons.set_bit(index, down);
    }

    /// Current button state (1 = pressed).
    pub fn buttons(&self) -> Bits {
        self.inner.lock().expect("board mutex").buttons.clone()
    }

    /// Drives the LED bank (called by engines).
    pub fn write_leds(&self, value: Bits) {
        let mut st = self.inner.lock().expect("board mutex");
        if st.leds != value.resize(st.leds.width()) {
            st.led_writes += 1;
        }
        let w = st.leds.width();
        st.leds = value.resize(w);
    }

    /// Current LED bank state.
    pub fn leds(&self) -> Bits {
        self.inner.lock().expect("board mutex").leds.clone()
    }

    /// Number of observable LED changes so far.
    pub fn led_writes(&self) -> u64 {
        self.inner.lock().expect("board mutex").led_writes
    }

    /// Sets GPIO input pins (host side).
    pub fn set_gpio(&self, value: Bits) {
        let mut st = self.inner.lock().expect("board mutex");
        let w = st.gpio_in.width();
        st.gpio_in = value.resize(w);
    }

    /// Reads GPIO input pins (engine side).
    pub fn gpio_in(&self) -> Bits {
        self.inner.lock().expect("board mutex").gpio_in.clone()
    }

    /// Drives GPIO output pins (engine side).
    pub fn write_gpio(&self, value: Bits) {
        let mut st = self.inner.lock().expect("board mutex");
        let w = st.gpio_out.width();
        st.gpio_out = value.resize(w);
    }

    /// Reads GPIO output pins (host side).
    pub fn gpio_out(&self) -> Bits {
        self.inner.lock().expect("board mutex").gpio_out.clone()
    }

    /// Asserts or releases the reset line.
    pub fn set_reset(&self, asserted: bool) {
        self.inner.lock().expect("board mutex").reset = asserted;
    }

    /// Current reset state.
    pub fn reset(&self) -> bool {
        self.inner.lock().expect("board mutex").reset
    }

    /// Host pushes one token toward the FPGA. Returns `false` when the FIFO
    /// is full (back pressure, paper Sec. 7.1).
    pub fn fifo_push(&self, value: Bits) -> bool {
        let mut st = self.inner.lock().expect("board mutex");
        if st.fifo_in.len() >= st.fifo_capacity {
            return false;
        }
        st.fifo_in.push_back(value);
        true
    }

    /// Engine pops one token from the host FIFO.
    pub fn fifo_pop(&self) -> Option<Bits> {
        let mut st = self.inner.lock().expect("board mutex");
        let v = st.fifo_in.pop_front();
        if let Some(v) = &v {
            st.fifo_pops += 1;
            if st.marking {
                st.popped_log.push(v.clone());
            }
        }
        v
    }

    /// Engine peeks the head token without consuming it.
    pub fn fifo_peek(&self) -> Option<Bits> {
        self.inner
            .lock()
            .expect("board mutex")
            .fifo_in
            .front()
            .cloned()
    }

    /// Snapshot of the unconsumed host-FIFO tokens, oldest first. The
    /// durability layer checkpoints this residue so queued-but-unpopped
    /// tokens survive a server restart.
    pub fn fifo_snapshot(&self) -> Vec<Bits> {
        let st = self.inner.lock().expect("board mutex");
        st.fifo_in.iter().cloned().collect()
    }

    /// Whether the host FIFO has data.
    pub fn fifo_nonempty(&self) -> bool {
        !self.inner.lock().expect("board mutex").fifo_in.is_empty()
    }

    /// Whether the host FIFO is full.
    pub fn fifo_full(&self) -> bool {
        let st = self.inner.lock().expect("board mutex");
        st.fifo_in.len() >= st.fifo_capacity
    }

    /// Tokens consumed from the host FIFO so far (the IO/s numerator of
    /// the paper's Fig. 12).
    pub fn fifo_pops(&self) -> u64 {
        self.inner.lock().expect("board mutex").fifo_pops
    }

    /// Engine pushes one token toward the host.
    pub fn fifo_out_push(&self, value: Bits) {
        let mut st = self.inner.lock().expect("board mutex");
        if st.marking {
            st.out_since_mark += 1;
        }
        st.fifo_out.push_back(value);
    }

    /// Host drains tokens produced by the engine.
    pub fn fifo_out_drain(&self) -> Vec<Bits> {
        self.inner
            .lock()
            .expect("board mutex")
            .fifo_out
            .drain(..)
            .collect()
    }

    /// Changes the host FIFO depth.
    pub fn set_fifo_capacity(&self, capacity: usize) {
        self.inner.lock().expect("board mutex").fifo_capacity = capacity;
    }

    /// Opens a speculation window at a checkpoint: FIFO traffic from here
    /// on is journaled so `fifo_rewind` can undo it.
    pub fn fifo_mark(&self) {
        let mut st = self.inner.lock().expect("board mutex");
        st.popped_log.clear();
        st.out_since_mark = 0;
        st.marking = true;
    }

    /// Rolls FIFO state back to the last mark: tokens the engine consumed
    /// during the window return to the front of the host FIFO (in original
    /// order), and tokens it produced — if the host has not drained them —
    /// are retracted. The window stays open for the re-execution.
    pub fn fifo_rewind(&self) {
        let mut st = self.inner.lock().expect("board mutex");
        st.fifo_pops = st.fifo_pops.saturating_sub(st.popped_log.len() as u64);
        let popped = std::mem::take(&mut st.popped_log);
        for v in popped.into_iter().rev() {
            st.fifo_in.push_front(v);
        }
        let retract = st.out_since_mark.min(st.fifo_out.len());
        for _ in 0..retract {
            st.fifo_out.pop_back();
        }
        st.out_since_mark = 0;
    }

    /// Closes the speculation window (the scrub verified it, or the engine
    /// left hardware) and drops the journal.
    pub fn fifo_unmark(&self) {
        let mut st = self.inner.lock().expect("board mutex");
        st.marking = false;
        st.popped_log.clear();
        st.out_since_mark = 0;
    }
}
