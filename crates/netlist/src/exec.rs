//! The compiled word-arena evaluator.
//!
//! At construction time the levelized netlist is lowered into a flat
//! program over a `Vec<u64>` arena: every net owns a fixed run of 64-bit
//! words (one word for the common ≤64-bit case), and every combinational
//! cell becomes one [`Instr`] whose kernel reads and writes arena offsets
//! directly — no per-cycle `Bits` allocation, no pointer chasing through
//! `Def`. Nets wider than 64 bits share the same arena through multi-word
//! slices and evaluate through a generic [`Bits`]-based fallback kernel.
//!
//! Scheduling is activity-driven: each instruction carries its
//! combinational level, and a per-level dirty worklist re-evaluates only
//! the fan-out cone of nets that actually changed (inputs written from
//! outside, registers and memories committed at a clock edge). A settled
//! netlist whose inputs did not change costs nothing to re-settle.

use crate::ir::*;
use crate::level::{levelize, levels, LevelError};
use crate::par::{EvalPool, ParCtl};
use cascade_bits::Bits;
use std::sync::Arc;

/// One net's run of words in the arena.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Slot {
    pub off: u32,
    pub words: u32,
    pub width: u32,
}

/// Mask covering the valid bits of a `w`-bit value's top word, as a full
/// single-word mask (`0` for zero-width nets).
#[inline]
pub(crate) fn wmask(w: u32) -> u64 {
    if w == 0 {
        0
    } else if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

/// Sign-extends the low `w` bits of `v` to an `i64`.
#[inline]
fn sext(v: u64, w: u32) -> i64 {
    if w == 0 {
        0
    } else if w >= 64 {
        v as i64
    } else {
        ((v << (64 - w)) as i64) >> (64 - w)
    }
}

/// A single-word compute kernel. Operand fields are arena word offsets of
/// canonical (masked) values; `aw`/`bw` are operand bit widths where the
/// operation is width-sensitive.
#[derive(Debug, Clone)]
pub(crate) enum Kernel {
    Not {
        a: u32,
    },
    Neg {
        a: u32,
    },
    RedAnd {
        a: u32,
        full: u64,
    },
    RedOr {
        a: u32,
    },
    RedXor {
        a: u32,
    },
    LogNot {
        a: u32,
    },
    Add {
        a: u32,
        b: u32,
    },
    Sub {
        a: u32,
        b: u32,
    },
    Mul {
        a: u32,
        b: u32,
    },
    DivU {
        a: u32,
        b: u32,
    },
    RemU {
        a: u32,
        b: u32,
    },
    DivS {
        a: u32,
        b: u32,
        aw: u32,
        bw: u32,
    },
    RemS {
        a: u32,
        b: u32,
        aw: u32,
        bw: u32,
    },
    And {
        a: u32,
        b: u32,
    },
    Or {
        a: u32,
        b: u32,
    },
    Xor {
        a: u32,
        b: u32,
    },
    Xnor {
        a: u32,
        b: u32,
    },
    Shl {
        a: u32,
        b: u32,
        aw: u32,
    },
    Shr {
        a: u32,
        b: u32,
        aw: u32,
    },
    AShr {
        a: u32,
        b: u32,
        aw: u32,
    },
    Eq {
        a: u32,
        b: u32,
    },
    Ne {
        a: u32,
        b: u32,
    },
    LtU {
        a: u32,
        b: u32,
    },
    LeU {
        a: u32,
        b: u32,
    },
    LtS {
        a: u32,
        b: u32,
        aw: u32,
        bw: u32,
    },
    LeS {
        a: u32,
        b: u32,
        aw: u32,
        bw: u32,
    },
    Mux {
        s: u32,
        t: u32,
        e: u32,
    },
    /// Fused compare/select: an unsigned comparison whose only reader is a
    /// mux selector folds into the mux, removing one instruction and one
    /// selector round trip through the arena per level of a select tree.
    MuxEq {
        a: u32,
        b: u32,
        t: u32,
        e: u32,
    },
    MuxNe {
        a: u32,
        b: u32,
        t: u32,
        e: u32,
    },
    MuxLtU {
        a: u32,
        b: u32,
        t: u32,
        e: u32,
    },
    MuxLeU {
        a: u32,
        b: u32,
        t: u32,
        e: u32,
    },
    /// Two-part concatenation, `(a << sa) | (b << sb)` — the shape rotate
    /// idioms lower to; specialized to avoid the boxed-parts indirection.
    Concat2 {
        a: u32,
        sa: u32,
        b: u32,
        sb: u32,
    },
    /// A [`Concat2`] whose parts were single-use static slices, folded in:
    /// `(((a >> ra) & ma) << sa) | (((b >> rb) & mb) << sb)`. This is a
    /// full barrel rotate (`{x[l:0], x[h:l+1]}`) in one instruction.
    ///
    /// [`Concat2`]: Kernel::Concat2
    Rot {
        a: u32,
        ra: u32,
        ma: u64,
        sa: u32,
        b: u32,
        rb: u32,
        mb: u64,
        sb: u32,
    },
    /// A flattened constant cone: a whole combinational region whose only
    /// non-constant root is one small net (a `case` over literals, a
    /// round-constant ROM, control decode off a narrow state register)
    /// pre-evaluated over the root's entire domain into one table probe.
    /// Indices beyond the table read `default`.
    Lookup {
        idx: u32,
        table: Box<[u64]>,
        default: u64,
    },
    /// A constant-folded output: always stores `v`.
    ConstK {
        v: u64,
    },
    /// Precompiled `(word offset, left shift)` per part, LSB-justified.
    Concat {
        parts: Box<[(u32, u32)]>,
    },
    Slice {
        a: u32,
        offset: u32,
    },
    DynSlice {
        a: u32,
        b: u32,
    },
    ZExt {
        a: u32,
    },
    SExt {
        a: u32,
        aw: u32,
        fill: u64,
    },
    /// `value * factor` replicates a narrow value into disjoint bit ranges.
    Repeat {
        a: u32,
        factor: u64,
    },
    /// Asynchronous read of a ≤64-bit-wide memory; `addr` is the first
    /// word of the address net (matching `Bits::to_u64` truncation).
    MemRead {
        mem: u32,
        addr: u32,
    },
    /// Generic multi-word fallback: evaluate through [`Bits`].
    Wide {
        op: CellOp,
        inputs: Box<[NetId]>,
    },
    /// Multi-word memory read fallback.
    WideMemRead {
        mem: u32,
        addr: u32,
    },
}

/// One compiled combinational instruction.
#[derive(Debug, Clone)]
pub(crate) struct Instr {
    /// Arena offset of the output's first word.
    pub dst: u32,
    /// Combined operation/output mask applied to single-word results.
    pub mask: u64,
    /// Output net (for slot metadata and fan-out marking).
    pub out: u32,
    pub kernel: Kernel,
}

/// Register commit plan: copy `d`'s words into `q` at a clock edge.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RegCommit {
    pub d: Slot,
    pub q: Slot,
    pub q_net: u32,
    /// Offset of this register's sample window in the commit scratch.
    pub scratch: u32,
}

/// Memory write-port plan.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PortCommit {
    pub mem: u32,
    pub enable: Slot,
    /// First word of the address net.
    pub addr: u32,
    pub data: Slot,
}

/// Everything that happens on one clock domain's edge.
#[derive(Debug, Clone, Default)]
pub(crate) struct DomainPlan {
    /// Registers whose `d` and `q` each fit one word: committed by direct
    /// word moves, no slice bookkeeping.
    pub small: Vec<RegCommit>,
    /// Multi-word registers (the general slice-copy path).
    pub regs: Vec<RegCommit>,
    pub ports: Vec<PortCommit>,
    /// Indices into `Netlist::tasks`.
    pub tasks: Vec<u32>,
    /// Words of commit scratch this domain needs.
    pub scratch_words: u32,
}

/// A memory's layout in the memory arena.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MemLayout {
    pub off: u32,
    pub words_per: u32,
    pub count: u64,
    pub width: u32,
}

/// The compiled program: immutable after construction, shared by clones of
/// the evaluator.
#[derive(Debug)]
pub(crate) struct Program {
    pub slots: Vec<Slot>,
    pub instrs: Vec<Instr>,
    /// Combinational level of each instruction (0-based).
    pub level: Vec<u32>,
    /// Per-level `[start, end)` instruction ranges: instructions are
    /// sorted by level, so every level is one contiguous run. Empty levels
    /// (possible after DCE) are `(0, 0)`.
    pub level_ranges: Vec<(u32, u32)>,
    pub num_levels: u32,
    /// Net → instructions consuming it (deduplicated).
    pub fanout: Vec<Box<[u32]>>,
    /// Memory → `MemRead` instructions over it.
    pub mem_fanout: Vec<Box<[u32]>>,
    pub mems: Vec<MemLayout>,
    pub domains: Vec<DomainPlan>,
    pub arena_words: u32,
    pub mem_arena_words: u32,
    /// Instructions on the generic wide lane (diagnostics).
    pub wide_instrs: u32,
}

/// Mutable evaluator state over a [`Program`].
#[derive(Debug, Clone)]
pub(crate) struct State {
    pub arena: Vec<u64>,
    pub mem_arena: Vec<u64>,
    /// Per-level dirty worklists of instruction indices.
    queues: Vec<Vec<u32>>,
    queued: Vec<bool>,
    /// Reused register-sample buffer for two-phase commits.
    scratch: Vec<u64>,
    /// Per-level / per-instruction execution counters; `None` (the
    /// default) keeps the settle paths branch-free apart from one check
    /// per settle call.
    profile: Option<Box<NlProfileState>>,
    /// Worker pool + per-level split policy; `None` (the default) keeps
    /// every settle single-threaded.
    par: Option<ParCtl>,
}

/// Raw activity counters collected when profiling is enabled.
#[derive(Debug, Clone, Default)]
pub(crate) struct NlProfileState {
    /// Instruction executions per combinational level.
    pub level_execs: Vec<u64>,
    /// Executions per instruction (index-aligned with `Program::instrs`).
    pub instr_execs: Vec<u64>,
    /// Instruction executions per level that ran split across the pool.
    pub level_par_execs: Vec<u64>,
    /// Lanes whose output word(s) changed, per instruction — tracked on
    /// the change-detecting paths only (see `instr_tracked`).
    pub instr_changes: Vec<u64>,
    /// Executions per instruction on paths that track changes (sparse
    /// settles, and serial dense passes of the batch engine). Denominator
    /// for lane occupancy.
    pub instr_tracked: Vec<u64>,
    /// Settle passes observed (denominator for mean per-level activity).
    pub settles: u64,
    /// Lane count of the owning evaluator (1 for the scalar engine).
    pub lanes: u32,
}

/// Summary counters for diagnostics and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgramStats {
    /// Compiled combinational instructions.
    pub instrs: u32,
    /// Instructions on the generic multi-word fallback lane.
    pub wide_instrs: u32,
    /// 64-bit words in the net arena.
    pub arena_words: u32,
    /// 64-bit words in the memory arena.
    pub mem_arena_words: u32,
    /// Combinational levels (depth of the scheduling pipeline).
    pub levels: u32,
}

impl Program {
    /// Lowers a levelized netlist into the arena program.
    pub fn compile(nl: &Netlist) -> Result<Program, LevelError> {
        let order = levelize(nl)?;
        let (net_level, _depth) = levels(nl, &order);

        // Arena layout: every net gets at least one word so zero-width
        // temps still have a defined slot.
        let mut slots = Vec::with_capacity(nl.nets.len());
        let mut off = 0u32;
        for net in &nl.nets {
            let words = net.width.div_ceil(64).max(1);
            slots.push(Slot {
                off,
                words,
                width: net.width,
            });
            off += words;
        }
        let arena_words = off;

        let mut mems = Vec::with_capacity(nl.mems.len());
        let mut moff = 0u32;
        for m in &nl.mems {
            let words_per = m.width.div_ceil(64).max(1);
            mems.push(MemLayout {
                off: moff,
                words_per,
                count: m.words,
                width: m.width,
            });
            moff += words_per * m.words as u32;
        }

        let mut items: Vec<(u32, NetId, Instr)> = Vec::with_capacity(order.len());
        let mut num_levels = 0u32;
        let mut wide_instrs = 0u32;
        for &net in &order {
            let instr = compile_net(nl, &slots, &mems, net);
            if matches!(
                instr.kernel,
                Kernel::Wide { .. } | Kernel::WideMemRead { .. }
            ) {
                wide_instrs += 1;
            }
            // Source nets are level 0 and comb nets start at 1; instruction
            // levels are 0-based.
            let l = net_level[net.0 as usize].saturating_sub(1);
            num_levels = num_levels.max(l + 1);
            items.push((l, net, instr));
        }
        // --- Peephole over the compiled instruction stream. ---
        //
        // External observers pin their nets: named signals, ports,
        // register d/q, memory write-port operands, task triggers and
        // arguments, clocks. A pinned net's instruction must survive with
        // its value materialized in the arena; anything else is an
        // internal temp only instruction operands read, which the passes
        // below may reroute or eliminate.
        let mut pinned: Vec<bool> = nl.nets.iter().map(|n| n.name.is_some()).collect();
        for &n in &nl.inputs {
            pinned[n.0 as usize] = true;
        }
        for (_, n) in &nl.outputs {
            pinned[n.0 as usize] = true;
        }
        for r in &nl.regs {
            pinned[r.d.0 as usize] = true;
            pinned[r.q.0 as usize] = true;
        }
        for m in &nl.mems {
            for p in &m.write_ports {
                pinned[p.enable.0 as usize] = true;
                pinned[p.addr.0 as usize] = true;
                pinned[p.data.0 as usize] = true;
            }
        }
        for t in &nl.tasks {
            pinned[t.trigger.0 as usize] = true;
            for a in &t.args {
                pinned[a.0 as usize] = true;
            }
        }
        for &(c, _) in &nl.clocks {
            pinned[c.0 as usize] = true;
        }

        // Slot base offset -> net, for attributing operands.
        let mut off2net = vec![u32::MAX; arena_words as usize];
        for (i, s) in slots.iter().enumerate() {
            off2net[s.off as usize] = i as u32;
        }
        // Nets consumed by a `Wide` kernel must also stay materialized:
        // the fallback lane reads whole slots at source widths.
        let mut wide_read = vec![false; nl.nets.len()];
        for (_, _, ins) in &items {
            if let Kernel::Wide { inputs, .. } = &ins.kernel {
                for n in inputs.iter() {
                    wide_read[n.0 as usize] = true;
                }
            }
        }

        // Pass 1 — copy propagation: a `ZExt` (or offset-0 `Slice`) that
        // does not narrow holds exactly its source's word, so consumers
        // can read the source slot directly and the copy disappears.
        let mut dead = vec![false; items.len()];
        let mut fwd: Vec<u32> = (0..arena_words).collect();
        for (idx, (_, net, ins)) in items.iter().enumerate() {
            let src = match ins.kernel {
                Kernel::ZExt { a } => a,
                Kernel::Slice { a, offset: 0 } => a,
                _ => continue,
            };
            let n = net.0 as usize;
            if pinned[n] || wide_read[n] {
                continue;
            }
            if slots[n].width < slots[off2net[src as usize] as usize].width {
                continue; // truncating copy: the output mask does real work
            }
            // Items are in level order, so the source's own forwarding (if
            // any) is already final: chains collapse in one pass.
            fwd[ins.dst as usize] = fwd[src as usize];
            dead[idx] = true;
        }
        for (_, _, ins) in items.iter_mut() {
            for_each_operand(&mut ins.kernel, &mut |o| *o = fwd[*o as usize]);
        }

        // Pass 2 — compare/select fusion: a single-use unsigned compare
        // whose only reader is a mux selector folds into the mux.
        let mut uses = vec![0u32; nl.nets.len()];
        let mut producer = vec![usize::MAX; nl.nets.len()];
        for (idx, (_, net, ins)) in items.iter_mut().enumerate() {
            if dead[idx] {
                continue;
            }
            producer[net.0 as usize] = idx;
            for_each_operand(&mut ins.kernel, &mut |o| {
                uses[off2net[*o as usize] as usize] += 1;
            });
        }
        for idx in 0..items.len() {
            let (s, t, e) = match items[idx].2.kernel {
                Kernel::Mux { s, t, e } => (s, t, e),
                _ => continue,
            };
            let sn = off2net[s as usize] as usize;
            if pinned[sn] || wide_read[sn] || uses[sn] != 1 {
                continue;
            }
            let pidx = producer[sn];
            // A compare's mask keeps bit 0, so its 0/1 result is exact.
            if pidx == usize::MAX || items[pidx].2.mask & 1 == 0 {
                continue;
            }
            let fused = match items[pidx].2.kernel {
                Kernel::Eq { a, b } => Kernel::MuxEq { a, b, t, e },
                Kernel::Ne { a, b } => Kernel::MuxNe { a, b, t, e },
                Kernel::LtU { a, b } => Kernel::MuxLtU { a, b, t, e },
                Kernel::LeU { a, b } => Kernel::MuxLeU { a, b, t, e },
                _ => continue,
            };
            items[idx].2.kernel = fused;
            dead[pidx] = true;
        }

        // Pass 3 — rotate fusion: a `Concat2` part produced by a
        // single-use static slice reads the sliced source directly, with
        // the shift and mask folded in. Barrel rotates (`{x[l:0],
        // x[h:l+1]}`) become one instruction instead of three.
        let fusable_slice =
            |items: &[(u32, NetId, Instr)], off: u32| -> Option<(usize, u32, u32, u64)> {
                let n = off2net[off as usize] as usize;
                if pinned[n] || wide_read[n] || uses[n] != 1 {
                    return None;
                }
                let pidx = producer[n];
                if pidx == usize::MAX {
                    return None;
                }
                match items[pidx].2.kernel {
                    Kernel::Slice { a, offset } if offset < 64 => {
                        Some((pidx, a, offset, items[pidx].2.mask))
                    }
                    _ => None,
                }
            };
        for idx in 0..items.len() {
            let (a, sa, b, sb) = match items[idx].2.kernel {
                Kernel::Concat2 { a, sa, b, sb } => (a, sa, b, sb),
                _ => continue,
            };
            let fa = fusable_slice(&items, a);
            let fb = fusable_slice(&items, b);
            if fa.is_none() && fb.is_none() {
                continue;
            }
            let (a, ra, ma) = match fa {
                Some((p, src, shr, m)) => {
                    dead[p] = true;
                    (src, shr, m)
                }
                None => (a, 0, u64::MAX),
            };
            let (b, rb, mb) = match fb {
                Some((p, src, shr, m)) => {
                    dead[p] = true;
                    (src, shr, m)
                }
                None => (b, 0, u64::MAX),
            };
            items[idx].2.kernel = Kernel::Rot {
                a,
                ra,
                ma,
                sa,
                b,
                rb,
                mb,
                sb,
            };
        }

        // Pass 4 — small-domain cone evaluation: an instruction whose
        // transitive support is constants plus at most one narrow root
        // net (a state register, a round counter) is a pure function of
        // that root, so it is evaluated over the root's entire domain at
        // compile time. A `case` over literals — the ROM/round-constant
        // idiom — collapses to one table probe regardless of how
        // lowering shaped the select network, and fully constant cones
        // fold to `ConstK`. Interior nodes die in the DCE pass below.
        const MAX_IDX_BITS: u32 = 8;
        #[derive(Clone)]
        enum NVal {
            /// Not a function of a single small root.
            Opaque,
            /// Constant, already masked to the net width.
            Const(u64),
            /// `table[root]`, where `root` is a slot base offset and the
            /// table spans the root's full domain, values post-mask.
            Dep { root: u32, table: Box<[u64]> },
        }
        let mut vals: Vec<NVal> = vec![NVal::Opaque; nl.nets.len()];
        for (n, net) in nl.nets.iter().enumerate() {
            // A pinned constant stays opaque: `set_by_name` may overwrite
            // the slot of any named net, and folding would hide that.
            if pinned[n] || net.width > 64 {
                continue;
            }
            if let Def::Const(c) = &net.def {
                vals[n] = NVal::Const(c.resize(net.width).to_u64());
            }
        }
        let mut ops: Vec<u32> = Vec::new();
        for idx in 0..items.len() {
            if dead[idx]
                || matches!(
                    items[idx].2.kernel,
                    Kernel::MemRead { .. } | Kernel::Wide { .. } | Kernel::WideMemRead { .. }
                )
            {
                continue;
            }
            ops.clear();
            for_each_operand(&mut items[idx].2.kernel, &mut |o| ops.push(*o));
            // Classify the operands. Items arrive in topological order,
            // so each operand's own `NVal` is already final.
            let mut root: Option<u32> = None;
            let mut deps = 0usize;
            let mut ok = true;
            for &o in &ops {
                let on = off2net.get(o as usize).copied().unwrap_or(u32::MAX);
                if on == u32::MAX {
                    ok = false;
                    break;
                }
                let candidate = match &vals[on as usize] {
                    NVal::Const(_) => continue,
                    NVal::Dep { root, .. } => {
                        deps += 1;
                        *root
                    }
                    NVal::Opaque => {
                        let s = slots[on as usize];
                        if s.words != 1 || s.width == 0 || s.width > MAX_IDX_BITS || o != s.off {
                            ok = false;
                            break;
                        }
                        o
                    }
                };
                match root {
                    None => root = Some(candidate),
                    Some(r) if r == candidate => {}
                    Some(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            let net = items[idx].1 .0 as usize;
            let mask = items[idx].2.mask;
            let Some(ro) = root else {
                // Every operand is constant: fold the whole instruction.
                let v = kernel_apply(&items[idx].2.kernel, |off| {
                    match &vals[off2net[off as usize] as usize] {
                        NVal::Const(c) => *c,
                        _ => unreachable!("classified constant"),
                    }
                })
                .expect("stateful kernels filtered above")
                    & mask;
                items[idx].2.kernel = Kernel::ConstK { v };
                vals[net] = NVal::Const(v);
                continue;
            };
            let rw = slots[off2net[ro as usize] as usize].width;
            let mut table = Vec::with_capacity(1usize << rw);
            for v in 0..(1u64 << rw) {
                let out = kernel_apply(&items[idx].2.kernel, |off| {
                    if off == ro {
                        return v;
                    }
                    match &vals[off2net[off as usize] as usize] {
                        NVal::Const(c) => *c,
                        NVal::Dep { table, .. } => table[v as usize],
                        NVal::Opaque => unreachable!("classified const or root"),
                    }
                })
                .expect("stateful kernels filtered above");
                table.push(out & mask);
            }
            let table = table.into_boxed_slice();
            // Only rewrite when the probe collapses interior nodes; a
            // depth-1 cone (root and constants read directly) is already
            // one instruction. The `NVal` still propagates either way.
            if deps > 0 {
                items[idx].2.kernel = Kernel::Lookup {
                    idx: ro,
                    table: table.clone(),
                    default: 0,
                };
            }
            vals[net] = NVal::Dep { root: ro, table };
        }

        // Pass 5 — dead code elimination: recompute use counts from the
        // rewritten kernels (the passes above reroute reads) and drop
        // unpinned instructions nothing reads, to a fixpoint so whole
        // flattened cones disappear at once.
        let mut uses = vec![0u32; nl.nets.len()];
        for (idx, (_, _, ins)) in items.iter_mut().enumerate() {
            if dead[idx] {
                continue;
            }
            if let Kernel::Wide { inputs, .. } = &ins.kernel {
                for n in inputs.iter() {
                    uses[n.0 as usize] += 1;
                }
            }
            for_each_operand(&mut ins.kernel, &mut |o| {
                let n = off2net[*o as usize];
                if n != u32::MAX {
                    uses[n as usize] += 1;
                }
            });
        }
        let mut changed = true;
        while changed {
            changed = false;
            for idx in 0..items.len() {
                if dead[idx] {
                    continue;
                }
                let n = items[idx].1 .0 as usize;
                if pinned[n] || uses[n] > 0 {
                    continue;
                }
                dead[idx] = true;
                changed = true;
                if let Kernel::Wide { inputs, .. } = &items[idx].2.kernel {
                    for m in inputs.iter() {
                        uses[m.0 as usize] -= 1;
                    }
                }
                for_each_operand(&mut items[idx].2.kernel, &mut |o| {
                    let m = off2net[*o as usize];
                    if m != u32::MAX {
                        uses[m as usize] -= 1;
                    }
                });
            }
        }
        let mut items: Vec<(u32, NetId, Instr)> = items
            .into_iter()
            .zip(dead)
            .filter_map(|(item, d)| (!d).then_some(item))
            .collect();

        // Instructions within a level are independent, so group them by
        // kernel kind: the interpreter's dispatch branch then sees runs of
        // the same opcode and predicts well.
        items.sort_by_key(|(l, _, ins)| (*l, kernel_rank(&ins.kernel)));
        let level: Vec<u32> = items.iter().map(|&(l, _, _)| l).collect();

        // Contiguous instruction range of each level (the sort above makes
        // levels runs); the parallel splitter chunks these directly.
        let mut level_ranges: Vec<(u32, u32)> = vec![(u32::MAX, 0); num_levels as usize];
        for (i, &l) in level.iter().enumerate() {
            let r = &mut level_ranges[l as usize];
            if r.0 == u32::MAX {
                r.0 = i as u32;
            }
            r.1 = i as u32 + 1;
        }
        for r in &mut level_ranges {
            if r.0 == u32::MAX {
                *r = (0, 0);
            }
        }

        // Fan-out: net -> consuming instructions, memory -> readers.
        // Built from kernel operands rather than netlist cell inputs: the
        // passes above reroute reads, and sparse invalidation must follow
        // the reads the interpreter actually performs.
        let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); nl.nets.len()];
        let mut mem_fanout: Vec<Vec<u32>> = vec![Vec::new(); nl.mems.len()];
        for (i, (_, _, ins)) in items.iter_mut().enumerate() {
            if let Kernel::Wide { inputs, .. } = &ins.kernel {
                for n in inputs.iter() {
                    let f = &mut fanout[n.0 as usize];
                    if f.last() != Some(&(i as u32)) {
                        f.push(i as u32);
                    }
                }
            }
            if let Kernel::MemRead { mem, .. } | Kernel::WideMemRead { mem, .. } = ins.kernel {
                mem_fanout[mem as usize].push(i as u32);
            }
            for_each_operand(&mut ins.kernel, &mut |o| {
                let f = &mut fanout[off2net[*o as usize] as usize];
                if f.last() != Some(&(i as u32)) {
                    f.push(i as u32);
                }
            });
        }
        let instrs: Vec<Instr> = items.into_iter().map(|(_, _, ins)| ins).collect();

        // Per-domain sequential plans.
        let mut domains: Vec<DomainPlan> = (0..nl.clocks.len().max(1))
            .map(|_| DomainPlan::default())
            .collect();
        for reg in &nl.regs {
            let plan = &mut domains[reg.clock.0 as usize];
            let d = slots[reg.d.0 as usize];
            let q = slots[reg.q.0 as usize];
            let commit = RegCommit {
                d,
                q,
                q_net: reg.q.0,
                scratch: plan.scratch_words,
            };
            plan.scratch_words += d.words;
            if d.words == 1 && q.words == 1 {
                plan.small.push(commit);
            } else {
                plan.regs.push(commit);
            }
        }
        for (mi, mem) in nl.mems.iter().enumerate() {
            for port in &mem.write_ports {
                domains[port.clock.0 as usize].ports.push(PortCommit {
                    mem: mi as u32,
                    enable: slots[port.enable.0 as usize],
                    addr: slots[port.addr.0 as usize].off,
                    data: slots[port.data.0 as usize],
                });
            }
        }
        for (ti, task) in nl.tasks.iter().enumerate() {
            domains[task.clock.0 as usize].tasks.push(ti as u32);
        }

        Ok(Program {
            slots,
            instrs,
            level,
            level_ranges,
            num_levels,
            fanout: fanout.into_iter().map(Vec::into_boxed_slice).collect(),
            mem_fanout: mem_fanout.into_iter().map(Vec::into_boxed_slice).collect(),
            mems,
            domains,
            arena_words,
            mem_arena_words: moff,
            wide_instrs,
        })
    }

    /// Instruction counts by kernel kind (diagnostic).
    pub fn kernel_histogram(&self) -> Vec<(&'static str, usize)> {
        let mut map: std::collections::BTreeMap<&'static str, usize> = Default::default();
        for ins in self.instrs.iter() {
            *map.entry(kernel_name(&ins.kernel)).or_default() += 1;
        }
        let mut v: Vec<_> = map.into_iter().collect();
        v.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        v
    }

    /// Summary counters.
    pub fn stats(&self) -> ProgramStats {
        ProgramStats {
            instrs: self.instrs.len() as u32,
            wide_instrs: self.wide_instrs,
            arena_words: self.arena_words,
            mem_arena_words: self.mem_arena_words,
            levels: self.num_levels,
        }
    }
}

/// Stable mnemonic for a kernel kind (histograms, profiling).
pub(crate) fn kernel_name(k: &Kernel) -> &'static str {
    use Kernel as K;
    match k {
        K::And { .. } => "And",
        K::Or { .. } => "Or",
        K::Xor { .. } => "Xor",
        K::Xnor { .. } => "Xnor",
        K::Not { .. } => "Not",
        K::Add { .. } => "Add",
        K::Sub { .. } => "Sub",
        K::Neg { .. } => "Neg",
        K::Mul { .. } => "Mul",
        K::Concat2 { .. } => "Concat2",
        K::Rot { .. } => "Rot",
        K::Lookup { .. } => "Lookup",
        K::ConstK { .. } => "ConstK",
        K::Concat { .. } => "Concat",
        K::Slice { .. } => "Slice",
        K::ZExt { .. } => "ZExt",
        K::SExt { .. } => "SExt",
        K::Repeat { .. } => "Repeat",
        K::Mux { .. } => "Mux",
        K::MuxEq { .. } => "MuxEq",
        K::MuxNe { .. } => "MuxNe",
        K::MuxLtU { .. } => "MuxLtU",
        K::MuxLeU { .. } => "MuxLeU",
        K::Eq { .. } => "Eq",
        K::Ne { .. } => "Ne",
        K::LtU { .. } => "LtU",
        K::LeU { .. } => "LeU",
        K::LtS { .. } => "LtS",
        K::LeS { .. } => "LeS",
        K::Shl { .. } => "Shl",
        K::Shr { .. } => "Shr",
        K::AShr { .. } => "AShr",
        K::DynSlice { .. } => "DynSlice",
        K::RedAnd { .. } => "RedAnd",
        K::RedOr { .. } => "RedOr",
        K::RedXor { .. } => "RedXor",
        K::LogNot { .. } => "LogNot",
        K::DivU { .. } => "DivU",
        K::RemU { .. } => "RemU",
        K::DivS { .. } => "DivS",
        K::RemS { .. } => "RemS",
        K::MemRead { .. } => "MemRead",
        K::Wide { .. } => "Wide",
        K::WideMemRead { .. } => "WideMemRead",
    }
}

/// Calls `f` on every single-word operand of a kernel. Operands are slot
/// base offsets, so the peephole passes can rewrite or attribute them;
/// `Wide` inputs are net ids at source widths and are not visited.
fn for_each_operand(k: &mut Kernel, f: &mut impl FnMut(&mut u32)) {
    use Kernel as K;
    match k {
        K::Not { a }
        | K::Neg { a }
        | K::RedAnd { a, .. }
        | K::RedOr { a }
        | K::RedXor { a }
        | K::LogNot { a }
        | K::Slice { a, .. }
        | K::ZExt { a }
        | K::SExt { a, .. }
        | K::Repeat { a, .. } => f(a),
        K::Add { a, b }
        | K::Sub { a, b }
        | K::Mul { a, b }
        | K::DivU { a, b }
        | K::RemU { a, b }
        | K::DivS { a, b, .. }
        | K::RemS { a, b, .. }
        | K::And { a, b }
        | K::Or { a, b }
        | K::Xor { a, b }
        | K::Xnor { a, b }
        | K::Shl { a, b, .. }
        | K::Shr { a, b, .. }
        | K::AShr { a, b, .. }
        | K::Eq { a, b }
        | K::Ne { a, b }
        | K::LtU { a, b }
        | K::LeU { a, b }
        | K::LtS { a, b, .. }
        | K::LeS { a, b, .. }
        | K::DynSlice { a, b }
        | K::Concat2 { a, b, .. }
        | K::Rot { a, b, .. } => {
            f(a);
            f(b);
        }
        K::Mux { s, t, e } => {
            f(s);
            f(t);
            f(e);
        }
        K::MuxEq { a, b, t, e }
        | K::MuxNe { a, b, t, e }
        | K::MuxLtU { a, b, t, e }
        | K::MuxLeU { a, b, t, e } => {
            f(a);
            f(b);
            f(t);
            f(e);
        }
        K::Concat { parts } => {
            for (o, _) in parts.iter_mut() {
                f(o);
            }
        }
        K::MemRead { addr, .. } | K::WideMemRead { addr, .. } => f(addr),
        K::Lookup { idx, .. } => f(idx),
        K::ConstK { .. } | K::Wide { .. } => {}
    }
}

/// Evaluates a stateless single-word kernel over operand words supplied
/// by `r` (arena offset → value). Returns `None` for the kernels that
/// reach beyond the word arena (`Wide`, memory reads), which the
/// interpreter handles out of line. This single definition serves both
/// the per-cycle dispatch loop and compile-time cone evaluation.
#[inline(always)]
fn kernel_apply(k: &Kernel, r: impl Fn(u32) -> u64) -> Option<u64> {
    use Kernel as K;
    Some(match k {
        K::Not { a } => !r(*a),
        K::Neg { a } => r(*a).wrapping_neg(),
        K::RedAnd { a, full } => (r(*a) == *full) as u64,
        K::RedOr { a } => (r(*a) != 0) as u64,
        K::RedXor { a } => (r(*a).count_ones() & 1) as u64,
        K::LogNot { a } => (r(*a) == 0) as u64,
        K::Add { a, b } => r(*a).wrapping_add(r(*b)),
        K::Sub { a, b } => r(*a).wrapping_sub(r(*b)),
        K::Mul { a, b } => r(*a).wrapping_mul(r(*b)),
        // Division by zero yields all-ones, the two-state stand-in for `x`.
        K::DivU { a, b } => r(*a).checked_div(r(*b)).unwrap_or(u64::MAX),
        K::RemU { a, b } => r(*a).checked_rem(r(*b)).unwrap_or(u64::MAX),
        K::DivS { a, b, aw, bw } => {
            let d = r(*b);
            if d == 0 {
                u64::MAX
            } else {
                sext(r(*a), *aw).wrapping_div(sext(d, *bw)) as u64
            }
        }
        K::RemS { a, b, aw, bw } => {
            let d = r(*b);
            if d == 0 {
                u64::MAX
            } else {
                sext(r(*a), *aw).wrapping_rem(sext(d, *bw)) as u64
            }
        }
        K::And { a, b } => r(*a) & r(*b),
        K::Or { a, b } => r(*a) | r(*b),
        K::Xor { a, b } => r(*a) ^ r(*b),
        K::Xnor { a, b } => !(r(*a) ^ r(*b)),
        K::Shl { a, b, aw } => {
            let sh = r(*b);
            if sh >= *aw as u64 {
                0
            } else {
                r(*a) << sh
            }
        }
        K::Shr { a, b, aw } => {
            let sh = r(*b);
            if sh >= *aw as u64 {
                0
            } else {
                r(*a) >> sh
            }
        }
        K::AShr { a, b, aw } => {
            if *aw == 0 {
                0
            } else {
                let sh = r(*b).min(63) as u32;
                (sext(r(*a), *aw) >> sh) as u64
            }
        }
        K::Eq { a, b } => (r(*a) == r(*b)) as u64,
        K::Ne { a, b } => (r(*a) != r(*b)) as u64,
        K::LtU { a, b } => (r(*a) < r(*b)) as u64,
        K::LeU { a, b } => (r(*a) <= r(*b)) as u64,
        K::LtS { a, b, aw, bw } => (sext(r(*a), *aw) < sext(r(*b), *bw)) as u64,
        K::LeS { a, b, aw, bw } => (sext(r(*a), *aw) <= sext(r(*b), *bw)) as u64,
        K::Mux { s, t, e } => {
            if r(*s) != 0 {
                r(*t)
            } else {
                r(*e)
            }
        }
        K::MuxEq { a, b, t, e } => {
            if r(*a) == r(*b) {
                r(*t)
            } else {
                r(*e)
            }
        }
        K::MuxNe { a, b, t, e } => {
            if r(*a) != r(*b) {
                r(*t)
            } else {
                r(*e)
            }
        }
        K::MuxLtU { a, b, t, e } => {
            if r(*a) < r(*b) {
                r(*t)
            } else {
                r(*e)
            }
        }
        K::MuxLeU { a, b, t, e } => {
            if r(*a) <= r(*b) {
                r(*t)
            } else {
                r(*e)
            }
        }
        K::Concat2 { a, sa, b, sb } => (r(*a) << sa) | (r(*b) << sb),
        K::Rot {
            a,
            ra,
            ma,
            sa,
            b,
            rb,
            mb,
            sb,
        } => (((r(*a) >> ra) & ma) << sa) | (((r(*b) >> rb) & mb) << sb),
        K::Lookup {
            idx,
            table,
            default,
        } => table.get(r(*idx) as usize).copied().unwrap_or(*default),
        K::ConstK { v } => *v,
        K::Concat { parts } => {
            let mut acc = 0u64;
            for &(off, shift) in parts.iter() {
                acc |= r(off) << shift;
            }
            acc
        }
        K::Slice { a, offset } => {
            if *offset >= 64 {
                0
            } else {
                r(*a) >> offset
            }
        }
        K::DynSlice { a, b } => {
            let sh = r(*b);
            if sh >= 64 {
                0
            } else {
                r(*a) >> sh
            }
        }
        K::ZExt { a } => r(*a),
        K::SExt { a, aw, fill } => {
            let v = r(*a);
            if *aw > 0 && (v >> (aw - 1)) & 1 == 1 {
                v | fill
            } else {
                v
            }
        }
        K::Repeat { a, factor } => r(*a).wrapping_mul(*factor),
        K::MemRead { .. } | K::Wide { .. } | K::WideMemRead { .. } => return None,
    })
}

/// Dispatch-order rank for grouping same-kind kernels within a level.
fn kernel_rank(k: &Kernel) -> u8 {
    use Kernel as K;
    match k {
        K::And { .. } => 0,
        K::Or { .. } => 1,
        K::Xor { .. } => 2,
        K::Xnor { .. } => 3,
        K::Not { .. } => 4,
        K::Add { .. } => 5,
        K::Sub { .. } => 6,
        K::Neg { .. } => 7,
        K::Mul { .. } => 8,
        K::Concat2 { .. } => 9,
        K::Rot { .. } => 41,
        K::Lookup { .. } => 42,
        K::ConstK { .. } => 43,
        K::Concat { .. } => 10,
        K::Slice { .. } => 11,
        K::ZExt { .. } => 12,
        K::SExt { .. } => 13,
        K::Repeat { .. } => 14,
        K::Mux { .. } => 15,
        K::MuxEq { .. } => 37,
        K::MuxNe { .. } => 38,
        K::MuxLtU { .. } => 39,
        K::MuxLeU { .. } => 40,
        K::Eq { .. } => 16,
        K::Ne { .. } => 17,
        K::LtU { .. } => 18,
        K::LeU { .. } => 19,
        K::LtS { .. } => 20,
        K::LeS { .. } => 21,
        K::Shl { .. } => 22,
        K::Shr { .. } => 23,
        K::AShr { .. } => 24,
        K::DynSlice { .. } => 25,
        K::RedAnd { .. } => 26,
        K::RedOr { .. } => 27,
        K::RedXor { .. } => 28,
        K::LogNot { .. } => 29,
        K::DivU { .. } => 30,
        K::RemU { .. } => 31,
        K::DivS { .. } => 32,
        K::RemS { .. } => 33,
        K::MemRead { .. } => 34,
        K::Wide { .. } => 35,
        K::WideMemRead { .. } => 36,
    }
}

/// Compiles one combinational net into an instruction.
fn compile_net(nl: &Netlist, slots: &[Slot], mems: &[MemLayout], net: NetId) -> Instr {
    let out_slot = slots[net.0 as usize];
    let width = out_slot.width;
    let outmask = wmask(width);
    let out = net.0;
    match &nl.nets[net.0 as usize].def {
        Def::MemRead { mem, addr } => {
            let addr_off = slots[addr.0 as usize].off;
            let m = mems[mem.0 as usize];
            let kernel = if m.width <= 64 && width <= 64 {
                Kernel::MemRead {
                    mem: mem.0,
                    addr: addr_off,
                }
            } else {
                Kernel::WideMemRead {
                    mem: mem.0,
                    addr: addr_off,
                }
            };
            Instr {
                dst: out_slot.off,
                mask: outmask,
                out,
                kernel,
            }
        }
        Def::Cell(cell) => {
            let ins = &cell.inputs;
            let slot = |i: usize| slots[ins[i].0 as usize];
            let o = |i: usize| slot(i).off;
            let w = |i: usize| slot(i).width;
            let all_small = width <= 64 && ins.iter().all(|i| slots[i.0 as usize].width <= 64);
            let wide = || Instr {
                dst: out_slot.off,
                mask: outmask,
                out,
                kernel: Kernel::Wide {
                    op: cell.op,
                    inputs: ins.clone().into_boxed_slice(),
                },
            };
            if !all_small {
                return wide();
            }
            use CellOp as C;
            // `mask` folds the operation-width wrap and the output resize
            // into one AND; kernels that need a different combination set
            // it explicitly.
            let binop_mask = |i: usize, j: usize| wmask(w(i).max(w(j))) & outmask;
            let (kernel, mask) = match cell.op {
                C::Not => (Kernel::Not { a: o(0) }, wmask(w(0)) & outmask),
                C::Neg => (Kernel::Neg { a: o(0) }, wmask(w(0)) & outmask),
                C::RedAnd => (
                    Kernel::RedAnd {
                        a: o(0),
                        full: wmask(w(0)),
                    },
                    outmask,
                ),
                C::RedOr => (Kernel::RedOr { a: o(0) }, outmask),
                C::RedXor => (Kernel::RedXor { a: o(0) }, outmask),
                C::LogNot => (Kernel::LogNot { a: o(0) }, outmask),
                C::Add => (Kernel::Add { a: o(0), b: o(1) }, binop_mask(0, 1)),
                C::Sub => (Kernel::Sub { a: o(0), b: o(1) }, binop_mask(0, 1)),
                C::Mul => (Kernel::Mul { a: o(0), b: o(1) }, binop_mask(0, 1)),
                C::DivU => (Kernel::DivU { a: o(0), b: o(1) }, binop_mask(0, 1)),
                C::RemU => (Kernel::RemU { a: o(0), b: o(1) }, binop_mask(0, 1)),
                C::DivS => (
                    Kernel::DivS {
                        a: o(0),
                        b: o(1),
                        aw: w(0),
                        bw: w(1),
                    },
                    binop_mask(0, 1),
                ),
                C::RemS => (
                    Kernel::RemS {
                        a: o(0),
                        b: o(1),
                        aw: w(0),
                        bw: w(1),
                    },
                    binop_mask(0, 1),
                ),
                C::And => (Kernel::And { a: o(0), b: o(1) }, binop_mask(0, 1)),
                C::Or => (Kernel::Or { a: o(0), b: o(1) }, binop_mask(0, 1)),
                C::Xor => (Kernel::Xor { a: o(0), b: o(1) }, binop_mask(0, 1)),
                C::Xnor => (Kernel::Xnor { a: o(0), b: o(1) }, binop_mask(0, 1)),
                C::Shl => (
                    Kernel::Shl {
                        a: o(0),
                        b: o(1),
                        aw: w(0),
                    },
                    wmask(w(0)) & outmask,
                ),
                C::Shr => (
                    Kernel::Shr {
                        a: o(0),
                        b: o(1),
                        aw: w(0),
                    },
                    outmask,
                ),
                C::AShr => (
                    Kernel::AShr {
                        a: o(0),
                        b: o(1),
                        aw: w(0),
                    },
                    wmask(w(0)) & outmask,
                ),
                C::Eq => (Kernel::Eq { a: o(0), b: o(1) }, outmask),
                C::Ne => (Kernel::Ne { a: o(0), b: o(1) }, outmask),
                C::LtU => (Kernel::LtU { a: o(0), b: o(1) }, outmask),
                C::LeU => (Kernel::LeU { a: o(0), b: o(1) }, outmask),
                C::LtS => (
                    Kernel::LtS {
                        a: o(0),
                        b: o(1),
                        aw: w(0),
                        bw: w(1),
                    },
                    outmask,
                ),
                C::LeS => (
                    Kernel::LeS {
                        a: o(0),
                        b: o(1),
                        aw: w(0),
                        bw: w(1),
                    },
                    outmask,
                ),
                C::Mux => (
                    Kernel::Mux {
                        s: o(0),
                        t: o(1),
                        e: o(2),
                    },
                    outmask,
                ),
                C::Concat => {
                    let total: u32 = ins.iter().map(|i| slots[i.0 as usize].width).sum();
                    if total > 64 {
                        return wide();
                    }
                    // Inputs are MSB-first; compute each part's LSB offset.
                    let mut shift = total;
                    let mut parts = Vec::with_capacity(ins.len());
                    for i in 0..ins.len() {
                        let pw = w(i);
                        shift -= pw;
                        if pw > 0 {
                            parts.push((o(i), shift));
                        }
                    }
                    if let [(a, sa), (b, sb)] = parts[..] {
                        (Kernel::Concat2 { a, sa, b, sb }, outmask)
                    } else {
                        (
                            Kernel::Concat {
                                parts: parts.into_boxed_slice(),
                            },
                            outmask,
                        )
                    }
                }
                C::Slice { offset } => (Kernel::Slice { a: o(0), offset }, outmask),
                C::DynSlice => (Kernel::DynSlice { a: o(0), b: o(1) }, outmask),
                C::ZExt => (Kernel::ZExt { a: o(0) }, outmask),
                C::SExt => {
                    let aw = w(0);
                    let fill = outmask & !wmask(aw);
                    (Kernel::SExt { a: o(0), aw, fill }, outmask)
                }
                C::Repeat { count } => {
                    let aw = w(0);
                    if aw as u64 * count as u64 > 64 {
                        return wide();
                    }
                    let mut factor = 0u64;
                    for i in 0..count {
                        if aw == 0 {
                            break;
                        }
                        factor |= 1u64 << (i * aw);
                    }
                    (Kernel::Repeat { a: o(0), factor }, outmask)
                }
            };
            Instr {
                dst: out_slot.off,
                mask,
                out,
                kernel,
            }
        }
        _ => unreachable!("only cells and memory reads are compiled"),
    }
}

impl State {
    /// Fresh state: constants and register initial values written, all
    /// instructions queued for the first settle.
    pub fn new(nl: &Netlist, prog: &Program) -> State {
        let mut st = State {
            arena: vec![0u64; prog.arena_words as usize],
            mem_arena: vec![0u64; prog.mem_arena_words as usize],
            queues: (0..prog.num_levels).map(|_| Vec::new()).collect(),
            queued: vec![false; prog.instrs.len()],
            scratch: vec![
                0u64;
                prog.domains
                    .iter()
                    .map(|d| d.scratch_words)
                    .max()
                    .unwrap_or(0) as usize
            ],
            profile: None,
            par: None,
        };
        for (i, net) in nl.nets.iter().enumerate() {
            match &net.def {
                Def::Const(c) => {
                    st.write_slot(prog.slots[i], &c.resize(net.width));
                }
                Def::Reg(r) => {
                    st.write_slot(prog.slots[i], &nl.regs[r.0 as usize].init.resize(net.width));
                }
                _ => {}
            }
        }
        st.mark_all(prog);
        st.settle(prog);
        st
    }

    /// Queues every instruction (full re-evaluation).
    pub fn mark_all(&mut self, prog: &Program) {
        for i in 0..prog.instrs.len() as u32 {
            if !self.queued[i as usize] {
                self.queued[i as usize] = true;
                self.queues[prog.level[i as usize] as usize].push(i);
            }
        }
    }

    /// Queues the consumers of one net.
    #[inline]
    pub fn mark(&mut self, prog: &Program, net: u32) {
        for &i in prog.fanout[net as usize].iter() {
            if !self.queued[i as usize] {
                self.queued[i as usize] = true;
                self.queues[prog.level[i as usize] as usize].push(i);
            }
        }
    }

    /// Queues every reader of a memory.
    fn mark_mem(&mut self, prog: &Program, mem: u32) {
        for &i in prog.mem_fanout[mem as usize].iter() {
            if !self.queued[i as usize] {
                self.queued[i as usize] = true;
                self.queues[prog.level[i as usize] as usize].push(i);
            }
        }
    }

    /// Drains the dirty worklists level by level. An instruction's
    /// consumers sit at strictly higher levels, so one ascending pass
    /// reaches a fixed point.
    pub fn settle(&mut self, prog: &Program) {
        if self.profile.is_some() {
            return self.settle_profiled(prog);
        }
        for lvl in 0..self.queues.len() {
            if self.queues[lvl].is_empty() {
                continue;
            }
            let mut q = std::mem::take(&mut self.queues[lvl]);
            for &i in &q {
                self.queued[i as usize] = false;
                self.exec(prog, i, true);
            }
            q.clear();
            // Reuse the buffer; consumers were queued at higher levels only.
            debug_assert!(self.queues[lvl].is_empty());
            self.queues[lvl] = q;
        }
    }

    /// [`settle`](State::settle) with activity accounting: the same
    /// drain, plus per-level and per-instruction execution counts.
    fn settle_profiled(&mut self, prog: &Program) {
        for lvl in 0..self.queues.len() {
            if self.queues[lvl].is_empty() {
                continue;
            }
            let mut q = std::mem::take(&mut self.queues[lvl]);
            if let Some(p) = &mut self.profile {
                p.level_execs[lvl] += q.len() as u64;
                for &i in &q {
                    p.instr_execs[i as usize] += 1;
                    p.instr_tracked[i as usize] += 1;
                }
            }
            for &i in &q {
                self.queued[i as usize] = false;
                let changed = self.exec(prog, i, true);
                if let Some(p) = &mut self.profile {
                    p.instr_changes[i as usize] += changed as u64;
                }
            }
            q.clear();
            debug_assert!(self.queues[lvl].is_empty());
            self.queues[lvl] = q;
        }
        if let Some(p) = &mut self.profile {
            p.settles += 1;
        }
    }

    /// Switches on activity profiling (idempotent). Enabled profiling
    /// costs one counter bump per executed instruction; disabled, one
    /// branch per settle call.
    pub fn enable_profiling(&mut self, prog: &Program) {
        if self.profile.is_none() {
            self.profile = Some(Box::new(NlProfileState {
                level_execs: vec![0; prog.num_levels as usize],
                instr_execs: vec![0; prog.instrs.len()],
                level_par_execs: vec![0; prog.num_levels as usize],
                instr_changes: vec![0; prog.instrs.len()],
                instr_tracked: vec![0; prog.instrs.len()],
                settles: 0,
                lanes: 1,
            }));
        }
    }

    /// The collected activity counters, if profiling is enabled.
    pub fn profile(&self) -> Option<&NlProfileState> {
        self.profile.as_deref()
    }

    /// Attaches (or detaches, with `None`) a worker pool for dense
    /// settles. The split policy is derived per level from the program
    /// and refined from the activity histograms while profiling is on.
    pub fn set_pool(&mut self, prog: &Program, pool: Option<Arc<EvalPool>>) {
        self.par = pool.map(|p| ParCtl::new(prog, p, 1));
    }

    /// Total participating threads (1 when no pool is attached).
    pub fn pool_threads(&self) -> u32 {
        self.par.as_ref().map_or(1, |c| c.pool.threads() as u32)
    }

    /// Recomputes every instruction in topological order with no dirty
    /// bookkeeping — the straight-line schedule. Faster than [`settle`]
    /// when most of the netlist is active (change-compare, fan-out marking,
    /// and queue churn cost more than blind recomputation saves).
    ///
    /// [`settle`]: State::settle
    pub fn settle_dense(&mut self, prog: &Program) {
        if let Some(p) = &mut self.profile {
            // The dense schedule executes every instruction exactly once.
            for (i, lvl) in prog.level.iter().enumerate() {
                p.instr_execs[i] += 1;
                p.level_execs[*lvl as usize] += 1;
            }
            p.settles += 1;
        }
        for q in &mut self.queues {
            for &i in q.iter() {
                self.queued[i as usize] = false;
            }
            q.clear();
        }
        let use_pool = match &mut self.par {
            Some(ctl) => {
                ctl.tick(prog, self.profile.as_deref());
                ctl.any_par
            }
            None => false,
        };
        if use_pool {
            let ctl = self.par.as_ref().expect("checked above");
            if let Some(p) = &mut self.profile {
                for (l, &(start, end)) in prog.level_ranges.iter().enumerate() {
                    if ctl.par_level[l] {
                        p.level_par_execs[l] += (end - start) as u64;
                    }
                }
            }
            ctl.pool
                .run(prog, &mut self.arena, &self.mem_arena, 1, &ctl.par_level);
        } else {
            for i in 0..prog.instrs.len() as u32 {
                self.exec(prog, i, false);
            }
        }
    }

    /// [`settle`] or [`settle_dense`], picked from how much of the program
    /// the pending worklists already cover: a widely-seeded wave (common
    /// after a clock edge in compute-bound designs like a PoW miner) runs
    /// straight-line; a narrow one (a quiet design absorbing one input
    /// change) propagates only its cone.
    ///
    /// [`settle`]: State::settle
    /// [`settle_dense`]: State::settle_dense
    pub fn settle_auto(&mut self, prog: &Program) {
        if self.wave_is_dense(prog) {
            self.settle_dense(prog);
        } else {
            self.settle(prog);
        }
    }

    /// Whether the pending worklists cover enough of the program that a
    /// dense pass beats draining them.
    pub fn wave_is_dense(&self, prog: &Program) -> bool {
        let seeded: usize = self.queues.iter().map(Vec::len).sum();
        seeded * 4 >= prog.instrs.len() && !prog.instrs.is_empty()
    }

    /// Reads one word of the arena.
    ///
    /// Bounds are a construction invariant, not a runtime question: every
    /// operand offset in a [`Program`] is a slot base laid out within
    /// `arena_words` at compile time, and [`State::new`] allocates the
    /// arena to exactly that size. The unchecked read keeps the per-instr
    /// dispatch loop free of bounds branches.
    #[inline]
    fn w(&self, off: u32) -> u64 {
        debug_assert!((off as usize) < self.arena.len());
        // SAFETY: see above — offsets are in-bounds by construction.
        unsafe { *self.arena.get_unchecked(off as usize) }
    }

    /// Whether a slot holds any set bit.
    #[inline]
    pub fn slot_bool(&self, slot: Slot) -> bool {
        let off = slot.off as usize;
        self.arena[off..off + slot.words as usize]
            .iter()
            .any(|&w| w != 0)
    }

    /// Materializes a slot as a [`Bits`] value.
    pub fn slot_bits(&self, slot: Slot) -> Bits {
        if slot.width <= 64 {
            Bits::from_u64(slot.width, self.arena[slot.off as usize])
        } else {
            let off = slot.off as usize;
            Bits::from_words(slot.width, &self.arena[off..off + slot.words as usize])
        }
    }

    /// Writes a value (already resized to the slot width) into a slot.
    /// Returns whether any word changed.
    pub fn write_slot(&mut self, slot: Slot, value: &Bits) -> bool {
        let off = slot.off as usize;
        let dst = &mut self.arena[off..off + slot.words as usize];
        let src = value.words();
        let mut changed = false;
        for (i, d) in dst.iter_mut().enumerate() {
            let v = src.get(i).copied().unwrap_or(0);
            changed |= *d != v;
            *d = v;
        }
        changed
    }

    /// Executes one instruction. With `mark`, the write is change-detected
    /// and consumers of a changed output are queued; without it the value
    /// is stored unconditionally (dense schedule). Returns whether the
    /// output changed (always `true` on the unmarked path, where no
    /// comparison is performed).
    fn exec(&mut self, prog: &Program, i: u32, mark: bool) -> bool {
        debug_assert!((i as usize) < prog.instrs.len());
        // SAFETY: instruction indices come from the worklists and the
        // dense loop, both bounded by `prog.instrs.len()`.
        let ins = unsafe { prog.instrs.get_unchecked(i as usize) };
        use Kernel as K;
        let v = match &ins.kernel {
            K::MemRead { mem, addr } => {
                let m = prog.mems[*mem as usize];
                let a = self.w(*addr);
                if a < m.count {
                    self.mem_arena[(m.off + a as u32 * m.words_per) as usize]
                } else {
                    0
                }
            }
            K::Wide { op, inputs } => {
                let values: Vec<Bits> = inputs
                    .iter()
                    .map(|n| self.slot_bits(prog.slots[n.0 as usize]))
                    .collect();
                let out_slot = prog.slots[ins.out as usize];
                let v = crate::eval::eval_cell(*op, &values, out_slot.width).resize(out_slot.width);
                let changed = self.write_slot(out_slot, &v);
                if changed && mark {
                    self.mark(prog, ins.out);
                }
                return changed;
            }
            K::WideMemRead { mem, addr } => {
                let m = prog.mems[*mem as usize];
                let out_slot = prog.slots[ins.out as usize];
                let a = self.w(*addr);
                let v = if a < m.count {
                    let off = (m.off + a as u32 * m.words_per) as usize;
                    Bits::from_words(m.width, &self.mem_arena[off..off + m.words_per as usize])
                } else {
                    Bits::zero(m.width)
                };
                let changed = self.write_slot(out_slot, &v.resize(out_slot.width));
                if changed && mark {
                    self.mark(prog, ins.out);
                }
                return changed;
            }
            // `None` is impossible here: the stateful kernels are all
            // matched above, and `kernel_apply` evaluates every other.
            k => kernel_apply(k, |off| self.w(off)).unwrap_or(0),
        };
        let v = v & ins.mask;
        let dst = ins.dst as usize;
        debug_assert!(dst < self.arena.len());
        // SAFETY: `dst` is a slot base offset, in-bounds by construction
        // (see [`w`]).
        unsafe {
            if mark {
                let old = *self.arena.get_unchecked(dst);
                if v != old {
                    *self.arena.get_unchecked_mut(dst) = v;
                    self.mark(prog, ins.out);
                    true
                } else {
                    false
                }
            } else {
                *self.arena.get_unchecked_mut(dst) = v;
                true
            }
        }
    }

    /// Reads one memory word as [`Bits`] (zero beyond the end).
    pub fn read_mem(&self, prog: &Program, mem: u32, addr: u64) -> Bits {
        let m = prog.mems[mem as usize];
        if addr >= m.count {
            return Bits::zero(m.width);
        }
        let off = (m.off + addr as u32 * m.words_per) as usize;
        Bits::from_words(m.width, &self.mem_arena[off..off + m.words_per as usize])
    }

    /// Writes one memory word (resized to the memory width); queues the
    /// memory's readers when the stored word changed.
    pub fn write_mem(&mut self, prog: &Program, mem: u32, addr: u64, value: &Bits) {
        self.write_mem_ex(prog, mem, addr, value, true);
    }

    fn write_mem_ex(&mut self, prog: &Program, mem: u32, addr: u64, value: &Bits, mark: bool) {
        let m = prog.mems[mem as usize];
        if addr >= m.count {
            return;
        }
        let v = value.resize(m.width);
        let off = (m.off + addr as u32 * m.words_per) as usize;
        let dst = &mut self.mem_arena[off..off + m.words_per as usize];
        let src = v.words();
        let mut changed = false;
        for (i, d) in dst.iter_mut().enumerate() {
            let w = src.get(i).copied().unwrap_or(0);
            if mark {
                changed |= *d != w;
            }
            *d = w;
        }
        if changed {
            self.mark_mem(prog, mem);
        }
    }

    /// Commits one clock domain's registers and memory writes: samples all
    /// pre-edge values, then writes them back, queueing the fan-out of
    /// every net that changed. Combinational state must be settled.
    pub fn commit_domain(&mut self, prog: &Program, domain: usize) {
        self.commit_domain_ex(prog, domain, true);
    }

    /// As [`commit_domain`], but with no change detection and no consumer
    /// marking. Only valid when the next settle is a dense (full) pass,
    /// which recomputes every instruction regardless of worklist state.
    ///
    /// [`commit_domain`]: State::commit_domain
    pub fn commit_domain_nomark(&mut self, prog: &Program, domain: usize) {
        self.commit_domain_ex(prog, domain, false);
    }

    fn commit_domain_ex(&mut self, prog: &Program, domain: usize, mark: bool) {
        let Some(plan) = prog.domains.get(domain) else {
            return;
        };
        // Phase 1: sample every register's d into the scratch window, and
        // every enabled write port's (addr, data). Registers may feed each
        // other (shift chains), so no q is written until all ds are read.
        for rc in &plan.small {
            self.scratch[rc.scratch as usize] = self.arena[rc.d.off as usize];
        }
        for rc in &plan.regs {
            let src = rc.d.off as usize;
            let dst = rc.scratch as usize;
            let words = rc.d.words as usize;
            self.scratch[dst..dst + words].copy_from_slice(&self.arena[src..src + words]);
        }
        let mut writes: Vec<(u32, u64, Bits)> = Vec::new();
        for pc in &plan.ports {
            if self.slot_bool(pc.enable) {
                let addr = self.w(pc.addr);
                let data = self.slot_bits(pc.data);
                writes.push((pc.mem, addr, data));
            }
        }
        // Phase 2: commit.
        for rc in &plan.small {
            let v = self.scratch[rc.scratch as usize] & top_word_mask(rc.q.width);
            let q = rc.q.off as usize;
            if mark {
                if self.arena[q] != v {
                    self.arena[q] = v;
                    self.mark(prog, rc.q_net);
                }
            } else {
                self.arena[q] = v;
            }
        }
        for rc in &plan.regs {
            let q_off = rc.q.off as usize;
            let q_words = rc.q.words as usize;
            let d_words = rc.d.words as usize;
            let topmask = top_word_mask(rc.q.width);
            let mut changed = false;
            for k in 0..q_words {
                let mut v = if k < d_words {
                    self.scratch[rc.scratch as usize + k]
                } else {
                    0
                };
                if k == q_words - 1 {
                    v &= topmask;
                }
                if mark {
                    changed |= self.arena[q_off + k] != v;
                }
                self.arena[q_off + k] = v;
            }
            if changed {
                self.mark(prog, rc.q_net);
            }
        }
        for (mem, addr, data) in writes {
            self.write_mem_ex(prog, mem, addr, &data, mark);
        }
    }
}

// --- Lane-group execution -------------------------------------------------
//
// The batched engine widens every arena word to a group of `lanes`
// consecutive words (lane-major: scalar word offset `o`, lane `l` lives at
// `o * lanes + l`), so one instruction dispatch evaluates `lanes`
// independent stimulus vectors. The dispatcher below matches the kernel
// once and runs a tight per-lane loop — logic ops vectorize trivially and
// the arithmetic/compare/select/Lookup loops are simple enough for the
// compiler to auto-vectorize. With `lanes == 1` this is exactly the dense
// scalar schedule, which is what the worker pool executes.

/// Per-lane unary kernel loop. Returns the number of lanes whose output
/// word changed.
///
/// # Safety
/// `arena` must hold `lanes` words per program arena word, and `dst`/`a`
/// must be in-bounds slot offsets of the same program (a construction
/// invariant, see [`State::w`]). `dst` never aliases an operand: operands
/// come from strictly lower levels.
#[inline(always)]
unsafe fn lanes1(
    arena: *mut u64,
    lanes: usize,
    dst: u32,
    mask: u64,
    a: u32,
    f: impl Fn(u64) -> u64,
) -> u32 {
    let pa = arena.add(a as usize * lanes) as *const u64;
    let pd = arena.add(dst as usize * lanes);
    let mut changed = 0u32;
    for l in 0..lanes {
        let v = f(*pa.add(l)) & mask;
        let d = pd.add(l);
        changed += (*d != v) as u32;
        *d = v;
    }
    changed
}

/// Per-lane binary kernel loop (see [`lanes1`] for the safety contract).
#[inline(always)]
unsafe fn lanes2(
    arena: *mut u64,
    lanes: usize,
    dst: u32,
    mask: u64,
    a: u32,
    b: u32,
    f: impl Fn(u64, u64) -> u64,
) -> u32 {
    let pa = arena.add(a as usize * lanes) as *const u64;
    let pb = arena.add(b as usize * lanes) as *const u64;
    let pd = arena.add(dst as usize * lanes);
    let mut changed = 0u32;
    for l in 0..lanes {
        let v = f(*pa.add(l), *pb.add(l)) & mask;
        let d = pd.add(l);
        changed += (*d != v) as u32;
        *d = v;
    }
    changed
}

/// Per-lane ternary kernel loop (see [`lanes1`] for the safety contract).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn lanes3(
    arena: *mut u64,
    lanes: usize,
    dst: u32,
    mask: u64,
    a: u32,
    b: u32,
    c: u32,
    f: impl Fn(u64, u64, u64) -> u64,
) -> u32 {
    let pa = arena.add(a as usize * lanes) as *const u64;
    let pb = arena.add(b as usize * lanes) as *const u64;
    let pc = arena.add(c as usize * lanes) as *const u64;
    let pd = arena.add(dst as usize * lanes);
    let mut changed = 0u32;
    for l in 0..lanes {
        let v = f(*pa.add(l), *pb.add(l), *pc.add(l)) & mask;
        let d = pd.add(l);
        changed += (*d != v) as u32;
        *d = v;
    }
    changed
}

/// Per-lane four-operand kernel loop (fused compare/select; see [`lanes1`]
/// for the safety contract).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn lanes4(
    arena: *mut u64,
    lanes: usize,
    dst: u32,
    mask: u64,
    a: u32,
    b: u32,
    t: u32,
    e: u32,
    f: impl Fn(u64, u64, u64, u64) -> u64,
) -> u32 {
    let pa = arena.add(a as usize * lanes) as *const u64;
    let pb = arena.add(b as usize * lanes) as *const u64;
    let pt = arena.add(t as usize * lanes) as *const u64;
    let pe = arena.add(e as usize * lanes) as *const u64;
    let pd = arena.add(dst as usize * lanes);
    let mut changed = 0u32;
    for l in 0..lanes {
        let v = f(*pa.add(l), *pb.add(l), *pt.add(l), *pe.add(l)) & mask;
        let d = pd.add(l);
        changed += (*d != v) as u32;
        *d = v;
    }
    changed
}

/// Reads one lane of a slot as [`Bits`] from a lane-major arena.
///
/// # Safety
/// `arena` must hold `lanes` words per program arena word and `slot` must
/// belong to the same program; `lane < lanes`.
pub(crate) unsafe fn slot_bits_lane(
    arena: *const u64,
    lanes: usize,
    lane: usize,
    slot: Slot,
) -> Bits {
    if slot.width <= 64 {
        Bits::from_u64(slot.width, *arena.add(slot.off as usize * lanes + lane))
    } else {
        let mut words = Vec::with_capacity(slot.words as usize);
        for k in 0..slot.words {
            words.push(*arena.add((slot.off + k) as usize * lanes + lane));
        }
        Bits::from_words(slot.width, &words)
    }
}

/// Writes one lane of a slot (value already resized to the slot width)
/// into a lane-major arena. Returns whether any word changed.
///
/// # Safety
/// As [`slot_bits_lane`], with `arena` writable.
pub(crate) unsafe fn write_slot_lane(
    arena: *mut u64,
    lanes: usize,
    lane: usize,
    slot: Slot,
    value: &Bits,
) -> bool {
    let src = value.words();
    let mut changed = false;
    for k in 0..slot.words as usize {
        let w = src.get(k).copied().unwrap_or(0);
        let p = arena.add((slot.off as usize + k) * lanes + lane);
        changed |= *p != w;
        *p = w;
    }
    changed
}

/// Executes one instruction across all lanes of a lane-major arena,
/// storing unconditionally (dense semantics). Returns the number of lanes
/// whose output changed — the batch-aware dirty signal (a consumer is
/// dirty if *any* lane changed).
///
/// # Safety
/// `arena` must hold `lanes * prog.arena_words` words and `mem` must hold
/// `lanes * prog.mem_arena_words` words, both lane-major; `i` must index
/// `prog.instrs`. The caller must guarantee exclusive access to the
/// destination slot (within a level, destinations are disjoint, so chunked
/// parallel execution of one level satisfies this).
pub(crate) unsafe fn exec_lanes(
    prog: &Program,
    arena: *mut u64,
    mem: *const u64,
    lanes: usize,
    i: u32,
) -> u32 {
    debug_assert!((i as usize) < prog.instrs.len());
    let ins = prog.instrs.get_unchecked(i as usize);
    let dst = ins.dst;
    let m = ins.mask;
    use Kernel as K;
    match &ins.kernel {
        K::Not { a } => lanes1(arena, lanes, dst, m, *a, |x| !x),
        K::Neg { a } => lanes1(arena, lanes, dst, m, *a, |x| x.wrapping_neg()),
        K::RedAnd { a, full } => {
            let full = *full;
            lanes1(arena, lanes, dst, m, *a, move |x| (x == full) as u64)
        }
        K::RedOr { a } => lanes1(arena, lanes, dst, m, *a, |x| (x != 0) as u64),
        K::RedXor { a } => lanes1(arena, lanes, dst, m, *a, |x| (x.count_ones() & 1) as u64),
        K::LogNot { a } => lanes1(arena, lanes, dst, m, *a, |x| (x == 0) as u64),
        K::Add { a, b } => lanes2(arena, lanes, dst, m, *a, *b, |x, y| x.wrapping_add(y)),
        K::Sub { a, b } => lanes2(arena, lanes, dst, m, *a, *b, |x, y| x.wrapping_sub(y)),
        K::Mul { a, b } => lanes2(arena, lanes, dst, m, *a, *b, |x, y| x.wrapping_mul(y)),
        K::DivU { a, b } => lanes2(arena, lanes, dst, m, *a, *b, |x, y| {
            x.checked_div(y).unwrap_or(u64::MAX)
        }),
        K::RemU { a, b } => lanes2(arena, lanes, dst, m, *a, *b, |x, y| {
            x.checked_rem(y).unwrap_or(u64::MAX)
        }),
        K::DivS { a, b, aw, bw } => {
            let (aw, bw) = (*aw, *bw);
            lanes2(arena, lanes, dst, m, *a, *b, move |x, y| {
                if y == 0 {
                    u64::MAX
                } else {
                    sext(x, aw).wrapping_div(sext(y, bw)) as u64
                }
            })
        }
        K::RemS { a, b, aw, bw } => {
            let (aw, bw) = (*aw, *bw);
            lanes2(arena, lanes, dst, m, *a, *b, move |x, y| {
                if y == 0 {
                    u64::MAX
                } else {
                    sext(x, aw).wrapping_rem(sext(y, bw)) as u64
                }
            })
        }
        K::And { a, b } => lanes2(arena, lanes, dst, m, *a, *b, |x, y| x & y),
        K::Or { a, b } => lanes2(arena, lanes, dst, m, *a, *b, |x, y| x | y),
        K::Xor { a, b } => lanes2(arena, lanes, dst, m, *a, *b, |x, y| x ^ y),
        K::Xnor { a, b } => lanes2(arena, lanes, dst, m, *a, *b, |x, y| !(x ^ y)),
        K::Shl { a, b, aw } => {
            let aw = *aw as u64;
            lanes2(arena, lanes, dst, m, *a, *b, move |x, y| {
                if y >= aw {
                    0
                } else {
                    x << y
                }
            })
        }
        K::Shr { a, b, aw } => {
            let aw = *aw as u64;
            lanes2(arena, lanes, dst, m, *a, *b, move |x, y| {
                if y >= aw {
                    0
                } else {
                    x >> y
                }
            })
        }
        K::AShr { a, b, aw } => {
            let aw = *aw;
            lanes2(arena, lanes, dst, m, *a, *b, move |x, y| {
                if aw == 0 {
                    0
                } else {
                    (sext(x, aw) >> y.min(63) as u32) as u64
                }
            })
        }
        K::Eq { a, b } => lanes2(arena, lanes, dst, m, *a, *b, |x, y| (x == y) as u64),
        K::Ne { a, b } => lanes2(arena, lanes, dst, m, *a, *b, |x, y| (x != y) as u64),
        K::LtU { a, b } => lanes2(arena, lanes, dst, m, *a, *b, |x, y| (x < y) as u64),
        K::LeU { a, b } => lanes2(arena, lanes, dst, m, *a, *b, |x, y| (x <= y) as u64),
        K::LtS { a, b, aw, bw } => {
            let (aw, bw) = (*aw, *bw);
            lanes2(arena, lanes, dst, m, *a, *b, move |x, y| {
                (sext(x, aw) < sext(y, bw)) as u64
            })
        }
        K::LeS { a, b, aw, bw } => {
            let (aw, bw) = (*aw, *bw);
            lanes2(arena, lanes, dst, m, *a, *b, move |x, y| {
                (sext(x, aw) <= sext(y, bw)) as u64
            })
        }
        K::Mux { s, t, e } => lanes3(
            arena,
            lanes,
            dst,
            m,
            *s,
            *t,
            *e,
            |s, t, e| {
                if s != 0 {
                    t
                } else {
                    e
                }
            },
        ),
        K::MuxEq { a, b, t, e } => lanes4(arena, lanes, dst, m, *a, *b, *t, *e, |x, y, t, e| {
            if x == y {
                t
            } else {
                e
            }
        }),
        K::MuxNe { a, b, t, e } => lanes4(arena, lanes, dst, m, *a, *b, *t, *e, |x, y, t, e| {
            if x != y {
                t
            } else {
                e
            }
        }),
        K::MuxLtU { a, b, t, e } => lanes4(arena, lanes, dst, m, *a, *b, *t, *e, |x, y, t, e| {
            if x < y {
                t
            } else {
                e
            }
        }),
        K::MuxLeU { a, b, t, e } => lanes4(arena, lanes, dst, m, *a, *b, *t, *e, |x, y, t, e| {
            if x <= y {
                t
            } else {
                e
            }
        }),
        K::Concat2 { a, sa, b, sb } => {
            let (sa, sb) = (*sa, *sb);
            lanes2(arena, lanes, dst, m, *a, *b, move |x, y| {
                (x << sa) | (y << sb)
            })
        }
        K::Rot {
            a,
            ra,
            ma,
            sa,
            b,
            rb,
            mb,
            sb,
        } => {
            let (ra, ma, sa, rb, mb, sb) = (*ra, *ma, *sa, *rb, *mb, *sb);
            lanes2(arena, lanes, dst, m, *a, *b, move |x, y| {
                (((x >> ra) & ma) << sa) | (((y >> rb) & mb) << sb)
            })
        }
        K::Lookup {
            idx,
            table,
            default,
        } => {
            let default = *default;
            lanes1(arena, lanes, dst, m, *idx, move |x| {
                table.get(x as usize).copied().unwrap_or(default)
            })
        }
        K::ConstK { v } => {
            let v = *v & m;
            let pd = arena.add(dst as usize * lanes);
            let mut changed = 0u32;
            for l in 0..lanes {
                let d = pd.add(l);
                changed += (*d != v) as u32;
                *d = v;
            }
            changed
        }
        K::Concat { parts } => {
            let pd = arena.add(dst as usize * lanes);
            let mut changed = 0u32;
            for l in 0..lanes {
                let mut acc = 0u64;
                for &(off, shift) in parts.iter() {
                    acc |= *arena.add(off as usize * lanes + l) << shift;
                }
                let v = acc & m;
                let d = pd.add(l);
                changed += (*d != v) as u32;
                *d = v;
            }
            changed
        }
        K::Slice { a, offset } => {
            let offset = *offset;
            lanes1(arena, lanes, dst, m, *a, move |x| {
                if offset >= 64 {
                    0
                } else {
                    x >> offset
                }
            })
        }
        K::DynSlice { a, b } => lanes2(arena, lanes, dst, m, *a, *b, |x, y| {
            if y >= 64 {
                0
            } else {
                x >> y
            }
        }),
        K::ZExt { a } => lanes1(arena, lanes, dst, m, *a, |x| x),
        K::SExt { a, aw, fill } => {
            let (aw, fill) = (*aw, *fill);
            lanes1(arena, lanes, dst, m, *a, move |x| {
                if aw > 0 && (x >> (aw - 1)) & 1 == 1 {
                    x | fill
                } else {
                    x
                }
            })
        }
        K::Repeat { a, factor } => {
            let factor = *factor;
            lanes1(arena, lanes, dst, m, *a, move |x| x.wrapping_mul(factor))
        }
        K::MemRead { mem: mi, addr } => {
            let ml = prog.mems[*mi as usize];
            let pa = arena.add(*addr as usize * lanes) as *const u64;
            let pd = arena.add(dst as usize * lanes);
            let mut changed = 0u32;
            for l in 0..lanes {
                let a = *pa.add(l);
                let v = if a < ml.count {
                    *mem.add((ml.off + a as u32 * ml.words_per) as usize * lanes + l)
                } else {
                    0
                } & m;
                let d = pd.add(l);
                changed += (*d != v) as u32;
                *d = v;
            }
            changed
        }
        K::Wide { .. } | K::WideMemRead { .. } => exec_lanes_wide(prog, arena, mem, lanes, ins),
    }
}

/// The multi-word fallback lane of [`exec_lanes`]: materialize each lane's
/// operands as [`Bits`], evaluate, write the lane back.
unsafe fn exec_lanes_wide(
    prog: &Program,
    arena: *mut u64,
    mem: *const u64,
    lanes: usize,
    ins: &Instr,
) -> u32 {
    let mut changed = 0u32;
    match &ins.kernel {
        Kernel::Wide { op, inputs } => {
            let out_slot = prog.slots[ins.out as usize];
            let mut values: Vec<Bits> = Vec::with_capacity(inputs.len());
            for lane in 0..lanes {
                values.clear();
                for n in inputs.iter() {
                    values.push(slot_bits_lane(arena, lanes, lane, prog.slots[n.0 as usize]));
                }
                let v = crate::eval::eval_cell(*op, &values, out_slot.width).resize(out_slot.width);
                changed += write_slot_lane(arena, lanes, lane, out_slot, &v) as u32;
            }
        }
        Kernel::WideMemRead { mem: mi, addr } => {
            let ml = prog.mems[*mi as usize];
            let out_slot = prog.slots[ins.out as usize];
            for lane in 0..lanes {
                let a = *arena.add(*addr as usize * lanes + lane);
                let v = if a < ml.count {
                    let off = (ml.off + a as u32 * ml.words_per) as usize;
                    let mut words = Vec::with_capacity(ml.words_per as usize);
                    for k in 0..ml.words_per as usize {
                        words.push(*mem.add((off + k) * lanes + lane));
                    }
                    Bits::from_words(ml.width, &words)
                } else {
                    Bits::zero(ml.width)
                };
                changed +=
                    write_slot_lane(arena, lanes, lane, out_slot, &v.resize(out_slot.width)) as u32;
            }
        }
        _ => unreachable!("exec_lanes_wide called on a single-word kernel"),
    }
    changed
}

/// Mask for the top (last) word of a `width`-bit multi-word value.
#[inline]
pub(crate) fn top_word_mask(width: u32) -> u64 {
    if width == 0 {
        0
    } else {
        let rem = width % 64;
        if rem == 0 {
            u64::MAX
        } else {
            (1u64 << rem) - 1
        }
    }
}
